"""Tests for printing and IR validation (round-trips included)."""

import pytest

from repro.errors import IRError
from repro.ir import LoopBuilder, format_instruction, format_loop, parse_loop
from repro.ir.instructions import Instruction
from repro.ir.opcodes import opcode
from repro.ir.registers import greg
from repro.ir.validate import validate_loop


class TestPrinter:
    def test_load_format(self, running_example):
        text = format_instruction(running_example.body[0])
        assert text == "ld4 vr4 = [vr5], 4 !A"

    def test_store_format(self, running_example):
        text = format_instruction(running_example.body[2])
        assert text == "st4 [vr6] = vr7, 4 !B"

    def test_alu_format(self, running_example):
        assert format_instruction(running_example.body[1]) == "add vr7 = vr4, vr9"

    def test_loop_format_contains_trips(self, running_example):
        text = format_loop(running_example)
        assert "copy_add" in text
        assert "trips~200" in text
        assert text.count("\n") == 3

    def test_roundtrip_through_parser(self, running_example):
        """Printing then reparsing preserves the structure."""
        printed = format_loop(running_example)
        # rebuild parseable text: memref decls + instructions without 'v'
        body = "\n".join(
            "  " + format_instruction(i).replace("vr", "r")
            for i in running_example.body
        )
        text = (
            "memref A affine stride=4\nmemref B affine stride=4\n"
            "loop copy_add\n" + body
        )
        again = parse_loop(text)
        assert len(again.body) == len(running_example.body)
        assert [i.mnemonic for i in again.body] == [
            i.mnemonic for i in running_example.body
        ]


class TestValidate:
    def test_valid_loop_passes(self, running_example):
        validate_loop(running_example)

    def test_empty_body_rejected(self):
        from repro.ir.loop import Loop

        with pytest.raises(IRError, match="empty body"):
            validate_loop(Loop(name="e", body=[]))

    def test_double_definition_rejected(self):
        b = LoopBuilder()
        a = b.memref("a", stride=4)
        x = b.load("ld4", b.live_greg("p"), a, post_inc=4)
        b.alu_into("add", x, x)  # redefines the load target
        with pytest.raises(IRError, match="multiple definitions"):
            b.build("bad")

    def test_branch_in_body_rejected(self):
        from repro.ir.loop import Loop

        br = Instruction(opcode("br.cloop"))
        with pytest.raises(IRError, match="branch"):
            validate_loop(Loop(name="b", body=[br]))

    def test_undefined_live_out_rejected(self):
        b = LoopBuilder()
        a = b.memref("a", stride=4)
        x = b.load("ld4", b.live_greg("p"), a, post_inc=4)
        b.alu_imm("adds", x, 1)
        b.mark_live_out(greg(999))
        with pytest.raises(IRError, match="live-out"):
            b.build("bad")
