"""Tests for the cache and TLB models."""

import pytest

from repro.sim.cache import Cache, CacheConfig
from repro.sim.tlb import TLB


def _small_cache(assoc=2, sets=4, line=64):
    return Cache(CacheConfig("t", size=line * assoc * sets, line_size=line,
                             associativity=assoc))


class TestCache:
    def test_miss_then_hit(self):
        c = _small_cache()
        assert c.lookup(0x100, now=0) is None
        c.fill(0x100, ready_time=0)
        assert c.lookup(0x100, now=1) == 0.0
        assert c.lookup(0x13F, now=1) == 0.0  # same 64B line

    def test_pending_fill_charges_remaining_time(self):
        c = _small_cache()
        c.fill(0x100, ready_time=50)
        assert c.lookup(0x100, now=10) == 40.0
        assert c.lookup(0x100, now=60) == 0.0

    def test_lru_eviction(self):
        c = _small_cache(assoc=2, sets=1, line=64)
        c.fill(0 * 64, 0)
        c.fill(1 * 64, 0)
        c.lookup(0 * 64, 0)  # refresh line 0
        c.fill(2 * 64, 0)  # evicts line 1 (LRU)
        assert c.lookup(0 * 64, 0) is not None
        assert c.lookup(1 * 64, 0) is None
        assert c.lookup(2 * 64, 0) is not None

    def test_set_mapping(self):
        c = _small_cache(assoc=1, sets=4, line=64)
        c.fill(0, 0)
        c.fill(64, 0)  # different set: no eviction
        assert c.contains(0) and c.contains(64)
        c.fill(4 * 64, 0)  # same set as address 0: evicts it
        assert not c.contains(0)

    def test_refill_keeps_earlier_ready_time(self):
        c = _small_cache()
        c.fill(0x100, ready_time=100)
        c.fill(0x100, ready_time=200)
        assert c.lookup(0x100, now=0) == 100.0

    def test_hit_miss_counters_and_reset(self):
        c = _small_cache()
        c.lookup(0, 0)
        c.fill(0, 0)
        c.lookup(0, 0)
        assert c.hits == 1 and c.misses == 1
        c.reset()
        assert c.hits == 0 and c.misses == 0
        assert not c.contains(0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size=1000, line_size=64, associativity=4)


class TestTLB:
    def test_miss_penalty_then_hit(self):
        tlb = TLB(entries=2, page_size=16384, miss_penalty=25)
        assert tlb.access(0) == 25
        assert tlb.access(100) == 0  # same page
        assert tlb.access(16384) == 25

    def test_lru_capacity(self):
        tlb = TLB(entries=2, page_size=16384)
        tlb.access(0)
        tlb.access(16384)
        tlb.access(2 * 16384)  # evicts page 0
        assert tlb.access(0) == tlb.miss_penalty

    def test_probe_does_not_fill(self):
        tlb = TLB(entries=4)
        assert not tlb.probe(0)
        assert not tlb.probe(0)  # still not resident
        tlb.access(0)
        assert tlb.probe(0)

    def test_reset(self):
        tlb = TLB()
        tlb.access(0)
        tlb.reset()
        assert not tlb.probe(0)
        assert tlb.hits == 0
