"""Address-stream generation for memory references.

Each memory *space* a loop touches is backed by a :class:`Region` of the
simulated address space whose size is the working set — that, together
with the access pattern, determines which cache level the reference runs
from.  Streams are precomputed as numpy arrays of one address per source
iteration; references in the same line group share a stream, so trailing
references hit the lines their leader brought in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.ir.loop import Loop
from repro.ir.memref import AccessPattern, MemRef

#: gap between regions so distinct spaces never share cache lines
_REGION_ALIGN = 1 << 22  # 4 MB


@dataclass(frozen=True)
class Region:
    """One space's slice of the simulated address space."""

    name: str
    base: int
    size: int


@dataclass(frozen=True)
class StreamSpec:
    """Workload-supplied runtime behaviour of one memory space."""

    #: working-set size in bytes (decides the cache level it runs from)
    size: int
    #: actual stride for SYMBOLIC_STRIDE references (unknown to the compiler)
    runtime_stride: int | None = None
    #: restart the access sequence at the base on every loop invocation
    #: (temporal reuse across invocations) instead of streaming onward
    reuse: bool = True
    #: node size for pointer-chase spaces
    node_size: int = 64


def _stable_hash(text: str) -> int:
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value


class AddressMap:
    """Allocates non-overlapping regions for memory spaces.

    Each region gets a deterministic pseudo-random phase so distinct
    arrays do not all start bank- and set-aligned — real heaps and static
    data are not mutually aligned to megabyte boundaries either.
    """

    def __init__(self) -> None:
        self._regions: dict[str, Region] = {}
        self._next_base = _REGION_ALIGN

    def region(self, name: str, size: int) -> Region:
        if name in self._regions:
            existing = self._regions[name]
            if existing.size != size:
                raise WorkloadError(
                    f"space {name!r} requested with sizes "
                    f"{existing.size} and {size}"
                )
            return existing
        phase = (_stable_hash(name) % 256) * 16
        region = Region(name, self._next_base + phase, size)
        span = max(size + phase, 1)
        self._next_base += ((span // _REGION_ALIGN) + 2) * _REGION_ALIGN
        self._regions[name] = region
        return region


@dataclass
class LoopStreams:
    """Per-reference address streams for one loop."""

    #: reference uid -> address array (length n_iters + lookahead)
    by_ref: dict[int, np.ndarray] = field(default_factory=dict)
    lookahead: int = 0
    #: lazily-built plain-list form of each stream, shared across
    #: invocations by the fast replayer (scalar list indexing beats
    #: per-access numpy scalar extraction by an order of magnitude);
    #: keyed by ``id(array)`` so line-group members sharing one array
    #: convert once
    _list_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def addresses(self, ref: MemRef) -> np.ndarray:
        return self.by_ref[ref.uid]

    def as_list(self, uid: int) -> list:
        """The stream for ``uid`` as a list of Python ints (cached)."""
        arr = self.by_ref[uid]
        key = id(arr)
        lst = self._list_cache.get(key)
        if lst is None:
            lst = arr.tolist()
            self._list_cache[key] = (lst, arr)
        else:
            lst = lst[0]
        return lst


def _stream_key(ref: MemRef) -> tuple:
    return (ref.space, ref.pattern, ref.stride, ref.offset, ref.is_fp)


def _affine(region: Region, stride: int, n: int, offset: int = 0) -> np.ndarray:
    idx = np.arange(n, dtype=np.int64) * stride + offset
    return region.base + (idx % max(region.size, 1))


def _chase(region: Region, node_size: int, n: int, rng) -> np.ndarray:
    slots = max(1, region.size // node_size)
    order = rng.permutation(slots)
    reps = n // slots + 1
    walk = np.tile(order, reps)[:n]
    return region.base + walk.astype(np.int64) * node_size


def _random_in_region(region: Region, elem: int, n: int, rng) -> np.ndarray:
    slots = max(1, region.size // max(elem, 1))
    idx = rng.integers(0, slots, size=n, dtype=np.int64)
    return region.base + idx * elem


def build_streams(
    loop: Loop,
    layout: dict[str, StreamSpec],
    n_iters: int,
    seed: int = 11,
    address_map: AddressMap | None = None,
    lookahead: int = 64,
) -> LoopStreams:
    """Generate one address per source iteration for every reference.

    ``n_iters`` is the total number of iterations that will be simulated
    (summed across invocations); ``lookahead`` extra elements cover
    prefetch distances reaching past the end.
    """
    rng = np.random.default_rng(seed)
    amap = address_map or AddressMap()
    streams = LoopStreams(lookahead=lookahead)
    total = n_iters + lookahead
    cache: dict[tuple, np.ndarray] = {}

    for inst in loop.body:
        ref = inst.memref
        if ref is None or ref.uid in streams.by_ref:
            continue
        spec = layout.get(ref.space)
        if spec is None:
            raise WorkloadError(
                f"loop {loop.name!r}: no StreamSpec for space {ref.space!r}"
            )
        key = _stream_key(ref)
        if key in cache:
            streams.by_ref[ref.uid] = cache[key]
            continue
        region = amap.region(ref.space, spec.size)

        if ref.pattern is AccessPattern.AFFINE:
            stream = _affine(region, ref.stride or ref.size, total, ref.offset)
        elif ref.pattern is AccessPattern.SYMBOLIC_STRIDE:
            stride = spec.runtime_stride or 4096
            stream = _affine(region, stride, total)
        elif ref.pattern is AccessPattern.INDIRECT:
            stream = _random_in_region(region, ref.size, total, rng)
        elif ref.pattern is AccessPattern.POINTER_CHASE:
            stream = _chase(region, spec.node_size, total, rng)
        elif ref.pattern is AccessPattern.INVARIANT:
            stream = np.full(total, region.base, dtype=np.int64)
        else:  # pragma: no cover - enum is closed
            raise WorkloadError(f"unknown pattern {ref.pattern}")

        cache[key] = stream
        streams.by_ref[ref.uid] = stream
    return streams
