"""The shrinker: verdict-preserving, corpus-expressible, monotone."""

from repro.fuzz.gen import generate_loop
from repro.fuzz.oracles import CaseReport, Violation, check_loop
from repro.fuzz.shrink import _size, shrink_loop
from repro.ir import parse_loop
from repro.ir.memref import LatencyHint
from repro.ir.printer import loop_to_source


class TestShrink:
    def test_passing_loop_returned_unchanged(self):
        loop = generate_loop(0)
        shrunk, report = shrink_loop(loop, lambda l: check_loop(l))
        assert report.ok
        assert len(shrunk.body) == len(loop.body)

    def test_synthetic_verdict_shrinks_to_the_witness(self):
        """An oracle that only cares about one opcode lets everything
        else shrink away."""

        def has_fma(loop):
            report = CaseReport(name=loop.name)
            if any(inst.mnemonic == "fma" for inst in loop.body):
                report.violations.append(Violation("fma-present", "witness"))
            return report

        witness_seed = next(
            seed for seed in range(100)
            if any(i.mnemonic == "fma" for i in generate_loop(seed).body)
        )
        loop = generate_loop(witness_seed)
        shrunk, report = shrink_loop(loop, has_fma)
        assert "fma-present" in report.oracles_failed
        assert len(shrunk.body) < len(loop.body)
        # greedy fixpoint: nothing droppable remains around the witness
        assert any(i.mnemonic == "fma" for i in shrunk.body)
        assert len(shrunk.body) <= 4

    def test_shrunk_loop_is_corpus_expressible(self):
        def always_fails(loop):
            report = CaseReport(name=loop.name)
            report.violations.append(Violation("synthetic", "always"))
            return report

        loop = generate_loop(11)
        shrunk, _ = shrink_loop(loop, always_fails)
        # minimal under the synthetic oracle: a single instruction...
        assert len(shrunk.body) == 1
        # ...and still a round-trip-stable dialect program
        source = loop_to_source(shrunk)
        assert loop_to_source(parse_loop(source)) == source

    def test_size_metric_orders_hint_clearing(self):
        loop = generate_loop(4)
        hinted = _size(loop)
        for ref in loop.memrefs:
            ref.hint = LatencyHint.NONE
            ref.hint_source = ""
        assert _size(loop) < hinted

    def test_target_oracle_is_respected(self):
        """A candidate that trades the target violation for a different
        one is rejected."""
        calls = []

        def flaky(loop):
            calls.append(len(loop.body))
            report = CaseReport(name=loop.name)
            if len(loop.body) >= 3:
                report.violations.append(Violation("target", "big"))
            else:
                report.violations.append(Violation("other", "small"))
            return report

        loop = generate_loop(8)
        assert len(loop.body) >= 3
        shrunk, report = shrink_loop(loop, flaky, target_oracle="target")
        assert len(shrunk.body) == 3
        assert report.oracles_failed == ["target"]
