"""Sec. 4.2, prefetch-disabled headroom.

"When disabling software prefetching in the compiler, the gain in this
headroom experiment grows to 4.6% on the geomean (CPU2000 and CPU2006
combined, with n = 32)" — without prefetches much more latency is exposed,
so latency-tolerant scheduling has more to recover.
"""

import math

import pytest

from benchmarks.conftest import base_cfg, l3_cfg
from repro.core import Experiment
from repro.workloads import cpu2000_suite, cpu2006_suite


@pytest.fixture(scope="module")
def combined_runs():
    results = {}
    for prefetch in (True, False):
        gains = {}
        for suite in (cpu2006_suite(), cpu2000_suite()):
            exp = Experiment(suite, seed=2008)
            res = exp.compare(
                base_cfg(prefetch=prefetch),
                l3_cfg(32, prefetch=prefetch),
            )
            gains.update(
                {
                    name: res.baseline[name].total_cycles
                    / res.variant[name].total_cycles
                    for name in res.gains
                }
            )
        geo = math.exp(
            sum(math.log(r) for r in gains.values()) / len(gains)
        )
        results[prefetch] = (geo - 1.0) * 100.0
    return results


def test_prefetch_off_headroom(benchmark, record, combined_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with_pf = combined_runs[True]
    without_pf = combined_runs[False]
    record(
        "sec42_prefetch_off_headroom",
        (
            f"combined geomean, n=32, prefetch ON : {with_pf:+.2f}%\n"
            f"combined geomean, n=32, prefetch OFF: {without_pf:+.2f}%\n"
            f"(paper: ~2% -> 4.6%)"
        ),
    )
    # disabling prefetch exposes more latency -> larger headroom
    assert without_pf > with_pf
    assert without_pf > 2.0
