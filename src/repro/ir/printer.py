"""Disassembly-style formatting of instructions and loops.

Two renderers live here:

* :func:`format_instruction` / :func:`format_loop` — human-oriented dumps
  (virtual registers keep their ``vr4`` debug names);
* :func:`loop_to_source` — the *parseable* renderer: it emits the textual
  dialect of :func:`repro.ir.parser.parse_loop`, so
  ``parse_loop(loop_to_source(loop))`` reconstructs the loop.  This is the
  on-disk format of the fuzzing regression corpus (``tests/corpus/``).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import Instruction
from repro.ir.loop import Loop
from repro.ir.memref import AccessPattern, LatencyHint, MemRef
from repro.ir.registers import Reg


def format_instruction(inst: Instruction) -> str:
    """Render one instruction in Itanium-flavoured syntax."""
    parts: list[str] = []
    if inst.qual_pred is not None:
        parts.append(f"({inst.qual_pred})")
    op = inst.opcode

    if op.is_load or op.is_prefetch:
        addr = inst.uses[0] if inst.uses else "?"
        mem = f"[{addr}]"
        if inst.post_increment is not None:
            mem += f", {inst.post_increment}"
        if op.is_prefetch:
            parts.append(f"{op.mnemonic} {mem}")
        else:
            dest = inst.defs[0] if inst.defs else "?"
            parts.append(f"{op.mnemonic} {dest} = {mem}")
        if inst.memref is not None:
            parts.append(f"!{inst.memref.name}")
    elif op.is_store:
        addr = inst.uses[0] if inst.uses else "?"
        value = inst.uses[1] if len(inst.uses) > 1 else "?"
        mem = f"[{addr}]"
        rhs = f"{value}"
        if inst.post_increment is not None:
            rhs += f", {inst.post_increment}"
        parts.append(f"{op.mnemonic} {mem} = {rhs}")
        if inst.memref is not None:
            parts.append(f"!{inst.memref.name}")
    else:
        srcs = [str(u) for u in inst.uses]
        if inst.imm is not None:
            srcs.append(str(inst.imm))
        lhs = ", ".join(str(d) for d in inst.defs) if inst.defs else ""
        if lhs:
            parts.append(f"{op.mnemonic} {lhs} = {', '.join(srcs)}")
        elif srcs:
            parts.append(f"{op.mnemonic} {', '.join(srcs)}")
        else:
            parts.append(op.mnemonic)
    return " ".join(parts)


def format_loop(loop: Loop) -> str:
    """Render a whole loop, one instruction per line."""
    lines = [f"loop {loop.name}:"]
    trips = loop.trip_count
    if trips.estimate is not None:
        lines[0] += f"  // trips~{trips.estimate:g} ({trips.source.value})"
    for inst in loop.body:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


# --- parseable source rendering ------------------------------------------

_PATTERN_TOKENS = {
    AccessPattern.AFFINE: "affine",
    AccessPattern.SYMBOLIC_STRIDE: "symbolic",
    AccessPattern.INDIRECT: "indirect",
    AccessPattern.POINTER_CHASE: "chase",
    AccessPattern.INVARIANT: "invariant",
}


def _source_reg(reg: Reg) -> str:
    """Render a register as a parser token (``r4``/``f2``/``p1``)."""
    if not reg.virtual:
        raise IRError(
            f"cannot render physical register {reg.name} in source form"
        )
    return f"{reg.rclass.value}{reg.index}"


def memref_to_source(ref: MemRef) -> str:
    """One ``memref`` declaration line of the textual dialect."""
    parts = ["memref", ref.name, _PATTERN_TOKENS[ref.pattern]]
    if ref.is_fp:
        parts.append("fp")
    if ref.stride is not None:
        parts.append(f"stride={ref.stride}")
    parts.append(f"size={ref.size}")
    if ref.offset:
        parts.append(f"offset={ref.offset}")
    if ref.space != ref.name:
        parts.append(f"space={ref.space}")
    if ref.index_ref is not None:
        parts.append(f"index={ref.index_ref.name}")
    if ref.hint is not LatencyHint.NONE:
        parts.append(f"hint={ref.hint.name.lower()}")
    if ref.hint_source:
        parts.append(f"hint_source={ref.hint_source}")
    return " ".join(parts)


def instruction_to_source(inst: Instruction) -> str:
    """Render one instruction as a parseable dialect line."""
    parts: list[str] = []
    if inst.qual_pred is not None:
        parts.append(f"({_source_reg(inst.qual_pred)})")
    op = inst.opcode

    if op.is_load or op.is_prefetch:
        addr = _source_reg(inst.uses[0])
        mem = f"[{addr}]"
        if inst.post_increment is not None:
            mem += f", {inst.post_increment}"
        if op.is_prefetch:
            parts.append(f"{op.mnemonic} {mem}")
        else:
            parts.append(f"{op.mnemonic} {_source_reg(inst.defs[0])} = {mem}")
    elif op.is_store:
        addr = _source_reg(inst.uses[0])
        rhs = _source_reg(inst.uses[1])
        if inst.post_increment is not None:
            rhs += f", {inst.post_increment}"
        parts.append(f"{op.mnemonic} [{addr}] = {rhs}")
    else:
        srcs = [_source_reg(u) for u in inst.uses]
        if inst.imm is not None:
            srcs.append(str(inst.imm))
        lhs = ", ".join(_source_reg(d) for d in inst.defs)
        if lhs:
            parts.append(f"{op.mnemonic} {lhs} = {', '.join(srcs)}")
        elif srcs:
            parts.append(f"{op.mnemonic} {', '.join(srcs)}")
        else:
            parts.append(op.mnemonic)
    if inst.memref is not None:
        parts.append(f"!{inst.memref.name}")
    return " ".join(parts)


def loop_to_source(loop: Loop) -> str:
    """Render ``loop`` in the textual dialect of ``parse_loop``.

    The output round-trips: parsing it reconstructs an equivalent loop
    (same body, memref descriptions, trip-count info, liveness and
    aliasing metadata).  Index references are emitted before the
    references that use them, matching the parser's declaration order
    requirement.
    """
    lines: list[str] = []
    emitted: set[int] = set()

    def emit_ref(ref: MemRef) -> None:
        if ref.uid in emitted:
            return
        if ref.index_ref is not None:
            emit_ref(ref.index_ref)
        emitted.add(ref.uid)
        lines.append(memref_to_source(ref))

    for ref in loop.memrefs:
        emit_ref(ref)
    if lines:
        lines.append("")

    trips = loop.trip_count
    header = ["loop", loop.name]
    if trips.estimate is not None:
        header.append(f"trips={trips.estimate:g}")
        header.append(f"source={trips.source.value}")
    if trips.max_trips is not None:
        header.append(f"max_trips={trips.max_trips}")
    if trips.contiguous_across_outer:
        header.append("contig=1")
    if not loop.counted:
        header.append("counted=0")
    lines.append(" ".join(header))

    for inst in loop.body:
        lines.append(f"  {instruction_to_source(inst)}")

    if loop.live_in:
        regs = sorted(loop.live_in, key=lambda r: (r.rclass.value, r.index))
        lines.append("live_in " + " ".join(_source_reg(r) for r in regs))
    if loop.live_out:
        regs = sorted(loop.live_out, key=lambda r: (r.rclass.value, r.index))
        lines.append("live_out " + " ".join(_source_reg(r) for r in regs))
    if loop.independent_spaces:
        lines.append("independent " + " ".join(sorted(loop.independent_spaces)))
    return "\n".join(lines) + "\n"
