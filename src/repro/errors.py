"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad operands, unknown opcodes, invalid loop structure."""


class ParseError(IRError):
    """Raised by the textual loop parser on malformed input."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class DependenceError(ReproError):
    """Inconsistent dependence information (e.g. negative distance)."""


class SchedulingError(ReproError):
    """The modulo scheduler could not produce a schedule."""


class RegisterAllocationError(ReproError):
    """Rotating or static register allocation failed."""


class MachineModelError(ReproError):
    """Invalid machine-model query (unknown unit class, bad hint, ...)."""


class SimulationError(ReproError):
    """The hardware simulator was driven into an invalid state."""


class WorkloadError(ReproError):
    """A synthetic workload definition is inconsistent."""


class ConfigError(ReproError):
    """An invalid compiler configuration was supplied."""


class HarnessError(ReproError):
    """The experiment harness failed (job timeout, bad manifest, ...)."""


class ServiceError(ReproError):
    """A repro-as-a-service failure: invalid request, overload, transport.

    ``status`` carries the HTTP status code when the error crossed the
    wire (400 for a malformed request, 404 for an unknown job, 429 for
    backpressure, ...); it is ``None`` for purely local failures.
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        self.status = status
        super().__init__(message)
