"""Machine model: execution resources and the latency-query interface.

The pipeliner never hardcodes latencies; it queries the machine model and
passes a flag saying whether it wants the *minimum (base)* latency of a
load or the *expected* latency derived from the HLO hint token — exactly
the interface described in Sec. 3.3 of the paper.
"""

from repro.machine.resources import ResourceModel, UNIT_CAPACITIES
from repro.machine.hints import HintTranslation, TYPICAL_TRANSLATION, BEST_CASE_TRANSLATION
from repro.machine.itanium2 import ItaniumMachine, MemoryTimings

__all__ = [
    "ResourceModel",
    "UNIT_CAPACITIES",
    "HintTranslation",
    "TYPICAL_TRANSLATION",
    "BEST_CASE_TRANSLATION",
    "ItaniumMachine",
    "MemoryTimings",
]
