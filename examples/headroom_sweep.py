#!/usr/bin/env python
"""A miniature Fig. 7: the trip-count-threshold sweep on four benchmarks.

Shows the core regression-risk trade-off: blanket L3 boosting wins on
delinquent loops, destroys low-trip-count loops, and the threshold n
separates the two — except when training and reference inputs disagree
(177.mesa).

Run:  python examples/headroom_sweep.py        (~1 minute)
"""

from repro import Experiment
from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core import format_gain_table
from repro.workloads import benchmark_by_name

BENCHMARKS = ["429.mcf", "444.namd", "464.h264ref", "177.mesa"]
THRESHOLDS = [0, 8, 16, 32, 64]


def main() -> None:
    exp = Experiment([benchmark_by_name(n) for n in BENCHMARKS], seed=2008)
    base = baseline_config()

    sweep = {}
    for n in THRESHOLDS:
        cfg = CompilerConfig(
            hint_policy=HintPolicy.ALL_LOADS_L3,
            trip_count_threshold=n,
            name=f"n={n}",
        )
        sweep[f"n={n}"] = exp.compare(base, cfg)

    hlo = CompilerConfig(hint_policy=HintPolicy.HLO, trip_count_threshold=32,
                         name="hlo")
    sweep["HLO"] = exp.compare(base, hlo)

    print(format_gain_table(
        sweep, title="Headroom sweep (all loads @ L3) vs HLO-directed hints"
    ))
    print()
    print("What to look for:")
    print(" * 464.h264ref: ruined at n=0/8 (low-trip loop), rescued by n>=16")
    print(" * 177.mesa: trains at 154 trips, runs at 8 -> loses at EVERY n,")
    print("   but the HLO column is clean (its loads prefetch perfectly)")
    print(" * 429.mcf/444.namd: big wins survive in the HLO column")


if __name__ == "__main__":
    main()
