"""Paper-style tables for experiment results."""

from __future__ import annotations

import math

from repro.core.accounting import BUCKETS, CycleAccount
from repro.core.experiment import ExperimentResult


def format_gain_table(
    results: dict[str, ExperimentResult],
    title: str = "",
) -> str:
    """Per-benchmark gains for several variants side by side.

    ``results`` maps a column label (e.g. ``"n=8"``) to the comparison
    that produced it; rows are benchmarks, the last row the geomean —
    the layout of Figs. 7-9.
    """
    columns = list(results)
    if not columns:
        return "(no results)"
    names = list(next(iter(results.values())).gains)
    width = max(len(n) for n in names + ["Geomean"]) + 2

    lines = []
    if title:
        lines.append(title)
    header = " " * width + "".join(f"{c:>10}" for c in columns)
    lines.append(header)
    for name in names:
        row = f"{name:<{width}}"
        for col in columns:
            row += f"{results[col].gains[name]:>9.1f}%"
        lines.append(row)
    geo = f"{'Geomean':<{width}}"
    for col in columns:
        geo += f"{results[col].geomean_gain:>9.1f}%"
    lines.append(geo)
    return "\n".join(lines)


def format_account_table(
    baseline: CycleAccount, variant: CycleAccount
) -> str:
    """The Fig. 10 stacked-bar data as a table plus bucket deltas."""
    lines = [
        f"{'bucket':<22}{baseline.label:>16}{variant.label:>16}{'delta':>10}"
    ]
    for bucket in BUCKETS:
        base_cycles = getattr(baseline.counters, bucket)
        var_cycles = getattr(variant.counters, bucket)
        delta = variant.delta_percent(baseline, bucket)
        # a bucket appearing from a zero baseline has no finite delta
        rendered = f"{'new':>10}" if math.isinf(delta) else f"{delta:>+9.1f}%"
        lines.append(
            f"{bucket:<22}{base_cycles:>16.0f}{var_cycles:>16.0f}{rendered}"
        )
    lines.append(
        f"{'TOTAL':<22}{baseline.total:>16.0f}{variant.total:>16.0f}"
        f"{100 * (variant.total / max(baseline.total, 1e-9) - 1):>+9.1f}%"
    )
    lines.append(
        f"{'ozq-full %':<22}{baseline.ozq_full_percent():>15.1f}%"
        f"{variant.ozq_full_percent():>15.1f}%"
    )
    return "\n".join(lines)
