"""Tests for modulo variable expansion (the rotation-free alternative)."""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.ir.memref import LatencyHint
from repro.pipeliner import pipeline_loop
from repro.pipeliner.mve import generate_mve_kernel


def _schedule(loop, machine, cfg=None):
    result = pipeline_loop(loop, machine, cfg or baseline_config())
    assert result.pipelined
    return result


class TestMVE:
    def test_baseline_unroll_factor(self, running_example, machine):
        result = _schedule(running_example, machine)
        mve = generate_mve_kernel(result.schedule)
        # longest lifetime spans 2 kernel iterations at II=1
        assert mve.unroll_factor == 2
        assert len(mve.copies) == 2
        assert mve.kernel_ops == 2 * len(running_example.body)

    def test_boosting_inflates_code_size(self, running_example, machine):
        """The quantitative form of the paper's Sec. 5 argument: without
        rotation, clustering costs code size proportional to k."""
        base = _schedule(running_example, machine)
        base_mve = generate_mve_kernel(base.schedule)

        running_example.body[0].memref.hint = LatencyHint.L3
        boosted = _schedule(
            running_example, machine, CompilerConfig(trip_count_threshold=0)
        )
        boosted_mve = generate_mve_kernel(boosted.schedule)

        k = boosted.stats.placements[0].clustering_factor(boosted.ii)
        assert boosted_mve.unroll_factor >= k
        assert boosted_mve.total_ops > base_mve.total_ops * 3
        # while the rotating kernel stays at one body regardless
        assert len(boosted.kernel.ops) == len(running_example.body)

    def test_register_instances_match_blades(self, running_example, machine):
        """MVE needs exactly as many register instances as the rotating
        allocator assigns blade slots."""
        from repro.ir.registers import RegClass

        result = _schedule(running_example, machine)
        mve = generate_mve_kernel(result.schedule)
        rotating_gr = result.rotating.used[RegClass.GR]
        gr_instances = sum(
            n for reg, n in mve.instances.items()
            if reg.rclass is RegClass.GR
        )
        assert gr_instances == rotating_gr

    def test_cyclic_renaming_connects_def_use(self, running_example, machine):
        result = _schedule(running_example, machine)
        mve = generate_mve_kernel(result.schedule)
        load_data = running_example.body[0].defs[0]
        # copy 0 defines instance #0; the add one rotation later (copy 1)
        # must read instance #0
        copy1_add = next(
            op for op in mve.copies[1] if op.inst.mnemonic == "add"
        )
        assert f"{load_data}#0" in copy1_add.renamed_uses
        copy0_load = next(
            op for op in mve.copies[0] if op.inst.is_load
        )
        assert copy0_load.renamed_defs[0] == f"{load_data}#0"

    def test_prolog_epilog_accounting(self, running_example, machine):
        result = _schedule(running_example, machine)
        mve = generate_mve_kernel(result.schedule)
        # 3 stages, one op each: prolog executes 1 then 2 ops; epilog
        # mirrors with 2 then 1
        assert mve.prolog_ops == 3
        assert mve.epilog_ops == 3
        assert mve.total_ops == mve.kernel_ops + 6

    def test_format(self, running_example, machine):
        result = _schedule(running_example, machine)
        mve = generate_mve_kernel(result.schedule)
        text = mve.format()
        assert "unrolled x2" in text
        assert "#0" in text and "copy 1" in text

    def test_expansion_factor(self, running_example, machine):
        result = _schedule(running_example, machine)
        mve = generate_mve_kernel(result.schedule)
        body = len(running_example.body)
        assert mve.expansion_factor(body) == pytest.approx(
            mve.total_ops / body
        )
        assert mve.expansion_factor(body) > 2.0
