"""Ablations for the design choices DESIGN.md calls out.

1. **Hint translation**: typical (11/21) vs best-case (5/14) scheduling
   latencies.  The paper chooses typical values to leave headroom for
   dynamic hazards (bank conflicts, conflicting stores) — best-case
   translation covers less and gains less.
2. **Criticality analysis off**: boosting loads on recurrence cycles
   inflates the II, which is exactly what Sec. 3.3's analysis prevents.
3. **Memory-level parallelism**: with an OzQ depth of 1, clustering can no
   longer overlap stalls and the benefit collapses toward pure coverage.
"""

import numpy as np
import pytest

from benchmarks.conftest import base_cfg, hlo_cfg, run_compare
from repro.config import CompilerConfig
from repro.core.compiler import LoopCompiler
from repro.hlo.profiles import collect_block_profile
from repro.ir.memref import LatencyHint
from repro.machine import BEST_CASE_TRANSLATION, ItaniumMachine
from repro.sim import MemorySystem, simulate_loop
from repro.workloads import benchmark_by_name


def test_ablation_hint_translation(benchmark, record, harness_cache,
                                   harness_jobs):
    """Typical-latency translation beats best-case translation.

    Both machine variants run through the harness; the machine parameters
    are part of the cache key, so the two sweeps never cross-contaminate.
    """
    bench_names = ["444.namd", "481.wrf", "429.mcf"]
    benches = [benchmark_by_name(n) for n in bench_names]

    res_typical = run_compare(
        benches, base_cfg(), [hlo_cfg()],
        machine=ItaniumMachine(),
        cache=harness_cache, workers=harness_jobs,
        suite_name="ablation-typical",
    )[hlo_cfg().label]

    best_machine = ItaniumMachine().with_translation(BEST_CASE_TRANSLATION)
    res_best = run_compare(
        benches, base_cfg(), [hlo_cfg()],
        machine=best_machine,
        cache=harness_cache, workers=harness_jobs,
        suite_name="ablation-best-case",
    )[hlo_cfg().label]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'bench':<12}{'typical':>10}{'best-case':>11}"]
    for name in bench_names:
        lines.append(
            f"{name:<12}{res_typical.gains[name]:>9.1f}%"
            f"{res_best.gains[name]:>10.1f}%"
        )
    lines.append(
        f"{'geomean':<12}{res_typical.geomean_gain:>9.1f}%"
        f"{res_best.geomean_gain:>10.1f}%"
    )
    record("ablation_hint_translation", "\n".join(lines))
    assert res_typical.geomean_gain > res_best.geomean_gain


def test_ablation_criticality_off(benchmark, record, machine):
    """Boosting a recurrence-cycle load inflates the II."""
    from repro.workloads.loops import pointer_chase

    bench = benchmark_by_name("429.mcf")
    lw = bench.loops[0]
    profile = collect_block_profile({lw.build()[0].name: lw.data.train},
                                    seed=2008)

    results = {}
    for label, respect in (("criticality-on", True), ("criticality-off", False)):
        loop, layout = lw.build()
        cfg = hlo_cfg().with_(respect_criticality=respect, name=label)
        compiled = LoopCompiler(machine, cfg).compile(loop, profile)
        rng = np.random.default_rng(2008)
        trips = lw.data.ref.sample(rng, 800)
        sim = simulate_loop(
            compiled.result, machine, layout, list(trips),
            memory=MemorySystem(machine.timings),
        )
        results[label] = (compiled, sim)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    on_c, on_sim = results["criticality-on"]
    off_c, off_sim = results["criticality-off"]
    record(
        "ablation_criticality",
        (
            f"criticality on : II={on_c.stats.ii}, "
            f"boosted={on_c.stats.boosted_loads}, "
            f"cycles={on_sim.cycles:.0f}\n"
            f"criticality off: II={off_c.stats.ii}, "
            f"boosted={off_c.stats.boosted_loads}, "
            f"cycles={off_sim.cycles:.0f}\n"
            "(without the analysis, boosting the node->child chase load\n"
            " pushes the Recurrence II past the Resource II; the Sec. 3.3\n"
            " retry ladder then demotes ALL loads to rescue the II, and\n"
            " the entire benefit is lost)"
        ),
    )
    # boosting the chase load either inflates the II or (via the retry
    # ladder) forfeits every boost; both are strictly worse
    assert (
        off_c.stats.ii > on_c.stats.ii
        or off_c.stats.boosted_loads < on_c.stats.boosted_loads
    )
    assert off_sim.cycles > on_sim.cycles * 1.2


def test_ablation_mlp(benchmark, record, harness_cache, harness_jobs):
    """Clustering needs memory-level parallelism: a 1-entry OzQ kills it."""
    bench = benchmark_by_name("429.mcf")
    results = {}
    for label, capacity in (("ozq-48", 48), ("ozq-1", 1)):
        machine = ItaniumMachine().with_ozq_capacity(capacity)
        res = run_compare(
            [bench], base_cfg(), [hlo_cfg()],
            machine=machine,
            cache=harness_cache, workers=harness_jobs,
            suite_name=f"ablation-{label}",
        )[hlo_cfg().label]
        results[label] = res.gains["429.mcf"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(
        "ablation_mlp",
        (
            f"gain with OzQ depth 48: {results['ozq-48']:+.1f}%\n"
            f"gain with OzQ depth 1 : {results['ozq-1']:+.1f}%"
        ),
    )
    assert results["ozq-48"] > results["ozq-1"]
