"""Modulo-schedule verification (SA2xx).

Re-derives every scheduling invariant of Sec. 1.1 from first principles —
deliberately *without* calling :meth:`repro.pipeliner.schedule.Schedule.verify`,
the MRT, or the bound computations it cross-checks:

* SA201 — the time map covers exactly the loop body, at non-negative
  times normalised to start at 0, under a positive II;
* SA202 — every DDG edge satisfies ``t(dst) + II*omega - t(src) >= lat``
  with the edge latency recomputed here from the opcode table, the hint
  translation and the boost set;
* SA203 — per-row resource usage rebuilt from scratch fits the machine's
  port capacities (M/I/F/B, the pooled M+I capacity for A-type ops, the
  issue width) including the implicit loop branch in the last row;
* SA204 — the derived bookkeeping (stage count ``SC = max t // II + 1``
  and the :class:`~repro.pipeliner.stats.PipelineStats` counters) matches;
* SA205 — per-load placement metrics: use distance, additional latency
  ``d`` (Sec. 2.1) and clustering factor ``k = d // II + 1`` (Equ. (3)).
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.diagnostics import DiagnosticReport
from repro.ddg.edges import DepEdge, DepKind
from repro.ir.instructions import Instruction
from repro.ir.opcodes import UnitClass
from repro.pipeliner.schedule import Schedule
from repro.pipeliner.stats import PipelineStats

#: independent restatement of the fixed non-flow edge latencies: an anti
#: dependence allows same-cycle placement, ordering edges need one cycle
_NON_FLOW_LATENCY = {
    DepKind.ANTI: 0,
    DepKind.MEM_ANTI: 0,
    DepKind.OUTPUT: 1,
    DepKind.MEM_OUTPUT: 1,
    DepKind.MEM_FLOW: 1,
}


def edge_latency(edge: DepEdge, schedule: Schedule) -> int:
    """Recompute the latency the schedule must honour for ``edge``."""
    if edge.kind is not DepKind.FLOW:
        return _NON_FLOW_LATENCY[edge.kind]
    src = edge.src
    base = src.opcode.latency
    if src.is_memory and edge.reg is not None and edge.reg not in src.defs:
        return 1  # post-incremented address: an ALU-style result
    if src.is_load:
        if schedule.criticality.is_boosted(src) and src.memref is not None:
            translation = schedule.machine.translation
            return translation.scheduling_latency(
                src.memref.hint, src.is_fp, base
            )
        return base
    return max(1, base)


def recompute_use_distance(schedule: Schedule, load: Instruction) -> int | None:
    """Cycles from ``load`` to its earliest *data* use, folded across
    iterations — ``min(t(use) + II*omega - t(load))`` over flow edges that
    carry the load's data result (not its post-incremented address)."""
    data = set(load.defs)
    distances = [
        schedule.times[e.dst] + schedule.ii * e.omega - schedule.times[load]
        for e in schedule.ddg.edges
        if e.src is load and e.kind is DepKind.FLOW and e.reg in data
    ]
    return min(distances) if distances else None


def _check_domain(schedule: Schedule, report: DiagnosticReport) -> bool:
    """SA201.  Returns False when later checks cannot run safely."""
    name = schedule.loop.name
    ok = True
    if schedule.ii < 1:
        report.add("SA201", f"II must be >= 1, got {schedule.ii}", loop=name)
        return False
    body = set(schedule.loop.body)
    timed = set(schedule.times)
    for inst in body - timed:
        report.add("SA201", "instruction has no schedule time", loop=name,
                   inst=inst)
        ok = False
    for inst in timed - body:
        report.add("SA201", "scheduled instruction is not in the loop body",
                   loop=name, inst=inst)
        ok = False
    if not ok:
        return False
    times = schedule.times.values()
    if times and min(times) != 0:
        report.add(
            "SA201",
            f"times are not normalised: min(t) = {min(times)}, expected 0",
            loop=name,
        )
    for inst, t in schedule.times.items():
        if t < 0:
            report.add("SA201", f"negative schedule time t={t}", loop=name,
                       inst=inst)
    return True


def _check_dependences(schedule: Schedule, report: DiagnosticReport) -> None:
    """SA202: replay every DDG edge."""
    name = schedule.loop.name
    ii = schedule.ii
    for edge in schedule.ddg.edges:
        lat = edge_latency(edge, schedule)
        slack = (
            schedule.times[edge.dst]
            + ii * edge.omega
            - schedule.times[edge.src]
            - lat
        )
        if slack < 0:
            report.add(
                "SA202",
                f"edge {edge.src.index}->{edge.dst.index} "
                f"({edge.kind.value}, omega={edge.omega}) violated: "
                f"t(dst)={schedule.times[edge.dst]} + II*omega "
                f"- t(src)={schedule.times[edge.src]} < latency {lat}",
                loop=name,
                inst=edge.dst,
                detail={"slack": slack, "latency": lat},
            )


def _check_resources(schedule: Schedule, report: DiagnosticReport) -> None:
    """SA203: rebuild per-row port usage independently of the MRT."""
    name = schedule.loop.name
    ii = schedule.ii
    res = schedule.machine.resources
    cap = res.capacities
    rows: list[list[Instruction]] = [[] for _ in range(ii)]
    for inst, t in schedule.times.items():
        rows[t % ii].append(inst)

    for row_no, insts in enumerate(rows):
        counts: Counter = Counter(inst.opcode.unit for inst in insts)
        # the implicit br.ctop/br.wtop issues in the last row
        branch = 1 if row_no == ii - 1 else 0
        limits = [
            ("M ports", counts[UnitClass.M], cap[UnitClass.M]),
            ("I ports", counts[UnitClass.I], cap[UnitClass.I]),
            ("F ports", counts[UnitClass.F], cap[UnitClass.F]),
            ("B ports", counts[UnitClass.B] + branch, cap[UnitClass.B]),
            (
                "pooled M+I ports (A-type)",
                counts[UnitClass.M] + counts[UnitClass.I] + counts[UnitClass.A],
                cap[UnitClass.M] + cap[UnitClass.I],
            ),
            ("issue slots", len(insts) + branch, res.issue_width),
        ]
        for what, demand, capacity in limits:
            if demand > capacity:
                report.add(
                    "SA203",
                    f"row {row_no}: {what} over-subscribed "
                    f"({demand} > {capacity})",
                    loop=name,
                    detail={"row": row_no, "demand": demand,
                            "capacity": capacity},
                )


def _check_bookkeeping(
    schedule: Schedule, stats: PipelineStats, report: DiagnosticReport
) -> None:
    """SA204: stage count and stats counters against the raw time map."""
    name = schedule.loop.name
    sc = max(schedule.times.values()) // schedule.ii + 1
    checks = [
        ("stats.ii", stats.ii, schedule.ii),
        ("stats.stage_count", stats.stage_count, sc),
        ("schedule.stage_count", schedule.stage_count, sc),
        (
            "stats.boosted_loads",
            stats.boosted_loads,
            len(schedule.criticality.boosted),
        ),
        (
            "stats.critical_loads",
            stats.critical_loads,
            len(schedule.criticality.critical),
        ),
        ("stats.total_loads", stats.total_loads, len(schedule.loop.loads)),
    ]
    for what, got, want in checks:
        if got != want:
            report.add(
                "SA204",
                f"{what} is {got}, re-derivation gives {want}",
                loop=name,
            )
    if not stats.pipelined:
        report.add(
            "SA204",
            "stats claim the loop was not pipelined, yet a schedule exists",
            loop=name,
        )


def _check_placements(
    schedule: Schedule, stats: PipelineStats, report: DiagnosticReport
) -> None:
    """SA205: the recorded LoadPlacement metrics against recomputation."""
    name = schedule.loop.name
    ii = schedule.ii
    by_load = {p.load: p for p in stats.placements}
    for load in schedule.loop.loads:
        placement = by_load.pop(load, None)
        if placement is None:
            report.add("SA205", "load has no recorded placement", loop=name,
                       inst=load)
            continue
        distance = recompute_use_distance(schedule, load)
        additional = 0 if distance is None else max(
            0, distance - load.opcode.latency
        )
        checks = [
            ("time", placement.time, schedule.times[load]),
            ("use_distance", placement.use_distance, distance),
            ("additional latency d", placement.additional_latency, additional),
            (
                "clustering factor k",
                placement.clustering_factor(ii),
                additional // ii + 1,
            ),
        ]
        for what, got, want in checks:
            if got != want:
                report.add(
                    "SA205",
                    f"placement {what} is {got}, re-derivation gives {want}",
                    loop=name,
                    inst=load,
                )
    for load in by_load:
        report.add("SA205", "placement recorded for a non-loop load",
                   loop=name, inst=load)


def verify_schedule(
    schedule: Schedule, stats: PipelineStats | None = None
) -> DiagnosticReport:
    """Run every SA2xx check; ``stats`` enables SA204/SA205."""
    report = DiagnosticReport()
    if not _check_domain(schedule, report):
        return report
    _check_dependences(schedule, report)
    _check_resources(schedule, report)
    if stats is not None:
        _check_bookkeeping(schedule, stats, report)
        _check_placements(schedule, stats, report)
    return report
