"""Tests for the prefetcher and the hint-marking rules of Sec. 3.2."""

import math

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.hlo import leading_references, plan_prefetches, run_hlo
from repro.hlo.prefetcher import (
    INDIRECT_DISTANCE_CAP,
    SYMBOLIC_STRIDE_DISTANCE_CAP,
    apply_prefetch_plan,
)
from repro.ir import LoopBuilder
from repro.ir.memref import AccessPattern, LatencyHint
from repro.workloads.loops import (
    gather,
    low_trip_linear,
    pointer_chase,
    stencil_fp,
    stream_int,
    symbolic_stride,
)


def _cfg(**kw):
    return CompilerConfig(hint_policy=HintPolicy.HLO_ONLY, **kw)


class TestLocality:
    def test_stencil_taps_share_leader(self, machine):
        loop, _ = stencil_fp("s", taps=3)
        leaders = leading_references(loop)
        tap_refs = [i.memref for i in loop.loads]
        leader_uids = {leaders[r.uid].uid for r in tap_refs}
        assert len(leader_uids) == 1

    def test_distinct_spaces_distinct_leaders(self, machine):
        loop, _ = stream_int("s", streams=3)
        leaders = leading_references(loop)
        loads = [i.memref for i in loop.loads]
        assert len({leaders[r.uid].uid for r in loads}) == 3


class TestDistanceComputation:
    def test_optimal_distance_formula(self, machine):
        loop, _ = stream_int("s", streams=1)
        loop.trip_count.estimate = 10_000.0
        cfg = _cfg()
        plan = plan_prefetches(loop, machine, cfg)
        decision = plan.decision_for(loop.loads[0].memref)
        ii_est = machine.resources.resource_ii(loop.body)
        assert decision.optimal_distance == math.ceil(
            cfg.prefetch_target_latency / ii_est
        )
        assert decision.emitted

    def test_trip_count_clipping(self, machine):
        """At least half of the prefetches must be useful (Sec. 3.2)."""
        loop, _ = stream_int("s", streams=1)
        loop.trip_count.estimate = 40.0
        plan = plan_prefetches(loop, machine, _cfg())
        decision = plan.decision_for(loop.loads[0].memref)
        assert decision.distance <= 20
        assert decision.reduced == "tripcount"

    def test_outer_contiguity_unclips(self, machine):
        loop, _ = stream_int("s", streams=1)
        loop.trip_count.estimate = 40.0
        loop.trip_count.contiguous_across_outer = True
        plan = plan_prefetches(loop, machine, _cfg())
        decision = plan.decision_for(loop.loads[0].memref)
        assert decision.distance == decision.optimal_distance


class TestMarkingRules:
    def test_rule1_unprefetchable(self, machine):
        loop, _ = pointer_chase("m")
        plan = plan_prefetches(loop, machine, _cfg())
        for load in loop.loads:
            assert not plan.decision_for(load.memref).emitted
            assert plan.hint_candidates[load.memref.uid] is LatencyHint.L2

    def test_rule1_fp_gets_l3(self, machine):
        b = LoopBuilder()
        p = b.live_greg("p")
        ref = b.memref("x", pattern=AccessPattern.POINTER_CHASE, size=8,
                       is_fp=True)
        b.load("ldfd", p, ref)
        q = b.load_into("ld8", p, p,
                        b.memref("n", pattern=AccessPattern.POINTER_CHASE,
                                 size=8, space="n"))
        loop = b.build("fpchase")
        plan = plan_prefetches(loop, machine, _cfg())
        assert plan.hint_candidates[ref.uid] is LatencyHint.L3

    def test_rule2a_symbolic_stride(self, machine):
        loop, _ = symbolic_stride("s")
        loop.trip_count.estimate = 10_000.0
        plan = plan_prefetches(loop, machine, _cfg())
        ref = loop.loads[0].memref
        decision = plan.decision_for(ref)
        assert decision.emitted
        assert decision.distance <= SYMBOLIC_STRIDE_DISTANCE_CAP
        assert decision.reduced == "symbolic"
        assert plan.hint_candidates[ref.uid] is LatencyHint.L3  # FP load

    def test_rule2b_indirect(self, machine):
        loop, _ = gather("g")
        loop.trip_count.estimate = 10_000.0
        plan = plan_prefetches(loop, machine, _cfg())
        data_ref = next(
            i.memref for i in loop.loads
            if i.memref.pattern is AccessPattern.INDIRECT
        )
        idx_ref = next(
            i.memref for i in loop.loads
            if i.memref.pattern is AccessPattern.AFFINE
        )
        d_data = plan.decision_for(data_ref)
        d_idx = plan.decision_for(idx_ref)
        assert d_data.distance <= INDIRECT_DISTANCE_CAP
        assert d_data.distance < d_idx.distance
        assert data_ref.uid in plan.hint_candidates
        assert idx_ref.uid not in plan.hint_candidates

    def test_rule3_ozq_pressure(self, machine):
        loop, _ = stream_int("s", streams=6)
        loop.trip_count.estimate = 10_000.0
        plan = plan_prefetches(loop, machine, _cfg())
        for load in loop.loads:
            decision = plan.decision_for(load.memref)
            assert decision.l2_only
            assert plan.hint_candidates[load.memref.uid] is LatencyHint.L2

    def test_few_streams_no_rule3(self, machine):
        loop, _ = stream_int("s", streams=2)
        loop.trip_count.estimate = 10_000.0
        plan = plan_prefetches(loop, machine, _cfg())
        for load in loop.loads:
            assert not plan.decision_for(load.memref).l2_only

    def test_invariant_never_marked(self, machine):
        b = LoopBuilder()
        ref = b.memref("k", pattern=AccessPattern.INVARIANT)
        x = b.load("ld4", b.live_greg("p"), ref)
        b.alu_imm("adds", x, 1)
        loop = b.build("inv")
        plan = plan_prefetches(loop, machine, _cfg())
        assert ref.uid not in plan.hint_candidates
        assert not plan.decision_for(ref).emitted


class TestPlanApplication:
    def test_lfetch_emitted(self, machine):
        loop, _ = stream_int("s", streams=1)
        loop.trip_count.estimate = 10_000.0
        plan = plan_prefetches(loop, machine, _cfg())
        inserted = apply_prefetch_plan(loop, plan)
        assert inserted and all(i.is_prefetch for i in inserted)
        assert loop.loads[0].memref.prefetched
        assert loop.loads[0].memref.prefetch_distance > 0

    def test_prefetch_disabled(self, machine):
        loop, _ = stream_int("s", streams=1)
        cfg = _cfg(prefetch=False)
        run_hlo(loop, machine, cfg)
        assert not loop.prefetches
        assert not loop.loads[0].memref.prefetched
        # rule 1 applies: not prefetched at all -> marked
        assert loop.loads[0].memref.hint is LatencyHint.L2
