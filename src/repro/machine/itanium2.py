"""The Itanium-2-class machine description.

Bundles the resource model, the latency tables, and — most importantly —
the latency-query interface of Sec. 3.3: "the pipeliner queries the machine
model component of the code generator to obtain the latencies of
instructions.  For loads, an additional parameter is provided with the
query that specifies whether the machine model should return the minimum
(base) latency of the load, or a (possibly higher) expected latency value
specified by HLO hints."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction
from repro.ir.memref import LatencyHint
from repro.ir.registers import Reg, RegClass, RegisterFile, itanium_register_files
from repro.machine.hints import HintTranslation, TYPICAL_TRANSLATION
from repro.machine.resources import ResourceModel


@dataclass(frozen=True)
class MemoryTimings:
    """Best-case load-to-use latencies of the memory hierarchy (Sec. 2).

    "On the Dual-Core Itanium 2 processor, the best-case delays until
    integer loads return data range from 1, 5, 14, and more than a hundred
    cycles depending on whether the data is found in the L1D, L2D, L3
    caches, and the main memory."
    """

    l1: int = 1
    l2: int = 5
    l3: int = 14
    memory: int = 180
    #: extra cycle for FP format conversion
    fp_extra: int = 1

    def latency_of_level(self, level: int, is_fp: bool = False) -> int:
        table = {1: self.l1, 2: self.l2, 3: self.l3, 4: self.memory}
        return table[level] + (self.fp_extra if is_fp else 0)


@dataclass(frozen=True)
class ItaniumMachine:
    """Everything the compiler and the simulator know about the target."""

    resources: ResourceModel = field(default_factory=ResourceModel)
    timings: MemoryTimings = field(default_factory=MemoryTimings)
    translation: HintTranslation = TYPICAL_TRANSLATION
    register_files: dict[RegClass, RegisterFile] = field(
        default_factory=itanium_register_files
    )
    #: outstanding memory requests the OzQ sustains without stalling
    #: ("At least 48 outstanding requests can be active throughout the
    #: memory hierarchy without stalling the execution pipeline", Sec. 2)
    ozq_capacity: int = 48

    # --- latency queries ---------------------------------------------------
    def base_latency(self, inst: Instruction) -> int:
        """Minimum (base) result latency of ``inst``."""
        return inst.opcode.latency

    def expected_load_latency(self, inst: Instruction) -> int:
        """Hint-derived expected latency of a load (Sec. 3.3)."""
        base = inst.opcode.latency
        if not inst.is_load or inst.memref is None:
            return base
        return self.translation.scheduling_latency(
            inst.memref.hint, inst.is_fp, base
        )

    def flow_latency(
        self, inst: Instruction, reg: Reg | None, expected: bool
    ) -> int:
        """Latency of the value ``inst`` produces in ``reg``.

        The post-incremented address register of a memory operation is an
        ALU-style result available after one cycle; only the *data* result
        of a load carries the memory latency.
        """
        if inst.is_memory and reg is not None and reg not in inst.defs:
            return 1  # post-increment address result
        if inst.is_load:
            if expected:
                return self.expected_load_latency(inst)
            return self.base_latency(inst)
        return max(1, self.base_latency(inst))

    @property
    def latency_query(self):
        """The query callable consumed by the DDG layer."""
        return self.flow_latency

    def with_translation(self, translation: HintTranslation) -> "ItaniumMachine":
        """A copy of this machine using a different hint translation."""
        return ItaniumMachine(
            resources=self.resources,
            timings=self.timings,
            translation=translation,
            register_files=self.register_files,
            ozq_capacity=self.ozq_capacity,
        )

    def with_ozq_capacity(self, capacity: int) -> "ItaniumMachine":
        """A copy with a different OzQ depth (for MLP ablations)."""
        return ItaniumMachine(
            resources=self.resources,
            timings=self.timings,
            translation=self.translation,
            register_files=self.register_files,
            ozq_capacity=capacity,
        )

    def rotating_capacity(self, rclass: RegClass) -> int:
        return self.register_files[rclass].rotating_size
