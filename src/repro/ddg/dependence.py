"""Affine dependence testing for same-space memory references.

For two references ``A`` (offset ``a``, stride ``s``) and ``B`` (offset
``b``, stride ``s``) into the same space, iteration instances collide when
``a + s·i == b + s·j`` — a *distance* of ``(a − b)/s`` iterations.  The
classic tests:

* different strides or non-integral distance → independent (GCD test);
* distance 0 → the pair touches the same address in the same iteration
  (ordering within the body suffices);
* positive distance d → a loop-carried dependence with ``omega = d``.

Overlap through distinct element accesses of the same cache line does not
constitute a *data* dependence, so line size plays no role here.  The DDG
builder uses these verdicts for affine pairs and keeps its conservative
treatment for everything it cannot analyse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir.memref import AccessPattern, MemRef


class DependenceVerdict(enum.Enum):
    """Outcome of a dependence test between two references."""

    INDEPENDENT = "independent"
    #: same address every iteration pair at the given distance
    DISTANCE = "distance"
    #: cannot be analysed: assume the worst
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class DependenceResult:
    verdict: DependenceVerdict
    #: iteration distance for DISTANCE verdicts (0 = intra-iteration)
    distance: int = 0

    @property
    def independent(self) -> bool:
        return self.verdict is DependenceVerdict.INDEPENDENT


_ANALYSABLE = (AccessPattern.AFFINE,)


def test_dependence(a: MemRef, b: MemRef) -> DependenceResult:
    """Dependence test for two references of the same space.

    Returns the signed distance *from a to b*: a positive distance ``d``
    means instance ``i`` of ``a`` touches the address instance ``i + d``
    of ``b`` touches (so a value stored by ``a`` is observed ``d``
    iterations later by ``b``).
    """
    if a.space != b.space:
        return DependenceResult(DependenceVerdict.INDEPENDENT)
    if a.pattern not in _ANALYSABLE or b.pattern not in _ANALYSABLE:
        return DependenceResult(DependenceVerdict.UNKNOWN)

    stride_a = a.stride or 0
    stride_b = b.stride or 0
    if stride_a != stride_b:
        # different strides: instances interleave; without bounds we must
        # stay conservative unless the strides can never produce overlap
        return _different_stride_test(a, b)
    if stride_a == 0:
        # two invariant-addressed affine refs: same address iff offsets match
        if a.offset == b.offset:
            return DependenceResult(DependenceVerdict.DISTANCE, 0)
        return DependenceResult(DependenceVerdict.INDEPENDENT)

    delta = a.offset - b.offset
    if delta % stride_a != 0:
        # the GCD test: offsets differ by a non-multiple of the stride,
        # the access sequences never meet
        return DependenceResult(DependenceVerdict.INDEPENDENT)
    return DependenceResult(DependenceVerdict.DISTANCE, delta // stride_a)


def _different_stride_test(a: MemRef, b: MemRef) -> DependenceResult:
    """GCD test for differing strides: ``a + s_a·i = b + s_b·j`` has
    integer solutions iff ``gcd(s_a, s_b)`` divides ``b − a``."""
    import math

    stride_a = a.stride or 0
    stride_b = b.stride or 0
    g = math.gcd(abs(stride_a), abs(stride_b))
    if g and (b.offset - a.offset) % g != 0:
        return DependenceResult(DependenceVerdict.INDEPENDENT)
    return DependenceResult(DependenceVerdict.UNKNOWN)
