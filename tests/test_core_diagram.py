"""Tests for the Fig. 2 / Fig. 4 pipeline diagrams."""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.core.diagram import pipeline_diagram, stage_table
from repro.ir.memref import LatencyHint
from repro.machine.hints import HintTranslation
from repro.pipeliner import pipeline_loop


class TestFig2Diagram:
    def test_baseline_diagram_shape(self, running_example, machine):
        """Fig. 2: three instructions from three successive source
        iterations execute in each steady-state cycle."""
        result = pipeline_loop(running_example, machine, baseline_config())
        text = pipeline_diagram(result.schedule, iterations=5)
        lines = text.splitlines()
        assert lines[0].startswith("Cycle |")
        # cycle 2 (steady state) holds st4, add, ld4 across three columns
        steady = lines[2 + 2]
        assert "st4" in steady and "add" in steady and "ld4" in steady
        # cycle 0 holds only the first load
        first = lines[2]
        assert first.count("ld4") == 1 and "add" not in first

    def test_fig4_latency_buffer_gap(self, running_example, machine):
        """Fig. 4: with a three-cycle load latency the add trails its
        load by three cycles — two empty buffer rows in the column."""
        machine3 = machine.with_translation(HintTranslation(name="d2", l2=3))
        running_example.body[0].memref.hint = LatencyHint.L2
        result = pipeline_loop(
            running_example, machine3, CompilerConfig(trip_count_threshold=0)
        )
        text = pipeline_diagram(result.schedule, iterations=5)
        header, _, *lines = text.splitlines()
        cells = header.split("|", 1)[1]
        width = cells.index("2") - cells.index("1")

        # column 1: ld4 at cycle 0, add at cycle 3 (paper's Fig. 4 layout)
        def col1(line):
            return line.split("|", 1)[1][:width]

        assert "ld4" in col1(lines[0])
        assert col1(lines[1]).strip() == ""
        assert col1(lines[2]).strip() == ""
        assert "add" in col1(lines[3])

    def test_cycle_cap(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        text = pipeline_diagram(result.schedule, iterations=8, max_cycles=4)
        assert len(text.splitlines()) == 2 + 4


class TestStageTable:
    def test_baseline_stages(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        text = stage_table(result.schedule)
        assert "3 stages at II=1" in text
        assert "stage 0: ld4" in text
        assert "stage 2: st4" in text

    def test_latency_buffer_stages_shown(self, running_example, machine):
        machine3 = machine.with_translation(HintTranslation(name="d2", l2=3))
        running_example.body[0].memref.hint = LatencyHint.L2
        result = pipeline_loop(
            running_example, machine3, CompilerConfig(trip_count_threshold=0)
        )
        text = stage_table(result.schedule)
        assert "5 stages" in text
        assert text.count("(latency buffer)") == 2
