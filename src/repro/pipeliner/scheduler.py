"""Iterative modulo scheduling (Rau, MICRO-27).

Operation-driven scheduling with eviction: operations are taken in
height-priority order; each gets the earliest slot in a window of II cycles
starting at its dependence-earliest time.  When no slot fits, the operation
is *forced* into place, displacing the resource conflicts and any
successors whose dependence constraints break; a budget bounds the total
number of placements so an infeasible II fails finitely.

The latency-tolerant twist enters purely through the latency policy: the
scheduler resolves edge latencies through the machine-model query with the
per-load critical/non-critical decision (Sec. 3.3), so boosted loads
naturally get larger load-use distances while everything else is packed
as usual.
"""

from __future__ import annotations

from repro.ddg.graph import DDG
from repro.ddg.slack import modulo_heights
from repro.errors import DependenceError
from repro.ir.instructions import Instruction
from repro.ir.opcodes import UnitClass
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.criticality import Criticality
from repro.pipeliner.mrt import ModuloReservationTable
from repro.pipeliner.schedule import Schedule


def _blocking_occupants(
    mrt: ModuloReservationTable, inst: Instruction, time: int
) -> list[Instruction]:
    """Occupants of the target row whose eviction could admit ``inst``."""
    row = time % mrt.ii
    occupants = mrt.occupants_of_row(row)
    if not occupants:
        return []
    row_state = mrt._rows[row]
    if row_state.issue >= mrt.resources.issue_width:
        return occupants
    wanted = set(mrt._unit_choices(inst))
    if not wanted:
        return occupants
    return [o for o in occupants if mrt._placed[o][1] in wanted]


def modulo_schedule(
    ddg: DDG,
    machine: ItaniumMachine,
    ii: int,
    criticality: Criticality,
    budget_ratio: int = 10,
) -> Schedule | None:
    """Attempt to schedule ``ddg`` at initiation interval ``ii``.

    Returns ``None`` when the II is infeasible (below the recurrence bound
    for the chosen latency policy, or the placement budget is exhausted).
    """
    query = machine.latency_query
    expected = criticality.expected_fn
    try:
        heights = modulo_heights(ddg, ii, query, expected)
    except DependenceError:
        return None

    order = sorted(ddg.nodes, key=lambda i: (-heights[i], i.index))
    priority = {inst: pos for pos, inst in enumerate(order)}

    mrt = ModuloReservationTable(ii, machine.resources)
    times: dict[Instruction, int] = {}
    prev_time: dict[Instruction, int] = {}
    unscheduled: set[Instruction] = set(ddg.nodes)
    budget = max(budget_ratio * len(ddg.nodes), 32)
    attempts = 0

    def unschedule(inst: Instruction) -> None:
        mrt.remove(inst)
        del times[inst]
        unscheduled.add(inst)

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        attempts += 1
        op = min(unscheduled, key=lambda i: priority[i])

        estart = 0
        for edge in ddg.preds(op):
            src = edge.src
            if src is op or src not in times:
                continue
            lat = edge.latency(query, expected(edge))
            estart = max(estart, times[src] + lat - ii * edge.omega)

        min_time = estart
        if op in prev_time:
            min_time = max(estart, prev_time[op] + 1)

        chosen = None
        for t in range(min_time, estart + ii):
            if mrt.fits(op, t):
                chosen = t
                break
        if chosen is None:
            chosen = min_time
            # force: displace the lowest-priority resource conflicts
            while not mrt.fits(op, chosen):
                victims = _blocking_occupants(mrt, op, chosen)
                if not victims:  # pragma: no cover - defensive
                    return None
                victim = max(victims, key=lambda i: priority[i])
                unschedule(victim)

        mrt.place(op, chosen)
        times[op] = chosen
        prev_time[op] = chosen
        unscheduled.discard(op)

        # displace successors whose dependence constraints now break
        for edge in ddg.succs(op):
            dst = edge.dst
            if dst is op or dst not in times:
                continue
            lat = edge.latency(query, expected(edge))
            if times[dst] < chosen + lat - ii * edge.omega:
                unschedule(dst)

    schedule = Schedule(
        ddg=ddg,
        ii=ii,
        times=dict(times),
        machine=machine,
        criticality=criticality,
        attempts=attempts,
    )
    schedule.verify()
    return schedule


def list_schedule(
    ddg: DDG, machine: ItaniumMachine
) -> dict[Instruction, int]:
    """Greedy acyclic list schedule of one iteration (base latencies).

    Used for loops that are not pipelined (the acyclic global scheduler of
    Sec. 3.3) and as the II cap beyond which pipelining is pointless.
    Loop-carried edges are ignored except that the next iteration starts
    only after the current one's schedule completes.
    """
    query = machine.latency_query
    times: dict[Instruction, int] = {}
    # per-cycle resource usage (list grows on demand)
    usage: list[dict[UnitClass, int]] = []
    issue: list[int] = []

    def fits(inst: Instruction, t: int) -> bool:
        while len(usage) <= t:
            usage.append({u: 0 for u in machine.resources.capacities})
            issue.append(0)
        if issue[t] >= machine.resources.issue_width:
            return False
        unit = inst.opcode.unit
        if unit is UnitClass.NONE:
            return True
        choices = (
            (UnitClass.I, UnitClass.M) if unit is UnitClass.A else (unit,)
        )
        return any(
            usage[t][u] < machine.resources.capacities[u] for u in choices
        )

    def place(inst: Instruction, t: int) -> None:
        unit = inst.opcode.unit
        choices = (
            (UnitClass.I, UnitClass.M) if unit is UnitClass.A else (unit,)
        )
        if unit is not UnitClass.NONE:
            for u in choices:
                if usage[t][u] < machine.resources.capacities[u]:
                    usage[t][u] += 1
                    break
        issue[t] += 1

    for inst in ddg.nodes:  # body order is topological for omega-0 edges
        ready = 0
        for edge in ddg.preds(inst):
            if edge.omega or edge.src not in times:
                continue
            lat = edge.latency(query, False)
            ready = max(ready, times[edge.src] + lat)
        t = ready
        while not fits(inst, t):
            t += 1
        place(inst, t)
        times[inst] = t
    return times


def list_schedule_length(ddg: DDG, machine: ItaniumMachine) -> int:
    """Cycles per iteration of the non-pipelined (list-scheduled) loop.

    The loop-carried flow results must be ready before the next iteration
    starts, so the iteration length covers producer latencies of carried
    values; the loop branch adds the final cycle.
    """
    times = list_schedule(ddg, machine)
    if not times:
        return 1
    query = machine.latency_query
    end = max(times.values()) + 1
    for edge in ddg.edges:
        if edge.omega:
            lat = edge.latency(query, False)
            end = max(end, times[edge.src] + lat)
    return end
