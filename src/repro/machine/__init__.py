"""Machine model: execution resources and the latency-query interface.

The pipeliner never hardcodes latencies; it queries the machine model and
passes a flag saying whether it wants the *minimum (base)* latency of a
load or the *expected* latency derived from the HLO hint token — exactly
the interface described in Sec. 3.3 of the paper.

Machines are declarative: :class:`MachineDescription` captures the issue
template, latency tables, hierarchy geometry, queue discipline, and
scoreboard policy; the named registry (``machine_names`` /
``machine_description`` / ``build_machine``) resolves ``itanium2``,
``ldt-core``, and ``slsq-core`` by name everywhere a machine can be
chosen (CLI ``--machine``, harness jobs, service requests).
"""

from repro.machine.resources import ResourceModel, UNIT_CAPACITIES
from repro.machine.hints import HintTranslation, TYPICAL_TRANSLATION, BEST_CASE_TRANSLATION
from repro.machine.description import (
    BankGeometry,
    CacheLevel,
    MachineDescription,
    MemoryTimings,
    QueueDiscipline,
    ScoreboardPolicy,
    TlbGeometry,
    machine_description,
    machine_names,
    register_machine,
)
from repro.machine.itanium2 import ItaniumMachine, Machine, build_machine

__all__ = [
    "ResourceModel",
    "UNIT_CAPACITIES",
    "HintTranslation",
    "TYPICAL_TRANSLATION",
    "BEST_CASE_TRANSLATION",
    "ItaniumMachine",
    "Machine",
    "MemoryTimings",
    "MachineDescription",
    "CacheLevel",
    "TlbGeometry",
    "BankGeometry",
    "QueueDiscipline",
    "ScoreboardPolicy",
    "build_machine",
    "machine_description",
    "machine_names",
    "register_machine",
]
