"""Translation-validate the whole workload suite across the paper's grid.

Every hot loop of every shipped benchmark, compiled under the Fig. 7
threshold sweep (ALL_LOADS_L3 at n = 0..64) and the Fig. 8 policy sweep
(baseline / FP-L2 / HLO), must come out of the compiler with zero
error-severity findings from ``repro.analysis``.  This is the
tier-1 guarantee that the numbers the benches report are derived from
schedules, kernels and allocations that actually satisfy the paper's
invariants — not just from code paths the unit tests happen to cover.
"""

import pytest

from repro.analysis import verify_compiled
from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core.compiler import LoopCompiler
from repro.harness.jobs import collect_profile
from repro.machine import ItaniumMachine
from repro.workloads import suite_by_name

SEED = 2008

#: Fig. 7: the trip-count threshold sweep under blanket L3 hints.
FIG7_CONFIGS = [
    CompilerConfig(
        hint_policy=HintPolicy.ALL_LOADS_L3,
        trip_count_threshold=n,
        name=f"l3-n{n}",
    )
    for n in (0, 8, 32, 64)
]

#: Fig. 8: the hint-policy comparison at the default threshold.
FIG8_CONFIGS = [
    baseline_config(),
    CompilerConfig(hint_policy=HintPolicy.ALL_FP_L2, name="fp-l2"),
    CompilerConfig(hint_policy=HintPolicy.HLO, name="hlo"),
]

CONFIGS = FIG7_CONFIGS + FIG8_CONFIGS
SUITES = ("micro", "cpu2000", "cpu2006")


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label)
@pytest.mark.parametrize("suite", SUITES)
def test_suite_verifies_clean(suite, config):
    compiler = LoopCompiler(ItaniumMachine(), config)
    failures = []
    for bench in suite_by_name(suite):
        profile = collect_profile(bench, SEED) if config.pgo else None
        for lw in bench.loops:
            loop, _ = lw.build()
            report = verify_compiled(compiler.compile(loop, profile))
            if report.errors:
                failures.append(
                    f"{bench.name}/{loop.name}:\n{report.render_text()}"
                )
    assert not failures, "\n\n".join(failures)


def test_grid_covers_both_figures():
    """The grid really sweeps Fig. 7 thresholds and Fig. 8 policies."""
    thresholds = {
        c.trip_count_threshold
        for c in CONFIGS
        if c.hint_policy is HintPolicy.ALL_LOADS_L3
    }
    assert thresholds == {0, 8, 32, 64}
    policies = {c.hint_policy for c in CONFIGS}
    assert {
        HintPolicy.BASELINE,
        HintPolicy.ALL_LOADS_L3,
        HintPolicy.ALL_FP_L2,
        HintPolicy.HLO,
    } <= policies
