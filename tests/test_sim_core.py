"""Tests for the in-order core executor.

The crown jewel is the cross-check against the paper's Sec. 2.1 theory: on
the running example with a constant runtime load latency, the measured
stall cycles must match ``n * (L - d) / k`` and the measured stall
*reduction* must match Equ. (2).
"""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.core.theory import stall_reduction_percent
from repro.ir import parse_loop
from repro.ir.memref import LatencyHint
from repro.machine.hints import HintTranslation
from repro.pipeliner import pipeline_loop
from repro.sim import prepare_execution, run_iterations
from repro.sim.address import StreamSpec, build_streams
from repro.sim.counters import PerfCounters
from repro.sim.memory import AccessResult, MemorySystem
from tests.conftest import RUNNING_EXAMPLE


class FixedLatencyMemory(MemorySystem):
    """Every load takes exactly ``latency`` cycles; stores are free."""

    def __init__(self, latency: float) -> None:
        super().__init__(bank_conflicts=False)
        self.fixed = float(latency)

    def load(self, addr, now, is_fp=False):
        return AccessResult(self.fixed, 3, True)

    def store(self, addr, now, is_fp=False):
        return AccessResult(1.0, 2, False)

    def prefetch(self, addr, now, l2_only=False, is_fp=False):
        return AccessResult(0.0, 1, False)


LAYOUT = {
    "a": StreamSpec(size=1 << 20, reuse=False),
    "b": StreamSpec(size=1 << 20, reuse=False),
}


def _run(machine, d_extra, runtime_latency, n=400, ozq=48):
    """Compile the running example with a scheduled distance of
    ``1 + d_extra`` and execute it at a fixed runtime latency."""
    loop = parse_loop(RUNNING_EXAMPLE)
    if d_extra > 0:
        loop.body[0].memref.hint = LatencyHint.L2
        m = machine.with_translation(
            HintTranslation(name="x", l2=1 + d_extra, max_scheduled=100)
        )
        cfg = CompilerConfig(trip_count_threshold=0, prefetch=False)
    else:
        m = machine
        cfg = baseline_config()
    result = pipeline_loop(loop, m, cfg)
    assert result.pipelined and result.ii == 1
    setup = prepare_execution(result, m)
    streams = build_streams(loop, LAYOUT, n)
    counters = PerfCounters()
    memory = FixedLatencyMemory(runtime_latency)
    run_iterations(setup, streams, 0, n, memory, ozq, counters)
    return result, counters


class TestStallOnUse:
    """Cross-checks against Sec. 2.1.

    The paper's clustering factor k = d//II + 1 (Equ. 3) is a *guaranteed
    minimum* ("Doing so will guarantee clustering of k successive
    instances"): a load issued in the same cycle as the stalling use has
    already been dispatched, so the effective clustering factor of the
    executed schedule is ``use_distance//II + 1 = k + base//II`` — one more
    than the paper's conservative count (hand-simulating the paper's own
    Fig. 4 confirms: the 11-cycle stall recurs every *four* iterations).
    The simulator matches the exact model; Equ. (2) holds with k_eff.
    """

    @staticmethod
    def _k_eff(result):
        placement = result.stats.placements[0]
        return placement.use_distance // result.ii + 1

    def test_baseline_stall_per_iteration(self, machine):
        """d=0, use distance 1: one load already in flight -> every other
        use stalls L cycles (k_eff = 2)."""
        n, latency = 400, 14
        result, counters = _run(machine, 0, latency, n=n)
        expected = n * (latency - 1) / self._k_eff(result)
        assert counters.be_exe_bubble == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize("d", [2, 5, 9, 13])
    def test_section21_formula(self, machine, d):
        """Measured stalls = n (L - d) / k_eff (Sec. 2.1, exact form)."""
        n, latency = 400, 14
        L = latency - 1
        result, counters = _run(machine, d, latency, n=n)
        expected = n * max(0, L - d) / self._k_eff(result)
        assert counters.be_exe_bubble == pytest.approx(expected, rel=0.05)

    def test_paper_k_is_a_lower_bound(self, machine):
        """Equ. (3) guarantees *at least* k clustered instances."""
        result, _ = _run(machine, 2, 14, n=50)
        placement = result.stats.placements[0]
        paper_k = placement.clustering_factor(result.ii)
        assert self._k_eff(result) >= paper_k

    def test_equation2_stall_reduction(self, machine):
        """End-to-end validation of Equ. (2) with the effective k."""
        n, latency = 600, 14
        L = latency - 1
        base_result, base = _run(machine, 0, latency, n=n)
        k0 = self._k_eff(base_result)
        for d in (2, 6):
            result, boosted = _run(machine, d, latency, n=n)
            k = self._k_eff(result)
            measured = 100.0 * (1 - boosted.be_exe_bubble / base.be_exe_bubble)
            # both sides normalised by the baseline's own clustering
            predicted = 100.0 * (1 - ((L - d) / k) / (L / k0))
            assert measured == pytest.approx(predicted, abs=2.0)

    def test_full_coverage_removes_stalls(self, machine):
        _, counters = _run(machine, 13, 14, n=300)
        assert counters.be_exe_bubble == pytest.approx(0.0, abs=20)

    def test_unstalled_counts_kernel_issue(self, machine):
        n = 100
        result, counters = _run(machine, 0, 14, n=n)
        kernel_iters = n + result.stats.stage_count - 1
        assert counters.unstalled == kernel_iters * result.ii
        assert counters.kernel_iterations == kernel_iters
        assert counters.source_iterations == n


class TestOzQ:
    def test_ozq_capacity_one_serialises(self, machine):
        """With a single outstanding request, memory-level parallelism is
        gone and total stalls grow accordingly (the MLP ablation)."""
        _, wide = _run(machine, 9, 100, n=200, ozq=48)
        _, narrow = _run(machine, 9, 100, n=200, ozq=1)
        assert narrow.be_l1d_fpu_bubble > 0
        total_wide = wide.be_exe_bubble + wide.be_l1d_fpu_bubble
        total_narrow = narrow.be_exe_bubble + narrow.be_l1d_fpu_bubble
        assert total_narrow > total_wide * 1.5

    def test_ozq_full_cycles_tracked(self, machine):
        """ozq_full_cycles integrates the wall-time the queue sits at
        capacity (the L2D_OZQ_FULL semantics), which bounds the stall
        time demand accesses spend waiting on it from above."""
        _, narrow = _run(machine, 9, 100, n=200, ozq=1)
        assert narrow.ozq_full_cycles > 0
        assert narrow.ozq_full_cycles >= narrow.be_l1d_fpu_bubble * 0.9


class TestStallAttribution:
    def test_stalls_attributed_to_consumer(self, machine):
        _, counters = _run(machine, 0, 14, n=100)
        assert counters.stall_by_consumer
        (key, cycles), = [
            (k, v) for k, v in counters.stall_by_consumer.items() if v > 0
        ]
        assert ":add" in key
        assert cycles == pytest.approx(counters.be_exe_bubble)


class TestCountersPlumbing:
    def test_merge_and_scaled(self):
        a = PerfCounters(unstalled=10, be_exe_bubble=5)
        a.record_load_level(2)
        b = PerfCounters(unstalled=1, be_exe_bubble=2)
        b.record_load_level(2)
        b.attribute_stall("x", 3.0)
        a.merge(b)
        assert a.unstalled == 11
        assert a.loads_by_level[2] == 2
        assert a.stall_by_consumer["x"] == 3.0
        half = a.scaled(0.5)
        assert half.unstalled == 5.5
        assert half.total_cycles == pytest.approx(a.total_cycles / 2)

    def test_summary_text(self):
        c = PerfCounters(unstalled=50, be_exe_bubble=50)
        text = c.summary()
        assert "unstalled=50 (50.0%)" in text
