"""Kernel code generation: rotation renaming and stage predicates.

Produces the rotating-register form of the pipelined loop, e.g. the
paper's Fig. 6 for the running example scheduled with two extra latency
buffer stages::

    L1:
      (p16) ld4 r32 = [r5],4
      (p19) add r36 = r35,r9
      (p20) st4 [r6] = r37,4
      br.ctop L1 ;;

Each operation at stage ``s`` is guarded by stage predicate ``p16+s``; a
use of a value defined ``rot`` kernel iterations earlier reads the
definition's rotating register shifted by ``rot`` (register rotation
renames ``X`` into ``X+1`` on every back edge, Sec. 1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ddg.edges import DepKind
from repro.ir.instructions import Instruction
from repro.ir.registers import Reg, RegClass, ROTATING_PR_BASE
from repro.pipeliner.schedule import Schedule
from repro.regalloc.rotating import RotatingAllocation


@dataclass(frozen=True)
class KernelOp:
    """One operation of the kernel, after renaming."""

    inst: Instruction
    row: int
    stage: int
    stage_pred: int
    #: physical register numbers as written/read in the kernel text
    phys_defs: tuple[tuple[Reg, int], ...]
    phys_uses: tuple[tuple[Reg, int], ...]

    def format(self) -> str:
        ren: dict[Reg, int] = dict(self.phys_defs) | dict(self.phys_uses)

        def name(reg: Reg) -> str:
            if reg in ren:
                return f"{reg.rclass.value}{ren[reg]}"
            return str(reg)

        op = self.inst.opcode
        body: str
        if op.is_load or op.is_prefetch:
            addr = name(self.inst.uses[0])
            mem = f"[{addr}]"
            if self.inst.post_increment is not None:
                mem += f",{self.inst.post_increment}"
            if op.is_prefetch:
                body = f"{op.mnemonic} {mem}"
            else:
                body = f"{op.mnemonic} {name(self.inst.defs[0])} = {mem}"
        elif op.is_store:
            addr = name(self.inst.uses[0])
            value = name(self.inst.uses[1])
            rhs = value
            if self.inst.post_increment is not None:
                rhs += f",{self.inst.post_increment}"
            body = f"{op.mnemonic} [{addr}] = {rhs}"
        else:
            srcs = [name(u) for u in self.inst.uses]
            if self.inst.imm is not None:
                srcs.append(str(self.inst.imm))
            dests = ", ".join(name(d) for d in self.inst.defs)
            body = f"{op.mnemonic} {dests} = {', '.join(srcs)}" if dests else (
                f"{op.mnemonic} {', '.join(srcs)}"
            )
        return f"(p{self.stage_pred}) {body}"


@dataclass
class Kernel:
    """The software-pipelined kernel loop."""

    loop_name: str
    ii: int
    stage_count: int
    #: ``br.ctop`` for counted loops; ``br.wtop`` for while loops, whose
    #: continuation predicate is computed inside the body (the pipeline
    #: fills speculatively, Muthukumar et al. [18])
    branch: str = "br.ctop"
    ops: list[KernelOp] = field(default_factory=list)

    def rows(self) -> list[list[KernelOp]]:
        by_row: list[list[KernelOp]] = [[] for _ in range(self.ii)]
        for op in self.ops:
            by_row[op.row].append(op)
        return by_row

    def total_kernel_iterations(self, trips: int) -> int:
        """Kernel iterations for ``trips`` source iterations (fill+drain).

        "the kernel loop needs an additional number of iterations to fill
        and drain the pipeline, and this number is exactly one less than
        the number of stages" (Sec. 1.1).
        """
        if trips <= 0:
            return 0
        return trips + self.stage_count - 1

    def format(self) -> str:
        lines = [f"{self.loop_name}:  // II={self.ii}, {self.stage_count} stages"]
        for row_no, row in enumerate(self.rows()):
            for op in sorted(row, key=lambda o: o.inst.index):
                lines.append(f"  {op.format():<44} // cycle {row_no}")
        lines.append(
            f"  {self.branch} " + self.loop_name + f" ;;  // cycle {self.ii - 1}"
        )
        return "\n".join(lines)


def generate_kernel(
    schedule: Schedule, allocation: RotatingAllocation
) -> Kernel:
    """Rename the scheduled loop into its rotating-register kernel form."""
    ddg = schedule.ddg
    ii = schedule.ii

    # for each (consumer, reg): rotation distance from the definition
    rotations: dict[tuple[int, Reg], int] = {}
    for edge in ddg.edges:
        if edge.kind is not DepKind.FLOW or edge.reg is None:
            continue
        if edge.reg not in allocation.blades:
            continue
        t_def = schedule.time_of(edge.src)
        t_use = schedule.time_of(edge.dst) + ii * edge.omega
        rot = t_use // ii - t_def // ii
        key = (edge.dst.index, edge.reg)
        rotations[key] = max(rotations.get(key, 0), rot)

    kernel = Kernel(
        loop_name=f"L_{schedule.loop.name}",
        ii=ii,
        stage_count=schedule.stage_count,
        branch="br.ctop" if schedule.loop.counted else "br.wtop",
    )
    for inst in schedule.loop.body:
        stage = schedule.stage_of(inst)
        phys_defs = tuple(
            (reg, allocation.physical_def(reg))
            for reg in inst.all_defs()
            if reg in allocation.blades
        )
        phys_uses = []
        for reg in inst.all_uses():
            if reg not in allocation.blades:
                continue  # live-in: stays in a static register
            rot = rotations.get((inst.index, reg), 0)
            phys_uses.append((reg, allocation.physical_use(reg, rot)))
        kernel.ops.append(
            KernelOp(
                inst=inst,
                row=schedule.row_of(inst),
                stage=stage,
                stage_pred=ROTATING_PR_BASE + stage,
                phys_defs=phys_defs,
                phys_uses=tuple(phys_uses),
            )
        )
    return kernel
