"""DDG construction from a loop body.

Register dependences
    For every use of a virtual register with a definition in the body we add
    a FLOW edge.  If the definition appears at the same body position or
    later, the use reads the *previous* iteration's value, so the edge is
    loop-carried (``omega = 1``).  This covers post-incremented address
    registers (``ld4 r4 = [r5], 4`` both reads and increments ``r5``) and
    accumulator recurrences (``fadd acc = acc, x``).

    Anti and output register dependences are omitted for virtual registers:
    register rotation renames every iteration's definition into a fresh
    rotating register, which is exactly why the Itanium pipeliner does not
    need them either (Sec. 1.1).

Memory dependences
    Two references may alias when they touch the same ``space``.  Pairs of
    affine references with compile-time strides are assumed analysable and
    independent *across* iterations (the usual outcome of data-dependence
    analysis for the loops we model), but keep their intra-iteration
    ordering edges.  Any pair involving a symbolically-strided, indirect,
    pointer-chasing or invariant reference gets conservative loop-carried
    edges as well.  Prefetches are hints and never constrain the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ddg.edges import DepEdge, DepKind
from repro.ir.instructions import Instruction
from repro.ir.loop import Loop
from repro.ir.memref import AccessPattern, MemRef


@dataclass
class DDG:
    """The dependence graph of one loop."""

    loop: Loop
    edges: list[DepEdge] = field(default_factory=list)
    _succs: dict[int, list[DepEdge]] = field(default_factory=dict)
    _preds: dict[int, list[DepEdge]] = field(default_factory=dict)

    @property
    def nodes(self) -> list[Instruction]:
        return self.loop.body

    def add_edge(self, edge: DepEdge) -> None:
        self.edges.append(edge)
        self._succs.setdefault(edge.src.index, []).append(edge)
        self._preds.setdefault(edge.dst.index, []).append(edge)

    def succs(self, inst: Instruction) -> list[DepEdge]:
        return self._succs.get(inst.index, [])

    def preds(self, inst: Instruction) -> list[DepEdge]:
        return self._preds.get(inst.index, [])

    def flow_preds(self, inst: Instruction) -> list[DepEdge]:
        return [e for e in self.preds(inst) if e.kind is DepKind.FLOW]

    def first_uses_of_load(self, load: Instruction) -> list[DepEdge]:
        """FLOW edges carrying the load's *data* result (not the post-inc)."""
        data_defs = set(load.defs)
        return [
            e
            for e in self.succs(load)
            if e.kind is DepKind.FLOW and e.reg in data_defs
        ]

    def __repr__(self) -> str:
        return f"DDG({self.loop.name}, {len(self.nodes)} nodes, {len(self.edges)} edges)"


def _affine_analysable(ref: MemRef) -> bool:
    return ref.pattern is AccessPattern.AFFINE and (ref.stride or 0) != 0


def _may_alias(a: MemRef, b: MemRef) -> bool:
    return a.space == b.space


def _memory_edge_kind(src: Instruction, dst: Instruction) -> DepKind | None:
    if src.is_store and dst.is_load:
        return DepKind.MEM_FLOW
    if src.is_load and dst.is_store:
        return DepKind.MEM_ANTI
    if src.is_store and dst.is_store:
        return DepKind.MEM_OUTPUT
    return None


def build_ddg(loop: Loop) -> DDG:
    """Construct the cyclic data-dependence graph of ``loop``."""
    ddg = DDG(loop)

    # one pass to map each virtual register to its unique defining site
    def_site: dict = {}
    for inst in loop.body:
        for reg in inst.all_defs():
            if reg.virtual:
                def_site[reg] = inst

    # register flow edges
    for inst in loop.body:
        for reg in inst.all_uses():
            producer = def_site.get(reg)
            if producer is None:
                continue  # live-in
            omega = 1 if producer.index >= inst.index else 0
            ddg.add_edge(DepEdge(producer, inst, DepKind.FLOW, omega, reg=reg))

    # memory ordering edges (prefetches excluded: they are hints)
    from repro.ddg.dependence import DependenceVerdict, test_dependence

    mem_ops = [i for i in loop.body if (i.is_load or i.is_store)]
    for a_pos, a in enumerate(mem_ops):
        for b in mem_ops[a_pos + 1 :]:
            if not (a.is_store or b.is_store):
                continue
            assert a.memref is not None and b.memref is not None
            if not _may_alias(a.memref, b.memref):
                continue
            if a.memref.space in loop.independent_spaces:
                continue

            result = test_dependence(a.memref, b.memref)
            if result.independent:
                continue
            if result.verdict is DependenceVerdict.DISTANCE:
                # exact distance from the affine test: A(i) touches the
                # address B(i + d) touches
                d = result.distance
                if d >= 0:
                    kind = _memory_edge_kind(a, b)
                    if kind is not None:
                        ddg.add_edge(DepEdge(a, b, kind, d, memref=a.memref))
                else:
                    kind = _memory_edge_kind(b, a)
                    if kind is not None:
                        ddg.add_edge(
                            DepEdge(b, a, kind, -d, memref=b.memref)
                        )
                continue

            # unanalysable pair: conservative intra- and cross-iteration
            kind = _memory_edge_kind(a, b)
            if kind is not None:
                ddg.add_edge(DepEdge(a, b, kind, 0, memref=a.memref))
            back_kind = _memory_edge_kind(b, a)
            if back_kind is not None:
                ddg.add_edge(DepEdge(b, a, back_kind, 1, memref=b.memref))

    # loop-carried self-dependences for non-analysable stores
    for inst in mem_ops:
        if not inst.is_store:
            continue
        assert inst.memref is not None
        if _affine_analysable(inst.memref):
            continue
        if inst.memref.space in loop.independent_spaces:
            continue
        ddg.add_edge(
            DepEdge(inst, inst, DepKind.MEM_OUTPUT, 1, memref=inst.memref)
        )

    return ddg
