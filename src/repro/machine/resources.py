"""Execution resources of an Itanium-2-class core.

The model is a per-cycle capacity table: two memory ports, two integer
ports, two FP ports, three branch ports, and a total issue width of six.
``A``-type operations (simple integer ALU) may execute on either a memory
or an integer port, which both the Resource II bound and the modulo
reservation table honour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import MachineModelError
from repro.ir.instructions import Instruction
from repro.ir.opcodes import UnitClass

#: Per-cycle issue capacity of each unit class.
UNIT_CAPACITIES: dict[UnitClass, int] = {
    UnitClass.M: 2,
    UnitClass.I: 2,
    UnitClass.F: 2,
    UnitClass.B: 3,
}

#: Total instructions issued per cycle.
ISSUE_WIDTH = 6


@dataclass(frozen=True)
class ResourceModel:
    """Issue capacities plus the Resource II lower bound."""

    capacities: dict[UnitClass, int] = field(
        default_factory=lambda: dict(UNIT_CAPACITIES)
    )
    issue_width: int = ISSUE_WIDTH

    def capacity(self, unit: UnitClass) -> int:
        if unit is UnitClass.A:
            return self.capacities[UnitClass.M] + self.capacities[UnitClass.I]
        if unit is UnitClass.NONE:
            return self.issue_width
        try:
            return self.capacities[unit]
        except KeyError:
            raise MachineModelError(f"no capacity for unit class {unit}") from None

    def resource_ii(self, body: list[Instruction]) -> int:
        """Minimum II dictated by execution resources (Sec. 1.1).

        Accounts for A-type flexibility: M and I demands are combined with
        the A-type population against the pooled M+I capacity.
        """
        counts = {unit: 0 for unit in UnitClass}
        for inst in body:
            counts[inst.opcode.unit] += 1

        cap_m = self.capacities[UnitClass.M]
        cap_i = self.capacities[UnitClass.I]
        cap_f = self.capacities[UnitClass.F]

        bounds = [
            math.ceil(counts[UnitClass.M] / cap_m),
            math.ceil(counts[UnitClass.F] / cap_f),
            math.ceil(
                (counts[UnitClass.M] + counts[UnitClass.I] + counts[UnitClass.A])
                / (cap_m + cap_i)
            ),
            math.ceil(
                (len(body) + 1) / self.issue_width  # +1 for the implicit branch
            ),
        ]
        if counts[UnitClass.I]:
            bounds.append(math.ceil(counts[UnitClass.I] / cap_i))
        return max(1, *bounds)
