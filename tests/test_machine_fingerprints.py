"""Golden-fingerprint regression tests for the itanium2 machine model.

The machine-description refactor must be invisible on the default
machine: every suite's :meth:`RunManifest.fingerprint` — a digest of the
per-cell cycle totals — must equal the constants below, which were
captured from the pre-refactor tree.  The equality is checked across
serial and parallel execution, the interpreter and the fast replayer,
and cold/warm artifact-cache runs, so any drift in scheduling,
simulation arithmetic, or cache replay shows up as a one-line diff here.
"""

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.harness.pool import run_suite
from repro.workloads.spec import cpu2000_suite, cpu2006_suite, micro_suite

#: pre-refactor RunManifest.fingerprint() per suite, captured at the
#: seed commit with configs [baseline, hlo] and seed 2008
GOLDEN = {
    "micro": "8bba3592f4d95877d6c3c6d8c2797d727d576430245f4c60a09a8d4910cf6b94",
    "cpu2000": "8898b301b04ef239b117d7eab857a0cd0b47075d317118451df82ab665bbb048",
    "cpu2006": "3d764fd8e54bbb13ac6bb0c02c92125b2fad4ce2f91cf900d173902c8598d756",
}

SUITES = {
    "micro": micro_suite,
    "cpu2000": cpu2000_suite,
    "cpu2006": cpu2006_suite,
}


def configs():
    return [baseline_config(), CompilerConfig(hint_policy=HintPolicy.HLO)]


def fingerprint(suite_name, **kwargs):
    run = run_suite(SUITES[suite_name](), configs(), seed=2008, **kwargs)
    return run.manifest.fingerprint()


@pytest.mark.parametrize("backend", ["interp", "fast"])
@pytest.mark.parametrize("workers", [1, 4])
def test_micro_fingerprint_across_backends_and_workers(backend, workers):
    assert fingerprint("micro", backend=backend,
                       workers=workers) == GOLDEN["micro"]


def test_micro_fingerprint_survives_the_artifact_cache(tmp_path):
    cache = tmp_path / "cache"
    cold = fingerprint("micro", cache=cache)
    warm = fingerprint("micro", cache=cache)
    assert cold == GOLDEN["micro"]
    assert warm == GOLDEN["micro"]


@pytest.mark.parametrize("suite_name", ["cpu2000", "cpu2006"])
def test_full_suite_fingerprints_are_bit_identical(suite_name, tmp_path):
    # serial interpreter, no cache: the reference execution
    assert fingerprint(suite_name, backend="interp") == GOLDEN[suite_name]
    # parallel fast replayer, cold cache — then a warm serial replay of
    # the same cache; all three paths must agree with the golden digest
    cache = tmp_path / "cache"
    assert fingerprint(suite_name, backend="fast", workers=4,
                       cache=cache) == GOLDEN[suite_name]
    assert fingerprint(suite_name, workers=1,
                       cache=cache) == GOLDEN[suite_name]
