"""Tests for the shared artifact store and the promoted cache.

Covers the ISSUE satellites directly: concurrency-safe ``put`` (threads
and processes hammering the same keys never observe torn or partial
entries), ``get`` tolerating corrupt entries (treated as a miss, deleted,
counted), plus the new ``stats``/``verify`` maintenance surface, the
size bound, and the service result envelope.
"""

import concurrent.futures
import json

from repro.harness import ArtifactCache
from repro.service import ArtifactStore
from repro.service.store import RESULT_KIND


# --- result envelope ----------------------------------------------------------

def test_put_get_result_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put_result("k" * 64, "bench", {"suite": "micro"}, {"answer": 42})
    envelope = store.get_result("k" * 64)
    assert envelope["envelope"] == RESULT_KIND
    assert envelope["kind"] == "bench"
    assert envelope["request"] == {"suite": "micro"}
    assert envelope["result"] == {"answer": 42}
    assert envelope["completed_utc"]


def test_non_result_entries_are_not_served_as_results(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("a" * 64, {"some": "harness payload"})
    assert store.get_result("a" * 64) is None
    assert store.get_result("missing" * 8) is None


# --- corrupt-entry tolerance --------------------------------------------------

def _entry_path(store, key):
    paths = [p for p in store.root.rglob("*.json") if p.stem == key]
    assert len(paths) == 1
    return paths[0]


def test_corrupt_entry_is_a_miss_and_gets_deleted(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put_result("b" * 64, "fuzz", {}, {"ok": True})
    path = _entry_path(store, "b" * 64)
    path.write_text("{ not json")
    assert store.get("b" * 64) is None
    assert store.stats.corrupt == 1
    assert not path.exists()  # quarantined, so the next put can heal it
    store.put_result("b" * 64, "fuzz", {}, {"ok": True})
    assert store.get_result("b" * 64)["result"] == {"ok": True}


def test_truncated_entry_is_also_tolerated(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("c" * 64, {"x": 1})
    _entry_path(store, "c" * 64).write_bytes(b"")
    assert store.get("c" * 64) is None
    assert store.stats.corrupt == 1


# --- concurrency --------------------------------------------------------------

def test_concurrent_readers_and_writers_never_see_torn_entries(tmp_path):
    store_dir = tmp_path / "store"
    keys = [f"{i:02d}" + "e" * 62 for i in range(4)]
    payloads = {key: {"key": key, "blob": key * 500} for key in keys}

    def hammer(worker_id):
        # every thread gets its own handle, like service workers do
        local = ArtifactStore(store_dir)
        seen = 0
        for round_no in range(25):
            key = keys[(worker_id + round_no) % len(keys)]
            local.put(key, payloads[key])
            got = local.get(key)
            if got is not None:
                assert got == payloads[key]  # never partial, never torn
                seen += 1
        return seen

    with concurrent.futures.ThreadPoolExecutor(8) as executor:
        totals = list(executor.map(hammer, range(8)))
    assert all(total > 0 for total in totals)
    final = ArtifactStore(store_dir)
    for key in keys:
        assert final.get(key) == payloads[key]


# --- size bound and stats -----------------------------------------------------

def test_max_entries_bound_evicts_oldest(tmp_path):
    store = ArtifactStore(tmp_path / "store", max_entries=4)
    for i in range(12):
        store.put(f"{i:02d}" + "f" * 62, {"i": i})
    assert len(store) <= 4
    assert store.stats.evictions >= 8
    # the newest entries survive
    assert store.get("11" + "f" * 62) == {"i": 11}


def test_stats_snapshot_shape(tmp_path):
    store = ArtifactStore(tmp_path / "store", max_entries=100)
    store.put("d" * 64, {"x": 1})
    store.get("d" * 64)
    store.get("absent" * 10 + "abcd")
    snapshot = store.stats_snapshot()
    assert snapshot["entries"] == 1
    assert snapshot["hits"] == 1
    assert snapshot["misses"] == 1
    assert snapshot["puts"] == 1
    assert snapshot["max_entries"] == 100
    assert snapshot["bytes"] > 0
    assert snapshot["root"] == str(store.root)


# --- verify -------------------------------------------------------------------

def test_verify_classifies_and_optionally_deletes(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("1" * 64, {"fine": True})
    store.put("2" * 64, {"fine": True})
    # corrupt one entry in place
    store.path_for("2" * 64).write_text("garbage")
    # and plant an entry whose payload key disagrees with its filename
    good = json.loads(store.path_for("1" * 64).read_text())
    planted = store.path_for("3" * 64)
    planted.parent.mkdir(parents=True, exist_ok=True)
    planted.write_text(json.dumps(good))

    report = ArtifactStore(tmp_path / "store").verify()
    assert report["checked"] == 3
    assert report["ok"] == 1
    assert report["corrupt"] == ["2" * 64]
    assert report["mismatched"] == ["3" * 64]
    assert report["deleted"] == 0

    cleaned = ArtifactStore(tmp_path / "store").verify(delete=True)
    assert cleaned["deleted"] == 2
    survivor = ArtifactStore(tmp_path / "store")
    assert survivor.get("1" * 64) == {"fine": True}
    assert len(survivor) == 1


def test_verify_flags_stale_versions_without_deleting_good_data(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("4" * 64, {"x": 1})
    path = store.path_for("4" * 64)
    entry = json.loads(path.read_text())
    entry["version"] = -1
    path.write_text(json.dumps(entry))
    report = store.verify()
    assert report["stale"] == ["4" * 64]
    # stale entries are misses but not corruption: not deleted by default
    assert store.get("4" * 64) is None


# --- the plain cache keeps its contract ---------------------------------------

def test_plain_artifact_cache_is_unbounded_by_default(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    for i in range(50):
        cache.put(f"{i:02d}" + "a" * 62, {"i": i})
    assert len(cache) == 50
    assert cache.stats.evictions == 0
