"""Unit tests for the exact modulo scheduler (``repro.pipeliner.optimal``).

The solver's contract is sharper than the heuristic's: FEASIBLE comes
with a canonical witness, INFEASIBLE is a proof, UNKNOWN only ever means
the node budget ran out, and everything — verdict, witness, node count —
is a pure function of the inputs.  These tests pin each clause on small
hand-written loops; the suite-wide differential evidence lives in
``tests/test_optimal_gap.py``.
"""

import pytest

from repro.analysis import verify_result
from repro.config import CompilerConfig, HintPolicy
from repro.core.compiler import LoopCompiler
from repro.ddg.graph import build_ddg
from repro.ir import parse_loop
from repro.machine import ItaniumMachine
from repro.pipeliner import (
    SolveStatus,
    compute_bounds,
    optimal_pipeline_loop,
    pipeline_loop,
    solve_ii,
)

COPY_ADD = """
memref A affine stride=4 space=a
memref B affine stride=4 space=b
loop copy_add trips=200 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
"""

# three M-unit memory ops: at II=1 they cannot share two M slots
DAXPY = """
memref X affine fp stride=8 size=8 space=x
memref Y affine fp stride=8 size=8 space=y
loop daxpy trips=1000 source=pgo
  ldfd f4 = [r5], 8 !X
  ldfd f5 = [r6] !Y
  fma f6 = f4, f2, f5
  stfd [r6] = f6, 8 !Y
"""

# a serial FP accumulation: RecII is the fadd latency
REDUCE = """
memref X affine fp stride=8 size=8 space=x
loop reduce trips=1000 source=pgo
  ldfd f4 = [r5], 8 !X
  fadd f2 = f2, f4
"""

# two interchangeable accumulator chains (twins for symmetry breaking)
TWINS = """
memref X affine fp stride=16 size=8 space=x
memref Y affine fp stride=16 size=8 space=y
loop twins trips=1000 source=pgo
  ldfd f4 = [r5], 16 !X
  ldfd f5 = [r6], 16 !Y
  fadd f2 = f2, f4
  fadd f3 = f3, f5
"""


def solver_inputs(text):
    machine = ItaniumMachine()
    loop = parse_loop(text)
    ddg = build_ddg(loop)
    bounds = compute_bounds(ddg, machine)
    return machine, loop, ddg, bounds


def solve(machine, ddg, ii, budget=200_000):
    return solve_ii(
        ddg, ii, machine.latency_query,
        lambda edge: False,  # base latencies: no boosted loads
        machine.resources, budget,
    )


class TestSolveII:
    def test_feasible_at_min_ii(self):
        machine, loop, ddg, bounds = solver_inputs(COPY_ADD)
        outcome = solve(machine, ddg, bounds.min_ii)
        assert outcome.status is SolveStatus.FEASIBLE
        assert outcome.nodes > 0

    def test_witness_is_canonical_and_valid(self):
        from repro.pipeliner.schedule import Schedule

        machine, loop, ddg, bounds = solver_inputs(COPY_ADD)
        outcome = solve(machine, ddg, bounds.min_ii)
        times = outcome.times
        assert min(times.values()) == 0
        assert set(times) == set(ddg.nodes)
        from repro.pipeliner.criticality import Criticality

        # wrapping in a Schedule performs no shift and verifies clean
        schedule = Schedule(
            ddg=ddg, ii=bounds.min_ii, times=dict(times), machine=machine,
            criticality=Criticality(critical=frozenset()),
        )
        assert schedule.times == times
        schedule.verify()

    def test_infeasible_below_recurrence_bound(self):
        machine, loop, ddg, bounds = solver_inputs(REDUCE)
        assert bounds.rec_ii > 1
        outcome = solve(machine, ddg, bounds.rec_ii - 1)
        assert outcome.status is SolveStatus.INFEASIBLE
        # the positive MinDist diagonal proves it before any search
        assert outcome.nodes == 0

    def test_infeasible_below_resource_bound(self):
        machine, loop, ddg, bounds = solver_inputs(DAXPY)
        assert bounds.res_ii >= 2  # three M ops over two M units
        outcome = solve(machine, ddg, 1)
        assert outcome.status is SolveStatus.INFEASIBLE

    def test_budget_exhaustion_is_unknown(self):
        machine, loop, ddg, bounds = solver_inputs(COPY_ADD)
        outcome = solve(machine, ddg, bounds.min_ii, budget=1)
        assert outcome.status is SolveStatus.UNKNOWN
        assert outcome.nodes <= 1

    def test_deterministic_replay(self):
        machine, loop, ddg, bounds = solver_inputs(TWINS)
        first = solve(machine, ddg, bounds.min_ii)
        second = solve(machine, ddg, bounds.min_ii)
        assert first.status is second.status is SolveStatus.FEASIBLE
        assert first.times == second.times
        assert first.nodes == second.nodes

    def test_twins_scheduled_in_body_order(self):
        machine, loop, ddg, bounds = solver_inputs(TWINS)
        outcome = solve(machine, ddg, bounds.min_ii)
        assert outcome.status is SolveStatus.FEASIBLE
        by_index = {inst.index: t for inst, t in outcome.times.items()}
        # symmetry breaking orders each twin pair by body index
        assert by_index[0] <= by_index[1]  # the two loads
        assert by_index[2] <= by_index[3]  # the two accumulators


class TestOptimalDriver:
    def test_matches_pipeline_loop_gates(self):
        machine = ItaniumMachine()
        loop = parse_loop(COPY_ADD)
        config = CompilerConfig()
        heur = pipeline_loop(parse_loop(COPY_ADD), machine, config)
        opt = optimal_pipeline_loop(loop, machine, config)
        assert opt.pipelined and heur.pipelined
        assert opt.stats.ii <= heur.stats.ii
        assert opt.stats.scheduler == "optimal"
        assert opt.stats.optimal_status == "optimal"
        assert opt.stats.ii_lower_bound == opt.stats.ii
        assert verify_result(opt).ok

    def test_tiny_budget_at_min_ii_is_still_optimal(self):
        """Budget exhaustion at the theory bound loses no certificate:
        the heuristic fallback lands on min_ii, which ResII/RecII
        certify without any search."""
        machine = ItaniumMachine()
        config = CompilerConfig(scheduler="optimal", optimal_budget=1)
        opt = optimal_pipeline_loop(parse_loop(COPY_ADD), machine, config)
        assert opt.pipelined
        assert opt.stats.ii == opt.bounds.min_ii
        assert opt.stats.optimal_status == "optimal"
        assert verify_result(opt).ok

    def test_capped_budget_falls_back_to_heuristic(self):
        """A hard instance above its theory bound under a tiny budget:
        the driver returns the heuristic schedule marked "capped" with a
        certified bound no higher than the achieved II."""
        from repro.fuzz import GenConfig, generate_loop

        machine = ItaniumMachine()
        loop = generate_loop(49, GenConfig(max_ops=28))
        config = CompilerConfig(scheduler="optimal", optimal_budget=60)
        opt = optimal_pipeline_loop(loop, machine, config)
        heur = pipeline_loop(
            generate_loop(49, GenConfig(max_ops=28)), machine,
            CompilerConfig(),
        )
        assert opt.pipelined
        assert opt.stats.optimal_status == "capped"
        assert opt.stats.ii == heur.stats.ii  # the fallback schedule
        assert opt.stats.ii_lower_bound <= opt.stats.ii
        assert verify_result(opt).ok

    def test_compiler_scheduler_knob(self):
        machine = ItaniumMachine()
        compiled = LoopCompiler(
            machine, CompilerConfig(scheduler="optimal")
        ).compile(parse_loop(DAXPY))
        assert compiled.stats.scheduler == "optimal"
        assert compiled.stats.optimal_status == "optimal"
        heuristic = LoopCompiler(machine, CompilerConfig()).compile(
            parse_loop(DAXPY)
        )
        assert heuristic.stats.scheduler == "heuristic"
        assert heuristic.stats.optimal_status is None
        assert compiled.stats.ii <= heuristic.stats.ii

    def test_boosted_policy_ladder(self):
        """Under ALL_LOADS_L3 the driver walks the same boosted-then-
        demoted ladder as the heuristic and stays verifiable."""
        machine = ItaniumMachine()
        config = CompilerConfig(
            hint_policy=HintPolicy.ALL_LOADS_L3,
            trip_count_threshold=0,
            scheduler="optimal",
        )
        compiled = LoopCompiler(machine, config).compile(parse_loop(COPY_ADD))
        assert compiled.stats.pipelined
        assert compiled.stats.scheduler == "optimal"
        report = verify_result(compiled.result)
        assert report.ok, report.render_text()

    def test_bad_scheduler_name_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CompilerConfig(scheduler="smt")
