#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds the three-instruction loop of Fig. 1, software-pipelines it with
and without latency tolerance, prints the kernels of Figs. 3 and 6, and
simulates both over a memory-resident array to show the stall reduction.

Run:  python examples/quickstart.py
"""

from repro import (
    CompilerConfig,
    HintPolicy,
    ItaniumMachine,
    LoopCompiler,
    MemorySystem,
    StreamSpec,
    baseline_config,
    parse_loop,
    simulate_loop,
)

LOOP_TEXT = """
memref A affine stride=4 space=a
memref B affine stride=4 space=b
loop copy_add trips=2000 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
"""

# a 64 MB streaming array: most accesses miss all the way to memory
LAYOUT = {
    "a": StreamSpec(size=64 << 20, reuse=False),
    "b": StreamSpec(size=64 << 20, reuse=False),
}


def compile_and_run(machine, config):
    loop = parse_loop(LOOP_TEXT)
    compiled = LoopCompiler(machine, config).compile(loop)
    sim = simulate_loop(
        compiled.result,
        machine,
        LAYOUT,
        trip_counts=[2000] * 3,
        memory=MemorySystem(machine.timings),
    )
    return compiled, sim


def main() -> None:
    machine = ItaniumMachine()

    from repro.ir import format_loop

    print("=== source loop (Fig. 1) ===")
    print(format_loop(parse_loop(LOOP_TEXT)))
    print()

    # prefetching off in both configs: this demo isolates the pure
    # latency-tolerance mechanism of Sec. 2 (prefetcher coupling is shown
    # in examples/indirect_prefetch.py)
    base_c, base_sim = compile_and_run(
        machine, baseline_config(prefetch=False)
    )
    print("=== baseline kernel (Fig. 3): II=1, 3 stages ===")
    print(base_c.result.kernel.format())
    print(f"\ncycles: {base_sim.cycles:,.0f}   "
          f"data stalls: {base_sim.counters.be_exe_bubble:,.0f}")
    print()

    boosted_c, boosted_sim = compile_and_run(
        machine,
        CompilerConfig(
            hint_policy=HintPolicy.ALL_LOADS_L3,
            trip_count_threshold=0,
            prefetch=False,
        ),
    )
    from repro.core.diagram import pipeline_diagram
    from repro.machine.hints import HintTranslation
    from repro.pipeliner import pipeline_loop
    from repro.ir.memref import LatencyHint

    # the paper's Fig. 4 uses a 3-cycle load latency (d = 2)
    fig4_machine = machine.with_translation(
        HintTranslation(name="three-cycle", l2=3)
    )
    fig4_loop = parse_loop(LOOP_TEXT)
    fig4_loop.body[0].memref.hint = LatencyHint.L2
    fig4 = pipeline_loop(
        fig4_loop, fig4_machine,
        CompilerConfig(trip_count_threshold=0, prefetch=False),
    )
    print("=== conceptual pipeline view at a 3-cycle load latency "
          "(Fig. 4) ===")
    print(pipeline_diagram(fig4.schedule, iterations=5))
    print()

    stats = boosted_c.stats
    placement = stats.placements[0]
    print(f"=== latency-tolerant kernel (Fig. 6 style): II={stats.ii}, "
          f"{stats.stage_count} stages ===")
    print(boosted_c.result.kernel.format())
    print(f"\nload scheduled {placement.use_distance} cycles before its use "
          f"(d={placement.additional_latency}, "
          f"k={placement.clustering_factor(stats.ii)})")
    print(f"cycles: {boosted_sim.cycles:,.0f}   "
          f"data stalls: {boosted_sim.counters.be_exe_bubble:,.0f}")
    print()

    speedup = (base_sim.cycles / boosted_sim.cycles - 1.0) * 100.0
    print(f"speedup from latency-tolerant pipelining: {speedup:+.1f}%")


if __name__ == "__main__":
    main()
