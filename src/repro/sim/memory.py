"""The memory hierarchy: L1D/L2/L3/main memory plus the TLB.

Latency model (Sec. 2): best-case delays of 1 / 5 / 14 / ~180 cycles for
L1D / L2 / L3 / memory; FP accesses bypass L1 and pay one extra format-
conversion cycle.  Lines being filled (e.g. by a prefetch that has not
completed) charge the remaining fill time, so prefetch *distance* matters,
not just presence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.description import BankGeometry, MemoryTimings
from repro.sim.cache import Cache, CacheConfig
from repro.sim.tlb import TLB

#: Dual-Core Itanium 2 (Montecito-class) data-side geometry.
DEFAULT_L1D = CacheConfig("L1D", size=16 * 1024, line_size=64, associativity=4)
DEFAULT_L2 = CacheConfig("L2D", size=256 * 1024, line_size=128, associativity=8)
DEFAULT_L3 = CacheConfig("L3", size=12 * 1024 * 1024, line_size=128, associativity=12)


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one demand access."""

    latency: float
    level: int  # 1=L1D, 2=L2, 3=L3, 4=memory
    #: the request goes past L1 and occupies an OzQ entry until completion
    occupies_ozq: bool


class MemorySystem:
    """Three cache levels, a TLB, and the latency walk.

    The L2 is banked: accesses mapping to a recently-busy bank pay extra
    cycles.  This is the "latency-increasing dynamic hazard" (conflicting
    stores, bank conflicts) of Sec. 3.3 — the reason hint translation uses
    *typical* latencies (11/21) rather than best-case (5/14): the headroom
    absorbs exactly this jitter.  "The latter can occur if multiple
    accesses to the same L2 cache bank are issued in the same cycle [10]."
    """

    #: number of L2 banks and the bank interleave width in bytes
    #: (class-level defaults; per-machine values shadow them per instance)
    L2_BANKS = 8
    L2_BANK_WIDTH = 16
    #: cycles a bank stays busy after an access
    L2_BANK_OCCUPANCY = 2.0

    def __init__(
        self,
        timings: MemoryTimings | None = None,
        l1d: CacheConfig = DEFAULT_L1D,
        l2: CacheConfig = DEFAULT_L2,
        l3: CacheConfig = DEFAULT_L3,
        tlb: TLB | None = None,
        bank_conflicts: bool = True,
        banks: BankGeometry | None = None,
    ) -> None:
        self.timings = timings or MemoryTimings()
        self.l1d = Cache(l1d)
        self.l2 = Cache(l2)
        self.l3 = Cache(l3)
        self.tlb = tlb or TLB()
        if banks is not None:
            self.bank_conflicts = bank_conflicts and banks.enabled
            self.L2_BANKS = banks.banks
            self.L2_BANK_WIDTH = banks.width
            self.L2_BANK_OCCUPANCY = banks.occupancy
        else:
            self.bank_conflicts = bank_conflicts
        self._bank_busy_until = [float("-inf")] * self.L2_BANKS
        self.bank_conflict_count = 0
        #: optional :class:`repro.trace.events.TraceSink`; when set and
        #: interested in memory events, every access emits a ``CacheFill``
        #: with the satisfying level (attached by the executor after the
        #: pre-warm phase so warm-up fills stay out of traces)
        self.sink = None

    def _l2_bank_delay(self, addr: int, now: float) -> float:
        """Extra delay (and occupancy update) for the L2 bank of ``addr``."""
        if not self.bank_conflicts:
            return 0.0
        bank = (addr // self.L2_BANK_WIDTH) % self.L2_BANKS
        busy = self._bank_busy_until[bank]
        delay = max(0.0, busy - now)
        if delay > 0:
            self.bank_conflict_count += 1
        self._bank_busy_until[bank] = now + delay + self.L2_BANK_OCCUPANCY
        return delay

    def _emit_fill(self, access: str, addr: int, now: float,
                   res: AccessResult) -> AccessResult:
        """Report the satisfying level to an attached trace sink."""
        sink = self.sink
        if sink is not None and sink.wants_memory:
            from repro.trace.events import CacheFill

            sink.emit(CacheFill(
                cycle=now, access=access, addr=addr,
                level=res.level, latency=res.latency,
            ))
        return res

    # --- demand accesses --------------------------------------------------
    def load(self, addr: int, now: float, is_fp: bool = False) -> AccessResult:
        """A demand load: walk the hierarchy, fill lines on the way out."""
        return self._emit_fill("load", addr, now, self._load(addr, now, is_fp))

    def _load(self, addr: int, now: float, is_fp: bool) -> AccessResult:
        t = self.timings
        penalty = self.tlb.access(addr)
        fp_extra = t.fp_extra if is_fp else 0

        if not is_fp:  # FP loads bypass the L1D
            pending = self.l1d.lookup(addr, now)
            if pending is not None:
                # requests merging into an in-flight fill share its OzQ entry
                return AccessResult(t.l1 + pending + penalty, 1, False)

        pending = self.l2.lookup(addr, now)
        if pending is not None:
            latency = t.l2 + pending + penalty + fp_extra
            latency += self._l2_bank_delay(addr, now)
            if not is_fp:
                self.l1d.fill(addr, now + latency)
            return AccessResult(latency, 2, pending == 0)

        pending = self.l3.lookup(addr, now)
        if pending is not None:
            latency = t.l3 + pending + penalty + fp_extra
            self._fill_upward(addr, now + latency, is_fp)
            return AccessResult(latency, 3, pending == 0)

        latency = t.memory + penalty + fp_extra
        self.l3.fill(addr, now + latency)
        self._fill_upward(addr, now + latency, is_fp)
        return AccessResult(latency, 4, True)

    def store(self, addr: int, now: float, is_fp: bool = False) -> AccessResult:
        """A store: write-through L1, allocate in L2.

        Stores do not stall the pipeline directly, but misses occupy OzQ
        entries while the line is fetched.
        """
        return self._emit_fill("store", addr, now,
                               self._store(addr, now, is_fp))

    def _store(self, addr: int, now: float, is_fp: bool) -> AccessResult:
        t = self.timings
        penalty = self.tlb.access(addr)
        pending = self.l2.lookup(addr, now)
        if pending is not None:
            latency = t.l2 + pending + penalty
            latency += self._l2_bank_delay(addr, now)
            return AccessResult(latency, 2, False)
        pending = self.l3.lookup(addr, now)
        if pending is not None:
            latency = t.l3 + pending + penalty
            self.l2.fill(addr, now + latency)
            return AccessResult(latency, 3, pending == 0)
        latency = t.memory + penalty
        self.l3.fill(addr, now + latency)
        self.l2.fill(addr, now + latency)
        return AccessResult(latency, 4, True)

    # --- prefetches -----------------------------------------------------------
    def prefetch(
        self, addr: int, now: float, l2_only: bool = False, is_fp: bool = False
    ) -> AccessResult:
        """An ``lfetch``.

        A TLB miss does not drop the prefetch: the hardware VHPT walker
        services it (adding the walk latency to the fill and installing
        the translation) — that walk traffic is the TLB *pressure* the
        prefetcher's distance reductions contain (Sec. 3.2 rule 2a).
        """
        return self._emit_fill(
            "prefetch", addr, now, self._prefetch(addr, now, l2_only, is_fp)
        )

    def _prefetch(
        self, addr: int, now: float, l2_only: bool, is_fp: bool
    ) -> AccessResult:
        penalty = self.tlb.access(addr)
        t = self.timings
        pending = None if is_fp else self.l1d.lookup(addr, now)
        if pending is not None:
            return AccessResult(0.0, 1, False)
        pending = self.l2.lookup(addr, now)
        if pending is not None:
            if not (l2_only or is_fp):
                self.l1d.fill(addr, now + t.l2 + (pending or 0))
            return AccessResult(0.0, 2, pending > 0)
        pending = self.l3.lookup(addr, now)
        if pending is not None:
            latency = t.l3 + pending + penalty
            self._fill_prefetch(addr, now + latency, l2_only, is_fp)
            return AccessResult(latency, 3, pending == 0)
        latency = t.memory + penalty
        self.l3.fill(addr, now + latency)
        self._fill_prefetch(addr, now + latency, l2_only, is_fp)
        return AccessResult(latency, 4, True)

    # --- helpers -------------------------------------------------------------
    def _fill_upward(self, addr: int, ready: float, is_fp: bool) -> None:
        self.l2.fill(addr, ready)
        if not is_fp:
            self.l1d.fill(addr, ready)

    def _fill_prefetch(
        self, addr: int, ready: float, l2_only: bool, is_fp: bool
    ) -> None:
        self.l2.fill(addr, ready)
        if not (l2_only or is_fp):
            self.l1d.fill(addr, ready)

    def reset(self) -> None:
        self.l1d.reset()
        self.l2.reset()
        self.l3.reset()
        self.tlb.reset()
        self._bank_busy_until = [float("-inf")] * self.L2_BANKS
        self.bank_conflict_count = 0
