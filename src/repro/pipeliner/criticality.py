"""Critical / non-critical load classification (Sec. 3.3).

"Initially, all loads in the loop are marked as non-critical.  Then the
pipeliner iterates over all recurrence cycles and checks for each cycle if
increasing the latencies of all loads in this cycle to the expected latency
values would increase the Recurrence II to a value higher than the Resource
II, and hence would likely lead to an overall II increase.  If this is the
case, all loads in this cycle are marked as critical, indicating that
minimum latencies should be used for them during modulo scheduling."

A load only ever *gets* a longer scheduled latency when its memory
reference carries a latency hint, so loads without hints are excluded from
"boosted" regardless of criticality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ddg.edges import DepEdge, DepKind
from repro.ddg.graph import DDG
from repro.ir.instructions import Instruction
from repro.ir.memref import LatencyHint
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.bounds import IIBounds


@dataclass
class Criticality:
    """Result of the classification.

    ``boosted`` is the set of loads that will be scheduled with their
    expected latencies: hinted, non-critical loads (possibly emptied by the
    driver's register-pressure fallback).
    """

    critical: frozenset[Instruction]
    boosted: set[Instruction] = field(default_factory=set)

    def is_boosted(self, inst: Instruction) -> bool:
        return inst in self.boosted

    def expected_fn(self, edge: DepEdge) -> bool:
        """Edge-level policy for DDG latency resolution.

        Only the *data* result of a boosted load uses the expected latency;
        post-increment address results and everything else stay at base.
        """
        return (
            edge.kind is DepKind.FLOW
            and edge.src.is_load
            and edge.reg in edge.src.defs
            and edge.src in self.boosted
        )

    def demote_all(self) -> "Criticality":
        """The register-pressure fallback: no load keeps a boosted latency."""
        return Criticality(critical=self.critical, boosted=set())

    def demote_policy_hints(self) -> "Criticality":
        """The trip-count-threshold gate (Fig. 7): drop blanket-policy
        boosts, but keep HLO-directed ones — when long latencies are
        expected, "the optimization may be profitable even in a loop with
        a low trip count" (Sec. 3.1, demonstrated on mcf in Sec. 4.4)."""
        kept = {
            load
            for load in self.boosted
            if load.memref is not None
            and load.memref.hint_source in ("hlo", "sampled")
        }
        return Criticality(critical=self.critical, boosted=kept)


def classify_loads(
    ddg: DDG,
    machine: ItaniumMachine,
    bounds: IIBounds,
    threshold: str = "min_ii",
) -> Criticality:
    """Run the paper's cycle-wise criticality analysis.

    ``threshold`` selects what "would likely lead to an overall II
    increase" means: ``"res_ii"`` is the paper's literal wording (compare
    against the Resource II); ``"min_ii"`` compares against
    ``max(ResII, base RecII)``, which avoids pointless demotions in loops
    whose recurrence bound already exceeds the resource bound.
    """
    if threshold == "res_ii":
        limit = bounds.res_ii
    elif threshold == "min_ii":
        limit = bounds.min_ii
    else:
        raise ValueError(f"unknown criticality threshold {threshold!r}")

    critical: set[Instruction] = set()
    for cycle in bounds.cycles:
        loads = cycle.loads
        if not loads:
            continue

        def boosted_in_cycle(edge: DepEdge, _loads=frozenset(loads)) -> bool:
            return (
                edge.kind is DepKind.FLOW
                and edge.src.is_load
                and edge.reg in edge.src.defs
                and edge.src in _loads
            )

        if cycle.ii_bound(machine.latency_query, boosted_in_cycle) > limit:
            critical.update(loads)

    boosted = {
        load
        for load in ddg.loop.loads
        if load not in critical
        and load.memref is not None
        and load.memref.hint is not LatencyHint.NONE
    }
    return Criticality(critical=frozenset(critical), boosted=boosted)
