"""Fluent construction API for loops.

The builder hands out fresh virtual registers, tracks instruction order,
infers live-in registers, and produces a validated :class:`Loop`.  It is
the primary way tests, examples and the synthetic workload suite create
loop bodies::

    b = LoopBuilder()
    a = b.memref("a", stride=4)
    c = b.memref("c", stride=4)
    addend = b.live_greg("addend")
    pa, pc = b.live_greg("pa"), b.live_greg("pc")
    x = b.load("ld4", pa, a, post_inc=4)
    y = b.alu("add", x, addend)
    b.store("st4", pc, y, c, post_inc=4)
    loop = b.build("copy_add", trips=100.0)
"""

from __future__ import annotations

import itertools

from repro.errors import IRError
from repro.ir.instructions import Instruction
from repro.ir.loop import Loop, TripCountInfo, TripCountSource
from repro.ir.memref import AccessPattern, MemRef
from repro.ir.opcodes import opcode
from repro.ir.registers import Reg, RegClass
from repro.ir.validate import validate_loop


class LoopBuilder:
    """Incrementally assembles one innermost loop."""

    def __init__(self) -> None:
        self._counters = {rc: itertools.count(1) for rc in RegClass}
        self._body: list[Instruction] = []
        self._live_in: set[Reg] = set()
        self._live_out: set[Reg] = set()
        self._independent_spaces: set[str] = set()

    # --- registers -------------------------------------------------------
    def greg(self) -> Reg:
        """A fresh virtual general register."""
        return Reg(RegClass.GR, next(self._counters[RegClass.GR]))

    def freg(self) -> Reg:
        """A fresh virtual floating-point register."""
        return Reg(RegClass.FR, next(self._counters[RegClass.FR]))

    def pred(self) -> Reg:
        """A fresh virtual predicate register."""
        return Reg(RegClass.PR, next(self._counters[RegClass.PR]))

    def live_greg(self, name: str = "") -> Reg:
        """A fresh general register marked live-in (loop invariant/initial)."""
        reg = self.greg()
        self._live_in.add(reg)
        return reg

    def live_freg(self, name: str = "") -> Reg:
        """A fresh FP register marked live-in."""
        reg = self.freg()
        self._live_in.add(reg)
        return reg

    def mark_live_out(self, *regs: Reg) -> None:
        self._live_out.update(regs)

    def independent(self, *spaces: str) -> None:
        """Declare memory spaces that never alias anything else."""
        self._independent_spaces.update(spaces)

    # --- memory references -------------------------------------------------
    def memref(
        self,
        name: str,
        pattern: AccessPattern = AccessPattern.AFFINE,
        stride: int | None = None,
        size: int = 4,
        is_fp: bool = False,
        space: str = "",
        index_ref: MemRef | None = None,
        offset: int = 0,
    ) -> MemRef:
        return MemRef(
            name=name,
            pattern=pattern,
            stride=stride,
            size=size,
            is_fp=is_fp,
            space=space,
            index_ref=index_ref,
            offset=offset,
        )

    # --- instructions -------------------------------------------------------
    def emit(self, inst: Instruction) -> Instruction:
        inst.index = len(self._body)
        self._body.append(inst)
        return inst

    def load(
        self,
        mnemonic: str,
        addr: Reg,
        ref: MemRef,
        post_inc: int | None = None,
        qual_pred: Reg | None = None,
    ) -> Reg:
        """Emit a load; returns the (fresh) destination register."""
        op = opcode(mnemonic)
        if not op.is_load:
            raise IRError(f"{mnemonic} is not a load")
        dest = self.freg() if op.is_fp else self.greg()
        self.emit(
            Instruction(
                op,
                defs=(dest,),
                uses=(addr,),
                memref=ref,
                post_increment=post_inc,
                qual_pred=qual_pred,
            )
        )
        return dest

    def load_into(
        self,
        mnemonic: str,
        dest: Reg,
        addr: Reg,
        ref: MemRef,
        post_inc: int | None = None,
        qual_pred: Reg | None = None,
    ) -> Reg:
        """Load into an explicit destination.

        With ``dest is addr`` this builds the self-recurrent pointer-chase
        idiom ``ld8 p = [p]`` (``node = node->child``)."""
        op = opcode(mnemonic)
        if not op.is_load:
            raise IRError(f"{mnemonic} is not a load")
        self.emit(
            Instruction(
                op,
                defs=(dest,),
                uses=(addr,),
                memref=ref,
                post_increment=post_inc,
                qual_pred=qual_pred,
            )
        )
        return dest

    def store(
        self,
        mnemonic: str,
        addr: Reg,
        value: Reg,
        ref: MemRef,
        post_inc: int | None = None,
        qual_pred: Reg | None = None,
    ) -> Instruction:
        op = opcode(mnemonic)
        if not op.is_store:
            raise IRError(f"{mnemonic} is not a store")
        return self.emit(
            Instruction(
                op,
                defs=(),
                uses=(addr, value),
                memref=ref,
                post_increment=post_inc,
                qual_pred=qual_pred,
            )
        )

    def prefetch(
        self, addr: Reg, ref: MemRef, post_inc: int | None = None
    ) -> Instruction:
        return self.emit(
            Instruction(
                opcode("lfetch"),
                defs=(),
                uses=(addr,),
                memref=ref,
                post_increment=post_inc,
            )
        )

    def alu(
        self, mnemonic: str, *sources: Reg, qual_pred: Reg | None = None
    ) -> Reg:
        """Emit a register-register ALU/FP operation; returns the dest."""
        op = opcode(mnemonic)
        if op.is_memory or op.is_branch or op.writes_predicate:
            raise IRError(f"{mnemonic} is not a plain ALU operation")
        dest = self.freg() if op.is_fp else self.greg()
        self.emit(
            Instruction(op, defs=(dest,), uses=tuple(sources), qual_pred=qual_pred)
        )
        return dest

    def alu_into(
        self,
        mnemonic: str,
        dest: Reg,
        *sources: Reg,
        imm: int | None = None,
        qual_pred: Reg | None = None,
    ) -> Reg:
        """ALU op with an explicit destination (for accumulators)."""
        op = opcode(mnemonic)
        self.emit(
            Instruction(
                op,
                defs=(dest,),
                uses=tuple(sources),
                imm=imm,
                qual_pred=qual_pred,
            )
        )
        return dest

    def alu_imm(
        self, mnemonic: str, source: Reg, imm: int, qual_pred: Reg | None = None
    ) -> Reg:
        op = opcode(mnemonic)
        dest = self.freg() if op.is_fp else self.greg()
        self.emit(
            Instruction(
                op, defs=(dest,), uses=(source,), imm=imm, qual_pred=qual_pred
            )
        )
        return dest

    def fma(self, a: Reg, b: Reg, c: Reg, qual_pred: Reg | None = None) -> Reg:
        """Floating-point multiply-add ``a*b + c``."""
        return self.alu("fma", a, b, c, qual_pred=qual_pred)

    def cmp(self, a: Reg, b: Reg, fp: bool = False) -> Reg:
        """Compare; returns the predicate it sets."""
        dest = self.pred()
        self.emit(
            Instruction(opcode("fcmp" if fp else "cmp"), defs=(dest,), uses=(a, b))
        )
        return dest

    # --- finalisation -------------------------------------------------------
    def build(
        self,
        name: str,
        trips: float | None = None,
        trip_source: TripCountSource = TripCountSource.PGO,
        max_trips: int | None = None,
        counted: bool = True,
        contiguous_across_outer: bool = False,
        validate: bool = True,
    ) -> Loop:
        """Finish the loop: infer live-ins, validate, return it."""
        defined: set[Reg] = set()
        live_in = set(self._live_in)
        for inst in self._body:
            for reg in inst.all_uses():
                if reg.virtual and reg not in defined:
                    live_in.add(reg)
            for reg in inst.all_defs():
                defined.add(reg)
        info = TripCountInfo(
            estimate=trips,
            source=trip_source if trips is not None else TripCountSource.UNKNOWN,
            max_trips=max_trips,
            contiguous_across_outer=contiguous_across_outer,
        )
        loop = Loop(
            name=name,
            body=list(self._body),
            live_in=live_in,
            live_out=set(self._live_out),
            trip_count=info,
            counted=counted,
            independent_spaces=frozenset(self._independent_spaces),
        )
        if validate:
            validate_loop(loop)
        return loop
