"""Kernel and rotating-register verification (SA3xx).

Checks the generated kernel and the rotating allocation against the
renaming semantics of Sec. 1.1 — register rotation renames ``X`` into
``X+1`` on every back edge, so a use ``rot`` kernel iterations after the
definition must read ``phys + rot``, and stage ``s`` must be guarded by
stage predicate ``p16+s`` — plus the blade discipline of Sec. 3.3 (one
disjoint blade per rotated value, long enough to cover its modulo
lifetime, within the machine's rotating capacity).

Everything is re-derived here from the DDG and the raw time map;
:mod:`repro.pipeliner.kernel` and :mod:`repro.regalloc.rotating` are only
the *subjects* of the checks, never helpers.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.ddg.edges import DepKind
from repro.ir.registers import (
    Reg,
    RegClass,
    ROTATING_FR_BASE,
    ROTATING_GR_BASE,
    ROTATING_PR_BASE,
)
from repro.pipeliner.kernel import Kernel
from repro.pipeliner.schedule import Schedule
from repro.regalloc.rotating import RotatingAllocation

_CLASS_BASES = {
    RegClass.GR: ROTATING_GR_BASE,
    RegClass.FR: ROTATING_FR_BASE,
    RegClass.PR: ROTATING_PR_BASE,
}


def recompute_rotations(schedule: Schedule) -> dict[tuple[int, Reg], int]:
    """Rotation distance each (consumer index, register) pair must bridge:
    how many back-edges fire between the definition's kernel iteration and
    the consuming one, ``t_use//II - t_def//II`` maximised over edges."""
    rotations: dict[tuple[int, Reg], int] = {}
    ii = schedule.ii
    for edge in schedule.ddg.edges:
        if edge.kind is not DepKind.FLOW or edge.reg is None:
            continue
        t_def = schedule.times[edge.src]
        t_use = schedule.times[edge.dst] + ii * edge.omega
        rot = t_use // ii - t_def // ii
        key = (edge.dst.index, edge.reg)
        rotations[key] = max(rotations.get(key, 0), rot)
    return rotations


def _check_shape(
    kernel: Kernel, schedule: Schedule, report: DiagnosticReport
) -> bool:
    """SA301.  Returns False when the op<->body map is too broken to use."""
    name = schedule.loop.name
    ok = True
    if kernel.ii != schedule.ii:
        report.add(
            "SA301",
            f"kernel II is {kernel.ii}, schedule II is {schedule.ii}",
            loop=name,
        )
        ok = False
    sc = max(schedule.times.values()) // schedule.ii + 1
    if kernel.stage_count != sc:
        report.add(
            "SA301",
            f"kernel stage count is {kernel.stage_count}, "
            f"re-derivation gives {sc}",
            loop=name,
        )
    want_branch = "br.ctop" if schedule.loop.counted else "br.wtop"
    if kernel.branch != want_branch:
        report.add(
            "SA301",
            f"kernel branch is {kernel.branch!r}, "
            f"a {'counted' if schedule.loop.counted else 'while'} loop "
            f"needs {want_branch!r}",
            loop=name,
        )

    seen: dict[int, int] = {}
    for op in kernel.ops:
        seen[id(op.inst)] = seen.get(id(op.inst), 0) + 1
    for inst in schedule.loop.body:
        count = seen.pop(id(inst), 0)
        if count != 1:
            report.add(
                "SA301",
                f"body instruction appears {count} times in the kernel",
                loop=name,
                inst=inst,
            )
            ok = False
    if seen:
        report.add(
            "SA301",
            f"kernel contains {len(seen)} op(s) not from the loop body",
            loop=name,
        )
        ok = False
    return ok


def _check_stages(
    kernel: Kernel, schedule: Schedule, report: DiagnosticReport
) -> None:
    """SA302: row/stage decomposition and stage predicates."""
    name = schedule.loop.name
    ii = schedule.ii
    sc = max(schedule.times.values()) // ii + 1
    for op in kernel.ops:
        t = schedule.times[op.inst]
        checks = [
            ("row", op.row, t % ii),
            ("stage", op.stage, t // ii),
            ("stage predicate", op.stage_pred, ROTATING_PR_BASE + t // ii),
        ]
        for what, got, want in checks:
            if got != want:
                report.add(
                    "SA302",
                    f"{what} is {got}, t={t} under II={ii} gives {want}",
                    loop=name,
                    inst=op.inst,
                )
        if not 0 <= op.stage < sc:
            report.add(
                "SA302",
                f"stage {op.stage} outside [0, {sc})",
                loop=name,
                inst=op.inst,
            )


def _check_renaming(
    kernel: Kernel,
    schedule: Schedule,
    allocation: RotatingAllocation,
    report: DiagnosticReport,
) -> None:
    """SA303: every rotated operand reads/writes the right physical reg."""
    name = schedule.loop.name
    rotations = recompute_rotations(schedule)
    for op in kernel.ops:
        want_defs = {
            reg: allocation.blades[reg][0]
            for reg in op.inst.all_defs()
            if reg in allocation.blades
        }
        got_defs = dict(op.phys_defs)
        if got_defs != want_defs:
            report.add(
                "SA303",
                f"renamed defs {_fmt(got_defs)} != expected {_fmt(want_defs)}",
                loop=name,
                inst=op.inst,
            )
        want_uses = {}
        for reg in op.inst.all_uses():
            if reg not in allocation.blades:
                continue  # live-in value in a static register
            base, _span = allocation.blades[reg]
            rot = rotations.get((op.inst.index, reg), 0)
            want_uses[reg] = base + rot
        got_uses = dict(op.phys_uses)
        if got_uses != want_uses:
            report.add(
                "SA303",
                f"renamed uses {_fmt(got_uses)} != expected {_fmt(want_uses)} "
                "(a use rot iterations after its def must read phys + rot)",
                loop=name,
                inst=op.inst,
            )


def _fmt(renaming: dict[Reg, int]) -> str:
    if not renaming:
        return "{}"
    inner = ", ".join(
        f"{reg}->{reg.rclass.value}{num}" for reg, num in sorted(
            renaming.items(), key=lambda kv: (kv[0].rclass.value, kv[0].index)
        )
    )
    return "{" + inner + "}"


def _check_blades(
    schedule: Schedule,
    allocation: RotatingAllocation,
    report: DiagnosticReport,
) -> None:
    """SA304: blade coverage, disjointness and capacity, from scratch."""
    name = schedule.loop.name
    ii = schedule.ii
    sc = max(schedule.times.values()) // ii + 1
    loop = schedule.loop

    # independently re-derive which values rotate and how far they reach
    required: dict[Reg, int] = {}
    for inst in loop.body:
        t_def = schedule.times[inst]
        for reg in inst.all_defs():
            if not reg.virtual or reg in inst.all_uses():
                continue  # static / self-recurrent: updated in place
            end = t_def
            for edge in schedule.ddg.edges:
                if (
                    edge.src is inst
                    and edge.kind is DepKind.FLOW
                    and edge.reg == reg
                ):
                    end = max(end, schedule.times[edge.dst] + ii * edge.omega)
            if reg in loop.live_out:
                end = max(end, t_def + ii)
            required[reg] = end // ii - t_def // ii + 1

    for reg, span_needed in required.items():
        blade = allocation.blades.get(reg)
        if blade is None:
            report.add(
                "SA304",
                f"rotated register {reg} has no blade",
                loop=name,
            )
            continue
        _base, span = blade
        if span < span_needed:
            report.add(
                "SA304",
                f"blade span {span} of {reg} does not cover its lifetime "
                f"(needs {span_needed} rotating registers)",
                loop=name,
            )
    for reg in allocation.blades:
        if reg not in required:
            report.add(
                "SA304",
                f"{reg} has a blade but must stay static "
                "(self-recurrent or not defined in the body)",
                loop=name,
            )

    # disjointness and placement within each class's rotating window
    by_class: dict[RegClass, list[tuple[int, int, Reg]]] = {}
    for reg, (base, span) in allocation.blades.items():
        by_class.setdefault(reg.rclass, []).append((base, base + span, reg))
    for rclass, intervals in by_class.items():
        class_base = _CLASS_BASES.get(rclass)
        if class_base is None:
            report.add(
                "SA304",
                f"register class {rclass.name} cannot rotate",
                loop=name,
            )
            continue
        lo = class_base + (sc if rclass is RegClass.PR else 0)
        hi = class_base + schedule.machine.rotating_capacity(rclass)
        intervals.sort()
        prev_end, prev_reg = lo, None
        for start, end, reg in intervals:
            if start < lo:
                what = (
                    "the stage predicates"
                    if rclass is RegClass.PR
                    else "the rotating window"
                )
                report.add(
                    "SA304",
                    f"blade of {reg} at {rclass.value}{start} overlaps {what} "
                    f"(first free register is {rclass.value}{lo})",
                    loop=name,
                )
            if start < prev_end and prev_reg is not None:
                report.add(
                    "SA304",
                    f"blades of {prev_reg} and {reg} overlap "
                    f"({rclass.value}{start} < {rclass.value}{prev_end})",
                    loop=name,
                )
            if end > hi:
                report.add(
                    "SA304",
                    f"blade of {reg} ends at {rclass.value}{end}, past the "
                    f"rotating capacity ({rclass.value}{hi})",
                    loop=name,
                )
            prev_end, prev_reg = max(prev_end, end), reg

    # bookkeeping the driver reports in stats
    for rclass, used in allocation.used.items():
        capacity = schedule.machine.rotating_capacity(rclass)
        if used > capacity:
            report.add(
                "SA304",
                f"{rclass.name} rotating demand {used} exceeds "
                f"capacity {capacity}",
                loop=name,
            )


def verify_kernel(
    kernel: Kernel, schedule: Schedule, allocation: RotatingAllocation
) -> DiagnosticReport:
    """Run every SA3xx check over one kernel + allocation."""
    report = DiagnosticReport()
    if _check_shape(kernel, schedule, report):
        _check_stages(kernel, schedule, report)
        _check_renaming(kernel, schedule, allocation, report)
    _check_blades(schedule, allocation, report)
    return report
