"""Static performance bounds: translation validation for *counters*.

From a compiled loop (schedule or list-schedule fallback), the machine
description and the hint metadata — with **no simulation** — this module
derives per-loop invariants that every simulated run must satisfy:

* **exact event-count identities** — the kernel structure fixes
  ``kernel_iterations = n + SC - 1`` per invocation, every demand load
  executes once per source iteration, spill/RSE/flush/front-end costs are
  per-invocation constants (SA511/SA512);
* **a cycle interval** — ``II x kernel_iters`` plus the fixed costs lower-
  bounds the run, and adding the stall bounds below upper-bounds it
  (SA515);
* **a BE_EXE_BUBBLE bound** — Sec. 2.1's residual latency: a load
  scheduled ``d`` cycles before its first use exposes at most
  ``L_max - d`` stall cycles per *window* of ``k = d // II`` instances,
  because the ``k - 1`` following instances are provably in flight when
  an instance stalls and the stall shadows their residuals (Equ. (2),
  Fig. 5).  Coverage ``c = 1`` (``d >= L_max``) yields a zero-stall proof
  (SA503/SA513);
* **an OzQ occupancy bound** — executions of one memory operation are at
  least ``II`` cycles apart and an entry lives at most ``L_max`` cycles,
  so at most ``ops x ceil(L_max / II)`` entries are ever in flight; below
  the queue capacity that *proves* ``BE_L1D_FPU_BUBBLE = 0``
  (SA502/SA514).

``L_max`` is a ceiling on any single access latency: the hierarchy walk
plus TLB-walk and pending-fill chains, plus a worst-case L2 bank backlog.
The bank term is provable only when every demand reference's bank-arrival
rate is known (affine stride plus the space size): a per-bank leaky-bucket
argument bounds the backlog iff the offered occupancy
``rho = OCC x sum(rate) / II`` stays at or below one bank-cycle per
cycle.  Otherwise latencies are unbounded (a stride-0 store genuinely
grows the backlog without limit) and the affected upper bounds become
infinite — the checks are skipped, never wrong.

Every term is re-derived from the machine's declarative
:class:`~repro.machine.description.MachineDescription` — TLB walk
penalty, L2 bank geometry, queue capacity and discipline, scoreboard
policy — matching the :class:`~repro.sim.memory.MemorySystem` the
machine's ``memory_system()`` builds (which is what the harness, the
fuzzer and the CLI run).  Machine policies adjust the bounds:

* **load-delay tracking** hides up to ``tracking_window`` cycles of
  every use-stall, so each load *instance* exposes at most
  ``max(0, L_max - d - W)`` cycles (a per-instance bound: windows of 1);
* **a speculative LSQ** subtracts ``runahead`` cycles from every load's
  data latency before the residual, and adds an exactly-accounted
  replay term: ``slsq_replay_cycles == slsq_replays * replay_penalty``
  with at most one replay per load execution (none without stores).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.diagnostics import DiagnosticReport
from repro.ddg.edges import DepKind
from repro.ir.memref import AccessPattern, MemRef
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.driver import PipelineResult
from repro.pipeliner.scheduler import list_schedule
from repro.sim.counters import PerfCounters
from repro.sim.executor import (
    FLUSH_CYCLES,
    FRONTEND_CYCLES,
    RSE_CYCLES_PER_REG,
    SPILL_CYCLES,
)

#: float slack for bound comparisons — absorbs summation-order noise only
REL_TOL = 1e-9
ABS_TOL = 1e-6

_INF = float("inf")


def _leq(value: float, bound: float) -> bool:
    """``value <= bound`` up to the closed-accounting float tolerances."""
    if value <= bound:
        return True
    return math.isclose(value, bound, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _eq(value: float, expect: float) -> bool:
    return math.isclose(value, expect, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _json_num(value: float) -> float | None:
    """Infinity is "no bound" — serialise it as null, not as a number."""
    return None if math.isinf(value) else float(value)


@dataclass(frozen=True)
class SiteBound:
    """Static stall bound for one demand-load site (Sec. 2.1)."""

    #: stall-attribution key, ``loopname#index:mnemonic``
    tag: str
    #: body index of the load
    index: int
    #: min cycles to the first data use across iterations (None: no use)
    use_distance: int | None
    #: instances provably in flight when a use stalls (window size)
    window: int
    #: max stall cycles one window can expose: ``max(0, L_max - d)``
    residual: float

    def bound(self, trips: list[int]) -> float:
        """Attributable stall cycles over the given per-invocation trips.

        Completion state is per-invocation (the simulator starts each
        invocation with a fresh completion table), so the window argument
        applies per invocation: ``ceil(n / window) * residual``.
        """
        if self.residual <= 0.0:
            return 0.0
        total = 0.0
        for n in trips:
            if n > 0:
                total += math.ceil(n / self.window) * self.residual
        return total

    def to_dict(self) -> dict:
        return {
            "tag": self.tag,
            "index": self.index,
            "use_distance": self.use_distance,
            "window": self.window,
            "residual": _json_num(self.residual),
        }


@dataclass
class StaticPerfModel:
    """Everything the bound checks need, derived without simulation."""

    loop_name: str
    pipelined: bool
    ii: int
    stage_count: int
    spills: int
    stacked: int
    #: demand loads / demand stores / prefetches that reference memory
    n_load_ops: int
    n_store_ops: int
    n_prefetch_ops: int
    sites: list[SiteBound] = field(default_factory=list)
    #: ceiling on any single access latency (inf when bank-unprovable)
    l_max: float = _INF
    #: the L2 bank leaky-bucket argument applies (rho <= 1)
    bank_provable: bool = False
    bank_rho: float = _INF
    bank_delay_max: float = _INF
    #: max OzQ entries ever in flight (inf when l_max is unbounded)
    occ_bound: float = _INF
    ozq_capacity: int = 0
    #: occ_bound < capacity: BE_L1D_FPU_BUBBLE is provably zero
    ozq_zero_proof: bool = False
    #: every load site's residual is zero: BE_EXE_BUBBLE is provably zero
    zero_stall_proof: bool = False
    #: machine policies the bounds were derived from
    queue_kind: str = "ozq"
    scoreboard_kind: str = "stall-on-use"
    tracking_window: int = 0
    replay_penalty: int = 0
    #: distinct (consumer, load slot, omega) wait edges per iteration
    n_use_edges: int = 0

    # --- derived totals -----------------------------------------------------
    def _split_trips(self, trips) -> tuple[int, list[int], int, int]:
        positive = [int(n) for n in trips if int(n) > 0]
        invocations = len(list(trips))
        iters = sum(positive)
        kernel = sum(n + self.stage_count - 1 for n in positive)
        return invocations, positive, iters, kernel

    def fixed_cycles_per_invocation(self) -> float:
        return (
            self.spills * SPILL_CYCLES
            + self.stacked * RSE_CYCLES_PER_REG
            + FLUSH_CYCLES
            + FRONTEND_CYCLES
        )

    def be_exe_bound(self, trips) -> float:
        _, positive, _, _ = self._split_trips(trips)
        return sum(site.bound(positive) for site in self.sites)

    def be_l1d_bound(self, trips) -> float:
        if self.ozq_zero_proof:
            return 0.0
        _, _, iters, _ = self._split_trips(trips)
        demand = (self.n_load_ops + self.n_store_ops) * iters
        if demand == 0:
            return 0.0
        return demand * self.l_max

    def replay_bound(self, trips) -> float:
        """Max speculative-LSQ replay cycles: one replay per load
        execution, none at all without a store to misspeculate against."""
        if self.queue_kind != "slsq" or not self.n_store_ops:
            return 0.0
        _, _, iters, _ = self._split_trips(trips)
        return float(self.replay_penalty * self.n_load_ops * iters)

    def cycle_interval(self, trips) -> tuple[float, float]:
        """``[lower, upper]`` on the total simulated cycles for ``trips``."""
        invocations, _, _, kernel = self._split_trips(trips)
        lower = (
            invocations * self.fixed_cycles_per_invocation()
            + self.ii * kernel
        )
        upper = (
            lower
            + self.be_exe_bound(trips)
            + self.be_l1d_bound(trips)
            + self.replay_bound(trips)
        )
        return lower, upper

    # --- static-only findings ----------------------------------------------
    def static_report(self) -> DiagnosticReport:
        """Notes derivable before any run: saturation and stall exposure."""
        report = DiagnosticReport()
        if not self.ozq_zero_proof and (
            self.n_load_ops + self.n_store_ops + self.n_prefetch_ops
        ):
            bound = (
                "unbounded" if math.isinf(self.occ_bound)
                else f"{self.occ_bound:.0f}"
            )
            report.add(
                "SA502",
                f"static in-flight bound {bound} does not stay below the "
                f"OzQ capacity {self.ozq_capacity}; BE_L1D_FPU_BUBBLE "
                "cannot be proven zero",
                loop=self.loop_name,
                detail={
                    "occ_bound": _json_num(self.occ_bound),
                    "capacity": self.ozq_capacity,
                },
            )
        if not self.zero_stall_proof:
            exposed = [s for s in self.sites if s.residual > 0.0]
            per_iter = sum(s.residual / s.window for s in exposed)
            report.add(
                "SA503",
                f"{len(exposed)} load site(s) expose residual latency; "
                "static BE_EXE_BUBBLE bound per source iteration is "
                + ("unbounded" if math.isinf(per_iter)
                   else f"{per_iter:.1f} cycles"),
                loop=self.loop_name,
                detail={
                    "sites": [s.to_dict() for s in exposed],
                    "per_iteration_bound": _json_num(per_iter),
                    "l_max": _json_num(self.l_max),
                },
            )
        return report

    # --- post-simulation checks ---------------------------------------------
    def check_counters(
        self, trips, counters: PerfCounters, cycles: float
    ) -> DiagnosticReport:
        """Compare one run's counters against every static invariant."""
        report = DiagnosticReport()
        loop = self.loop_name
        invocations, positive, iters, kernel = self._split_trips(trips)

        counts = {
            "invocations": (counters.invocations, invocations),
            "source_iterations": (counters.source_iterations, iters),
            "kernel_iterations": (counters.kernel_iterations, kernel),
            "spill_instructions": (
                counters.spill_instructions, 2 * self.spills * invocations
            ),
            "demand_loads": (
                sum(counters.loads_by_level.values()),
                self.n_load_ops * iters,
            ),
        }
        for name, (got, want) in counts.items():
            if got != want:
                report.add(
                    "SA511",
                    f"{name}: counted {got}, static model requires {want}",
                    loop=loop,
                    detail={"counter": name, "got": got, "want": want},
                )
        prefetch_cap = self.n_prefetch_ops * iters
        prefetch_got = (
            counters.prefetches_issued + counters.prefetches_dropped_ozq
        )
        if prefetch_got > prefetch_cap:
            report.add(
                "SA511",
                f"prefetches: {prefetch_got} issued+dropped exceed the "
                f"{prefetch_cap} prefetch executions",
                loop=loop,
                detail={"got": prefetch_got, "cap": prefetch_cap},
            )

        exact = {
            "unstalled": (
                counters.unstalled,
                self.ii * kernel
                + self.spills * SPILL_CYCLES * invocations,
            ),
            "be_rse_bubble": (
                counters.be_rse_bubble,
                self.stacked * RSE_CYCLES_PER_REG * invocations,
            ),
            "be_flush_bubble": (
                counters.be_flush_bubble,
                FLUSH_CYCLES * invocations
                # LSQ replays are pipeline flushes; the sub-counter
                # closes the bucket identity exactly
                + (counters.slsq_replay_cycles
                   if self.queue_kind == "slsq" else 0.0),
            ),
            "back_end_bubble_fe": (
                counters.back_end_bubble_fe, FRONTEND_CYCLES * invocations
            ),
        }
        for bucket, (got, want) in exact.items():
            if not _eq(got, want):
                report.add(
                    "SA512",
                    f"{bucket}: counted {got}, static model requires {want}",
                    loop=loop,
                    detail={"bucket": bucket, "got": got, "want": want},
                )
        if not _eq(cycles, counters.total_cycles):
            report.add(
                "SA512",
                f"cycle identity open: cycles={cycles} but bucket sum is "
                f"{counters.total_cycles}",
                loop=loop,
                detail={"cycles": cycles, "buckets": counters.total_cycles},
            )

        # machine-policy sub-counters: exactly accounted and capped
        if self.queue_kind == "slsq":
            want_cycles = counters.slsq_replays * float(self.replay_penalty)
            if not _eq(counters.slsq_replay_cycles, want_cycles):
                report.add(
                    "SA512",
                    f"slsq_replay_cycles {counters.slsq_replay_cycles} != "
                    f"{counters.slsq_replays} replays x penalty "
                    f"{self.replay_penalty}",
                    loop=loop,
                    detail={
                        "slsq_replay_cycles": counters.slsq_replay_cycles,
                        "slsq_replays": counters.slsq_replays,
                        "replay_penalty": self.replay_penalty,
                    },
                )
            replay_cap = (
                self.n_load_ops * iters if self.n_store_ops else 0
            )
            if counters.slsq_replays > replay_cap:
                report.add(
                    "SA511",
                    f"slsq_replays: counted {counters.slsq_replays}, at "
                    f"most {replay_cap} load executions can misspeculate",
                    loop=loop,
                    detail={
                        "slsq_replays": counters.slsq_replays,
                        "cap": replay_cap,
                    },
                )
        elif counters.slsq_replays or counters.slsq_replay_cycles:
            report.add(
                "SA512",
                f"machine queue is {self.queue_kind!r} but LSQ replay "
                f"counters are non-zero ({counters.slsq_replays} replays)",
                loop=loop,
                detail={"slsq_replays": counters.slsq_replays},
            )
        if self.scoreboard_kind == "load-delay-tracking":
            hidden_cap = (
                float(self.tracking_window) * self.n_use_edges * iters
            )
            if not _leq(counters.ldt_hidden_cycles, hidden_cap):
                report.add(
                    "SA513",
                    f"ldt_hidden_cycles {counters.ldt_hidden_cycles} exceed "
                    f"window x use-edge executions = {hidden_cap}",
                    loop=loop,
                    detail={
                        "ldt_hidden_cycles": counters.ldt_hidden_cycles,
                        "cap": hidden_cap,
                    },
                )
        elif counters.ldt_hidden_cycles:
            report.add(
                "SA513",
                f"machine scoreboard is {self.scoreboard_kind!r} but "
                f"{counters.ldt_hidden_cycles} cycles were hidden",
                loop=loop,
                detail={"ldt_hidden_cycles": counters.ldt_hidden_cycles},
            )

        be_exe_ub = self.be_exe_bound(positive)
        if self.zero_stall_proof and not _eq(counters.be_exe_bubble, 0.0):
            report.add(
                "SA513",
                "zero-stall proof holds (every load covers L_max) but "
                f"BE_EXE_BUBBLE is {counters.be_exe_bubble}",
                loop=loop,
                detail={"be_exe_bubble": counters.be_exe_bubble},
            )
        elif not math.isinf(be_exe_ub) and not _leq(
            counters.be_exe_bubble, be_exe_ub
        ):
            report.add(
                "SA513",
                f"BE_EXE_BUBBLE {counters.be_exe_bubble} exceeds the "
                f"static residual-latency bound {be_exe_ub}",
                loop=loop,
                detail={
                    "be_exe_bubble": counters.be_exe_bubble,
                    "bound": be_exe_ub,
                    "sites": [s.to_dict() for s in self.sites],
                },
            )

        if self.ozq_zero_proof:
            for name, got in (
                ("be_l1d_fpu_bubble", counters.be_l1d_fpu_bubble),
                ("ozq_full_cycles", counters.ozq_full_cycles),
                ("prefetches_dropped_ozq",
                 float(counters.prefetches_dropped_ozq)),
            ):
                if not _eq(got, 0.0):
                    report.add(
                        "SA514",
                        f"OzQ occupancy proof (bound {self.occ_bound:.0f} < "
                        f"capacity {self.ozq_capacity}) but {name} is {got}",
                        loop=loop,
                        detail={"counter": name, "got": got},
                    )
        else:
            l1d_ub = self.be_l1d_bound(positive)
            if not math.isinf(l1d_ub) and not _leq(
                counters.be_l1d_fpu_bubble, l1d_ub
            ):
                report.add(
                    "SA514",
                    f"BE_L1D_FPU_BUBBLE {counters.be_l1d_fpu_bubble} "
                    f"exceeds the static per-access bound {l1d_ub}",
                    loop=loop,
                    detail={
                        "be_l1d_fpu_bubble": counters.be_l1d_fpu_bubble,
                        "bound": l1d_ub,
                    },
                )
            if not _leq(counters.ozq_full_cycles, cycles):
                report.add(
                    "SA514",
                    f"ozq_full_cycles {counters.ozq_full_cycles} exceed the "
                    f"run's {cycles} total cycles",
                    loop=loop,
                    detail={
                        "ozq_full_cycles": counters.ozq_full_cycles,
                        "cycles": cycles,
                    },
                )

        lower, upper = self.cycle_interval(trips)
        if not _leq(lower, cycles):
            report.add(
                "SA515",
                f"simulated cycles {cycles} fall below the static lower "
                f"bound {lower} (II x kernel iterations + fixed costs)",
                loop=loop,
                detail={"cycles": cycles, "lower": lower},
            )
        if not math.isinf(upper) and not _leq(cycles, upper):
            report.add(
                "SA515",
                f"simulated cycles {cycles} exceed the static upper bound "
                f"{upper}",
                loop=loop,
                detail={"cycles": cycles, "upper": upper},
            )
        return report

    def check_trace_sites(
        self, trips, site_stalls: dict[str, float]
    ) -> DiagnosticReport:
        """Per-load-site attributed stalls vs the static residual bounds.

        ``site_stalls`` maps stall-attribution tags (the culprit load
        site) to attributed stall cycles, as
        :class:`repro.trace.StallAttribution` reports them.
        """
        report = DiagnosticReport()
        _, positive, _, _ = self._split_trips(trips)
        bounds = {site.tag: site for site in self.sites}
        for tag, stalled in site_stalls.items():
            site = bounds.get(tag)
            if site is None:
                continue  # non-load tags carry no stall attribution
            bound = site.bound(positive)
            if math.isinf(bound) or _leq(stalled, bound):
                continue
            report.add(
                "SA516",
                f"site {tag} was charged {stalled} stall cycles, above "
                f"its static residual bound {bound}",
                loop=self.loop_name,
                inst=site.index,
                detail={
                    "tag": tag,
                    "stall_cycles": stalled,
                    "bound": bound,
                    "site": site.to_dict(),
                },
            )
        return report

    def to_dict(self) -> dict:
        return {
            "loop": self.loop_name,
            "pipelined": self.pipelined,
            "ii": self.ii,
            "stage_count": self.stage_count,
            "l_max": _json_num(self.l_max),
            "bank": {
                "provable": self.bank_provable,
                "rho": _json_num(self.bank_rho),
                "delay_max": _json_num(self.bank_delay_max),
            },
            "ozq": {
                "occ_bound": _json_num(self.occ_bound),
                "capacity": self.ozq_capacity,
                "zero_proof": self.ozq_zero_proof,
            },
            "zero_stall_proof": self.zero_stall_proof,
            "machine": {
                "queue": self.queue_kind,
                "scoreboard": self.scoreboard_kind,
                "tracking_window": self.tracking_window,
                "replay_penalty": self.replay_penalty,
            },
            "sites": [s.to_dict() for s in self.sites],
        }


# --- model construction -------------------------------------------------------

def _bank_rate_burst(ref: MemRef, layout, geometry) -> tuple[float, float]:
    """Leaky-bucket arrival bound of one reference onto any single L2 bank.

    For a known stride ``s`` in a space of ``S`` bytes, one bank receives
    runs of ``ceil(W / s)`` consecutive arrivals once per ``B*W`` bytes of
    address progress, plus one extra run whenever the stream wraps at the
    space boundary (streams are generated modulo the space size).  Unknown
    strides, indirect/chase patterns and invariant addresses can hit one
    bank every execution: rate 1.  ``geometry`` is the machine's
    :class:`~repro.machine.description.BankGeometry`.
    """
    width = geometry.width
    banks = geometry.banks
    spec = layout.get(ref.space) if layout else None
    stride = None
    if ref.pattern is AccessPattern.AFFINE:
        stride = ref.stride
    elif ref.pattern is AccessPattern.SYMBOLIC_STRIDE and spec is not None:
        stride = spec.runtime_stride
    if stride is None or spec is None or spec.size <= 0:
        return 1.0, 1.0
    s = abs(int(stride))
    if s == 0:
        return 1.0, 1.0
    run = math.ceil(width / s)
    rate = min(1.0, s * run / (banks * width) + s * run / spec.size)
    return rate, 2.0 * run + 2.0


def build_perf_model(
    result: PipelineResult,
    machine: ItaniumMachine,
    layout: dict | None = None,
) -> StaticPerfModel:
    """Derive the static model for one compiled loop.

    ``layout`` (space name -> :class:`~repro.sim.address.StreamSpec`) is
    optional: it tightens the L2 bank argument with the space sizes and
    runtime strides the workload declares.  Without it, bank backlogs are
    usually unprovable and the affected upper bounds come back infinite.
    """
    loop = result.loop
    if result.pipelined and result.schedule is not None:
        times = result.schedule.times
        ii = result.schedule.ii
    else:
        times = list_schedule(result.ddg, machine)
        ii = result.seq_length
    ii = max(1, int(ii))
    stage_count = (
        max(t // ii for t in times.values()) + 1 if times else 1
    )

    demand_loads = [
        i for i in loop.body
        if i.is_load and not i.is_prefetch and i.memref is not None
    ]
    demand_stores = [
        i for i in loop.body
        if i.is_store and not i.is_prefetch and i.memref is not None
    ]
    prefetch_ops = [i for i in loop.body if i.is_prefetch and i.memref is not None]

    description = machine.description

    # L2 bank backlog: provable iff the summed arrival rate fits in the
    # bank's service rate of II / OCC arrivals per iteration
    if description.banks.enabled:
        occupancy = description.banks.occupancy
        rate_sum = 0.0
        burst_sum = 0.0
        for inst in demand_loads + demand_stores:
            rate, burst = _bank_rate_burst(
                inst.memref, layout, description.banks
            )
            rate_sum += rate
            burst_sum += burst
        bank_rho = occupancy * rate_sum / ii
        bank_provable = bank_rho <= 1.0 + REL_TOL
        bank_delay_max = (
            occupancy * (rate_sum + burst_sum) if bank_provable else _INF
        )
    else:
        bank_rho = 0.0
        bank_provable = True
        bank_delay_max = 0.0

    # latency ceiling: full hierarchy walk + pending-fill chain (each link
    # adds one TLB walk and one FP-conversion cycle) + bank backlog
    t = machine.timings
    walk_penalty = description.tlb.miss_penalty
    l_max = (
        t.l1 + t.l2 + t.l3 + t.memory
        + 4 * (walk_penalty + t.fp_extra)
        + bank_delay_max
    )
    # a speculative LSQ issues loads `runahead` cycles early, so the
    # *data* latency a consumer can wait on is uniformly lower (the OzQ
    # occupancy term below keeps the full l_max: entries live until the
    # fill actually completes)
    l_max_data = l_max
    if description.queue.kind == "slsq":
        l_max_data = max(1.0, l_max - description.queue.runahead)
    tracking_window = (
        description.scoreboard.tracking_window
        if description.scoreboard.kind == "load-delay-tracking" else 0
    )

    # min data-use distance per load, mirroring the simulator's stall-on-
    # use wait construction (flow edges off the load's data result)
    d_by_load: dict[int, int] = {}
    use_edges: set[tuple[int, int, int]] = set()
    for edge in result.ddg.edges:
        if edge.kind is not DepKind.FLOW or not edge.src.is_load:
            continue
        if edge.reg not in edge.src.defs:
            continue
        use_edges.add((edge.dst.index, edge.src.index, edge.omega))
        dist = times[edge.dst] + ii * edge.omega - times[edge.src]
        prev = d_by_load.get(edge.src.index)
        d_by_load[edge.src.index] = dist if prev is None else min(prev, dist)

    sites: list[SiteBound] = []
    for load in loop.loads:
        tag = f"{loop.name}#{load.index}:{load.mnemonic}"
        d = d_by_load.get(load.index)
        if d is None or load.memref is None:
            # no data use (or no memory access): the load stalls nobody
            sites.append(SiteBound(tag, load.index, d, 1, 0.0))
            continue
        d = max(0, int(d))
        if tracking_window:
            # load-delay tracking charges max(0, wait - W) per stall
            # event, and every single wait is at most L_max_data - d —
            # a per-instance bound, so windows collapse to 1
            window = 1
            residual = max(0.0, l_max_data - d - tracking_window)
        else:
            # instances j-1, ..., j-g are in flight when instance j's
            # first use issues iff g*II < d; the stall shadows their
            # residuals, so windows of g+1 instances expose at most one
            # residual.  An exact multiple of II ties with same-cycle
            # issue order: stay conservative and drop the boundary
            # instance.
            if d % ii:
                window = d // ii + 1
            else:
                window = max(1, d // ii)
            residual = max(0.0, l_max_data - d)
        sites.append(SiteBound(tag, load.index, d, window, residual))

    n_mem_ops = len(demand_loads) + len(demand_stores) + len(prefetch_ops)
    occ_bound = (
        n_mem_ops * math.ceil(l_max / ii) if not math.isinf(l_max)
        else (_INF if n_mem_ops else 0.0)
    )
    spills = result.static.spills if result.static is not None else 0
    stacked = result.static.stacked_frame if result.static is not None else 8

    return StaticPerfModel(
        loop_name=loop.name,
        pipelined=result.pipelined,
        ii=ii,
        stage_count=stage_count,
        spills=spills,
        stacked=stacked,
        n_load_ops=len(demand_loads),
        n_store_ops=len(demand_stores),
        n_prefetch_ops=len(prefetch_ops),
        sites=sites,
        l_max=l_max,
        bank_provable=bank_provable,
        bank_rho=bank_rho,
        bank_delay_max=bank_delay_max,
        occ_bound=occ_bound,
        ozq_capacity=machine.ozq_capacity,
        ozq_zero_proof=occ_bound < machine.ozq_capacity,
        zero_stall_proof=all(s.residual <= 0.0 for s in sites),
        queue_kind=description.queue.kind,
        scoreboard_kind=description.scoreboard.kind,
        tracking_window=tracking_window,
        replay_penalty=description.queue.replay_penalty,
        n_use_edges=len(use_edges),
    )


def check_simulation(
    result: PipelineResult,
    machine: ItaniumMachine,
    layout: dict | None,
    trips,
    counters: PerfCounters,
    cycles: float,
) -> DiagnosticReport:
    """Build the model and cross-check one finished run against it."""
    model = build_perf_model(result, machine, layout)
    return model.check_counters(trips, counters, cycles)
