"""JSON run manifests: what ran, from which inputs, how fast, what cached.

Every :func:`repro.harness.pool.run_suite` invocation produces a
:class:`RunManifest` — one :class:`CellRecord` per (benchmark, config)
cell with its cycle totals, wall-clock duration and cache hit/miss flag —
and writes it under ``benchmarks/results/runs/`` by default.  Manifests
are the input to ``python -m repro compare``.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import time
import uuid
from pathlib import Path

from repro.errors import HarnessError

MANIFEST_VERSION = 1


def current_git_sha(cwd: str | Path | None = None) -> str:
    """The checked-out commit, or ``"unknown"`` outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or Path(__file__).resolve().parents[3],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def default_runs_dir() -> Path:
    """``benchmarks/results/runs`` next to the repo when discoverable."""
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "results" / "runs"
    return Path("benchmarks") / "results" / "runs"


@dataclasses.dataclass
class CellRecord:
    """Provenance of one (benchmark, config) cell of a sweep."""

    benchmark: str
    suite: str
    config: str
    total_cycles: float
    loop_cycles: float
    serial_cycles: float
    cache_hit: bool
    duration_s: float
    # translation-validation status (defaults keep pre-verify manifests
    # loading through CellRecord(**cell))
    #: the repro.analysis verifier ran on this cell's compiled loops
    verified: bool = False
    verify_errors: int = 0
    verify_warnings: int = 0
    #: loops whose simulated counters were checked against the SA5xx
    #: static performance bounds, and how many violated them (the
    #: violations are also counted in ``verify_errors``)
    bounds_checked: int = 0
    bounds_violations: int = 0
    #: compact repro.trace summary (see ``trace_summary``) when the cell
    #: ran with ``--trace``; None keeps pre-trace manifests loading
    trace: dict | None = None
    #: "ok", or "timeout" when the job's worker was reaped at its
    #: deadline (cycle fields are 0.0 and meaningless); the default keeps
    #: pre-status manifests loading through ``CellRecord(**cell)``
    status: str = "ok"
    #: simulator backend the cell requested ("interp" | "fast"); purely
    #: provenance — backends are bit-identical, so it stays out of
    #: :meth:`RunManifest.fingerprint` and every cache key.  The default
    #: keeps pre-backend manifests loading through ``CellRecord(**cell)``
    backend: str = ""
    #: machine model the cell ran on, by registry name, plus the digest
    #: of its full :class:`~repro.machine.MachineDescription`.  Unlike
    #: ``backend`` the machine *determines* the cycles, so the manifest
    #: fingerprint covers it — but only when it differs from the default
    #: ``itanium2``, which keeps every pre-machine fingerprint stable.
    #: The defaults keep pre-machine manifests loading
    machine: str = ""
    machine_digest: str = ""


@dataclasses.dataclass
class RunManifest:
    """One harness run: inputs, environment, timings, per-cell records."""

    run_id: str
    created_utc: str
    git_sha: str
    suite: str
    seed: int
    workers: int
    configs: list[str]
    cells: list[CellRecord]
    wall_time_s: float
    #: machine model the whole run used (registry name); the default
    #: keeps pre-machine manifests loading through :meth:`from_dict`
    machine: str = "itanium2"

    @staticmethod
    def new(
        suite: str,
        seed: int,
        workers: int,
        configs: list[str],
        cells: list[CellRecord],
        wall_time_s: float,
        machine: str = "itanium2",
    ) -> "RunManifest":
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        return RunManifest(
            run_id=f"{stamp}-{suite or 'suite'}-{uuid.uuid4().hex[:6]}",
            created_utc=stamp,
            git_sha=current_git_sha(),
            suite=suite,
            seed=seed,
            workers=workers,
            configs=list(configs),
            cells=cells,
            wall_time_s=wall_time_s,
            machine=machine,
        )

    # --- cache accounting ---------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cache_hit)

    @property
    def cache_misses(self) -> int:
        return len(self.cells) - self.cache_hits

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / len(self.cells) if self.cells else 0.0

    @property
    def timeouts(self) -> int:
        return sum(1 for cell in self.cells if cell.status == "timeout")

    def cell(self, benchmark: str, config: str) -> CellRecord:
        for record in self.cells:
            if record.benchmark == benchmark and record.config == config:
                return record
        raise KeyError(f"no cell ({benchmark!r}, {config!r}) in manifest")

    # --- (de)serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["version"] = MANIFEST_VERSION
        data["cache"] = {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": self.cache_hit_rate,
        }
        return data

    @staticmethod
    def from_dict(data: dict) -> "RunManifest":
        if data.get("version") != MANIFEST_VERSION:
            raise HarnessError(
                f"unsupported manifest version {data.get('version')!r}"
            )
        cells = [CellRecord(**cell) for cell in data["cells"]]
        fields = {
            f.name: data[f.name]
            for f in dataclasses.fields(RunManifest)
            if f.name != "cells" and f.name in data
        }
        return RunManifest(cells=cells, **fields)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @staticmethod
    def load(path: str | Path) -> "RunManifest":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise HarnessError(f"cannot read manifest {path}: {exc}") from exc
        return RunManifest.from_dict(data)

    def fingerprint(self) -> str:
        """Content digest of what the run *computed*.

        Covers the suite, seed, config set, machine model and every
        cell's cycle totals and status — and deliberately excludes
        provenance that varies between otherwise-identical runs (run id,
        timestamps, git sha, worker count, wall time, cache hit flags,
        durations).  Two runs of the same suite agree on this digest iff
        they produced bit-identical cycles, which is how the service
        proves an HTTP-submitted sweep matches a local one.  The machine
        enters the material only when it is not the default
        ``itanium2``: default-machine digests are bit-identical to those
        minted before machine models existed.
        """
        from repro.harness.cache import hash_key

        material = {
            "suite": self.suite,
            "seed": self.seed,
            "configs": sorted(self.configs),
            "cells": [
                {
                    "benchmark": cell.benchmark,
                    "suite": cell.suite,
                    "config": cell.config,
                    "total_cycles": cell.total_cycles,
                    "loop_cycles": cell.loop_cycles,
                    "serial_cycles": cell.serial_cycles,
                    "status": cell.status,
                }
                for cell in sorted(
                    self.cells, key=lambda c: (c.benchmark, c.config)
                )
            ],
        }
        if self.machine and self.machine != "itanium2":
            material["machine"] = self.machine
        return hash_key(material)

    # --- verification accounting --------------------------------------------
    @property
    def verified_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.verified)

    @property
    def verify_errors(self) -> int:
        return sum(cell.verify_errors for cell in self.cells)

    @property
    def bounds_checked(self) -> int:
        return sum(cell.bounds_checked for cell in self.cells)

    @property
    def bounds_violations(self) -> int:
        return sum(cell.bounds_violations for cell in self.cells)

    # --- trace accounting -----------------------------------------------------
    @property
    def traced_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.trace is not None)

    @property
    def trace_failures(self) -> int:
        """Cells whose closed-accounting check failed."""
        return sum(
            1
            for cell in self.cells
            if cell.trace is not None and not cell.trace.get("ok", True)
        )

    def summary(self) -> str:
        text = (
            f"run {self.run_id}: {len(self.cells)} cells, "
            f"{len(self.configs)} configs, workers={self.workers}, "
            f"cache {self.cache_hits}/{len(self.cells)} hits "
            f"({100 * self.cache_hit_rate:.0f}%), "
        )
        if self.timeouts:
            text += f"{self.timeouts} timeout(s), "
        if self.verified_cells:
            text += (
                f"verified {self.verified_cells}/{len(self.cells)} cells "
                f"({self.verify_errors} error(s)), "
            )
        if self.bounds_checked:
            text += (
                f"bounds {self.bounds_checked} loop(s) checked "
                f"({self.bounds_violations} violation(s)), "
            )
        if self.traced_cells:
            text += (
                f"traced {self.traced_cells}/{len(self.cells)} cells "
                f"({self.trace_failures} accounting failure(s)), "
            )
        text += f"wall {self.wall_time_s:.1f}s"
        return text
