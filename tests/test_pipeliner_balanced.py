"""Tests for balanced scheduling (the Kerns & Eggers comparison policy)."""

import numpy as np
import pytest

from repro.config import CompilerConfig, baseline_config
from repro.ir import parse_loop
from repro.pipeliner import pipeline_loop
from repro.pipeliner.balanced import PerLoadLatencyMachine, balanced_pipeline
from repro.sim import MemorySystem, simulate_loop
from repro.workloads.loops import low_trip_linear, pointer_chase
from tests.conftest import RUNNING_EXAMPLE


class TestPerLoadLatencyMachine:
    def test_overrides_expected_only(self, running_example, machine):
        load = running_example.body[0]
        wrapped = PerLoadLatencyMachine(machine, {load.index: 9})
        data = load.defs[0]
        assert wrapped.flow_latency(load, data, expected=True) == 9
        assert wrapped.flow_latency(load, data, expected=False) == 1
        # the address result stays a 1-cycle post-increment either way
        assert wrapped.flow_latency(load, load.uses[0], expected=True) == 1

    def test_delegation(self, machine):
        wrapped = PerLoadLatencyMachine(machine, {})
        assert wrapped.resources is machine.resources
        assert wrapped.ozq_capacity == machine.ozq_capacity


class TestBalancedPipeline:
    def test_single_load_gets_whole_budget(self, machine):
        loop = parse_loop(RUNNING_EXAMPLE)
        result = balanced_pipeline(loop, machine, total_budget=12)
        assert result.pipelined
        p = result.stats.placements[0]
        assert p.boosted
        assert p.use_distance == 1 + 12

    def test_budget_split_across_loads(self, machine):
        loop, _ = low_trip_linear("bal")
        loop.trip_count.estimate = 1000.0
        result = balanced_pipeline(loop, machine, total_budget=12)
        distances = [p.use_distance for p in result.stats.placements]
        # two loads share the 12-cycle budget: 6 extra each
        assert all(d == 1 + 6 for d in distances)

    def test_recurrence_cycles_still_protected(self, machine):
        loop, _ = pointer_chase("bal", heap=1 << 20)
        loop.trip_count.estimate = 100.0
        result = balanced_pipeline(loop, machine, total_budget=24)
        # the chase load must stay at base latency despite the balancing
        chase = [p for p in result.stats.placements
                 if p.load.memref.name == "child"]
        assert chase[0].use_distance == 1
        assert result.ii == result.bounds.min_ii

    def test_balanced_wastes_effort_on_cache_resident_loads(self, machine):
        """The paper's argument for *selective* boosting: uniform budgets
        pay pipeline depth on loads that never miss."""
        trips = [12] * 300

        loop_h, layout = low_trip_linear("res", working_set=8 * 1024)
        loop_h.trip_count.estimate = 12.0
        hinted = pipeline_loop(loop_h, machine, baseline_config())
        base_sim = simulate_loop(
            hinted, machine, layout, trips,
            memory=MemorySystem(machine.timings),
        )

        loop_b, layout_b = low_trip_linear("res", working_set=8 * 1024)
        loop_b.trip_count.estimate = 12.0
        balanced = balanced_pipeline(loop_b, machine, total_budget=20)
        bal_sim = simulate_loop(
            balanced, machine, layout_b, trips,
            memory=MemorySystem(machine.timings),
        )
        # the loads are L1-resident: balancing adds stages for nothing
        assert balanced.stats.stage_count > hinted.stats.stage_count
        assert bal_sim.cycles > base_sim.cycles
