"""Tests for the critical/non-critical load classification (Sec. 3.3)."""

from repro.ddg import build_ddg
from repro.ir import LoopBuilder
from repro.ir.memref import AccessPattern, LatencyHint
from repro.pipeliner import classify_loads, compute_bounds


def _chase_with_fields(hint=LatencyHint.L2):
    """Fields off-cycle, chase on-cycle (the mcf shape)."""
    b = LoopBuilder()
    node = b.live_greg("node")
    fref = b.memref("f", pattern=AccessPattern.POINTER_CHASE, size=8)
    fref.hint = hint
    fref.hint_source = "hlo"
    val = b.load("ld8", node, fref)
    b.alu_imm("adds", val, 1)
    cref = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8,
                    space="nodes")
    cref.hint = hint
    cref.hint_source = "hlo"
    b.load_into("ld8", node, node, cref)
    return b.build("mcf")


class TestClassification:
    def test_on_cycle_load_is_critical(self, machine):
        loop = _chase_with_fields()
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        crit = classify_loads(ddg, machine, bounds)
        chase = loop.body[-1]
        field = loop.body[0]
        assert chase in crit.critical
        assert field not in crit.critical
        assert field in crit.boosted
        assert chase not in crit.boosted

    def test_unhinted_loads_not_boosted(self, machine, running_example):
        ddg = build_ddg(running_example)
        bounds = compute_bounds(ddg, machine)
        crit = classify_loads(ddg, machine, bounds)
        assert not crit.boosted
        # the running example's load is off any recurrence: not critical
        assert not crit.critical

    def test_hinted_off_cycle_load_boosted(self, machine, running_example):
        running_example.body[0].memref.hint = LatencyHint.L3
        ddg = build_ddg(running_example)
        bounds = compute_bounds(ddg, machine)
        crit = classify_loads(ddg, machine, bounds)
        assert running_example.body[0] in crit.boosted

    def test_expected_fn_only_data_edges(self, machine):
        loop = _chase_with_fields()
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        crit = classify_loads(ddg, machine, bounds)
        field = loop.body[0]
        for edge in ddg.succs(field):
            if edge.reg in field.defs:
                assert crit.expected_fn(edge)
        chase = loop.body[-1]
        for edge in ddg.succs(chase):
            assert not crit.expected_fn(edge)

    def test_demote_all(self, machine):
        loop = _chase_with_fields()
        ddg = build_ddg(loop)
        crit = classify_loads(ddg, machine, compute_bounds(ddg, machine))
        assert crit.boosted
        demoted = crit.demote_all()
        assert not demoted.boosted
        assert demoted.critical == crit.critical

    def test_demote_policy_hints_keeps_hlo(self, machine):
        loop = _chase_with_fields()
        # add a policy-hinted load alongside the HLO-hinted field load
        field = loop.body[0]
        assert field.memref.hint_source == "hlo"
        ddg = build_ddg(loop)
        crit = classify_loads(ddg, machine, compute_bounds(ddg, machine))
        field.memref.hint_source = "policy"
        gated = crit.demote_policy_hints()
        assert field not in gated.boosted
        field.memref.hint_source = "hlo"
        kept = crit.demote_policy_hints()
        assert field in kept.boosted

    def test_tight_resource_bound_protects_ii(self, machine):
        """A load on a cycle whose boosted length exceeds the Resource II
        must be demoted to base latency (the whole point of Sec. 3.3)."""
        b = LoopBuilder()
        ptr = b.live_greg("p")
        ref = b.memref("a", pattern=AccessPattern.POINTER_CHASE, size=8)
        ref.hint = LatencyHint.L3
        ref.hint_source = "hlo"
        b.load_into("ld8", ptr, ptr, ref)
        loop = b.build("tight")
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        assert bounds.min_ii < 21
        crit = classify_loads(ddg, machine, bounds)
        assert loop.body[0] in crit.critical

    def test_res_ii_threshold_variant(self, machine):
        loop = _chase_with_fields()
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        for threshold in ("min_ii", "res_ii"):
            crit = classify_loads(ddg, machine, bounds, threshold=threshold)
            assert loop.body[-1] in crit.critical

    def test_unknown_threshold_rejected(self, machine):
        import pytest

        loop = _chase_with_fields()
        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, machine)
        with pytest.raises(ValueError):
            classify_loads(ddg, machine, bounds, threshold="wat")
