"""Cycle-level runtime observability for the simulator.

``repro.trace`` turns the simulator's aggregate ``PerfCounters`` into a
measurable story: a structured event stream
(:mod:`repro.trace.events`), a stall-attribution analyzer with closed
cycle accounting (:mod:`repro.trace.attribution`), and exporters —
Chrome trace-event JSON (:mod:`repro.trace.chrome`), an ASCII kernel
timeline (:mod:`repro.trace.timeline`) and compact JSON summaries
(:mod:`repro.trace.runner`).  The CLI front-end is
``python -m repro trace`` plus ``--trace`` on ``experiment``/``bench``;
docs/trace.md has the event schema and examples.
"""

from repro.trace.events import (
    CacheFill,
    CaptureSink,
    CountingSink,
    LoadIssue,
    NullSink,
    OpIssue,
    OzqFull,
    OzqStall,
    PrefetchDrop,
    PrefetchIssue,
    RingBufferSink,
    StoreIssue,
    TeeSink,
    TraceEvent,
    TraceSink,
    UseReady,
    UseStall,
)
from repro.trace.attribution import (
    AccountingCheck,
    LoadSiteReport,
    StallAttribution,
    check_closed_accounting,
)
from repro.trace.chrome import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.timeline import ascii_timeline
from repro.trace.runner import (
    TraceResult,
    merge_trace_summaries,
    render_attribution_text,
    trace_simulation,
    trace_summary,
)

__all__ = [
    "TraceEvent",
    "TraceSink",
    "OpIssue",
    "UseStall",
    "UseReady",
    "OzqStall",
    "OzqFull",
    "LoadIssue",
    "StoreIssue",
    "PrefetchIssue",
    "PrefetchDrop",
    "CacheFill",
    "NullSink",
    "CountingSink",
    "RingBufferSink",
    "CaptureSink",
    "TeeSink",
    "LoadSiteReport",
    "StallAttribution",
    "AccountingCheck",
    "check_closed_accounting",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "ascii_timeline",
    "TraceResult",
    "trace_simulation",
    "trace_summary",
    "merge_trace_summaries",
    "render_attribution_text",
]
