"""The asyncio HTTP front-end: repro-as-a-service.

One process, three moving parts:

* an ``asyncio.start_server`` loop speaking a deliberately small subset
  of HTTP/1.1 (JSON bodies, ``Content-Length`` framing, one request per
  connection) — no framework, no threads on the request path;
* the request pipeline: validate → canonicalise → content-key →
  *artifact-store lookup* (a stored result is served without touching a
  worker) → *in-flight dedup* (an identical queued/running job absorbs
  the submission) → *backpressure* (bounded pending set, HTTP 429) →
  dispatch to the supervised :class:`~repro.harness.workers.WorkerPool`
  with the per-job timeout;
* the bookkeeping around it: job records queryable over HTTP (with
  long-poll ``?wait=``), run manifests saved per completed ``bench`` job
  and diffable via ``POST /v1/compare``, store maintenance endpoints
  (``stats``/``entries``/``verify``/``prune``/``delete``), a structured
  JSON-lines request log, and graceful drain on SIGINT/SIGTERM.

Routes (all JSON)::

    GET    /v1/healthz                liveness
    GET    /v1/stats                  server + store counters
    POST   /v1/jobs                   submit one job or {"jobs": [...]}
    GET    /v1/jobs                   list job records
    GET    /v1/jobs/<id>[?wait=S]     one record (id = request key/prefix)
    GET    /v1/cache/stats            store stats snapshot
    GET    /v1/cache/entries[?limit=] stored (key, mtime) pairs
    POST   /v1/cache/prune            {"max_entries": N}
    POST   /v1/cache/verify           {"delete": bool}
    DELETE /v1/cache/<key>            drop one entry
    GET    /v1/runs                   manifests of completed bench jobs
    GET    /v1/runs/<run_id>          one manifest
    POST   /v1/compare                {"run_a", "run_b", "tolerance"}
    POST   /v1/shutdown               drain and stop

Dedup/batching semantics: the *content address is the job id*.  Two
submissions whose canonical requests agree share one record, one
computation and one stored artifact, whether they arrive together (the
second attaches to the in-flight first) or years apart (the second is a
store hit).  ``POST /v1/jobs`` with ``{"jobs": [...]}`` submits a batch
in one round-trip; each element dedups independently.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import time
import urllib.parse
from pathlib import Path

from repro.errors import ServiceError
from repro.harness.compare import compare_manifests, format_comparison
from repro.harness.manifest import RunManifest
from repro.harness.workers import TASK_OK, TASK_TIMEOUT, WorkerPool
from repro.service.jobs import execute_request
from repro.service.log import RequestLog
from repro.service.protocol import (
    describe_request,
    normalize_request,
    request_key,
)
from repro.service.store import ArtifactStore

#: default TCP port: "2008" + CGO, which is taken, so a stable free-ish one
DEFAULT_PORT = 8437

#: job states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
TIMEOUT = "timeout"

_TERMINAL = (DONE, ERROR, TIMEOUT)

#: cap on one long-poll wait; clients loop for longer waits
MAX_WAIT_S = 60.0


@dataclasses.dataclass
class ServerConfig:
    """Everything ``repro serve`` can set."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    #: pending (queued + running) jobs beyond which submits get 429
    queue_limit: int = 64
    #: per-job execution timeout, seconds (None: unbounded)
    job_timeout: float | None = 600.0
    cache_dir: str = ".repro-service/store"
    runs_dir: str = ".repro-service/runs"
    #: artifact-store size bound (entries); None leaves it unbounded
    max_entries: int | None = 65536
    log_path: str | None = None
    #: how long shutdown waits for in-flight jobs before closing the pool
    drain_timeout: float = 60.0
    max_body_bytes: int = 8 << 20


class _HttpError(Exception):
    """Internal: maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str, **extra) -> None:
        self.status = status
        self.payload = {"error": message, **extra}
        super().__init__(message)


@dataclasses.dataclass
class JobRecord:
    """One deduplicated unit of work, addressed by its request key."""

    key: str
    kind: str
    label: str
    request: dict
    status: str
    submitted_utc: str
    finished_utc: str | None = None
    duration_s: float = 0.0
    #: served straight from the artifact store, no worker involved
    cached: bool = False
    #: later submissions absorbed by this record while it was in flight
    dedup_hits: int = 0
    result: dict | None = None
    error: str | None = None
    done: asyncio.Event = dataclasses.field(default_factory=asyncio.Event)

    def to_dict(self, *, include_result: bool = True) -> dict:
        record = {
            "id": self.key,
            "kind": self.kind,
            "label": self.label,
            "status": self.status,
            "submitted_utc": self.submitted_utc,
            "finished_utc": self.finished_utc,
            "duration_s": self.duration_s,
            "cached": self.cached,
            "dedup_hits": self.dedup_hits,
            "error": self.error,
        }
        if include_result:
            record["result"] = self.result
        return record


def _utcnow() -> str:
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())


class ReproService:
    """The server: front-end, dedup/batching, store, worker pool."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = ArtifactStore(
            config.cache_dir, max_entries=config.max_entries
        )
        self.runs_dir = Path(config.runs_dir)
        self.log = RequestLog(config.log_path)
        self.records: dict[str, JobRecord] = {}
        self.pool: WorkerPool | None = None
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped = asyncio.Event()
        self._shutting_down = False
        self._started_mono = time.monotonic()
        self.stats = {
            "submitted": 0,       # job submissions seen (incl. dupes)
            "executed": 0,        # jobs a worker actually ran to completion
            "served_from_store": 0,
            "deduped": 0,         # submissions absorbed by in-flight jobs
            "rejected": 0,        # 429s
            "timeouts": 0,
            "errors": 0,
        }

    # --- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.pool = WorkerPool(self.config.workers, name="repro-service")
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_mono = time.monotonic()
        self.log.event(
            "startup",
            host=self.config.host,
            port=self.port,
            workers=self.config.workers,
            queue_limit=self.config.queue_limit,
            store=str(self.store.root),
        )

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, drain in-flight jobs, close the pool."""
        if self._shutting_down:
            return
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [
            record for record in self.records.values()
            if record.status not in _TERMINAL
        ]
        if drain and pending:
            self.log.event("drain", pending=len(pending))
            waits = [record.done.wait() for record in pending]
            try:
                await asyncio.wait_for(
                    asyncio.gather(*waits), self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                self.log.event(
                    "drain-timeout",
                    abandoned=sum(
                        1 for record in pending
                        if record.status not in _TERMINAL
                    ),
                )
        if self.pool is not None:
            self.pool.close()
        self.log.event("shutdown", **self.stats)
        self.log.close()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    @property
    def pending_jobs(self) -> int:
        return sum(
            1 for record in self.records.values()
            if record.status not in _TERMINAL
        )

    # --- submission pipeline -------------------------------------------------
    def _submit_one(self, body: dict) -> tuple[JobRecord, bool, bool]:
        """(record, deduped, accepted-new-work) for one submission."""
        if not isinstance(body, dict):
            raise _HttpError(400, "expected a JSON object per job")
        kind = body.get("kind")
        payload = {k: v for k, v in body.items() if k != "kind"}
        try:
            canonical = normalize_request(kind, payload)
        except ServiceError as exc:
            raise _HttpError(exc.status or 400, str(exc)) from None
        key = request_key(kind, canonical)
        self.stats["submitted"] += 1

        record = self.records.get(key)
        if record is not None and record.status not in (ERROR, TIMEOUT):
            # in-flight or completed: the submission coalesces onto it
            if record.status in _TERMINAL:
                # a completed replay is a store-served result — the
                # in-memory record mirrors the artifact-store entry
                self.stats["served_from_store"] += 1
                return record, False, False
            record.dedup_hits += 1
            self.stats["deduped"] += 1
            return record, True, False

        stored = self.store.get_result(key)
        if stored is not None:
            record = JobRecord(
                key=key,
                kind=kind,
                label=describe_request(kind, canonical),
                request=canonical,
                status=DONE,
                submitted_utc=_utcnow(),
                finished_utc=stored.get("completed_utc"),
                cached=True,
                result=stored["result"],
            )
            record.done.set()
            self.records[key] = record
            self.stats["served_from_store"] += 1
            return record, False, False

        if self.pending_jobs >= self.config.queue_limit:
            self.stats["rejected"] += 1
            raise _HttpError(
                429,
                f"queue full ({self.config.queue_limit} pending jobs)",
                retry_after_s=1.0,
            )
        record = JobRecord(
            key=key,
            kind=kind,
            label=describe_request(kind, canonical),
            request=canonical,
            status=QUEUED,
            submitted_utc=_utcnow(),
        )
        self.records[key] = record
        self._dispatch(record)
        return record, False, True

    def _dispatch(self, record: JobRecord) -> None:
        assert self.pool is not None and self._loop is not None
        loop = self._loop

        def mark_running() -> None:  # supervisor thread -> event loop
            loop.call_soon_threadsafe(self._mark_running, record)

        future = self.pool.submit(
            functools.partial(execute_request, cache_root=str(self.store.root)),
            {"kind": record.kind, "request": record.request},
            timeout=self.config.job_timeout,
            on_start=mark_running,
        )
        asyncio.ensure_future(
            self._finish(record, asyncio.wrap_future(future, loop=loop))
        )

    def _mark_running(self, record: JobRecord) -> None:
        if record.status == QUEUED:
            record.status = RUNNING

    async def _finish(self, record: JobRecord, task) -> None:
        result = await task  # a TaskResult; never raises
        record.duration_s = result.duration_s
        record.finished_utc = _utcnow()
        if result.status == TASK_OK:
            record.status = DONE
            record.result = result.value
            self.stats["executed"] += 1
            try:
                self.store.put_result(
                    record.key, record.kind, record.request, record.result
                )
                self._save_manifest(record)
            except OSError as exc:  # store full/unwritable: job still done
                self.log.event("store-error", key=record.key, error=str(exc))
        elif result.status == TASK_TIMEOUT:
            record.status = TIMEOUT
            record.error = result.error
            self.stats["timeouts"] += 1
        else:
            record.status = ERROR
            if result.exception is not None:
                record.error = (
                    f"{type(result.exception).__name__}: {result.exception}"
                )
            else:
                record.error = result.error or "job failed"
            self.stats["errors"] += 1
        self.log.event(
            "job",
            key=record.key,
            kind=record.kind,
            label=record.label,
            status=record.status,
            duration_s=round(record.duration_s, 4),
        )
        record.done.set()

    def _save_manifest(self, record: JobRecord) -> None:
        """Completed bench jobs feed the queryable results API."""
        if record.kind != "bench" or not record.result:
            return
        manifest = record.result.get("manifest")
        if not manifest:
            return
        path = self.runs_dir / f"{manifest['run_id']}.json"
        path.write_text(json.dumps(manifest, indent=2) + "\n")

    # --- HTTP plumbing -------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        start = time.perf_counter()
        method, path, query = "?", "?", {}
        status, payload = 500, {"error": "internal error"}
        try:
            method, path, query, body = await self._read_request(reader)
            status, payload = await self._route(method, path, query, body)
        except _HttpError as exc:
            status, payload = exc.status, exc.payload
        except (asyncio.IncompleteReadError, ConnectionError, TimeoutError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - must answer something
            status, payload = 500, {"error": f"internal error: {exc}"}
            self.log.event("internal-error", path=path, error=repr(exc))
        try:
            await self._respond(writer, status, payload)
        except (ConnectionError, OSError):
            pass
        self.log.request(
            method, path, status, time.perf_counter() - start
        )

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await asyncio.wait_for(reader.readline(), 30.0)
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            header = await asyncio.wait_for(reader.readline(), 30.0)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > self.config.max_body_bytes:
            raise _HttpError(413, "request body too large")
        raw = await reader.readexactly(length) if length else b""
        body = None
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"bad JSON body: {exc}") from None
        split = urllib.parse.urlsplit(target)
        query = {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(split.query).items()
        }
        return method.upper(), split.path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict) -> None:
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if status == 429:
            head += f"Retry-After: {int(payload.get('retry_after_s', 1))}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        writer.close()

    # --- routing -------------------------------------------------------------
    async def _route(self, method: str, path: str, query: dict, body):
        if self._shutting_down:
            raise _HttpError(503, "shutting down")
        segments = [seg for seg in path.split("/") if seg]
        if not segments or segments[0] != "v1":
            raise _HttpError(404, f"no such path: {path}")
        tail = segments[1:]
        if tail == ["healthz"] and method == "GET":
            return 200, {"ok": True}
        if tail == ["stats"] and method == "GET":
            return 200, self._stats_payload()
        if tail == ["jobs"]:
            if method == "POST":
                return self._post_jobs(body)
            if method == "GET":
                return 200, self._list_jobs()
            raise _HttpError(405, f"{method} not allowed on /v1/jobs")
        if len(tail) == 2 and tail[0] == "jobs" and method == "GET":
            return await self._get_job(tail[1], query)
        if tail == ["cache", "stats"] and method == "GET":
            return 200, self.store.stats_snapshot()
        if tail == ["cache", "entries"] and method == "GET":
            return 200, self._cache_entries(query)
        if tail == ["cache", "prune"] and method == "POST":
            return 200, self._cache_prune(body)
        if tail == ["cache", "verify"] and method == "POST":
            delete = bool((body or {}).get("delete", False))
            return 200, self.store.verify(delete=delete)
        if len(tail) == 2 and tail[0] == "cache" and method == "DELETE":
            return 200, {"deleted": self.store.delete(tail[1])}
        if tail == ["runs"] and method == "GET":
            return 200, {"runs": self._list_runs()}
        if len(tail) == 2 and tail[0] == "runs" and method == "GET":
            return 200, {"manifest": self._load_run(tail[1])}
        if tail == ["compare"] and method == "POST":
            return 200, self._compare(body or {})
        if tail == ["shutdown"] and method == "POST":
            asyncio.ensure_future(self.shutdown())
            return 202, {"ok": True, "draining": self.pending_jobs}
        raise _HttpError(404, f"no such endpoint: {method} {path}")

    # --- handlers ------------------------------------------------------------
    def _post_jobs(self, body) -> tuple[int, dict]:
        if body is None:
            raise _HttpError(400, "missing JSON body")
        if isinstance(body, dict) and "jobs" in body:
            batch = body["jobs"]
            if not isinstance(batch, list) or not batch:
                raise _HttpError(400, "jobs must be a non-empty list")
            out = []
            for item in batch:
                record, deduped, fresh = self._submit_one(item)
                out.append({
                    "job": record.to_dict(include_result=False),
                    "deduped": deduped,
                    "served_from_store": (
                        not fresh and not deduped and record.status == DONE
                    ),
                })
            return 202, {"jobs": out}
        record, deduped, fresh = self._submit_one(body)
        status = 202 if fresh else 200
        return status, {
            "job": record.to_dict(include_result=record.status in _TERMINAL),
            "deduped": deduped,
            "served_from_store": (
                not fresh and not deduped and record.status == DONE
            ),
        }

    def _list_jobs(self) -> dict:
        records = sorted(
            self.records.values(), key=lambda r: r.submitted_utc
        )
        return {
            "jobs": [r.to_dict(include_result=False) for r in records],
            "pending": self.pending_jobs,
        }

    def _find_record(self, job_id: str) -> JobRecord:
        record = self.records.get(job_id)
        if record is not None:
            return record
        if len(job_id) >= 8:  # accept an unambiguous key prefix
            matches = [
                r for key, r in self.records.items()
                if key.startswith(job_id)
            ]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise _HttpError(400, f"ambiguous job id prefix {job_id!r}")
        raise _HttpError(404, f"no such job: {job_id}")

    async def _get_job(self, job_id: str, query: dict) -> tuple[int, dict]:
        record = self._find_record(job_id)
        wait = query.get("wait")
        if wait is not None and record.status not in _TERMINAL:
            try:
                wait_s = min(float(wait), MAX_WAIT_S)
            except ValueError:
                raise _HttpError(400, f"bad wait value {wait!r}") from None
            try:
                await asyncio.wait_for(record.done.wait(), wait_s)
            except asyncio.TimeoutError:
                pass  # return the current (still-pending) state
        return 200, {"job": record.to_dict()}

    def _stats_payload(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "job_timeout_s": self.config.job_timeout,
            "pending": self.pending_jobs,
            "jobs": dict(self.stats),
            "pool": {
                "reaped": self.pool.reaped if self.pool else 0,
                "crashed": self.pool.crashed if self.pool else 0,
            },
            "store": self.store.stats_snapshot(),
        }

    def _cache_entries(self, query: dict) -> dict:
        entries = self.store.entries()
        limit = query.get("limit")
        if limit is not None:
            try:
                entries = entries[: max(0, int(limit))]
            except ValueError:
                raise _HttpError(400, f"bad limit {limit!r}") from None
        return {
            "entries": [
                {"key": key, "mtime": mtime} for key, mtime in entries
            ],
            "total": len(self.store),
        }

    def _cache_prune(self, body) -> dict:
        body = body or {}
        max_entries = body.get("max_entries")
        if not isinstance(max_entries, int) or isinstance(max_entries, bool) \
                or max_entries < 0:
            raise _HttpError(400, "max_entries must be a non-negative int")
        return {"removed": self.store.prune(max_entries)}

    def _list_runs(self) -> list[dict]:
        runs = []
        for path in sorted(self.runs_dir.glob("*.json")):
            try:
                manifest = RunManifest.load(path)
            except Exception:  # noqa: BLE001 - skip foreign files
                continue
            runs.append({
                "run_id": manifest.run_id,
                "suite": manifest.suite,
                "seed": manifest.seed,
                "cells": len(manifest.cells),
                "configs": manifest.configs,
                "fingerprint": manifest.fingerprint(),
            })
        return runs

    def _load_run(self, run_id: str) -> dict:
        path = self.runs_dir / f"{run_id}.json"
        if not path.is_file():
            raise _HttpError(404, f"no such run: {run_id}")
        return json.loads(path.read_text())

    def _compare(self, body: dict) -> dict:
        run_a = body.get("run_a")
        run_b = body.get("run_b")
        if not run_a or not run_b:
            raise _HttpError(400, "compare needs run_a and run_b")
        tolerance = body.get("tolerance", 0.0)
        if isinstance(tolerance, bool) or \
                not isinstance(tolerance, (int, float)) or tolerance < 0:
            raise _HttpError(400, "tolerance must be a non-negative number")
        manifest_a = RunManifest.from_dict(self._load_run(run_a))
        manifest_b = RunManifest.from_dict(self._load_run(run_b))
        comparison = compare_manifests(manifest_a, manifest_b)
        return {
            "run_a": comparison.run_a,
            "run_b": comparison.run_b,
            "matched_cells": comparison.matched_cells,
            "geomeans": {
                config: comparison.geomean(config)
                for config in comparison.deltas
            },
            "overall_geomean": comparison.overall_geomean,
            "regressions": comparison.regressions(float(tolerance)),
            "text": format_comparison(comparison),
        }


async def serve(config: ServerConfig) -> None:
    """Run a service until SIGINT/SIGTERM (the ``repro serve`` body)."""
    import signal

    service = ReproService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(service.shutdown()),
            )
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    print(
        f"repro service on http://{config.host}:{service.port} "
        f"({config.workers} workers, store {service.store.root})",
        flush=True,
    )
    await service.wait_stopped()


class ServiceHandle:
    """A service running on a private event-loop thread (tests, tools)."""

    def __init__(self, service: ReproService, loop, thread) -> None:
        self.service = service
        self.loop = loop
        self.thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.service.config.host}:{self.service.port}"

    def stop(self, timeout: float = 30.0) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        )
        try:
            future.result(timeout)
        finally:
            self.thread.join(timeout)


def serve_in_thread(config: ServerConfig) -> ServiceHandle:
    """Start a service on a fresh daemon thread and wait until it's up."""
    import threading

    service = ReproService(config)
    started = threading.Event()
    holder: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop

        async def main() -> None:
            await service.start()
            started.set()
            await service.wait_stopped()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-service", daemon=True
    )
    thread.start()
    if not started.wait(30.0):
        raise ServiceError("service failed to start within 30s")
    return ServiceHandle(service, holder["loop"], thread)
