"""Register model: classes, virtual registers, and physical register files.

The Itanium architecture provides 128 general registers (``r0``-``r127``),
128 floating-point registers (``f0``-``f127``), 64 predicate registers
(``p0``-``p63``) and 8 branch registers.  Subsets of these *rotate*: on each
back-edge of a pipelined loop executed through ``br.ctop``-style branches the
value in rotating register X becomes visible in register X+1 (Sec. 1.1).

The rotating areas are:

* general registers starting at ``r32`` (programmable size, up to 96),
* floating-point registers ``f32``-``f127`` (96),
* predicate registers ``p16``-``p63`` (48).

The compiler works on *virtual* registers until the rotating register
allocator assigns physical numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: First rotating general register (``r32``).
ROTATING_GR_BASE = 32
#: First rotating floating-point register (``f32``).
ROTATING_FR_BASE = 32
#: First rotating predicate register (``p16``); also the first stage predicate.
ROTATING_PR_BASE = 16

#: Sizes of the rotating areas (Sec. 2.2: "96 integer and 96 FP registers
#: can rotate"; predicates p16-p63).
ROTATING_GR_SIZE = 96
ROTATING_FR_SIZE = 96
ROTATING_PR_SIZE = 48


class RegClass(enum.Enum):
    """Architectural register classes."""

    GR = "r"  #: general (integer) registers
    FR = "f"  #: floating-point registers
    PR = "p"  #: predicate registers
    BR = "b"  #: branch registers
    AR = "ar"  #: application registers (loop count LC, epilog count EC)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegClass.{self.name}"


@dataclass(frozen=True, slots=True)
class Reg:
    """A register operand.

    ``virtual`` registers carry compiler-assigned indices and are renamed to
    physical rotating/static registers after scheduling.  ``physical``
    registers (``virtual=False``) refer directly to architectural numbers
    and are used for loop invariants that live in static registers, for the
    special registers (``LC``, ``EC``), and in post-allocation kernels.
    """

    rclass: RegClass
    index: int
    virtual: bool = True

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be non-negative: {self.index}")

    @property
    def name(self) -> str:
        prefix = self.rclass.value
        if self.virtual:
            return f"v{prefix}{self.index}"
        return f"{prefix}{self.index}"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Reg({self.name})"


def greg(index: int, virtual: bool = True) -> Reg:
    """Shorthand constructor for a general register."""
    return Reg(RegClass.GR, index, virtual)


def freg(index: int, virtual: bool = True) -> Reg:
    """Shorthand constructor for a floating-point register."""
    return Reg(RegClass.FR, index, virtual)


def preg(index: int, virtual: bool = True) -> Reg:
    """Shorthand constructor for a predicate register."""
    return Reg(RegClass.PR, index, virtual)


#: The architectural loop-count application register (``ar.lc``).
AR_LC = Reg(RegClass.AR, 65, virtual=False)
#: The architectural epilog-count application register (``ar.ec``).
AR_EC = Reg(RegClass.AR, 66, virtual=False)


@dataclass(frozen=True, slots=True)
class RegisterFile:
    """Description of one physical register file and its rotating area."""

    rclass: RegClass
    total: int
    rotating_base: int
    rotating_size: int

    def __post_init__(self) -> None:
        if self.rotating_base + self.rotating_size > self.total:
            raise ValueError(
                "rotating area exceeds register file: "
                f"{self.rotating_base}+{self.rotating_size} > {self.total}"
            )

    @property
    def static_count(self) -> int:
        """Number of non-rotating registers in this file."""
        return self.total - self.rotating_size


def itanium_register_files() -> dict[RegClass, RegisterFile]:
    """The register files of an Itanium 2 class machine."""
    return {
        RegClass.GR: RegisterFile(RegClass.GR, 128, ROTATING_GR_BASE, ROTATING_GR_SIZE),
        RegClass.FR: RegisterFile(RegClass.FR, 128, ROTATING_FR_BASE, ROTATING_FR_SIZE),
        RegClass.PR: RegisterFile(RegClass.PR, 64, ROTATING_PR_BASE, ROTATING_PR_SIZE),
        RegClass.BR: RegisterFile(RegClass.BR, 8, 0, 0),
    }
