"""Tier-1 differential slice: heuristic vs exact scheduler, every loop.

The exhaustive cross-machine campaign lives in
``tools/bench_optimal_gap.py``; this is the slice tier-1 holds forever:
on ``itanium2``, every hot loop of all three workload suites and every
corpus reproducer compiles under both schedulers, the optimality
invariant ``optimal_ii <= heuristic_ii`` holds, both schedules pass the
full SA1xx–SA6xx translation validator, and the campaign's report is
byte-deterministic across repeated runs and worker counts.
"""

import json
from pathlib import Path

import pytest

from repro.harness.gap import measure_loop, run_gap_campaign
from repro.harness.jobs import collect_profile
from repro.ir import parse_loop
from repro.machine import build_machine
from repro.workloads import suite_by_name

MACHINE = build_machine("itanium2")
SUITES = ("micro", "cpu2000", "cpu2006")
SEED = 2008
BUDGET = 200_000

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.loop"))

_BENCHES = [
    (suite, bench)
    for suite in SUITES
    for bench in suite_by_name(suite)
]


def assert_clean_pair(record, context):
    assert record["violations"] == [], (context, record["violations"])
    heur, opt = record["heuristic"], record["optimal"]
    assert heur["verify"]["ok"], (context, heur["verify"])
    assert opt["verify"]["ok"], (context, opt["verify"])
    if record["gaps"] is not None:
        assert opt["ii"] <= heur["ii"], context
        assert opt["status"] in ("optimal", "capped")
        if opt["status"] == "optimal":
            assert opt["lower_bound"] == opt["ii"], context


@pytest.mark.parametrize(
    "suite,bench", _BENCHES, ids=[f"{s}-{b.name}" for s, b in _BENCHES]
)
def test_every_suite_loop_pair_is_clean(suite, bench):
    profile = collect_profile(bench, SEED)
    for lw in bench.loops:
        loop, _ = lw.build()
        record = measure_loop(loop, MACHINE, BUDGET, profile)
        assert_clean_pair(record, f"{suite}/{bench.name}/{loop.name}")


def test_suite_loops_all_proven_optimal():
    """On itanium2 the default budget proves optimality for every
    pipelined suite loop — the committed BENCH report's headline."""
    for suite, bench in _BENCHES:
        profile = collect_profile(bench, SEED)
        for lw in bench.loops:
            loop, _ = lw.build()
            record = measure_loop(loop, MACHINE, BUDGET, profile)
            if record["gaps"] is not None:
                assert record["optimal"]["status"] == "optimal", (
                    suite, bench.name, loop.name, record["optimal"]
                )


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_pair_is_clean(path):
    loop = parse_loop(path.read_text(encoding="utf-8"))
    record = measure_loop(loop, MACHINE, BUDGET)
    assert_clean_pair(record, path.stem)


class TestDeterminism:
    def campaign(self, jobs):
        return run_gap_campaign(
            suites=("micro",), machines=("itanium2",),
            fuzz_cases=3, jobs=jobs,
        )

    def test_repeated_runs_are_byte_identical(self):
        a, b = self.campaign(jobs=1), self.campaign(jobs=1)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["fingerprint"] == b["fingerprint"]

    def test_worker_count_does_not_change_the_report(self):
        serial, pooled = self.campaign(jobs=1), self.campaign(jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )


def test_committed_report_claims_hold():
    """The committed BENCH report has zero violations and proves every
    pipelined itanium2 suite pair optimal (its fingerprint is re-checked
    end to end by the CI optimal-smoke job)."""
    committed = json.loads(
        (Path(__file__).parent.parent / "benchmarks" / "results"
         / "BENCH_optimal_gap.json").read_text()
    )
    assert committed["violations"] == 0
    summary = committed["summary"]["itanium2"]["suite"]
    assert summary["proven_optimal"] == summary["pipelined_pairs"]
    assert summary["violations"] == 0
