"""Tests for MinDist matrices, heights and slack."""

import numpy as np
import pytest

from repro.ddg import acyclic_heights, acyclic_slacks, build_ddg, mindist_matrix
from repro.ddg.mindist import NO_PATH
from repro.ddg.slack import modulo_heights
from repro.errors import DependenceError
from repro.ir import LoopBuilder, parse_loop


class TestMinDist:
    def test_running_example_at_ii1(self, running_example, machine):
        ddg = build_ddg(running_example)
        dist = mindist_matrix(ddg, 1, machine.latency_query)
        # load -> add needs 1 cycle, load -> store 2 via the chain
        assert dist[0, 1] == 1
        assert dist[0, 2] == 2
        # no path from store back to load
        assert dist[2, 0] == NO_PATH
        # self distances: post-increment cycles net to <= 0 at feasible II
        assert dist[0, 0] <= 0

    def test_below_recurrence_bound_raises(self, machine):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"),
                   b.memref("a", size=8, is_fp=True), post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        ddg = build_ddg(b.build("red"))
        with pytest.raises(DependenceError):
            mindist_matrix(ddg, 3, machine.latency_query)  # RecII is 4
        dist = mindist_matrix(ddg, 4, machine.latency_query)
        assert np.all(np.diagonal(dist) <= 0)

    def test_schedule_satisfies_mindist(self, running_example, machine):
        """Any legal schedule respects t(j) - t(i) >= mindist[i][j]."""
        from repro.config import baseline_config
        from repro.pipeliner import pipeline_loop

        result = pipeline_loop(running_example, machine, baseline_config())
        sched = result.schedule
        ddg = result.ddg
        dist = mindist_matrix(ddg, sched.ii, machine.latency_query)
        for i in ddg.nodes:
            for j in ddg.nodes:
                if dist[i.index, j.index] == NO_PATH:
                    continue
                assert (
                    sched.time_of(j) - sched.time_of(i)
                    >= dist[i.index, j.index]
                )


class TestHeightsAndSlack:
    def test_acyclic_heights_chain(self, running_example, machine):
        ddg = build_ddg(running_example)
        h = acyclic_heights(ddg, machine.latency_query)
        ld, add, st = running_example.body
        assert h[st] == 0
        assert h[add] == 1
        assert h[ld] == 2

    def test_modulo_heights_match_on_chain(self, running_example, machine):
        ddg = build_ddg(running_example)
        h = modulo_heights(ddg, 1, machine.latency_query)
        ld, add, st = running_example.body
        assert h[ld] > h[add] > h[st]

    def test_modulo_heights_diverge_below_rec_ii(self, machine):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"),
                   b.memref("a", size=8, is_fp=True), post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        ddg = build_ddg(b.build("red"))
        with pytest.raises(DependenceError):
            modulo_heights(ddg, 3, machine.latency_query)

    def test_slack_zero_on_critical_chain(self, running_example, machine):
        ddg = build_ddg(running_example)
        slack = acyclic_slacks(ddg, machine.latency_query)
        assert all(s == 0 for s in slack.values())

    def test_off_path_op_has_slack(self, machine):
        loop = parse_loop(
            """
            memref A affine stride=8 size=8 fp
            memref B affine stride=4
            loop sl
              ldfd f1 = [r1], 8 !A
              fma f4 = f1, f2, f3
              stfd [r2] = f4, 8 !A
              ld4 r5 = [r6], 4 !B
              st4 [r7] = r5, 4 !B
            """
        )
        ddg = build_ddg(loop)
        slack = acyclic_slacks(ddg, machine.latency_query)
        # the FP chain is critical (6+4 = 10 cycles); the int side is slack
        int_load = loop.body[3]
        assert slack[int_load] > 0
        assert slack[loop.body[0]] == 0
