"""Tests for the opcode table."""

import pytest

from repro.errors import IRError
from repro.ir.opcodes import OPCODES, UnitClass, opcode


class TestOpcodeTable:
    def test_integer_loads_have_l1_base_latency(self):
        for mnemonic in ("ld1", "ld2", "ld4", "ld8"):
            op = opcode(mnemonic)
            assert op.is_load
            assert op.latency == 1
            assert op.unit is UnitClass.M

    def test_fp_loads_bypass_l1(self):
        # FP loads hit L2 at best: 5 cycles + 1 format conversion
        for mnemonic in ("ldfs", "ldfd"):
            op = opcode(mnemonic)
            assert op.is_load and op.is_fp
            assert op.latency == 6

    def test_stores_are_memory_ops(self):
        assert opcode("st4").is_store
        assert opcode("stfd").is_store and opcode("stfd").is_fp
        assert opcode("st8").is_memory

    def test_prefetch(self):
        op = opcode("lfetch")
        assert op.is_prefetch and op.is_memory
        assert not op.is_load and not op.is_store

    def test_fp_arithmetic_latency(self):
        assert opcode("fma").latency == 4
        assert opcode("fadd").latency == 4
        assert opcode("fma").unit is UnitClass.F

    def test_alu_is_a_type(self):
        assert opcode("add").unit is UnitClass.A
        assert opcode("add").latency == 1

    def test_compare_writes_predicates(self):
        assert opcode("cmp").writes_predicate
        assert opcode("fcmp").writes_predicate

    def test_branches(self):
        for mnemonic in ("br.ctop", "br.cloop", "br.wtop"):
            op = opcode(mnemonic)
            assert op.is_branch
            assert op.unit is UnitClass.B

    def test_cross_file_transfers_are_slow(self):
        assert opcode("setf").latency >= 5
        assert opcode("getf").latency >= 5

    def test_unknown_opcode_raises(self):
        with pytest.raises(IRError, match="unknown opcode"):
            opcode("frobnicate")

    def test_table_consistency(self):
        for name, op in OPCODES.items():
            assert op.mnemonic == name
            assert op.latency >= 0
            # memory flags are mutually exclusive
            assert sum([op.is_load, op.is_store, op.is_prefetch]) <= 1
