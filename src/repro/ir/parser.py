"""Textual loop parser.

Accepts a small Itanium-flavoured dialect that is convenient in tests and
examples.  Example::

    memref A affine stride=4
    memref B affine stride=4

    loop copy_add trips=200 source=pgo
      ld4 r4 = [r5], 4 !A
      add r7 = r4, r9
      st4 [r6] = r7, 4 !B

Register tokens ``rN``/``fN``/``pN`` denote *virtual* registers.  Memory
instructions reference declared memrefs with ``!NAME``.  A ``(pN)`` prefix
sets the qualifying predicate.  Live-ins are inferred (anything used before
being defined); a ``live_in`` directive can add further registers, and
``live_out`` / ``independent`` directives carry liveness and no-alias
metadata.  Memref declarations accept ``offset=``, ``hint=l2`` and
``hint_source=`` attributes; the loop header accepts ``counted=0`` and
``contig=1``.  :func:`repro.ir.printer.loop_to_source` emits exactly this
dialect, so printing and re-parsing a loop is an identity.
"""

from __future__ import annotations

import re

from repro.errors import IRError, ParseError
from repro.ir.instructions import Instruction
from repro.ir.loop import Loop, TripCountInfo, TripCountSource
from repro.ir.memref import AccessPattern, LatencyHint, MemRef
from repro.ir.opcodes import OPCODES
from repro.ir.registers import Reg, RegClass
from repro.ir.validate import validate_loop

_REG_RE = re.compile(r"^(r|f|p)(\d+)$")
_QP_RE = re.compile(r"^\((p\d+)\)\s+(.*)$")
_MEM_RE = re.compile(r"^\[(\w+)\]$")

_PATTERNS = {
    "affine": AccessPattern.AFFINE,
    "symbolic": AccessPattern.SYMBOLIC_STRIDE,
    "indirect": AccessPattern.INDIRECT,
    "chase": AccessPattern.POINTER_CHASE,
    "invariant": AccessPattern.INVARIANT,
}

_CLASSES = {"r": RegClass.GR, "f": RegClass.FR, "p": RegClass.PR}


def _parse_reg(token: str, line_no: int) -> Reg:
    m = _REG_RE.match(token)
    if not m:
        raise ParseError(f"expected register, got {token!r}", line_no)
    return Reg(_CLASSES[m.group(1)], int(m.group(2)))


def _parse_operand(token: str, line_no: int) -> Reg | int:
    if _REG_RE.match(token):
        return _parse_reg(token, line_no)
    try:
        return int(token, 0)
    except ValueError:
        raise ParseError(f"expected register or immediate, got {token!r}", line_no)


def _parse_int(text: str, line_no: int, what: str) -> int:
    """``int(text, 0)`` with a :class:`ParseError` instead of ValueError."""
    try:
        return int(text, 0)
    except ValueError:
        raise ParseError(f"invalid {what} {text!r}", line_no) from None


def _parse_float(text: str, line_no: int, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ParseError(f"invalid {what} {text!r}", line_no) from None


def _split_kv(tokens: list[str], line_no: int) -> tuple[list[str], dict[str, str]]:
    """Separate positional tokens from key=value tokens."""
    positional: list[str] = []
    kv: dict[str, str] = {}
    for tok in tokens:
        if "=" in tok:
            key, _, value = tok.partition("=")
            kv[key] = value
        else:
            positional.append(tok)
    return positional, kv


def _parse_memref(
    tokens: list[str], refs: dict[str, MemRef], line_no: int
) -> MemRef:
    if not tokens:
        raise ParseError("memref needs a name", line_no)
    name, *rest = tokens
    positional, kv = _split_kv(rest, line_no)
    pattern = AccessPattern.AFFINE
    is_fp = False
    for tok in positional:
        if tok in _PATTERNS:
            pattern = _PATTERNS[tok]
        elif tok == "fp":
            is_fp = True
        else:
            raise ParseError(f"unknown memref attribute {tok!r}", line_no)
    index_ref = None
    if "index" in kv:
        index_name = kv["index"]
        if index_name not in refs:
            raise ParseError(f"unknown index memref {index_name!r}", line_no)
        index_ref = refs[index_name]
    hint = LatencyHint.NONE
    if "hint" in kv:
        try:
            hint = LatencyHint[kv["hint"].upper()]
        except KeyError:
            raise ParseError(
                f"unknown latency hint {kv['hint']!r}", line_no
            ) from None
    try:
        ref = MemRef(
            name=name,
            pattern=pattern,
            stride=(
                _parse_int(kv["stride"], line_no, "stride")
                if "stride" in kv else None
            ),
            size=_parse_int(kv.get("size", "4"), line_no, "size"),
            offset=_parse_int(kv.get("offset", "0"), line_no, "offset"),
            is_fp=is_fp,
            space=kv.get("space", ""),
            index_ref=index_ref,
            hint=hint,
            hint_source=kv.get("hint_source", ""),
        )
    except ValueError as exc:
        raise ParseError(str(exc), line_no)
    return ref


def _parse_instruction(
    text: str, refs: dict[str, MemRef], line_no: int
) -> Instruction:
    qual_pred: Reg | None = None
    m = _QP_RE.match(text)
    if m:
        qual_pred = _parse_reg(m.group(1), line_no)
        text = m.group(2)

    # peel a trailing "!REF" memref annotation
    memref: MemRef | None = None
    parts = text.rsplit("!", 1)
    if len(parts) == 2:
        text, ref_name = parts[0].strip(), parts[1].strip()
        if ref_name not in refs:
            raise ParseError(f"unknown memref {ref_name!r}", line_no)
        memref = refs[ref_name]

    mnemonic, _, rest = text.partition(" ")
    mnemonic = mnemonic.strip()
    if mnemonic not in OPCODES:
        raise ParseError(f"unknown opcode {mnemonic!r}", line_no)
    op = OPCODES[mnemonic]
    rest = rest.strip()

    lhs, eq, rhs = rest.partition("=")
    lhs, rhs = lhs.strip(), rhs.strip()

    def split_commas(s: str) -> list[str]:
        return [t.strip() for t in s.split(",") if t.strip()] if s else []

    post_inc: int | None = None
    if op.is_load:
        if not eq:
            raise ParseError(f"load needs 'dest = [addr]': {text!r}", line_no)
        dest = _parse_reg(lhs, line_no)
        rhs_tokens = split_commas(rhs)
        mem_m = _MEM_RE.match(rhs_tokens[0]) if rhs_tokens else None
        if not mem_m:
            raise ParseError(f"load needs a [addr] operand: {text!r}", line_no)
        addr = _parse_reg(mem_m.group(1), line_no)
        if len(rhs_tokens) > 1:
            post_inc = _parse_int(rhs_tokens[1], line_no, "post-increment")
        return Instruction(
            op,
            defs=(dest,),
            uses=(addr,),
            memref=memref,
            post_increment=post_inc,
            qual_pred=qual_pred,
        )
    if op.is_store:
        mem_m = _MEM_RE.match(lhs)
        if not eq or not mem_m:
            raise ParseError(f"store needs '[addr] = value': {text!r}", line_no)
        addr = _parse_reg(mem_m.group(1), line_no)
        rhs_tokens = split_commas(rhs)
        if not rhs_tokens:
            raise ParseError(f"store needs a value: {text!r}", line_no)
        value = _parse_reg(rhs_tokens[0], line_no)
        if len(rhs_tokens) > 1:
            post_inc = _parse_int(rhs_tokens[1], line_no, "post-increment")
        return Instruction(
            op,
            defs=(),
            uses=(addr, value),
            memref=memref,
            post_increment=post_inc,
            qual_pred=qual_pred,
        )
    if op.is_prefetch:
        tokens = split_commas(rest)
        mem_m = _MEM_RE.match(tokens[0]) if tokens else None
        if not mem_m:
            raise ParseError(f"lfetch needs a [addr] operand: {text!r}", line_no)
        addr = _parse_reg(mem_m.group(1), line_no)
        if len(tokens) > 1:
            post_inc = _parse_int(tokens[1], line_no, "post-increment")
        return Instruction(
            op,
            defs=(),
            uses=(addr,),
            memref=memref,
            post_increment=post_inc,
            qual_pred=qual_pred,
        )

    # plain register operation: "op d = s1, s2[, imm]" or "op s1, s2"
    if memref is not None:
        raise ParseError(
            f"memref annotation !{memref.name} on non-memory op "
            f"{mnemonic!r}", line_no
        )
    defs: tuple[Reg, ...] = ()
    if eq:
        defs = tuple(_parse_reg(t, line_no) for t in split_commas(lhs))
        source_text = rhs
    else:
        source_text = rest
    uses: list[Reg] = []
    imm: int | None = None
    for tok in split_commas(source_text):
        operand = _parse_operand(tok, line_no)
        if isinstance(operand, Reg):
            uses.append(operand)
        else:
            imm = operand
    return Instruction(
        op, defs=defs, uses=tuple(uses), imm=imm, qual_pred=qual_pred
    )


def parse_loop(text: str) -> Loop:
    """Parse one loop (with optional memref declarations) from ``text``."""
    refs: dict[str, MemRef] = {}
    body: list[Instruction] = []
    name: str | None = None
    trips: float | None = None
    source = TripCountSource.PGO
    max_trips: int | None = None
    counted = True
    contiguous = False
    declared_live_in: set[Reg] = set()
    live_out: set[Reg] = set()
    independent: set[str] = set()

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "memref":
            ref = _parse_memref(tokens[1:], refs, line_no)
            refs[ref.name] = ref
        elif tokens[0] == "loop":
            if name is not None:
                raise ParseError("multiple loop headers", line_no)
            if len(tokens) < 2:
                raise ParseError("loop needs a name", line_no)
            name = tokens[1]
            _, kv = _split_kv(tokens[2:], line_no)
            if "trips" in kv:
                trips = _parse_float(kv["trips"], line_no, "trip count")
            if "max_trips" in kv:
                max_trips = _parse_int(kv["max_trips"], line_no, "max_trips")
            if "counted" in kv:
                counted = bool(_parse_int(kv["counted"], line_no, "counted"))
            if "contig" in kv:
                contiguous = bool(_parse_int(kv["contig"], line_no, "contig"))
            if "source" in kv:
                try:
                    source = TripCountSource(kv["source"])
                except ValueError:
                    raise ParseError(
                        f"unknown trip-count source {kv['source']!r}", line_no
                    )
        elif tokens[0] == "live_in":
            declared_live_in.update(
                _parse_reg(t, line_no) for t in tokens[1:]
            )
        elif tokens[0] == "live_out":
            live_out.update(_parse_reg(t, line_no) for t in tokens[1:])
        elif tokens[0] == "independent":
            independent.update(tokens[1:])
        else:
            if name is None:
                raise ParseError("instruction before loop header", line_no)
            try:
                body.append(_parse_instruction(line, refs, line_no))
            except IRError as exc:
                # e.g. a memory op without a !REF annotation, or a !REF on
                # a non-memory op: report as a parse error, not a crash
                raise ParseError(str(exc), line_no) from None

    if name is None:
        raise ParseError("no loop header found")
    if not body:
        raise ParseError(f"loop {name!r} has no instructions")

    live_in: set[Reg] = set(declared_live_in)
    defined: set[Reg] = set()
    for inst in body:
        for reg in inst.all_uses():
            if reg not in defined:
                live_in.add(reg)
        defined.update(inst.all_defs())

    info = TripCountInfo(
        estimate=trips,
        source=source if trips is not None else TripCountSource.UNKNOWN,
        max_trips=max_trips,
        contiguous_across_outer=contiguous,
    )
    loop = Loop(
        name=name,
        body=body,
        live_in=live_in,
        live_out=live_out,
        trip_count=info,
        counted=counted,
        independent_spaces=frozenset(independent),
    )
    validate_loop(loop)
    return loop
