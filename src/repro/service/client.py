"""A small stdlib client for the repro service.

Used by the ``repro submit`` / ``repro status`` CLI, the test-suite and
CI; anything that speaks JSON-over-HTTP works equally well (``curl``
against the routes in :mod:`repro.service.server` is supported usage).
Built on :mod:`http.client` so the client side, like the server side,
needs nothing outside the standard library.

Error contract: any response with status >= 400 raises
:class:`~repro.errors.ServiceError` carrying the HTTP status and the
server's ``error`` message; transport failures raise ``ServiceError``
with ``status=None``.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse

from repro.errors import ServiceError

#: job states mirrored from the server
_TERMINAL = ("done", "error", "timeout")


class ServiceClient:
    """One service endpoint; a new connection per request."""

    def __init__(self, base_url: str, *, timeout: float = 120.0) -> None:
        split = urllib.parse.urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ServiceError(
                f"unsupported scheme {split.scheme!r} (http only)"
            )
        netloc = split.netloc or split.path  # accept "host:port" shorthand
        host, _, port = netloc.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _request(self, method: str, path: str, body: dict | None = None,
                 *, timeout: float | None = None) -> dict:
        payload = json.dumps(body).encode("utf-8") if body is not None \
            else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: {exc}"
            ) from None
        finally:
            conn.close()
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServiceError(
                f"non-JSON response from {path} "
                f"(status {response.status})",
                status=response.status,
            ) from None
        if response.status >= 400:
            raise ServiceError(
                data.get("error", f"HTTP {response.status} on {path}"),
                status=response.status,
            )
        return data

    # --- jobs ----------------------------------------------------------------
    def submit(self, kind: str, **request) -> dict:
        """Submit one job; returns ``{"job": ..., "deduped": ...}``."""
        return self._request("POST", "/v1/jobs", {"kind": kind, **request})

    def submit_batch(self, jobs: list[dict]) -> list[dict]:
        """Submit many jobs in one round-trip; each dedups independently."""
        return self._request("POST", "/v1/jobs", {"jobs": jobs})["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> dict:
        return self._request("GET", "/v1/jobs")

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll_s: float = 30.0) -> dict:
        """Long-poll until the job is terminal; returns the final record.

        Raises :class:`ServiceError` if ``timeout`` elapses first; a job
        that *finished* with status ``error``/``timeout`` is returned,
        not raised — callers inspect ``record["status"]``.
        """
        deadline = time.monotonic() + timeout
        while True:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for job {job_id}"
                )
            wait_s = max(0.1, min(poll_s, budget))
            record = self._request(
                "GET", f"/v1/jobs/{job_id}?wait={wait_s:g}",
                timeout=wait_s + self.timeout,
            )["job"]
            if record["status"] in _TERMINAL:
                return record

    # --- server / store ------------------------------------------------------
    def health(self) -> bool:
        try:
            return bool(self._request("GET", "/v1/healthz").get("ok"))
        except ServiceError:
            return False

    def wait_until_ready(self, *, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.health():
                return
            time.sleep(0.05)
        raise ServiceError(
            f"service at {self.base_url} not ready after {timeout}s"
        )

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def cache_stats(self) -> dict:
        return self._request("GET", "/v1/cache/stats")

    def cache_entries(self, *, limit: int | None = None) -> dict:
        path = "/v1/cache/entries"
        if limit is not None:
            path += f"?limit={limit}"
        return self._request("GET", path)

    def cache_prune(self, max_entries: int) -> int:
        return self._request(
            "POST", "/v1/cache/prune", {"max_entries": max_entries}
        )["removed"]

    def cache_verify(self, *, delete: bool = False) -> dict:
        return self._request("POST", "/v1/cache/verify", {"delete": delete})

    def cache_delete(self, key: str) -> bool:
        return self._request("DELETE", f"/v1/cache/{key}")["deleted"]

    # --- results -------------------------------------------------------------
    def runs(self) -> list[dict]:
        return self._request("GET", "/v1/runs")["runs"]

    def run(self, run_id: str) -> dict:
        return self._request("GET", f"/v1/runs/{run_id}")["manifest"]

    def compare(self, run_a: str, run_b: str, *,
                tolerance: float = 0.0) -> dict:
        return self._request("POST", "/v1/compare", {
            "run_a": run_a, "run_b": run_b, "tolerance": tolerance,
        })

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown", {})
