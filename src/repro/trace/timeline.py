"""ASCII kernel timeline: the event stream as a terminal-width chart.

One line per issue port (the op's row within the II), a stall line and
an OzQ occupancy line, over a window of cycles::

    cycle        2840........2850........2860........2870........
    port-0       L.........L.........L.........L.........
    port-1       .a.........a.........a.........a........
    stall        ....****************........................
    ozq          2233444444444444444432222211110000000000

Issue marks are the mnemonic's first letter (capital for memory ops),
stalls are ``*`` (stall-on-use) / ``o`` (OzQ-full), and the OzQ line
shows the number of in-flight entries per cycle (``+`` for >=10).
"""

from __future__ import annotations

import math

from repro.trace.events import TraceEvent


def _mark(tag: str, op_kind: str) -> str:
    """One display character for an issued op."""
    mnemonic = tag.rsplit(":", 1)[-1]
    char = mnemonic[0] if mnemonic else "?"
    if op_kind in ("load", "store", "prefetch"):
        return char.upper()
    return char.lower()


def ascii_timeline(
    events: list[TraceEvent],
    *,
    start: float | None = None,
    width: int = 100,
) -> str:
    """Render the events inside ``[start, start + width)`` cycles.

    ``start`` defaults to the first issue/stall event in the stream —
    pass a later cycle to look at steady state instead of the ramp-up.
    """
    if width <= 0:
        raise ValueError("timeline width must be positive")
    if start is None:
        start = next(
            (e.cycle for e in events if e.kind in ("issue", "stall")), 0.0
        )
    start = float(start)
    end = start + width

    ports: dict[int, list[str]] = {}
    stall_row = ["."] * width
    ozq_depth = [0] * width

    def col(cycle: float) -> int:
        return int(math.floor(cycle - start))

    def span(begin: float, duration: float) -> range:
        lo = max(0, col(begin))
        hi = min(width, col(begin + duration) + 1)
        return range(lo, hi)

    for event in events:
        kind = event.kind
        if kind == "issue":
            if start <= event.cycle < end:
                row = ports.setdefault(event.row, ["."] * width)
                row[col(event.cycle)] = _mark(event.tag, event.op_kind)
        elif kind == "stall":
            for c in span(event.cycle, event.wait):
                stall_row[c] = "*"
        elif kind == "ozq-stall":
            for c in span(event.cycle, event.wait):
                if stall_row[c] == ".":
                    stall_row[c] = "o"
        elif kind in ("load", "store", "prefetch"):
            if getattr(event, "occupies_ozq", False) and event.latency > 0:
                for c in span(event.cycle, event.latency):
                    ozq_depth[c] += 1

    label_width = max(
        [len("cycle"), len("stall"), len("ozq")]
        + [len(f"port-{row}") for row in ports]
    ) + 2

    # a cycle ruler: the start-cycle number every 10 columns
    ruler = []
    while len(ruler) < width:
        tick = str(int(start + len(ruler)))
        ruler.extend(list(tick[: 10 - (len(ruler) % 10) or 10]))
        while len(ruler) % 10:
            ruler.append(".")
    lines = [f"{'cycle':<{label_width}}{''.join(ruler[:width])}"]
    for row in sorted(ports):
        lines.append(f"{f'port-{row}':<{label_width}}{''.join(ports[row])}")
    lines.append(f"{'stall':<{label_width}}{''.join(stall_row)}")
    ozq_row = "".join(
        "." if d == 0 else (str(d) if d < 10 else "+") for d in ozq_depth
    )
    lines.append(f"{'ozq':<{label_width}}{ozq_row}")
    return "\n".join(lines)
