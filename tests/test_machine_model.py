"""Tests for the machine model: resources, hint translation, latency query."""

import pytest

from repro.errors import ConfigError, MachineModelError
from repro.ir import LoopBuilder, parse_loop
from repro.ir.memref import LatencyHint
from repro.ir.opcodes import UnitClass
from repro.ir.registers import RegClass
from repro.machine import (
    BEST_CASE_TRANSLATION,
    TYPICAL_TRANSLATION,
    HintTranslation,
    ItaniumMachine,
    ResourceModel,
)


class TestResourceModel:
    def test_capacities(self):
        rm = ResourceModel()
        assert rm.capacity(UnitClass.M) == 2
        assert rm.capacity(UnitClass.F) == 2
        # A-type pools M and I
        assert rm.capacity(UnitClass.A) == 4

    def test_resource_ii_running_example(self, running_example):
        rm = ResourceModel()
        # ld (M) + st (M) + add (A) fit in one cycle
        assert rm.resource_ii(running_example.body) == 1

    def test_memory_bound_resource_ii(self):
        b = LoopBuilder()
        refs = [b.memref(f"a{i}", stride=4, space=f"s{i}") for i in range(5)]
        vals = [b.load("ld4", b.live_greg(f"p{i}"), refs[i], post_inc=4)
                for i in range(5)]
        out = vals[0]
        for v in vals[1:]:
            out = b.alu("add", out, v)
        loop = b.build("mem")
        # 5 loads on 2 M ports -> ceil(5/2) = 3
        assert ResourceModel().resource_ii(loop.body) == 3

    def test_fp_bound_resource_ii(self):
        b = LoopBuilder()
        x = b.live_freg("x")
        vals = [b.fma(x, x, x) for _ in range(6)]
        loop = b.build("fp", validate=False)
        assert ResourceModel().resource_ii(loop.body) == 3

    def test_issue_width_bound(self):
        b = LoopBuilder()
        x = b.live_greg("x")
        for _ in range(12):
            x = b.alu_imm("adds", x, 1)
        loop = b.build("wide")
        # 12 A-type on 4 M+I slots -> 3
        assert ResourceModel().resource_ii(loop.body) == 3


class TestHintTranslation:
    def test_typical_values(self):
        t = TYPICAL_TRANSLATION
        assert t.scheduling_latency(LatencyHint.L2, False, base=1) == 11
        assert t.scheduling_latency(LatencyHint.L3, False, base=1) == 21
        # FP loads pay one extra format-conversion cycle
        assert t.scheduling_latency(LatencyHint.L2, True, base=6) == 12
        assert t.scheduling_latency(LatencyHint.L3, True, base=6) == 22

    def test_best_case_values(self):
        t = BEST_CASE_TRANSLATION
        assert t.scheduling_latency(LatencyHint.L2, False, base=1) == 5
        assert t.scheduling_latency(LatencyHint.L3, False, base=1) == 14

    def test_none_returns_base(self):
        assert TYPICAL_TRANSLATION.scheduling_latency(
            LatencyHint.NONE, False, base=1
        ) == 1

    def test_mem_hint_clipped(self):
        # scheduling for more than 20-30 cycles is not advisable (Sec. 2.1)
        got = TYPICAL_TRANSLATION.scheduling_latency(
            LatencyHint.MEM, True, base=6
        )
        assert got <= TYPICAL_TRANSLATION.max_scheduled

    def test_hint_never_lowers_below_base(self):
        t = HintTranslation(name="t", l2=3)
        assert t.scheduling_latency(LatencyHint.L2, False, base=6) == 6


class TestItaniumMachine:
    def test_base_vs_expected_latency(self, machine):
        loop = parse_loop(
            """
            memref A affine stride=4
            loop l
              ld4 r1 = [r2], 4 !A
              add r3 = r1, r9
            """
        )
        load = loop.body[0]
        assert machine.base_latency(load) == 1
        assert machine.expected_load_latency(load) == 1  # no hint
        load.memref.hint = LatencyHint.L3
        assert machine.expected_load_latency(load) == 21

    def test_flow_latency_post_increment_is_one(self, machine):
        loop = parse_loop(
            """
            memref A affine stride=4
            loop l
              ld4 r1 = [r2], 4 !A
              add r3 = r1, r9
            """
        )
        load = loop.body[0]
        load.memref.hint = LatencyHint.L3
        addr = load.uses[0]
        data = load.defs[0]
        assert machine.flow_latency(load, addr, expected=True) == 1
        assert machine.flow_latency(load, data, expected=True) == 21
        assert machine.flow_latency(load, data, expected=False) == 1

    def test_with_translation(self, machine):
        best = machine.with_translation(BEST_CASE_TRANSLATION)
        assert best.translation.name == "best-case"
        assert machine.translation.name == "typical"

    def test_with_ozq_capacity(self, machine):
        tiny = machine.with_ozq_capacity(1)
        assert tiny.ozq_capacity == 1
        assert machine.ozq_capacity == 48

    def test_rotating_capacity(self, machine):
        assert machine.rotating_capacity(RegClass.GR) == 96
        assert machine.rotating_capacity(RegClass.PR) == 48

    def test_memory_timings(self, machine):
        t = machine.timings
        assert (t.l1, t.l2, t.l3) == (1, 5, 14)
        assert t.memory > 100
        assert t.latency_of_level(2, is_fp=True) == 6


class TestConfig:
    def test_labels(self):
        from repro.config import CompilerConfig, HintPolicy, baseline_config

        assert baseline_config().label == "baseline"
        cfg = CompilerConfig(hint_policy=HintPolicy.HLO,
                             trip_count_threshold=16, pgo=False)
        assert "hlo" in cfg.label and "n=16" in cfg.label and "nopgo" in cfg.label

    def test_invalid_threshold(self):
        from repro.config import CompilerConfig

        with pytest.raises(ConfigError):
            CompilerConfig(trip_count_threshold=-1)

    def test_invalid_criticality_threshold(self):
        from repro.config import CompilerConfig

        with pytest.raises(ConfigError):
            CompilerConfig(criticality_threshold="bogus")

    def test_with_(self):
        from repro.config import baseline_config

        cfg = baseline_config().with_(pgo=False)
        assert not cfg.pgo and not cfg.latency_tolerant
