"""Tests for the LoopBuilder API."""

import pytest

from repro.errors import IRError
from repro.ir import LoopBuilder
from repro.ir.loop import TripCountSource
from repro.ir.registers import RegClass


class TestLoopBuilder:
    def test_fresh_registers_are_distinct(self):
        b = LoopBuilder()
        assert b.greg() != b.greg()
        assert b.freg().rclass is RegClass.FR
        assert b.pred().rclass is RegClass.PR

    def test_live_in_inference(self):
        b = LoopBuilder()
        a = b.memref("a", stride=4)
        addr = b.live_greg("pa")
        x = b.load("ld4", addr, a, post_inc=4)
        extern = b.greg()  # used but never defined -> inferred live-in
        y = b.alu("add", x, extern)
        c = b.memref("c", stride=4)
        b.store("st4", b.live_greg("pc"), y, c, post_inc=4)
        loop = b.build("t")
        assert extern in loop.live_in
        assert addr in loop.live_in
        assert x not in loop.live_in

    def test_load_wrong_opcode_rejected(self):
        b = LoopBuilder()
        with pytest.raises(IRError, match="not a load"):
            b.load("add", b.greg(), b.memref("a"))

    def test_store_wrong_opcode_rejected(self):
        b = LoopBuilder()
        with pytest.raises(IRError, match="not a store"):
            b.store("ld4", b.greg(), b.greg(), b.memref("a"))

    def test_fp_load_gets_fp_destination(self):
        b = LoopBuilder()
        dest = b.load("ldfd", b.live_greg("p"), b.memref("x", size=8, is_fp=True))
        assert dest.rclass is RegClass.FR

    def test_load_into_self_recurrence(self):
        b = LoopBuilder()
        node = b.live_greg("node")
        from repro.ir.memref import AccessPattern

        ref = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8)
        out = b.load_into("ld8", node, node, ref)
        assert out is node
        loop = b.build("chase")
        inst = loop.body[0]
        assert inst.defs == (node,) and inst.uses == (node,)

    def test_alu_rejects_memory_ops(self):
        b = LoopBuilder()
        with pytest.raises(IRError):
            b.alu("ld4", b.greg())

    def test_cmp_returns_predicate(self):
        b = LoopBuilder()
        p = b.cmp(b.live_greg("x"), b.live_greg("y"))
        assert p.rclass is RegClass.PR

    def test_accumulator_via_alu_into(self):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"), b.memref("a", size=8, is_fp=True),
                   post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        b.mark_live_out(acc)
        loop = b.build("red")
        assert acc in loop.live_out
        assert loop.defs_of(acc) == [loop.body[1]]

    def test_trip_count_metadata(self):
        b = LoopBuilder()
        a = b.memref("a", stride=4)
        x = b.load("ld4", b.live_greg("p"), a, post_inc=4)
        b.store("st4", b.live_greg("q"), x, b.memref("c", stride=4), post_inc=4)
        loop = b.build("t", trips=123.0, max_trips=500)
        assert loop.trip_count.estimate == 123.0
        assert loop.trip_count.source is TripCountSource.PGO
        assert loop.trip_count.max_trips == 500

    def test_unknown_trips(self):
        b = LoopBuilder()
        a = b.memref("a", stride=4)
        x = b.load("ld4", b.live_greg("p"), a, post_inc=4)
        b.store("st4", b.live_greg("q"), x, b.memref("c", stride=4), post_inc=4)
        loop = b.build("t")
        assert loop.trip_count.source is TripCountSource.UNKNOWN
