"""Tests for the declarative machine-description registry.

The subsystem's contracts: serialization is byte-stable (the content
digest is trustworthy), the digest moves iff a field moves (no silent
aliasing between different machines), the registry rejects unknown
names with the list of known ones, and ``build_machine`` accepts both
names and descriptions.
"""

import dataclasses
import json

import pytest

from repro.errors import MachineModelError
from repro.machine import (
    ItaniumMachine,
    MachineDescription,
    QueueDiscipline,
    ScoreboardPolicy,
    build_machine,
    machine_description,
    machine_names,
)


# --- registry -----------------------------------------------------------------

def test_registry_has_the_three_backends():
    assert machine_names() == ["itanium2", "ldt-core", "slsq-core"]


def test_unknown_machine_raises_with_known_names():
    with pytest.raises(MachineModelError) as exc:
        machine_description("pentium4")
    message = str(exc.value)
    assert "pentium4" in message
    for name in machine_names():
        assert name in message


def test_build_machine_accepts_names_and_descriptions():
    by_name = build_machine("ldt-core")
    by_desc = build_machine(machine_description("ldt-core"))
    assert isinstance(by_name, ItaniumMachine)
    assert by_name.digest() == by_desc.digest()
    assert by_name.name == "ldt-core"
    assert by_name.scoreboard.kind == "load-delay-tracking"


def test_backends_differ_only_where_documented():
    itanium = machine_description("itanium2")
    ldt = machine_description("ldt-core")
    slsq = machine_description("slsq-core")
    assert ldt.with_(name="itanium2",
                     scoreboard=itanium.scoreboard) == itanium
    assert slsq.with_(name="itanium2", queue=itanium.queue) == itanium


# --- serialization ------------------------------------------------------------

def test_to_dict_round_trips_byte_stably():
    for name in machine_names():
        desc = machine_description(name)
        first = json.dumps(desc.to_dict(), sort_keys=True)
        second = json.dumps(desc.to_dict(), sort_keys=True)
        assert first == second
        assert MachineDescription.from_dict(desc.to_dict()) == desc


def test_from_dict_rejects_unknown_keys():
    data = machine_description("itanium2").to_dict()
    data["pipeline_depth"] = 8
    with pytest.raises(MachineModelError):
        MachineDescription.from_dict(data)


def test_digest_changes_iff_a_field_changes():
    base = machine_description("itanium2")
    assert base.digest() == machine_description("itanium2").digest()

    changed = [
        base.with_(name="custom"),
        base.with_(issue_width=4),
        base.with_(queue=QueueDiscipline(kind="slsq", capacity=48,
                                         runahead=8, replay_penalty=4)),
        base.with_(queue=QueueDiscipline(capacity=64)),
        base.with_(scoreboard=ScoreboardPolicy(kind="load-delay-tracking",
                                               tracking_window=8)),
        base.with_(timings=dataclasses.replace(base.timings, memory=300)),
        base.with_(latency_overrides=(("fma", 5),)),
    ]
    digests = {base.digest()} | {d.digest() for d in changed}
    assert len(digests) == len(changed) + 1  # all distinct


def test_registered_backends_have_distinct_digests():
    digests = {machine_description(n).digest() for n in machine_names()}
    assert len(digests) == len(machine_names())


# --- validation ---------------------------------------------------------------

def test_queue_discipline_validates_kind_and_capacity():
    with pytest.raises(MachineModelError):
        QueueDiscipline(kind="rob")
    with pytest.raises(MachineModelError):
        QueueDiscipline(capacity=0)


def test_scoreboard_policy_validates_kind_and_window():
    with pytest.raises(MachineModelError):
        ScoreboardPolicy(kind="wakeup-select")
    with pytest.raises(MachineModelError):
        ScoreboardPolicy(tracking_window=-1)


# --- machine facade -----------------------------------------------------------

def test_machine_exposes_description_fields():
    machine = build_machine("slsq-core")
    assert machine.queue.kind == "slsq"
    assert machine.queue.capacity == 64
    assert machine.ozq_capacity == 64  # queue capacity drives the OzQ bound
    assert machine.digest() == machine_description("slsq-core").digest()


def test_memory_system_matches_description_geometry():
    machine = build_machine("itanium2")
    memory = machine.memory_system()
    desc = machine.description
    assert memory.l1d.config.size == desc.l1d.size
    assert memory.l2.config.line_size == desc.l2.line_size
    assert memory.tlb.miss_penalty == desc.tlb.miss_penalty
    assert memory.L2_BANKS == desc.banks.banks
