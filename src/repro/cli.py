"""Command-line interface.

Four subcommands::

    python -m repro compile loop.s --policy hlo        # kernel + stats
    python -m repro simulate loop.s --trips 2000 --invocations 3 \\
        --space a=64M --space b=64M                    # cycles + counters
    python -m repro experiment --suite cpu2006 --variant hlo -n 32
    python -m repro fig5                               # the theory curves

The loop file format is the textual dialect of
:func:`repro.ir.parser.parse_loop` (see examples in tests/ and README).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.errors import ReproError

_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_size(text: str) -> int:
    """``64M`` -> 67108864; plain integers pass through."""
    text = text.strip().lower()
    for suffix, factor in _SUFFIXES.items():
        if text.endswith(suffix):
            return int(float(text[:-1]) * factor)
    return int(text)


def parse_space(text: str):
    """``name=64M[:stream]`` -> (name, StreamSpec).

    ``:stream`` marks a streaming (cold) space; the default is a reused
    (resident, pre-warmed) one.
    """
    from repro.sim.address import StreamSpec

    name, _, rest = text.partition("=")
    if not rest:
        raise argparse.ArgumentTypeError(
            f"expected name=SIZE[:stream], got {text!r}"
        )
    size_text, _, flag = rest.partition(":")
    reuse = flag != "stream"
    return name, StreamSpec(size=parse_size(size_text), reuse=reuse)


def make_config(args: argparse.Namespace) -> CompilerConfig:
    policy = HintPolicy(args.policy)
    if policy is HintPolicy.BASELINE:
        cfg = baseline_config(pgo=not args.no_pgo, prefetch=not args.no_prefetch)
        return cfg.with_(trip_count_threshold=args.threshold)
    return CompilerConfig(
        hint_policy=policy,
        trip_count_threshold=args.threshold,
        pgo=not args.no_pgo,
        prefetch=not args.no_prefetch,
    )


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy",
        choices=[p.value for p in HintPolicy],
        default="hlo",
        help="hint policy (default: hlo)",
    )
    parser.add_argument("-n", "--threshold", type=int, default=32,
                        help="trip-count threshold (default: 32)")
    parser.add_argument("--no-pgo", action="store_true",
                        help="use the static profile heuristic")
    parser.add_argument("--no-prefetch", action="store_true",
                        help="disable software prefetching")


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop
    from repro.machine import ItaniumMachine

    text = open(args.loop_file).read()
    loop = parse_loop(text)
    compiled = LoopCompiler(ItaniumMachine(), make_config(args)).compile(loop)
    stats = compiled.stats
    print(stats.summary())
    if compiled.result.kernel is not None:
        print()
        print(compiled.result.kernel.format())
    if args.verbose and compiled.result.schedule is not None:
        print()
        print(compiled.result.schedule.format())
        print()
        for p in stats.placements:
            print(
                f"load {p.load.memref.name}: distance={p.use_distance} "
                f"d={p.additional_latency} "
                f"k={p.clustering_factor(stats.ii)} boosted={p.boosted}"
            )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop
    from repro.machine import ItaniumMachine
    from repro.sim import MemorySystem, simulate_loop

    machine = ItaniumMachine()
    loop = parse_loop(open(args.loop_file).read())
    layout = dict(args.space or [])
    missing = {
        i.memref.space for i in loop.body if i.memref is not None
    } - set(layout)
    if missing:
        print(f"error: no --space given for {sorted(missing)}",
              file=sys.stderr)
        return 2
    compiled = LoopCompiler(machine, make_config(args)).compile(loop)
    print(compiled.stats.summary())
    run = simulate_loop(
        compiled.result,
        machine,
        layout,
        [args.trips] * args.invocations,
        memory=MemorySystem(machine.timings),
    )
    c = run.counters
    print(f"cycles: {run.cycles:,.0f} "
          f"({run.cycles_per_iteration:.2f}/iteration)")
    print(c.summary())
    if c.loads_by_level:
        levels = {1: "L1D", 2: "L2", 3: "L3", 4: "mem"}
        parts = [f"{levels[k]}={v}" for k, v in sorted(c.loads_by_level.items())]
        print("loads by level:", " ".join(parts))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.core import Experiment, format_gain_table
    from repro.workloads import cpu2000_suite, cpu2006_suite

    suite = cpu2006_suite() if args.suite == "cpu2006" else cpu2000_suite()
    if args.benchmark:
        suite = [b for b in suite if b.name in args.benchmark]
        if not suite:
            print("error: no matching benchmarks", file=sys.stderr)
            return 2
    exp = Experiment(suite, seed=args.seed)
    base = baseline_config(pgo=not args.no_pgo, prefetch=not args.no_prefetch)
    variant = make_config(args)
    result = exp.compare(base, variant)
    print(format_gain_table(
        {variant.label: result},
        title=f"{args.suite} — {variant.label} vs {base.label}",
    ))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from repro.core.theory import fig5_series

    series = fig5_series(max_k=args.max_k)
    header = "k " + "".join(f"{c:>10}" for c in series)
    print(header)
    for k in range(1, args.max_k + 1):
        row = f"{k} "
        for c in series:
            row += f"{dict(series[c])[k]:>9.1f}%"
        print(row)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Latency-tolerant software pipelining (CGO 2008) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a loop file")
    p_compile.add_argument("loop_file")
    p_compile.add_argument("-v", "--verbose", action="store_true")
    _add_config_args(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_sim = sub.add_parser("simulate", help="compile and simulate a loop")
    p_sim.add_argument("loop_file")
    p_sim.add_argument("--trips", type=int, default=1000,
                       help="iterations per invocation")
    p_sim.add_argument("--invocations", type=int, default=1)
    p_sim.add_argument(
        "--space", type=parse_space, action="append", metavar="NAME=SIZE",
        help="working-set size per memory space, e.g. a=64M or a=8K:stream",
    )
    _add_config_args(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser("experiment", help="run a suite comparison")
    p_exp.add_argument("--suite", choices=["cpu2006", "cpu2000"],
                       default="cpu2006")
    p_exp.add_argument("--benchmark", action="append",
                       help="restrict to specific benchmarks")
    p_exp.add_argument("--seed", type=int, default=2008)
    _add_config_args(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_fig5 = sub.add_parser("fig5", help="print the Fig. 5 theory curves")
    p_fig5.add_argument("--max-k", type=int, default=8)
    p_fig5.set_defaults(func=cmd_fig5)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
