"""Data TLB model.

Software prefetches (``lfetch``) are dropped when they miss the TLB — the
hardware will not take a fault or walk the page table on a hint.  This is
the mechanism behind prefetch-distance limiting for symbolically-strided
and indirect references (Sec. 3.2, rules 2a/2b): prefetching far ahead
through many pages evicts TLB entries and the prefetches stop landing.
"""

from __future__ import annotations

from collections import OrderedDict


class TLB:
    """Fully-associative LRU data TLB."""

    def __init__(
        self,
        entries: int = 128,
        page_size: int = 16384,
        miss_penalty: int = 25,
    ) -> None:
        self.entries = entries
        self.page_size = page_size
        self.miss_penalty = miss_penalty
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _page(self, addr: int) -> int:
        return addr // self.page_size

    def access(self, addr: int) -> int:
        """Demand access: returns the added penalty (0 on a hit)."""
        page = self._page(addr)
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return 0
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return self.miss_penalty

    def probe(self, addr: int) -> bool:
        """Non-faulting probe used by prefetches; does not refill."""
        page = self._page(addr)
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def reset(self) -> None:
        self._pages.clear()
        self.hits = 0
        self.misses = 0
