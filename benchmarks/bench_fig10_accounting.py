"""Fig. 10: cycle accounting for the Fig. 9 HLO run (no PGO, CPU2006).

The paper's Caliper measurement shows: BE_EXE_BUBBLE (data stalls) drops
~12%, the OzQ-full share rises (8.2% -> 9.4%) and with it the
BE_L1D_FPU_BUBBLE component (+8%), RSE activity grows ~14% from the larger
stacked frames, and unstalled execution rises slightly (~1.2%) from the
extra epilog iterations.  The bench prints the two stacked columns and
asserts those directions.
"""

import pytest

from benchmarks.conftest import base_cfg, hlo_cfg
from repro.core import accumulate_account, format_account_table


@pytest.fixture(scope="module")
def accounts(exp2006):
    base = exp2006.run_config(base_cfg(pgo=False))
    variant = exp2006.run_config(hlo_cfg(pgo=False))
    return (
        accumulate_account(base, "baseline"),
        accumulate_account(variant, "hlo-hints"),
    )


def test_fig10_cycle_accounting(benchmark, record, accounts):
    base, variant = accounts
    benchmark.pedantic(
        lambda: format_account_table(base, variant), rounds=1, iterations=1
    )
    record("fig10_cycle_accounting", format_account_table(base, variant))

    # data stalls drop: that is the whole point of the optimization
    exe_delta = variant.delta_percent(base, "be_exe_bubble")
    assert exe_delta < -3.0

    # total cycles drop (the 2.2% headline lives here)
    assert variant.total < base.total

    # RSE activity grows with the stacked frames (Sec. 4.5)
    assert variant.delta_percent(base, "be_rse_bubble") > 0.0

    # unstalled execution grows slightly (extra epilog iterations)
    unstalled_delta = variant.delta_percent(base, "unstalled")
    assert 0.0 < unstalled_delta < 8.0


def test_fig10_ozq_pressure(benchmark, accounts):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Boosting pushes the memory subsystem harder: the OzQ-full share
    must not *drop* — the paper measures it rising from 8.2% to 9.4%."""
    base, variant = accounts
    assert variant.ozq_full_percent() >= base.ozq_full_percent() - 0.05


def test_fig10_shares_sum_to_one(benchmark, accounts):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for account in accounts:
        total = sum(
            account.share(b)
            for b in (
                "unstalled",
                "be_exe_bubble",
                "be_l1d_fpu_bubble",
                "be_rse_bubble",
                "be_flush_bubble",
                "back_end_bubble_fe",
            )
        )
        assert total == pytest.approx(1.0)
