"""Shared fixtures for the benchmark harness.

Experiment objects are session-scoped so runs are computed once and shared
between figures (Fig. 8's HLO run is also Fig. 10's variant, etc.).  Every
bench prints the same rows/series the paper reports and appends them to
``results/`` next to this directory, which is where EXPERIMENTS.md numbers
come from.

The figure sweeps (Fig. 7/8, ablations) run through ``repro.harness``: a
session-scoped artifact cache deduplicates the shared cells (every sweep
column re-uses the same baseline run), and ``REPRO_BENCH_JOBS=N`` in the
environment fans the cell jobs out over N worker processes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core import Experiment
from repro.harness import ArtifactCache, compare_configs, run_suite
from repro.machine import ItaniumMachine
from repro.workloads import cpu2000_suite, cpu2006_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def machine() -> ItaniumMachine:
    return ItaniumMachine()


@pytest.fixture(scope="session")
def harness_cache(tmp_path_factory) -> ArtifactCache:
    """One artifact cache per session: figure sweeps share cells."""
    return ArtifactCache(tmp_path_factory.mktemp("artifact-cache"))


@pytest.fixture(scope="session")
def harness_jobs() -> int:
    """Worker count for harness sweeps (REPRO_BENCH_JOBS, default serial)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def run_compare(
    benchmarks,
    base: CompilerConfig,
    variants: list[CompilerConfig],
    *,
    cache: ArtifactCache | None = None,
    workers: int = 1,
    machine: ItaniumMachine | None = None,
    suite_name: str = "",
):
    """Harness sweep helper: one grid run, one comparison per variant."""
    run = run_suite(
        benchmarks,
        [base] + list(variants),
        machine=machine,
        workers=workers,
        cache=cache,
        seed=2008,
        suite_name=suite_name,
    )
    return {
        variant.label: compare_configs(run, base.label, variant.label)
        for variant in variants
    }


@pytest.fixture(scope="session")
def exp2006() -> Experiment:
    return Experiment(cpu2006_suite(), seed=2008)


@pytest.fixture(scope="session")
def exp2000() -> Experiment:
    return Experiment(cpu2000_suite(), seed=2008)


@pytest.fixture(scope="session")
def record():
    """Print a result block and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


# --- the paper's configurations -------------------------------------------

def base_cfg(pgo: bool = True, prefetch: bool = True) -> CompilerConfig:
    return baseline_config(pgo=pgo, prefetch=prefetch)


def l3_cfg(n: int, pgo: bool = True, prefetch: bool = True) -> CompilerConfig:
    return CompilerConfig(
        hint_policy=HintPolicy.ALL_LOADS_L3,
        trip_count_threshold=n,
        pgo=pgo,
        prefetch=prefetch,
        name=f"all-l3-n{n}{'' if pgo else '-nopgo'}{'' if prefetch else '-nopf'}",
    )


def fp_l2_cfg(pgo: bool = True) -> CompilerConfig:
    return CompilerConfig(
        hint_policy=HintPolicy.ALL_FP_L2,
        trip_count_threshold=32,
        pgo=pgo,
        name=f"fp-l2{'' if pgo else '-nopgo'}",
    )


def hlo_cfg(pgo: bool = True) -> CompilerConfig:
    return CompilerConfig(
        hint_policy=HintPolicy.HLO,
        trip_count_threshold=32,
        pgo=pgo,
        name=f"hlo{'' if pgo else '-nopgo'}",
    )
