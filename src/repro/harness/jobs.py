"""Pure, picklable experiment jobs.

One job = one (benchmark, config) cell of a suite sweep.  The run logic
here is the code that used to live inside
:class:`repro.core.experiment.Experiment` — hoisted into module-level
functions of only their arguments so that

* the serial :class:`~repro.core.experiment.Experiment` driver and the
  :mod:`repro.harness.pool` workers execute the *same* code (the equality
  tests hold them to bit-identical cycles and counters), and
* a job can be pickled to a ``ProcessPoolExecutor`` worker and its
  outcome memoised in the content-addressed artifact cache.

Cache granularity is one *loop run*: all hot loops of a benchmark under
one config.  A benchmark cell needs two loop runs — its own config and
the canonical-baseline anchor that prices the serial (non-loop) cycles —
and the anchor is shared by every config of the same benchmark, so an
N-config sweep stores N+1 entries per benchmark, not 2N.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.config import CompilerConfig, SimBackend, baseline_config
from repro.core.compiler import LoopCompiler
from repro.core.results import SERIAL_SPLIT, BenchmarkResult, LoopOutcome
from repro.hlo.profiles import BlockProfile, collect_block_profile
from repro.ir.printer import format_loop
from repro.machine.itanium2 import ItaniumMachine
from repro.sim.counters import PerfCounters
from repro.sim.executor import simulate_loop
from repro.sim.memory import MemorySystem
from repro.workloads.spec import Benchmark

#: sentinel: "derive the profile from the benchmark iff the config wants PGO"
_AUTO_PROFILE = object()


@dataclasses.dataclass(frozen=True)
class BenchmarkJob:
    """One pure unit of work: a benchmark under a configuration."""

    benchmark: Benchmark
    config: CompilerConfig
    machine: ItaniumMachine = dataclasses.field(default_factory=ItaniumMachine)
    seed: int = 2008
    #: run the repro.analysis translation validator on every compiled loop
    verify: bool = False
    #: trace every loop run and attach a stall-attribution summary
    trace: bool = False
    #: simulator backend ("interp" | "fast"; "" = the session default).
    #: Backends are bit-identical, so this is never part of any cache key
    backend: str = ""

    @property
    def key(self) -> tuple[str, str]:
        return (self.benchmark.name, self.config.label)


@dataclasses.dataclass
class LoopRunOutcome:
    """All hot loops of one benchmark simulated under one config.

    ``outcomes`` holds the per-loop compile artifacts when the run
    happened in this process, and is empty when served from the cache.
    """

    loop_cycles: float
    counters: PerfCounters
    outcomes: list[LoopOutcome] = dataclasses.field(default_factory=list)
    #: aggregate verifier findings (see :func:`aggregate_verification`),
    #: present when the run was executed/cached with ``verify=True``
    verification: dict | None = None
    #: merged per-loop trace summary (see
    #: :func:`repro.trace.merge_trace_summaries`), present when the run
    #: was executed/cached with ``trace=True``
    trace: dict | None = None


@dataclasses.dataclass
class JobOutcome:
    """A finished job: the result plus provenance for the run manifest.

    ``status`` is ``"ok"`` for a completed job; a job whose worker was
    reaped at its deadline comes back as ``status="timeout"`` with
    ``result=None`` (see :func:`repro.harness.pool.run_jobs`), so the
    rest of the sweep can complete and the manifest records the loss.
    """

    result: BenchmarkResult | None
    #: True when both loop runs (config + baseline anchor) came from cache
    cache_hit: bool
    duration_s: float
    #: translation-validation summary of the variant run (None: not asked)
    verification: dict | None = None
    #: stall-attribution summary of the variant run (None: not asked)
    trace: dict | None = None
    #: "ok" or "timeout"
    status: str = "ok"
    #: resolved simulator backend the job requested ("interp" | "fast")
    backend: str = ""


def _stable(text: str) -> int:
    """Deterministic small hash (``hash`` is salted per process)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value


def collect_profile(bench: Benchmark, seed: int) -> BlockProfile:
    """The PGO block profile from the benchmark's training inputs."""
    dists = {}
    for lw in bench.loops:
        loop, _ = lw.build()
        dists[loop.name] = lw.data.train
    return collect_block_profile(dists, seed=seed)


def aggregate_verification(
    reports: list, bounds: tuple[int, int] | None = None
) -> dict:
    """Fold per-loop :class:`~repro.analysis.DiagnosticReport` values into
    the compact, JSON-serialisable form stored in cache payloads, job
    outcomes and manifest cells.  ``bounds`` is the post-simulation
    SA5xx cross-check tally as ``(loops checked, loops violating)``."""
    codes: set[str] = set()
    errors = warnings = notes = 0
    for report in reports:
        counts = report.counts()
        errors += counts["error"]
        warnings += counts["warning"]
        notes += counts["note"]
        codes.update(report.codes())
    summary = {
        "ok": errors == 0,
        "loops": len(reports),
        "errors": errors,
        "warnings": warnings,
        "notes": notes,
        "codes": sorted(codes),
    }
    if bounds is not None:
        summary["bounds"] = {
            "checked": bounds[0], "violations": bounds[1]
        }
    return summary


def run_loops(
    bench: Benchmark,
    config: CompilerConfig,
    machine: ItaniumMachine,
    seed: int,
    profile: BlockProfile | None | object = _AUTO_PROFILE,
    verify: bool = False,
    trace: bool = False,
    backend: SimBackend | str | None = None,
) -> LoopRunOutcome:
    """Compile and simulate every hot loop of ``bench`` under ``config``.

    Pure in all arguments: same inputs, bit-identical outputs.  ``profile``
    defaults to the training profile when the config uses PGO; pass an
    explicit profile to reuse a memoised one.  ``verify`` runs the
    :mod:`repro.analysis` translation validator on each compiled loop and
    fills :attr:`LoopRunOutcome.verification`.  ``trace`` attaches a
    streaming :class:`repro.trace.StallAttribution` sink to every loop
    simulation, closed-accounts it against that loop's fresh counters and
    cycle total, and fills :attr:`LoopRunOutcome.trace` with the merged
    summary.  Neither switch affects simulation results, and neither does
    ``backend`` — the interpreter and the fast replayer are bit-identical
    (traced runs always use the interpreter).
    """
    if profile is _AUTO_PROFILE:
        profile = collect_profile(bench, seed) if config.pgo else None
    if trace:
        from repro.trace import (
            StallAttribution,
            check_closed_accounting,
            merge_trace_summaries,
            trace_summary,
        )
    compiler = LoopCompiler(machine, config)
    total = 0.0
    counters = PerfCounters()
    outcomes: list[LoopOutcome] = []
    reports = []
    summaries: list[dict] = []
    bounds_checked = bounds_violations = 0
    for pos, lw in enumerate(bench.loops):
        loop, layout = lw.build()
        compiled = compiler.compile(loop, profile)
        if verify:
            from repro.analysis import verify_compiled

            reports.append(verify_compiled(compiled))
        rng = np.random.default_rng(seed + pos * 977 + _stable(bench.name))
        trips = lw.data.ref.sample(rng, lw.invocations)
        memory = machine.memory_system()
        sink = StallAttribution() if trace else None
        sim = simulate_loop(
            compiled.result,
            machine,
            layout,
            trips,
            memory=memory,
            seed=seed + pos,
            sink=sink,
            backend=backend,
        )
        if verify:
            # post-simulation translation validation for *performance*:
            # the cell's raw counters must land inside the SA5xx static
            # interval derived before the run
            from repro.analysis import check_simulation

            bound_report = check_simulation(
                compiled.result, machine, layout, trips,
                sim.counters, sim.cycles,
            )
            bounds_checked += 1
            if not bound_report.ok:
                bounds_violations += 1
            reports[-1].extend(bound_report)
        if sink is not None:
            # closed accounting holds per loop, against the loop's own
            # fresh counters (merged counters group additions differently)
            check = check_closed_accounting(sink, sim.counters, sim.cycles)
            summaries.append(trace_summary(sink, check))
        total += sim.cycles * lw.weight
        counters.merge(
            sim.counters.scaled(lw.weight)
            if lw.weight != 1.0
            else sim.counters
        )
        outcomes.append(
            LoopOutcome(
                compiled=compiled,
                cycles=sim.cycles * lw.weight,
                counters=sim.counters,
            )
        )
    return LoopRunOutcome(
        loop_cycles=total,
        counters=counters,
        outcomes=outcomes,
        verification=aggregate_verification(
            reports, bounds=(bounds_checked, bounds_violations)
        ) if verify else None,
        trace=merge_trace_summaries(summaries) if trace else None,
    )


def assemble_result(
    bench: Benchmark,
    config: CompilerConfig,
    loop_run: LoopRunOutcome,
    serial_cycles: float,
) -> BenchmarkResult:
    """Fold the serial (non-loop) cycles into a finished result."""
    counters = loop_run.counters
    for bucket, share in SERIAL_SPLIT.items():
        setattr(
            counters, bucket, getattr(counters, bucket) + serial_cycles * share
        )
    return BenchmarkResult(
        name=bench.name,
        suite=bench.suite,
        config_label=config.label,
        loop_cycles=loop_run.loop_cycles,
        serial_cycles=serial_cycles,
        counters=counters,
        loops=loop_run.outcomes,
    )


# --- cache keys ---------------------------------------------------------------

def _describe_memref(ref) -> dict:
    return {
        "name": ref.name,
        "pattern": ref.pattern.value,
        "size": ref.size,
        "stride": ref.stride,
        "offset": ref.offset,
        "is_fp": ref.is_fp,
        "space": ref.space,
        "index": ref.index_ref.name if ref.index_ref is not None else None,
    }


def _describe_distribution(dist) -> dict:
    return dataclasses.asdict(dist)


def describe_benchmark(bench: Benchmark) -> dict:
    """Canonical content description of a benchmark's hot loops."""
    loops = []
    for lw in bench.loops:
        loop, layout = lw.build()
        refs = {
            inst.memref.name: inst.memref
            for inst in loop.body
            if inst.memref is not None
        }
        loops.append({
            "ir": format_loop(loop),
            "counted": loop.counted,
            "independent_spaces": sorted(loop.independent_spaces),
            "memrefs": [
                _describe_memref(refs[name]) for name in sorted(refs)
            ],
            "layout": {
                name: dataclasses.asdict(spec)
                for name, spec in sorted(layout.items())
            },
            "train": _describe_distribution(lw.data.train),
            "ref": _describe_distribution(lw.data.ref),
            "invocations": lw.invocations,
            "weight": lw.weight,
        })
    return {
        "name": bench.name,
        "suite": bench.suite,
        "serial_factor": bench.serial_factor,
        "loops": loops,
    }


def describe_config(config: CompilerConfig) -> dict:
    desc = dataclasses.asdict(config)
    desc["hint_policy"] = config.hint_policy.value
    return desc


def describe_machine(machine: ItaniumMachine) -> dict:
    return {
        "name": machine.name,
        "description_digest": machine.digest(),
        "timings": dataclasses.asdict(machine.timings),
        "translation": dataclasses.asdict(machine.translation),
        "ozq_capacity": machine.ozq_capacity,
        "resources": {
            "capacities": {
                unit.name: cap
                for unit, cap in sorted(
                    machine.resources.capacities.items(),
                    key=lambda item: item[0].name,
                )
            },
            "issue_width": machine.resources.issue_width,
        },
        "registers": {
            rclass.name: dataclasses.asdict(rf)
            for rclass, rf in sorted(
                machine.register_files.items(), key=lambda item: item[0].name
            )
        },
    }


def loop_run_key(
    bench: Benchmark,
    config: CompilerConfig,
    machine: ItaniumMachine,
    seed: int,
    trace: bool = False,
) -> dict:
    """The key material addressing one loop run in the artifact cache."""
    material = {
        "kind": "loop-run",
        "benchmark": describe_benchmark(bench),
        "config": describe_config(config),
        "machine": describe_machine(machine),
        "seed": seed,
    }
    # traced runs address separate entries (their payloads carry the trace
    # summary); the key material is only extended when tracing, so every
    # pre-trace cache hash is preserved
    if trace:
        material["trace"] = True
    # RegClass enum keys serialise via their names above; RegisterFile
    # asdict contains an enum — flatten it to its value.
    for rf in material["machine"]["registers"].values():
        rf["rclass"] = rf["rclass"].value if hasattr(rf["rclass"], "value") else rf["rclass"]
    return material


# --- counter (de)serialisation ------------------------------------------------

def counters_to_dict(counters: PerfCounters) -> dict:
    """Lossless JSON form (floats round-trip exactly through ``repr``)."""
    data = dataclasses.asdict(counters)
    data["loads_by_level"] = {
        str(level): count for level, count in counters.loads_by_level.items()
    }
    return data


def counters_from_dict(data: dict) -> PerfCounters:
    data = dict(data)
    data["loads_by_level"] = {
        int(level): count for level, count in data["loads_by_level"].items()
    }
    return PerfCounters(**data)


# --- cached execution ---------------------------------------------------------

def cached_loop_run(
    bench: Benchmark,
    config: CompilerConfig,
    machine: ItaniumMachine,
    seed: int,
    cache=None,
    verify: bool = False,
    trace: bool = False,
    backend: SimBackend | str | None = None,
) -> tuple[LoopRunOutcome, bool]:
    """A loop run served from ``cache`` when possible; ``(run, was_hit)``.

    Verification status rides along in the cache payload.  A hit written
    by a non-verifying run does not satisfy a ``verify=True`` request: the
    run is re-executed with verification and the payload upgraded in place
    (the cache key is unchanged — cycles and counters are bit-identical).
    Traced runs address *separate* cache entries (``trace`` is part of the
    key), so a cache hit always carries the trace summary and returns it
    byte-identical to a live run.  ``backend`` is deliberately *not* part
    of the key: both backends produce bit-identical results, so an entry
    written under one serves requests under the other.
    """
    if cache is None:
        return run_loops(
            bench, config, machine, seed, verify=verify, trace=trace,
            backend=backend,
        ), False
    from repro.harness.cache import hash_key

    key = hash_key(loop_run_key(bench, config, machine, seed, trace=trace))
    payload = cache.get(key)
    # a hit written before the SA5xx bound checks existed lacks the
    # "bounds" tally; re-run and upgrade the payload in place, like a
    # non-verified hit under verify=True
    stale = verify and (
        payload is None
        or payload.get("verification") is None
        or "bounds" not in payload["verification"]
    )
    if payload is not None and not stale:
        return (
            LoopRunOutcome(
                loop_cycles=payload["loop_cycles"],
                counters=counters_from_dict(payload["counters"]),
                verification=payload.get("verification"),
                trace=payload.get("trace"),
            ),
            True,
        )
    run = run_loops(
        bench, config, machine, seed, verify=verify, trace=trace,
        backend=backend,
    )
    cache.put(key, {
        "benchmark": bench.name,
        "config": config.label,
        "loop_cycles": run.loop_cycles,
        "counters": counters_to_dict(run.counters),
        "verification": run.verification,
        "trace": run.trace,
    })
    return run, False


def run_job(job: BenchmarkJob, cache=None) -> JobOutcome:
    """Execute one (benchmark, config) cell, through the cache when given.

    The serial-cycle anchor is priced off the canonical baseline config —
    exactly as :meth:`Experiment._serial_cycles` does — and is itself a
    cacheable loop run shared by every config of the same benchmark.
    """
    start = time.perf_counter()
    bench = job.benchmark
    backend = SimBackend.parse(job.backend or None)
    variant_run, variant_hit = cached_loop_run(
        bench, job.config, job.machine, job.seed, cache,
        verify=job.verify, trace=job.trace, backend=backend,
    )
    anchor_cfg = baseline_config()
    if job.config.label == anchor_cfg.label:
        anchor_run, anchor_hit = variant_run, variant_hit
    else:
        # the anchor is only priced, never reported: its own (benchmark,
        # baseline) cell carries the verification status for that config
        anchor_run, anchor_hit = cached_loop_run(
            bench, anchor_cfg, job.machine, job.seed, cache, backend=backend
        )
    serial = bench.serial_factor * anchor_run.loop_cycles
    result = assemble_result(bench, job.config, variant_run, serial)
    return JobOutcome(
        result=result,
        cache_hit=variant_hit and anchor_hit,
        duration_s=time.perf_counter() - start,
        verification=variant_run.verification,
        trace=variant_run.trace,
        backend=backend.value,
    )
