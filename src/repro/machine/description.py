"""Declarative machine descriptions and the named machine registry.

A :class:`MachineDescription` is the single declarative source of truth
for everything the compiler, the simulator, and the static verifiers know
about a target core: the issue template and port map, the memory-hierarchy
geometry (cache levels, TLB, L2 banking), the memory-queue discipline
(Itanium's ordered OzQ vs. a speculative load-store queue), and the
scoreboard policy (classic stall-on-use vs. real-time load-delay
tracking).  Descriptions serialize byte-stably into plain dicts so they
participate in the existing content-address scheme (``hash_key``), and a
named registry lets every entry point — CLI, harness, service protocol —
resolve a machine by name.

Three machines are registered:

``itanium2``
    The Dual-Core Itanium 2 model of the paper, bit-identical to the
    pre-registry constants (enforced by fingerprint tests).

``ldt-core``
    An in-order core with real-time load-delay tracking (Diavastos &
    Carlson): the scoreboard knows the *remaining* latency of every
    in-flight load and fills up to ``tracking_window`` cycles of each
    use-stall with independent work, so consumers stall only by the
    exposed remainder.

``slsq-core``
    A core with a speculative load-store queue (Szafarczyk et al.):
    loads issue ahead of address disambiguation (hiding ``runahead``
    cycles of latency) and are checked against older stores in
    allocation order; a same-address store inside the speculation window
    is a misspeculation that replays the load at ``replay_penalty``
    pipeline cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.errors import MachineModelError
from repro.machine.hints import (
    BEST_CASE_TRANSLATION,
    HintTranslation,
    TYPICAL_TRANSLATION,
)


@dataclass(frozen=True)
class MemoryTimings:
    """Best-case load-to-use latencies of the memory hierarchy (Sec. 2).

    "On the Dual-Core Itanium 2 processor, the best-case delays until
    integer loads return data range from 1, 5, 14, and more than a hundred
    cycles depending on whether the data is found in the L1D, L2D, L3
    caches, and the main memory."
    """

    l1: int = 1
    l2: int = 5
    l3: int = 14
    memory: int = 180
    #: extra cycle for FP format conversion
    fp_extra: int = 1

    def latency_of_level(self, level: int, is_fp: bool = False) -> int:
        table = {1: self.l1, 2: self.l2, 3: self.l3, 4: self.memory}
        return table[level] + (self.fp_extra if is_fp else 0)


@dataclass(frozen=True)
class CacheLevel:
    """Geometry of one cache level (mirrors ``sim.cache.CacheConfig``)."""

    name: str
    size: int
    line_size: int
    associativity: int


@dataclass(frozen=True)
class TlbGeometry:
    """Fully-associative LRU data-TLB parameters."""

    entries: int = 128
    page_size: int = 16384
    miss_penalty: int = 25


@dataclass(frozen=True)
class BankGeometry:
    """L2 banking: interleave width, bank count, and occupancy."""

    enabled: bool = True
    banks: int = 8
    width: int = 16
    occupancy: float = 2.0


#: Queue disciplines understood by the simulator.
QUEUE_KINDS = ("ozq", "slsq")

#: Scoreboard policies understood by the simulator.
SCOREBOARD_KINDS = ("stall-on-use", "load-delay-tracking")


@dataclass(frozen=True)
class QueueDiscipline:
    """How outstanding memory requests are queued past the L1.

    ``ozq`` is Itanium's ordered queue: ``capacity`` outstanding requests
    without stalling, strict completion order, prefetches dropped when
    full.  ``slsq`` is a speculative load-store queue: the same occupancy
    limit, but loads issue ``runahead`` cycles ahead of disambiguation
    and pay ``replay_penalty`` pipeline cycles whenever an older store
    to the same address, issued inside the speculation window, proves
    them wrong.
    """

    kind: str = "ozq"
    capacity: int = 48
    #: cycles of load latency hidden by speculative early issue (slsq)
    runahead: int = 0
    #: pipeline cycles charged per ordering-violation replay (slsq)
    replay_penalty: int = 0

    def __post_init__(self) -> None:
        if self.kind not in QUEUE_KINDS:
            raise MachineModelError(
                f"unknown queue discipline {self.kind!r}; "
                f"expected one of {QUEUE_KINDS}"
            )
        if self.capacity < 1:
            raise MachineModelError("queue capacity must be >= 1")


@dataclass(frozen=True)
class ScoreboardPolicy:
    """How the scoreboard reacts to a consumer of in-flight load data.

    ``stall-on-use`` is the paper's in-order pipeline: the whole machine
    stalls for the full remaining latency.  ``load-delay-tracking``
    models Diavastos & Carlson: the issue logic knows each load's
    remaining delay and covers up to ``tracking_window`` cycles of every
    use-stall with independent instructions, exposing only the excess.
    """

    kind: str = "stall-on-use"
    #: use-stall cycles the core hides per stall event (load-delay-tracking)
    tracking_window: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SCOREBOARD_KINDS:
            raise MachineModelError(
                f"unknown scoreboard policy {self.kind!r}; "
                f"expected one of {SCOREBOARD_KINDS}"
            )
        if self.tracking_window < 0:
            raise MachineModelError("tracking window must be >= 0")


def _default_ports() -> tuple[tuple[str, int], ...]:
    return (("M", 2), ("I", 2), ("F", 2), ("B", 3))


@dataclass(frozen=True)
class MachineDescription:
    """The full declarative description of one target machine."""

    name: str
    #: total instructions issued per cycle
    issue_width: int = 6
    #: per-cycle port capacities by unit-class letter (M/I/F/B)
    ports: tuple[tuple[str, int], ...] = field(default_factory=_default_ports)
    #: per-class latency overrides by mnemonic; empty = ISA defaults
    latency_overrides: tuple[tuple[str, int], ...] = ()
    timings: MemoryTimings = field(default_factory=MemoryTimings)
    translation: HintTranslation = TYPICAL_TRANSLATION
    l1d: CacheLevel = CacheLevel("L1D", 16 * 1024, 64, 4)
    l2: CacheLevel = CacheLevel("L2D", 256 * 1024, 128, 8)
    l3: CacheLevel = CacheLevel("L3", 12 * 1024 * 1024, 128, 12)
    tlb: TlbGeometry = field(default_factory=TlbGeometry)
    banks: BankGeometry = field(default_factory=BankGeometry)
    queue: QueueDiscipline = field(default_factory=QueueDiscipline)
    scoreboard: ScoreboardPolicy = field(default_factory=ScoreboardPolicy)

    # --- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """A plain-builtin, byte-stable representation of the description."""
        return {
            "name": self.name,
            "issue_width": self.issue_width,
            "ports": [[unit, cap] for unit, cap in self.ports],
            "latency_overrides": [
                [mnemonic, latency]
                for mnemonic, latency in self.latency_overrides
            ],
            "timings": {
                "l1": self.timings.l1,
                "l2": self.timings.l2,
                "l3": self.timings.l3,
                "memory": self.timings.memory,
                "fp_extra": self.timings.fp_extra,
            },
            "translation": {
                "name": self.translation.name,
                "l1": self.translation.l1,
                "l2": self.translation.l2,
                "l3": self.translation.l3,
                "mem": self.translation.mem,
                "fp_extra": self.translation.fp_extra,
                "max_scheduled": self.translation.max_scheduled,
            },
            "hierarchy": {
                level: {
                    "name": cache.name,
                    "size": cache.size,
                    "line_size": cache.line_size,
                    "associativity": cache.associativity,
                }
                for level, cache in (
                    ("l1d", self.l1d), ("l2", self.l2), ("l3", self.l3)
                )
            },
            "tlb": {
                "entries": self.tlb.entries,
                "page_size": self.tlb.page_size,
                "miss_penalty": self.tlb.miss_penalty,
            },
            "banks": {
                "enabled": self.banks.enabled,
                "banks": self.banks.banks,
                "width": self.banks.width,
                "occupancy": self.banks.occupancy,
            },
            "queue": {
                "kind": self.queue.kind,
                "capacity": self.queue.capacity,
                "runahead": self.queue.runahead,
                "replay_penalty": self.queue.replay_penalty,
            },
            "scoreboard": {
                "kind": self.scoreboard.kind,
                "tracking_window": self.scoreboard.tracking_window,
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "MachineDescription":
        """Rebuild a description; unknown keys are rejected."""

        def _section(payload: dict, section: str, allowed: set[str]) -> dict:
            part = payload.get(section)
            if not isinstance(part, dict):
                raise MachineModelError(
                    f"machine description section {section!r} must be a dict"
                )
            unknown = set(part) - allowed
            if unknown:
                raise MachineModelError(
                    f"unknown keys in machine description section "
                    f"{section!r}: {', '.join(sorted(unknown))}"
                )
            return part

        allowed_top = {
            "name", "issue_width", "ports", "latency_overrides", "timings",
            "translation", "hierarchy", "tlb", "banks", "queue", "scoreboard",
        }
        unknown = set(data) - allowed_top
        if unknown:
            raise MachineModelError(
                "unknown keys in machine description: "
                + ", ".join(sorted(unknown))
            )
        hierarchy = _section(data, "hierarchy", {"l1d", "l2", "l3"})

        def _cache(level: str) -> CacheLevel:
            spec = hierarchy[level]
            return CacheLevel(
                name=spec["name"], size=spec["size"],
                line_size=spec["line_size"],
                associativity=spec["associativity"],
            )

        return MachineDescription(
            name=data["name"],
            issue_width=data["issue_width"],
            ports=tuple((unit, cap) for unit, cap in data["ports"]),
            latency_overrides=tuple(
                (mnemonic, latency)
                for mnemonic, latency in data.get("latency_overrides", [])
            ),
            timings=MemoryTimings(**_section(
                data, "timings", {"l1", "l2", "l3", "memory", "fp_extra"}
            )),
            translation=HintTranslation(**_section(
                data, "translation",
                {"name", "l1", "l2", "l3", "mem", "fp_extra", "max_scheduled"},
            )),
            l1d=_cache("l1d"), l2=_cache("l2"), l3=_cache("l3"),
            tlb=TlbGeometry(**_section(
                data, "tlb", {"entries", "page_size", "miss_penalty"}
            )),
            banks=BankGeometry(**_section(
                data, "banks", {"enabled", "banks", "width", "occupancy"}
            )),
            queue=QueueDiscipline(**_section(
                data, "queue", {"kind", "capacity", "runahead", "replay_penalty"}
            )),
            scoreboard=ScoreboardPolicy(**_section(
                data, "scoreboard", {"kind", "tracking_window"}
            )),
        )

    def digest(self) -> str:
        """Content address of the description (the existing ``hash_key``)."""
        from repro.harness.cache import hash_key

        return hash_key({"kind": "machine-description", **self.to_dict()})

    def with_(self, **changes) -> "MachineDescription":
        """A copy with the given fields replaced."""
        known = {f.name for f in fields(self)}
        unknown = set(changes) - known
        if unknown:
            raise MachineModelError(
                "unknown machine description field(s): "
                + ", ".join(sorted(unknown))
            )
        return replace(self, **changes)

    @property
    def latency_override_map(self) -> dict[str, int]:
        return dict(self.latency_overrides)


def named_translation(name: str) -> HintTranslation:
    """Resolve a hint-translation preset by name."""
    table = {
        TYPICAL_TRANSLATION.name: TYPICAL_TRANSLATION,
        BEST_CASE_TRANSLATION.name: BEST_CASE_TRANSLATION,
    }
    try:
        return table[name]
    except KeyError:
        raise MachineModelError(
            f"unknown hint translation {name!r}; "
            f"expected one of {sorted(table)}"
        ) from None


# --- the registry ----------------------------------------------------------

_REGISTRY: dict[str, MachineDescription] = {}


def register_machine(description: MachineDescription) -> MachineDescription:
    """Register ``description`` under its name; returns it for chaining."""
    if not description.name:
        raise MachineModelError("machine descriptions must be named")
    _REGISTRY[description.name] = description
    return description


def machine_names() -> list[str]:
    """Names of all registered machines, sorted."""
    return sorted(_REGISTRY)


def machine_description(name: str) -> MachineDescription:
    """Look up a registered description; unknown names raise."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MachineModelError(
            f"unknown machine {name!r}; registered machines: "
            + ", ".join(machine_names())
        ) from None


#: The paper's Dual-Core Itanium 2: every value matches the pre-registry
#: constants, so this machine is bit-identical to the historical model.
ITANIUM2 = register_machine(MachineDescription(name="itanium2"))

#: In-order core with real-time load-delay tracking (Diavastos & Carlson).
#: The 16-cycle window covers L2/L3-class exposure — the same territory
#: latency hints target — but not main-memory misses.
LDT_CORE = register_machine(MachineDescription(
    name="ldt-core",
    scoreboard=ScoreboardPolicy(kind="load-delay-tracking", tracking_window=16),
))

#: Speculative load-store queue core (Szafarczyk et al.): loads issue 24
#: cycles ahead of disambiguation out of a 64-entry LSQ and replay at 12
#: cycles per same-line ordering violation.
SLSQ_CORE = register_machine(MachineDescription(
    name="slsq-core",
    queue=QueueDiscipline(
        kind="slsq", capacity=64, runahead=24, replay_penalty=12
    ),
))
