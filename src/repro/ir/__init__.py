"""Compiler intermediate representation for innermost, pipelinable loops.

The IR models single-block loop bodies in an Itanium-flavoured form: virtual
general/floating-point/predicate registers, post-incrementing memory
operations, qualifying predicates, and a special counted-loop branch.  Loops
enter the pipeliner already if-converted (a single basic block whose control
flow has been folded into qualifying predicates), which matches the point in
the Intel compiler where the software pipeliner runs (Sec. 3.3 of the paper).
"""

from repro.ir.registers import (
    Reg,
    RegClass,
    RegisterFile,
    ROTATING_GR_BASE,
    ROTATING_PR_BASE,
    ROTATING_FR_BASE,
)
from repro.ir.memref import (
    AccessPattern,
    LatencyHint,
    MemRef,
)
from repro.ir.opcodes import Opcode, UnitClass, OPCODES, opcode
from repro.ir.instructions import Instruction
from repro.ir.loop import Loop, TripCountInfo, TripCountSource
from repro.ir.builder import LoopBuilder
from repro.ir.parser import parse_loop
from repro.ir.printer import (
    format_instruction,
    format_loop,
    instruction_to_source,
    loop_to_source,
    memref_to_source,
)
from repro.ir.validate import validate_loop

__all__ = [
    "Reg",
    "RegClass",
    "RegisterFile",
    "ROTATING_GR_BASE",
    "ROTATING_PR_BASE",
    "ROTATING_FR_BASE",
    "AccessPattern",
    "LatencyHint",
    "MemRef",
    "Opcode",
    "UnitClass",
    "OPCODES",
    "opcode",
    "Instruction",
    "Loop",
    "TripCountInfo",
    "TripCountSource",
    "LoopBuilder",
    "parse_loop",
    "format_instruction",
    "format_loop",
    "instruction_to_source",
    "loop_to_source",
    "memref_to_source",
    "validate_loop",
]
