"""Property-based tests for the exact scheduler's solver core.

Three invariants that must hold for *any* loop the generator produces:

* the exact driver's II is bracketed by theory and practice:
  ``min_ii <= optimal_ii <= heuristic_ii`` (the upper bound is
  structural — the driver falls back to the heuristic schedule at the
  same II whenever the search comes up empty);
* the exact II is monotone under latency growth: uniformly increasing
  every latency can never admit a *smaller* II (constraints only
  tighten);
* the exact II is invariant under reordering independent operations in
  the source loop: swapping an adjacent pair with no dependence between
  them presents the same scheduling problem.
"""

from hypothesis import given, settings

from repro.config import CompilerConfig
from repro.ddg.graph import build_ddg
from repro.ir import parse_loop
from repro.ir.printer import loop_to_source
from repro.machine import ItaniumMachine
from repro.pipeliner import (
    SolveStatus,
    optimal_pipeline_loop,
    pipeline_loop,
    solve_ii,
)

from tests.test_properties import pipelinable_loops

CFG = CompilerConfig(trip_count_threshold=0, prefetch=False)
MACHINE = ItaniumMachine()


def base_expected(edge):
    return False


def exact_ii(ddg, query, cap=96):
    """Smallest feasible II under ``query`` at base expectations.

    The generous budget keeps every per-II verdict a proof, so the scan
    is exact; ``None`` when nothing up to ``cap`` is schedulable."""
    for ii in range(1, cap + 1):
        outcome = solve_ii(
            ddg, ii, query, base_expected, MACHINE.resources, 500_000
        )
        if outcome.status is SolveStatus.FEASIBLE:
            return ii
        assert outcome.status is SolveStatus.INFEASIBLE
    return None


class TestSolverProperties:
    @settings(max_examples=30, deadline=None)
    @given(pipelinable_loops())
    def test_optimal_ii_is_bracketed(self, loop):
        heur = pipeline_loop(loop, MACHINE, CFG)
        opt = optimal_pipeline_loop(loop, MACHINE, CFG)
        if not heur.pipelined:
            return
        assert opt.pipelined
        assert opt.bounds.min_ii <= opt.stats.ii <= heur.stats.ii
        if opt.stats.optimal_status == "optimal":
            assert opt.stats.ii_lower_bound == opt.stats.ii

    @settings(max_examples=25, deadline=None)
    @given(pipelinable_loops())
    def test_exact_ii_monotone_in_latency(self, loop):
        ddg = build_ddg(loop)
        base_query = MACHINE.latency_query
        previous = exact_ii(ddg, base_query)
        if previous is None:
            return
        for bump in (1, 3):
            def boosted(inst, reg, expected, _bump=bump):
                return base_query(inst, reg, expected) + _bump

            current = exact_ii(ddg, boosted)
            assert current is not None and current >= previous
            previous = current

    @settings(max_examples=25, deadline=None)
    @given(pipelinable_loops())
    def test_exact_ii_invariant_under_reordering(self, loop):
        ddg = build_ddg(loop)
        baseline = exact_ii(ddg, MACHINE.latency_query)
        body = loop.body
        for i in range(len(body) - 1):
            a, b = body[i], body[i + 1]
            if a.memref is not None and b.memref is not None:
                continue  # memory order may be semantically load-bearing
            if any(
                {edge.src, edge.dst} == {a, b} for edge in ddg.edges
            ):
                continue  # dependent pair: not a legal reordering
            swapped = parse_loop(loop_to_source(loop))
            swapped.body[i], swapped.body[i + 1] = (
                swapped.body[i + 1], swapped.body[i],
            )
            reordered = parse_loop(loop_to_source(swapped))
            assert exact_ii(
                build_ddg(reordered), MACHINE.latency_query
            ) == baseline
