"""Tests for the memory system: hierarchy walk, prefetches, banks, OzQ flags."""

import pytest

from repro.sim.memory import MemorySystem


@pytest.fixture
def mem(machine):
    return MemorySystem(machine.timings, bank_conflicts=False)


class TestDemandLoads:
    def test_cold_miss_walks_to_memory(self, mem, machine):
        res = mem.load(0x100000, now=0)
        assert res.level == 4
        assert res.latency >= machine.timings.memory
        assert res.occupies_ozq

    def test_warm_hit_in_l1(self, mem):
        mem.load(0x100000, now=0)
        res = mem.load(0x100000, now=1000)
        assert res.level == 1
        assert res.latency == 1.0
        assert not res.occupies_ozq

    def test_fp_bypasses_l1(self, mem, machine):
        mem.load(0x100000, now=0, is_fp=True)
        res = mem.load(0x100000, now=1000, is_fp=True)
        assert res.level == 2
        # L2 best case + format conversion
        assert res.latency == machine.timings.l2 + machine.timings.fp_extra

    def test_pending_fill_partial_latency(self, mem, machine):
        mem.tlb.access(0x100000)  # keep TLB effects out
        mem.load(0x100000, now=0)  # fill completes at ~now+memory
        res = mem.load(0x100000, now=10)
        assert res.level == 1
        assert res.latency > machine.timings.memory / 2
        assert not res.occupies_ozq  # merged into the in-flight fill

    def test_tlb_penalty_added(self, machine):
        mem = MemorySystem(machine.timings, bank_conflicts=False)
        first = mem.load(0x100000, now=0)
        mem2 = MemorySystem(machine.timings, bank_conflicts=False)
        mem2.tlb.access(0x100000)
        second = mem2.load(0x100000, now=0)
        assert first.latency == second.latency + mem.tlb.miss_penalty


class TestStores:
    def test_store_allocates_in_l2(self, mem):
        mem.store(0x200000, now=0)
        res = mem.store(0x200000, now=1000)
        assert res.level == 2

    def test_store_miss_occupies_ozq(self, mem):
        res = mem.store(0x300000, now=0)
        assert res.level == 4 and res.occupies_ozq


class TestPrefetch:
    def test_prefetch_tlb_miss_walks_and_fills(self, mem, machine):
        """The VHPT walker services lfetch TLB misses: slower fill, and
        the translation is installed for the demand stream."""
        res = mem.prefetch(0x400000, now=0)
        assert res.latency == machine.timings.memory + mem.tlb.miss_penalty
        assert mem.tlb.probe(0x400000)

    def test_prefetch_fills_ahead(self, mem, machine):
        mem.tlb.access(0x400000)
        res = mem.prefetch(0x400000, now=0)
        assert res is not None and res.level == 4
        # demand access after the fill completes: L1 hit
        demand = mem.load(0x400000, now=machine.timings.memory + 10)
        assert demand.level == 1 and demand.latency == 1.0

    def test_late_prefetch_partially_covers(self, mem, machine):
        mem.tlb.access(0x400000)
        mem.prefetch(0x400000, now=0)
        demand = mem.load(0x400000, now=50)
        assert demand.latency == pytest.approx(
            machine.timings.l1 + machine.timings.memory - 50
        )

    def test_l2_only_prefetch_skips_l1(self, mem, machine):
        mem.tlb.access(0x400000)
        mem.prefetch(0x400000, now=0, l2_only=True)
        demand = mem.load(0x400000, now=machine.timings.memory + 10)
        assert demand.level == 2


class TestBankConflicts:
    def test_same_bank_back_to_back_delays(self, machine):
        mem = MemorySystem(machine.timings, bank_conflicts=True)
        addr = 0x100000
        mem.load(addr, now=0)  # warm the line (and the TLB)
        first = mem.load(addr, now=1000, is_fp=True)
        second = mem.load(addr, now=1000, is_fp=True)
        assert second.latency > first.latency
        assert mem.bank_conflict_count >= 1

    def test_disabled_banks_no_delay(self, machine):
        mem = MemorySystem(machine.timings, bank_conflicts=False)
        addr = 0x100000
        mem.load(addr, now=0)
        a = mem.load(addr, now=1000, is_fp=True)
        b = mem.load(addr, now=1000, is_fp=True)
        assert a.latency == b.latency

    def test_different_banks_no_delay(self, machine):
        mem = MemorySystem(machine.timings, bank_conflicts=True)
        mem.load(0x100000, now=0)
        mem.load(0x100000 + MemorySystem.L2_BANK_WIDTH, now=0)
        a = mem.load(0x100000, now=1000, is_fp=True)
        b = mem.load(
            0x100000 + MemorySystem.L2_BANK_WIDTH, now=1000, is_fp=True
        )
        assert a.latency == b.latency

    def test_reset_clears_banks(self, machine):
        mem = MemorySystem(machine.timings)
        mem.load(0x100000, now=0)
        mem.reset()
        assert mem.bank_conflict_count == 0
        assert not mem.l1d.contains(0x100000)
