"""Tests for the service request schema (``repro.service.protocol``).

Canonicalisation is the soundness argument for dedup and the shared
store: textually different spellings of the same work must produce the
same request key, result-irrelevant differences must be impossible to
express (unknown fields are rejected, execution hints have no schema),
and every default must be filled so the canonical form is total.
"""

import pytest

from repro.errors import ServiceError
from repro.service import normalize_request, request_key
from repro.service.protocol import describe_request

DAXPY = """\
loop daxpy
  t0 = load a[i]
  t1 = fma t0, x, c
  store b[i], t1
end
"""


def key_of(kind, payload):
    return request_key(kind, normalize_request(kind, payload))


# --- canonicalisation ---------------------------------------------------------

def test_defaults_are_filled_and_stable():
    canonical = normalize_request("bench", {"suite": "micro"})
    assert canonical == {
        "suite": "micro",
        "benchmarks": None,
        "configs": ["hlo"],
        "threshold": 32,
        "pgo": True,
        "prefetch": True,
        "scheduler": "heuristic",
        "seed": 2008,
        "machine": "itanium2",
        "verify": False,
        "trace": False,
        "backend": "",
    }


def test_spelled_out_defaults_hit_the_same_key():
    implicit = key_of("bench", {"suite": "micro"})
    explicit = key_of("bench", {
        "suite": "micro", "configs": ["hlo"], "seed": 2008,
        "threshold": 32, "pgo": True, "prefetch": True,
        "verify": False, "trace": False, "benchmarks": None,
    })
    assert implicit == explicit


def test_list_order_and_duplicates_normalise_away():
    a = key_of("bench", {"suite": "micro",
                         "configs": ["all-fp-l2", "hlo", "hlo"],
                         "benchmarks": ["mcf", "art"]})
    b = key_of("bench", {"suite": "micro",
                         "configs": ["hlo", "all-fp-l2"],
                         "benchmarks": ["art", "mcf", "art"]})
    assert a == b


def test_size_shorthand_normalises_to_bytes():
    shorthand = normalize_request("simulate", {
        "loop": DAXPY, "spaces": {"a": "64M"},
    })
    explicit = normalize_request("simulate", {
        "loop": DAXPY, "spaces": {"a": {"size": 64 << 20, "reuse": True}},
    })
    assert shorthand == explicit
    assert shorthand["spaces"]["a"]["size"] == 64 << 20


def test_different_work_gets_different_keys():
    base = key_of("bench", {"suite": "micro"})
    assert key_of("bench", {"suite": "micro", "seed": 7}) != base
    assert key_of("bench", {"suite": "cpu2000"}) != base
    # the scheduler determines results, so it must address its own entry
    assert key_of("bench", {"suite": "micro", "scheduler": "optimal"}) != base
    assert (key_of("compile", {"loop": DAXPY, "scheduler": "optimal"})
            != key_of("compile", {"loop": DAXPY}))
    # the kind participates in the key even for equal payload dicts
    sim = normalize_request("simulate", {"loop": DAXPY})
    assert request_key("simulate", sim) != request_key("trace", sim)


# --- rejection ----------------------------------------------------------------

def test_unknown_kind_is_rejected():
    with pytest.raises(ServiceError) as exc:
        normalize_request("transmogrify", {})
    assert exc.value.status == 400


def test_unknown_field_is_rejected_with_the_accepted_list():
    with pytest.raises(ServiceError) as exc:
        normalize_request("bench", {"suite": "micro", "workers": 8})
    assert exc.value.status == 400
    assert "workers" in str(exc.value)
    assert "accepted" in str(exc.value)


@pytest.mark.parametrize("payload", [
    {},                                      # suite is required
    {"suite": "spec95"},                     # unknown suite
    {"suite": "micro", "configs": []},       # empty config list
    {"suite": "micro", "configs": ["jit"]},  # unknown policy
    {"suite": "micro", "seed": -1},          # out of range
    {"suite": "micro", "seed": True},        # bool is not an int
    {"suite": "micro", "scheduler": "smt"},  # unknown scheduler
])
def test_bad_bench_payloads_are_rejected(payload):
    with pytest.raises(ServiceError):
        normalize_request("bench", payload)


@pytest.mark.parametrize("payload", [
    {},                                      # loop is required
    {"loop": DAXPY, "policy": "o3"},         # unknown policy
    {"loop": DAXPY, "spaces": {"a": "-4"}},  # non-positive size
    {"loop": DAXPY, "spaces": {"a": {"size": "64M", "zone": 1}}},
    {"loop": DAXPY, "trips": 0},             # out of range
])
def test_bad_simulate_payloads_are_rejected(payload):
    with pytest.raises(ServiceError):
        normalize_request("simulate", payload)


def test_oversized_loop_text_is_rejected():
    with pytest.raises(ServiceError) as exc:
        normalize_request("compile", {"loop": "x" * (2 << 20)})
    assert "exceeds" in str(exc.value)


# --- labels -------------------------------------------------------------------

def test_describe_request_labels_are_compact():
    bench = normalize_request(
        "bench", {"suite": "micro", "configs": ["hlo", "all-fp-l2"]}
    )
    assert describe_request("bench", bench) == "bench:micro:all-fp-l2+hlo"
    fuzz = normalize_request("fuzz", {"cases": 50, "seed": 3})
    assert describe_request("fuzz", fuzz) == "fuzz:50@3"
    compile_req = normalize_request("compile", {"loop": DAXPY})
    assert describe_request("compile", compile_req).startswith(
        "compile:hlo:loop daxpy"
    )
