"""Latency-hint consistency checks (SA4xx).

The latency-tolerance machinery (Sec. 3.3) only works if the plumbing
between HLO hints, the criticality classification and the scheduler is
sound.  Regressions here do not crash — they silently schedule loads
with the wrong latency, which is exactly where hint-driven optimisation
bugs hide.  These checks assert, from the schedule alone:

* SA402 — the boost set is well-formed: only hinted, non-critical loads;
* SA401 — every boosted load's earliest data use really sits at least
  the translated hint latency away (the schedule *covers* the hint);
* SA403 — the recorded :class:`~repro.pipeliner.schedule.LoadPlacement`
  latency bookkeeping matches re-derivation;
* SA404 (note) — a non-boosted load whose use distance exceeds its base
  latency by a full stage anyway: stretched without being asked, which
  spends rotating registers (Sec. 2.2) for no modelled benefit.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.schedverify import recompute_use_distance
from repro.ir.memref import LatencyHint
from repro.pipeliner.schedule import Schedule
from repro.pipeliner.stats import PipelineStats


def _check_boost_set(schedule: Schedule, report: DiagnosticReport) -> None:
    """SA402: membership rules for the boosted set."""
    name = schedule.loop.name
    criticality = schedule.criticality
    for inst in sorted(criticality.boosted, key=lambda i: i.index):
        if not inst.is_load:
            report.add("SA402", "boosted instruction is not a load",
                       loop=name, inst=inst)
            continue
        if inst.memref is None or inst.memref.hint is LatencyHint.NONE:
            report.add(
                "SA402",
                "boosted load has no latency hint to translate",
                loop=name,
                inst=inst,
            )
        if inst in criticality.critical:
            report.add(
                "SA402",
                "load is both critical and boosted; critical loads must "
                "keep their minimum latency",
                loop=name,
                inst=inst,
            )


def _check_coverage(schedule: Schedule, report: DiagnosticReport) -> None:
    """SA401: boosted loads actually hold their hinted latency."""
    name = schedule.loop.name
    translation = schedule.machine.translation
    for load in sorted(schedule.criticality.boosted, key=lambda i: i.index):
        if not load.is_load or load.memref is None:
            continue  # SA402 already fired
        expected = translation.scheduling_latency(
            load.memref.hint, load.is_fp, load.opcode.latency
        )
        distance = recompute_use_distance(schedule, load)
        if distance is not None and distance < expected:
            report.add(
                "SA401",
                f"use distance {distance} does not cover the translated "
                f"{load.memref.hint.value} hint latency {expected}",
                loop=name,
                inst=load,
                detail={"distance": distance, "expected": expected},
            )


def _check_placement_latencies(
    schedule: Schedule, stats: PipelineStats, report: DiagnosticReport
) -> None:
    """SA403: boosted/base/scheduled latency fields of each placement."""
    name = schedule.loop.name
    translation = schedule.machine.translation
    for placement in stats.placements:
        load = placement.load
        boosted = schedule.criticality.is_boosted(load)
        base = load.opcode.latency
        if boosted and load.memref is not None:
            scheduled = translation.scheduling_latency(
                load.memref.hint, load.is_fp, base
            )
        else:
            scheduled = base
        checks = [
            ("boosted flag", placement.boosted, boosted),
            ("base latency", placement.base_latency, base),
            ("scheduled latency", placement.scheduled_latency, scheduled),
        ]
        for what, got, want in checks:
            if got != want:
                report.add(
                    "SA403",
                    f"placement {what} is {got}, re-derivation gives {want}",
                    loop=name,
                    inst=load,
                )


def _check_unrequested_stretch(
    schedule: Schedule, report: DiagnosticReport
) -> None:
    """SA404 (note): non-boosted loads stretched by >= one full stage."""
    name = schedule.loop.name
    ii = schedule.ii
    for load in schedule.loop.loads:
        if schedule.criticality.is_boosted(load):
            continue
        distance = recompute_use_distance(schedule, load)
        if distance is None:
            continue
        base = load.opcode.latency
        if distance >= base + ii:
            report.add(
                "SA404",
                f"non-boosted load sits {distance} cycles from its first "
                f"use (base latency {base}); the extra "
                f"{distance - base} cycles cost rotating registers without "
                "a requested latency boost",
                loop=name,
                inst=load,
                detail={"distance": distance, "base": base},
            )


def verify_hints(
    schedule: Schedule, stats: PipelineStats | None = None
) -> DiagnosticReport:
    """Run every SA4xx check; ``stats`` enables SA403."""
    report = DiagnosticReport()
    _check_boost_set(schedule, report)
    _check_coverage(schedule, report)
    if stats is not None:
        _check_placement_latencies(schedule, stats, report)
    _check_unrequested_stretch(schedule, report)
    return report
