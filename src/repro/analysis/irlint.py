"""IR lint pass (SA1xx): well-formedness of a loop before scheduling.

This extends the historical :func:`repro.ir.validate.validate_loop` checks
(empty body, branch in body, multiple definitions, malformed memory ops,
undefined live-outs) with the gaps that pass listed in the issue tracker:

* **use-before-def** — a use of a virtual register that is neither defined
  in the body nor supplied via ``live_in`` reads garbage; a *loop-carried*
  first read (the definition sits at the same or a later body index, e.g.
  a post-incremented address or an accumulator) additionally needs an
  initial live-in value for iteration 0 (SA104);
* **operand arity by slot** — the old ``len(inst.uses) < 2`` store check
  counted operand mentions, which says nothing about whether the *value*
  slot is actually present or whether a store grew a bogus destination;
  SA105 checks defs/uses slot-by-slot per opcode family;
* **dead definitions** (SA107) and **access-size mismatches** (SA109) as
  warnings.

:func:`repro.ir.validate.validate_loop` is now a thin wrapper that raises
:class:`~repro.errors.IRError` on the first error-severity finding.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.ir.loop import Loop

#: bytes moved by each sized memory opcode (lfetch touches a line, not a
#: typed element, and is exempt)
_OPCODE_WIDTH = {
    "ld1": 1, "ld2": 2, "ld4": 4, "ld8": 8,
    "ldfs": 4, "ldfd": 8,
    "st1": 1, "st2": 2, "st4": 4, "st8": 8,
    "stfs": 4, "stfd": 8,
}


def lint_loop(loop: Loop) -> DiagnosticReport:
    """Run every SA1xx check over ``loop`` and return the findings."""
    report = DiagnosticReport()
    name = loop.name

    if not loop.body:
        report.add("SA101", "empty body", loop=name)
        return report

    # SA102: the back-edge branch is implicit in this IR
    for inst in loop.body:
        if inst.is_branch:
            report.add(
                "SA102",
                "the back-edge branch is implicit; bodies must not contain "
                "branch instructions",
                loop=name,
                inst=inst,
            )

    # SA103: dynamic-single-assignment — at most one def site per virtual
    first_def: dict = {}
    def_counts: dict = {}
    for inst in loop.body:
        for reg in inst.all_defs():
            if not reg.virtual:
                continue
            def_counts[reg] = def_counts.get(reg, 0) + 1
            first_def.setdefault(reg, inst.index)
    for reg, count in def_counts.items():
        if count > 1:
            report.add(
                "SA103",
                f"register {reg} has multiple definitions ({count} sites)",
                loop=name,
                inst=first_def[reg],
            )

    # SA106 / SA105: memory-op shape, then operand arity slot-by-slot
    for inst in loop.body:
        if inst.is_memory and inst.address_reg is None:
            report.add("SA106", "memory op without address", loop=name, inst=inst)
            continue
        if inst.is_load:
            if len(inst.defs) != 1:
                report.add(
                    "SA105",
                    f"load must define exactly one register, has {len(inst.defs)}",
                    loop=name,
                    inst=inst,
                )
        elif inst.is_store:
            if inst.defs:
                report.add(
                    "SA105",
                    "store must not define a register "
                    "(value belongs in the second use slot)",
                    loop=name,
                    inst=inst,
                )
            if len(inst.uses) < 2:
                report.add(
                    "SA105",
                    "store needs address and value operand slots "
                    "(one mention is not both)",
                    loop=name,
                    inst=inst,
                )
        elif inst.is_prefetch and inst.defs:
            report.add(
                "SA105",
                "prefetch must not define a register",
                loop=name,
                inst=inst,
            )

    # SA104: every virtual use needs a reaching definition or a live-in value
    for inst in loop.body:
        for reg in inst.all_uses():
            if not reg.virtual or reg in loop.live_in:
                continue
            def_index = first_def.get(reg)
            if def_index is None:
                report.add(
                    "SA104",
                    f"register {reg} is used but never defined and not live-in",
                    loop=name,
                    inst=inst,
                )
            elif def_index >= inst.index:
                # loop-carried first read: iteration 0 has no value yet
                report.add(
                    "SA104",
                    f"register {reg} is read before its definition "
                    f"(def at index {def_index}) without a live-in initial "
                    "value",
                    loop=name,
                    inst=inst,
                )

    # SA107: defined, never consumed, not live-out
    used = set()
    for inst in loop.body:
        used.update(r for r in inst.all_uses() if r.virtual)
    for reg, index in first_def.items():
        if reg not in used and reg not in loop.live_out:
            report.add(
                "SA107",
                f"register {reg} is defined but never used and not live-out",
                loop=name,
                inst=index,
            )

    # SA108: live-out registers must be produced or pass through
    for reg in sorted(loop.live_out, key=lambda r: (r.rclass.value, r.index)):
        if reg.virtual and reg not in first_def and reg not in loop.live_in:
            report.add(
                "SA108",
                f"live-out register {reg} is never defined",
                loop=name,
            )

    # SA109: opcode width vs declared element size
    for inst in loop.body:
        width = _OPCODE_WIDTH.get(inst.opcode.mnemonic)
        if width is None or inst.memref is None:
            continue
        if inst.memref.size != width:
            report.add(
                "SA109",
                f"{inst.opcode.mnemonic} moves {width} bytes but memref "
                f"{inst.memref.name!r} declares size={inst.memref.size}",
                loop=name,
                inst=inst,
            )

    return report
