"""The in-order core: executes a compiled loop cycle-accurately.

Execution follows the kernel structure: in kernel iteration ``k`` the
operation scheduled at (stage ``s``, row ``r``) executes for source
iteration ``k - s`` at nominal cycle ``k*II + r``.  Dynamic behaviour on
top of the static schedule:

* **stall-on-use** — before an operation issues, every register operand
  produced by a load is checked; if the producing load instance has not
  completed, the whole pipeline stalls for the difference
  (``BE_EXE_BUBBLE``).  Because loads already in flight keep being
  serviced during the stall, clustering overlaps their latencies exactly
  as analysed in Sec. 2.1;
* **OzQ occupancy** — demand requests that go past L1 hold an OzQ entry
  until completion; when all entries are busy, issue of the next memory
  operation stalls (``BE_L1D_FPU_BUBBLE``).  Prefetches finding the queue
  full are dropped, as hardware drops hints;
* **TLB** — demand misses add the walk penalty; prefetches missing the
  TLB are dropped.

Non-pipelined loops run through the same machinery with ``II`` equal to
the list-schedule length and a single stage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.ddg.edges import DepKind
from repro.ir.instructions import Instruction
from repro.pipeliner.driver import PipelineResult
from repro.pipeliner.scheduler import list_schedule
from repro.sim.address import LoopStreams
from repro.sim.counters import PerfCounters
from repro.sim.memory import MemorySystem


@dataclass(frozen=True, slots=True)
class OpExec:
    """Precompiled execution record for one loop-body operation."""

    inst: Instruction
    row: int
    stage: int
    #: diagnostic key for stall attribution
    tag: str
    #: (load slot index, omega) pairs this op's operands wait on
    waits: tuple[tuple[int, int], ...]
    #: slot in the per-iteration completion table (loads only, else -1)
    load_slot: int
    is_load: bool
    is_store: bool
    is_prefetch: bool
    is_fp: bool
    prefetch_distance: int
    prefetch_l2_only: bool
    ref_uid: int


@dataclass
class ExecutionSetup:
    """Everything :func:`run_iterations` needs, precomputed once per loop."""

    ops: list[OpExec]
    ii: int
    stage_count: int
    num_loads: int
    loop_name: str = ""
    pipelined: bool = True
    #: lazily-built :class:`repro.sim.fastpath.CompiledKernel` for this
    #: setup (populated by :func:`repro.sim.fastpath.compile_kernel`)
    kernel: object = field(default=None, repr=False, compare=False)


def prepare_execution(result: PipelineResult, machine) -> ExecutionSetup:
    """Lower a pipeline (or fallback) result into an execution setup.

    Memoised per ``(result, machine)`` pair on the result object itself,
    so repeated-invocation paths (benchmark reruns, multi-seed oracles,
    versioned execution) lower each loop once instead of once per call.
    The memo holds a strong reference to the machine, which keeps the
    ``id()`` key valid for the lifetime of the entry.
    """
    memo = getattr(result, "_exec_setup_memo", None)
    if memo is None:
        memo = {}
        result._exec_setup_memo = memo
    entry = memo.get(id(machine))
    if entry is not None and entry[0] is machine:
        return entry[1]
    if result.pipelined and result.schedule is not None:
        times = result.schedule.times
        ii = result.schedule.ii
    else:
        times = list_schedule(result.ddg, machine)
        ii = result.seq_length
    setup = _build_setup(result, times, ii)
    memo[id(machine)] = (machine, setup)
    return setup


def _build_setup(
    result: PipelineResult, times: dict[Instruction, int], ii: int
) -> ExecutionSetup:
    ddg = result.ddg
    loop = result.loop

    load_slot: dict[int, int] = {}
    for slot, load in enumerate(loop.loads):
        load_slot[load.index] = slot

    # operand waits: flow edges whose source is a load's data result
    waits: dict[int, set[tuple[int, int]]] = {}
    for edge in ddg.edges:
        if edge.kind is not DepKind.FLOW or not edge.src.is_load:
            continue
        if edge.reg not in edge.src.defs:
            continue  # post-increment address result, not load data
        waits.setdefault(edge.dst.index, set()).add(
            (load_slot[edge.src.index], edge.omega)
        )

    ops: list[OpExec] = []
    for inst in loop.body:
        t = times[inst]
        ref = inst.memref
        ops.append(
            OpExec(
                inst=inst,
                row=t % ii,
                stage=t // ii,
                tag=f"{loop.name}#{inst.index}:{inst.mnemonic}",
                waits=tuple(sorted(waits.get(inst.index, ()))),
                load_slot=load_slot.get(inst.index, -1),
                is_load=inst.is_load,
                is_store=inst.is_store,
                is_prefetch=inst.is_prefetch,
                is_fp=bool(ref.is_fp) if ref is not None else inst.is_fp,
                prefetch_distance=ref.prefetch_distance if ref is not None else 0,
                prefetch_l2_only=bool(ref.prefetch_l2_only) if ref is not None else False,
                ref_uid=ref.uid if ref is not None else -1,
            )
        )
    ops.sort(key=lambda o: (o.row, o.inst.index))
    stage_count = max(o.stage for o in ops) + 1 if ops else 1
    return ExecutionSetup(
        ops=ops,
        ii=ii,
        stage_count=stage_count,
        num_loads=len(loop.loads),
        loop_name=loop.name,
        pipelined=result.pipelined,
    )


def run_iterations(
    setup: ExecutionSetup,
    streams: LoopStreams,
    stream_base: int,
    n: int,
    memory: MemorySystem,
    ozq_capacity: int,
    counters: PerfCounters,
    start_cycle: float = 0.0,
    sink=None,
    queue=None,
    scoreboard=None,
) -> float:
    """Execute ``n`` source iterations; returns the finish cycle.

    ``stream_base`` indexes the address streams for this invocation's
    first iteration (streams are shared across invocations).  ``sink``
    receives :mod:`repro.trace.events` as execution proceeds; its
    interest flags are hoisted into locals here, so a ``None`` sink (or
    one that wants nothing) costs a few branch tests per op.

    ``queue`` and ``scoreboard`` are the machine's
    :class:`~repro.machine.description.QueueDiscipline` and
    :class:`~repro.machine.description.ScoreboardPolicy`; ``None`` (or
    the Itanium defaults) selects the classic OzQ + stall-on-use
    semantics, whose arithmetic is untouched by the other policies'
    guards.
    """
    if n <= 0:
        return start_cycle
    ii = setup.ii
    ops = setup.ops
    kernel_iters = n + setup.stage_count - 1

    # machine policies beyond the classic in-order OzQ core; the guards
    # below are inactive (and cost one falsy test) for itanium2
    window = 0.0
    if scoreboard is not None and scoreboard.kind == "load-delay-tracking":
        window = float(scoreboard.tracking_window)
    slsq = queue is not None and queue.kind == "slsq"
    if slsq:
        runahead = float(queue.runahead)
        replay_penalty = float(queue.replay_penalty)
        #: recent stores as (issue cycle, address) in allocation order; a
        #: load speculating `runahead` cycles early violates only against
        #: stores whose address was not yet known when it issued
        store_window: list[tuple[float, int]] = []

    emit_issues = sink is not None and sink.wants_issues
    emit_uses = sink is not None and sink.wants_uses
    emit_stalls = sink is not None and sink.wants_stalls
    emit_memory = sink is not None and sink.wants_memory
    if emit_issues or emit_uses or emit_stalls or emit_memory:
        from repro.trace import events as ev
    else:
        ev = None

    completions = [np.full(n, -np.inf) for _ in range(setup.num_loads)]
    # completion-time heap of in-flight requests; the monotonically
    # increasing uid breaks completion-time ties, so pop order (and with
    # it every trace and counter) is bit-identical across runs/platforms
    ozq: list[tuple[float, int]] = []
    ozq_seq = 0
    stall = 0.0
    # L2D_OZQ_FULL tracking: integral of wall-clock time the queue sits at
    # capacity (the hardware counter's semantics, Sec. 4.5)
    became_full_at: float | None = None

    def drain(now: float) -> None:
        nonlocal became_full_at
        while ozq and ozq[0][0] <= now:
            t, _uid = heapq.heappop(ozq)
            if became_full_at is not None and len(ozq) == ozq_capacity - 1:
                full = max(0.0, t - became_full_at)
                counters.ozq_full_cycles += full
                if emit_stalls:
                    sink.emit(ev.OzqFull(cycle=became_full_at, duration=full))
                became_full_at = None

    def push(completion: float, now: float) -> None:
        nonlocal became_full_at, ozq_seq
        heapq.heappush(ozq, (completion, ozq_seq))
        ozq_seq += 1
        if len(ozq) >= ozq_capacity and became_full_at is None:
            became_full_at = now

    streams_by_uid = streams.by_ref

    for k in range(kernel_iters):
        base = start_cycle + k * ii
        for op in ops:
            i = k - op.stage
            if i < 0 or i >= n:
                continue
            now = base + op.row + stall

            # stall-on-use: wait for load-produced operands
            for slot, omega in op.waits:
                j = i - omega
                if j < 0:
                    continue
                ready = completions[slot][j]
                if ready > now:
                    wait = ready - now
                    if window:
                        # load-delay tracking: the issue logic covers up
                        # to `window` cycles with independent work; only
                        # the exposed remainder stalls the pipeline
                        hidden = wait if wait < window else window
                        counters.ldt_hidden_cycles += hidden
                        wait -= hidden
                    if wait > 0.0:
                        if emit_stalls:
                            sink.emit(ev.UseStall(
                                cycle=now, consumer=op.tag, slot=slot,
                                source_iter=j, wait=wait,
                                inflight=sum(1 for c in ozq if c[0] > now),
                            ))
                        stall += wait
                        now += wait
                        counters.be_exe_bubble += wait
                        counters.attribute_stall(op.tag, wait)
                elif emit_uses:
                    sink.emit(ev.UseReady(
                        cycle=now, consumer=op.tag, slot=slot, source_iter=j,
                    ))

            if emit_issues:
                sink.emit(ev.OpIssue(
                    cycle=now, tag=op.tag, row=op.row, stage=op.stage,
                    kernel_iter=k, source_iter=i,
                    op_kind=("prefetch" if op.is_prefetch
                             else "load" if op.is_load
                             else "store" if op.is_store else "alu"),
                ))

            if op.ref_uid < 0:
                continue  # pure register op: issue costs are in the schedule

            # free completed OzQ entries
            drain(now)

            stream = streams_by_uid[op.ref_uid]
            if op.is_prefetch:
                pos = stream_base + i + op.prefetch_distance
                if pos >= len(stream):
                    if emit_memory:
                        sink.emit(ev.PrefetchDrop(
                            cycle=now, tag=op.tag, reason="stream-end",
                        ))
                    continue
                if len(ozq) >= ozq_capacity:
                    # hardware drops hints when the queue is full
                    counters.prefetches_dropped_ozq += 1
                    if emit_memory:
                        sink.emit(ev.PrefetchDrop(
                            cycle=now, tag=op.tag, reason="ozq-full",
                        ))
                    continue
                addr = int(stream[pos])
                res = memory.prefetch(
                    addr, now, op.prefetch_l2_only, op.is_fp
                )
                counters.prefetches_issued += 1
                if emit_memory:
                    sink.emit(ev.PrefetchIssue(
                        cycle=now, tag=op.tag,
                        ref=op.inst.memref.name if op.inst.memref else "",
                        addr=addr, level=res.level, latency=res.latency,
                        occupies_ozq=res.occupies_ozq,
                    ))
                if res.occupies_ozq:
                    push(now + res.latency, now)
                continue

            # demand access: stall while the OzQ is full
            if len(ozq) >= ozq_capacity:
                wait = ozq[0][0] - now
                if wait > 0:
                    if emit_stalls:
                        sink.emit(ev.OzqStall(cycle=now, tag=op.tag, wait=wait))
                    stall += wait
                    now += wait
                    counters.be_l1d_fpu_bubble += wait
                drain(now)

            addr = int(stream[stream_base + i])
            if op.is_load:
                if slsq:
                    # allocation-order disambiguation: the load issued
                    # speculatively `runahead` cycles ago, so any older
                    # store to the same address issued since then had an
                    # unknown address at speculation time — a violation
                    # that replays the load
                    if store_window:
                        horizon = now - runahead
                        store_window[:] = [
                            entry for entry in store_window
                            if entry[0] > horizon
                        ]
                        for _issued, stored in store_window:
                            if stored == addr:
                                counters.slsq_replays += 1
                                counters.slsq_replay_cycles += replay_penalty
                                counters.be_flush_bubble += replay_penalty
                                stall += replay_penalty
                                now += replay_penalty
                                break
                    res = memory.load(addr, now, op.is_fp)
                    # runahead issue hides the leading latency cycles
                    effective = res.latency - runahead
                    if effective < 1.0:
                        effective = 1.0
                    completions[op.load_slot][i] = now + effective
                else:
                    res = memory.load(addr, now, op.is_fp)
                    completions[op.load_slot][i] = now + res.latency
                counters.record_load_level(res.level)
                if emit_memory:
                    sink.emit(ev.LoadIssue(
                        cycle=now, tag=op.tag, slot=op.load_slot,
                        source_iter=i,
                        ref=op.inst.memref.name if op.inst.memref else "",
                        addr=addr, level=res.level, latency=res.latency,
                        occupies_ozq=res.occupies_ozq,
                    ))
            else:
                res = memory.store(addr, now, op.is_fp)
                if slsq:
                    store_window.append((now, addr))
                if emit_memory:
                    sink.emit(ev.StoreIssue(
                        cycle=now, tag=op.tag,
                        ref=op.inst.memref.name if op.inst.memref else "",
                        addr=addr, level=res.level, latency=res.latency,
                        occupies_ozq=res.occupies_ozq,
                    ))
            if res.occupies_ozq:
                push(now + res.latency, now)

    counters.unstalled += kernel_iters * ii
    counters.kernel_iterations += kernel_iters
    counters.source_iterations += n
    return start_cycle + kernel_iters * ii + stall
