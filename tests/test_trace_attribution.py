"""Tests for stall attribution and the closed-accounting invariant.

The fixed-latency memory makes stalls exactly predictable (the Sec. 2.1
setup of ``test_sim_core``), so per-site attribution, coverage and the
clustering histogram can be checked against known values — and closed
accounting is pinned on real workloads across configs.
"""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.harness.jobs import collect_profile
from repro.ir import parse_loop
from repro.machine import ItaniumMachine
from repro.pipeliner import pipeline_loop
from repro.sim import prepare_execution, run_iterations, simulate_loop
from repro.sim.address import StreamSpec, build_streams
from repro.sim.counters import PerfCounters
from repro.sim.memory import AccessResult, MemorySystem
from repro.trace import (
    CaptureSink,
    StallAttribution,
    TeeSink,
    check_closed_accounting,
    trace_simulation,
)
from repro.workloads import micro_suite
from tests.conftest import RUNNING_EXAMPLE


class FixedLatencyMemory(MemorySystem):
    """Every load takes exactly ``latency`` cycles; stores are free."""

    def __init__(self, latency: float) -> None:
        super().__init__(bank_conflicts=False)
        self.fixed = float(latency)

    def load(self, addr, now, is_fp=False):
        return AccessResult(self.fixed, 3, True)

    def store(self, addr, now, is_fp=False):
        return AccessResult(1.0, 2, False)

    def prefetch(self, addr, now, l2_only=False, is_fp=False):
        return AccessResult(0.0, 1, False)


LAYOUT = {
    "a": StreamSpec(size=1 << 20, reuse=False),
    "b": StreamSpec(size=1 << 20, reuse=False),
}


def run_attributed(latency, n=400, d_extra=0):
    machine = ItaniumMachine()
    loop = parse_loop(RUNNING_EXAMPLE)
    if d_extra > 0:
        from repro.ir.memref import LatencyHint
        from repro.machine.hints import HintTranslation

        loop.body[0].memref.hint = LatencyHint.L2
        machine = machine.with_translation(
            HintTranslation(name="x", l2=1 + d_extra, max_scheduled=100)
        )
        config = CompilerConfig(trip_count_threshold=0, prefetch=False)
    else:
        config = baseline_config()
    result = pipeline_loop(loop, machine, config)
    assert result.pipelined and result.ii == 1
    setup = prepare_execution(result, machine)
    streams = build_streams(loop, LAYOUT, n)
    counters = PerfCounters()
    attribution = StallAttribution()
    cycles = run_iterations(
        setup, streams, 0, n, FixedLatencyMemory(latency),
        machine.ozq_capacity, counters, sink=attribution,
    )
    return cycles, counters, attribution


class TestPerSiteAttribution:
    def test_all_stalls_attributed_to_the_single_load(self):
        cycles, counters, attr = run_attributed(latency=12.0)
        assert counters.be_exe_bubble > 0
        assert attr.stall_on_use_total == counters.be_exe_bubble
        assert attr.unattributed_stall == 0.0
        assert list(attr.sites) == ["copy_add#0:ld4"]
        site = attr.sites["copy_add#0:ld4"]
        assert site.stall_cycles == counters.be_exe_bubble
        assert site.instances == 400
        assert site.mean_latency == 12.0

    def test_consumer_tagging(self):
        _, _, attr = run_attributed(latency=12.0)
        # the add consumes the load's value; it takes all the stalls
        assert list(attr.stall_by_consumer) == ["copy_add#1:add"]

    def test_every_instance_used_exactly_once(self):
        _, _, attr = run_attributed(latency=12.0, n=250)
        site = attr.sites["copy_add#0:ld4"]
        assert site.used == 250
        assert site.stalled_uses + (site.used - site.stalled_uses) == 250


class TestCoverage:
    def test_fully_covered_when_latency_fits_the_schedule(self):
        # latency 1 always completes before the next-cycle use
        _, counters, attr = run_attributed(latency=1.0)
        assert counters.be_exe_bubble == 0.0
        assert attr.coverage == 1.0
        site = attr.sites["copy_add#0:ld4"]
        assert site.stalled_uses == 0

    def test_partial_coverage_matches_residual_wait(self):
        _, _, attr = run_attributed(latency=12.0)
        site = attr.sites["copy_add#0:ld4"]
        # every stall here is a first-use stall (single consumer), so the
        # covered latency is the total latency minus the residual waits:
        # coverage = 1 - stall_cycles / (latency * used)
        assert site.coverage == pytest.approx(
            1.0 - site.stall_cycles / (12.0 * site.used)
        )
        assert 0.0 < site.coverage < 1.0
        # clustering means only every k-th instance stalls
        assert 0 < site.stalled_uses < site.used
        assert 0.0 < attr.coverage < 1.0


class TestClustering:
    def test_histogram_counts_every_stall(self):
        _, _, attr = run_attributed(latency=30.0)
        site = attr.sites["copy_add#0:ld4"]
        assert sum(attr.clustering.values()) == site.stalled_uses
        assert sum(attr.clustering_cycles.values()) == pytest.approx(
            attr.stall_on_use_total
        )

    def test_mean_k_grows_with_scheduled_distance(self):
        # k is set by the *scheduled* use distance (Equ. 3), not by the
        # runtime latency: boosting the hint moves the use further out and
        # every stall then shadows more in-flight instances
        _, _, near = run_attributed(latency=60.0)
        _, _, far = run_attributed(latency=60.0, d_extra=8)
        assert far.mean_clustering > near.mean_clustering >= 2.0


class TestReplay:
    def test_replay_of_captured_stream_matches_streaming(self):
        machine = ItaniumMachine()
        loop = parse_loop(RUNNING_EXAMPLE)
        result = pipeline_loop(loop, machine, baseline_config())
        setup = prepare_execution(result, machine)
        streams = build_streams(loop, LAYOUT, 300)
        capture, streaming = CaptureSink(), StallAttribution()
        run_iterations(
            setup, streams, 0, 300, MemorySystem(machine.timings),
            machine.ozq_capacity, PerfCounters(),
            sink=TeeSink(capture, streaming),
        )
        replayed = StallAttribution().replay(capture.events)
        assert replayed.to_dict() == streaming.to_dict()


class TestClosedAccounting:
    def test_fixed_latency_accounting_closes(self):
        cycles, counters, attr = run_attributed(latency=25.0)
        check = check_closed_accounting(attr, counters, cycles)
        assert check.ok, check.failures

    @pytest.mark.parametrize("policy", ["baseline", "hlo"])
    def test_micro_suite_accounting_closes(self, policy):
        machine = ItaniumMachine()
        config = (
            baseline_config() if policy == "baseline"
            else CompilerConfig(trip_count_threshold=32)
        )
        for bench in micro_suite():
            profile = collect_profile(bench, seed=2008)
            for lw in bench.loops:
                loop, layout = lw.build()
                from repro.core.compiler import LoopCompiler

                compiled = LoopCompiler(machine, config).compile(loop, profile)
                traced = trace_simulation(
                    compiled.result, machine, layout, [60, 40], seed=7,
                )
                assert traced.check.ok, (bench.name, traced.check.failures)

    def test_failure_reports_name_the_bucket(self):
        _, counters, attr = run_attributed(latency=25.0)
        counters.be_exe_bubble += 1.0  # poison one bucket
        check = check_closed_accounting(attr, counters)
        assert not check.ok
        assert any("be_exe_bubble" in f for f in check.failures)

    def test_cycle_identity_is_checked_when_cycles_given(self):
        cycles, counters, attr = run_attributed(latency=25.0)
        check = check_closed_accounting(attr, counters, cycles + 5.0)
        assert not check.ok
        assert any("cycle identity" in f for f in check.failures)

    def test_tracing_leaves_simulation_untouched(self):
        machine = ItaniumMachine()
        loop = parse_loop(RUNNING_EXAMPLE)
        result = pipeline_loop(loop, machine, baseline_config())
        plain = simulate_loop(result, machine, LAYOUT, [100, 50], seed=3)
        traced = trace_simulation(result, machine, LAYOUT, [100, 50], seed=3)
        assert traced.run.cycles == plain.cycles
        assert traced.run.counters == plain.counters
