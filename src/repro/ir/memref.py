"""Memory-reference descriptors and latency-hint tokens.

Each memory instruction in a loop refers to a :class:`MemRef` describing the
*static* memory reference: its access pattern across source iterations, its
stride, the array/heap "space" it touches, and — crucially for this paper —
the annotations the High-Level Optimizer attaches to it:

* whether (and at what distance) it is prefetched, and
* the *expected-latency hint* token (Sec. 3.2: "There is a token associated
  with each memory reference that is used to provide hints from the
  prefetcher to the code generator in the back-end").

The hint token is consumed by the machine model when the pipeliner queries
load latencies (Sec. 3.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class AccessPattern(enum.Enum):
    """Static classification of how a reference's address evolves."""

    #: ``a[i]`` — base + constant stride per source iteration.
    AFFINE = "affine"
    #: ``a[i*n]`` — affine with a stride unknown at compile time (Sec. 3.2
    #: rule 2a: prefetch distance limited to contain TLB pressure).
    SYMBOLIC_STRIDE = "symbolic"
    #: ``a[b[i]]`` — indirect through an index reference (Sec. 3.2 rule 2b).
    INDIRECT = "indirect"
    #: ``node = node->child`` — address depends on the previous iteration's
    #: loaded value; cannot be prefetched (Sec. 4.4).
    POINTER_CHASE = "chase"
    #: address does not change across iterations.
    INVARIANT = "invariant"


class LatencyHint(enum.Enum):
    """Expected-latency hint token attached to a memory reference.

    ``NONE`` means "schedule for the base (minimum) latency".  ``L2``/``L3``
    mean "expect this load to hit no higher than L2/L3" and are translated by
    the machine model into *typical* latencies that exceed the best-case
    cache latencies (Sec. 3.3).  ``MEM`` marks expected main-memory latency;
    the pipeliner clips the scheduled latency for such loads because
    scheduling for more than 20-30 cycles is not advisable (Sec. 2.1).
    """

    NONE = 0
    L1 = 1
    L2 = 2
    L3 = 3
    MEM = 4

    def __lt__(self, other: "LatencyHint") -> bool:
        if not isinstance(other, LatencyHint):
            return NotImplemented
        return self.value < other.value


_memref_ids = itertools.count()


@dataclass(eq=False)
class MemRef:
    """A static memory reference inside a loop.

    Identity (``eq=False``) is deliberate: two references with identical
    descriptions are still distinct references — they get separate prefetch
    and hint decisions.
    """

    name: str
    pattern: AccessPattern = AccessPattern.AFFINE
    #: element size in bytes (4 = word, 8 = double)
    size: int = 4
    #: stride in bytes per source iteration; ``None`` when symbolic/unknown.
    stride: int | None = None
    #: constant byte offset from the space's access sequence (distinct
    #: stencil taps: ``x[i-1]``, ``x[i]``, ``x[i+1]`` share a line group
    #: but touch different addresses)
    offset: int = 0
    #: True for floating-point data (FP loads bypass L1 on Itanium 2).
    is_fp: bool = False
    #: name of the array / heap region accessed (address-space key for the
    #: simulator and for cache-line grouping in HLO).
    space: str = ""
    #: for INDIRECT references: the reference that produces the index.
    index_ref: "MemRef | None" = None

    # --- annotations filled in by the High-Level Optimizer -------------
    #: latency-hint token (Sec. 3.2/3.3)
    hint: LatencyHint = LatencyHint.NONE
    #: provenance of the hint: ``"hlo"`` for prefetcher-directed marks
    #: (rules 1-3 of Sec. 3.2, trusted even in low-trip-count loops —
    #: Sec. 3.1/4.4), ``"policy"`` for blanket settings (ALL_LOADS_L3 /
    #: FP-L2 default), which the trip-count threshold gates (Fig. 7)
    hint_source: str = ""
    #: whether HLO emitted a prefetch for this reference
    prefetched: bool = False
    #: prefetch distance in source iterations (0 when not prefetched)
    prefetch_distance: int = 0
    #: HLO's estimate of the fraction of the miss latency the prefetch covers
    prefetch_efficiency: float = 0.0
    #: prefetch targets L2 only (OzQ-pressure rule 3 of Sec. 3.2)
    prefetch_l2_only: bool = False

    uid: int = field(default_factory=lambda: next(_memref_ids))

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported access size: {self.size}")
        if self.pattern is AccessPattern.AFFINE and self.stride is None:
            # A plain affine reference defaults to unit (element) stride.
            self.stride = self.size
        if self.pattern is AccessPattern.INDIRECT and self.index_ref is None:
            raise ValueError(f"indirect reference {self.name!r} needs index_ref")
        if not self.space:
            self.space = self.name

    @property
    def prefetchable(self) -> bool:
        """Whether software prefetching can compute this address in advance.

        Pointer-chasing references depend on a load recurrence and cannot be
        prefetched (Sec. 4.4); invariant references need no prefetch.
        """
        return self.pattern not in (
            AccessPattern.POINTER_CHASE,
            AccessPattern.INVARIANT,
        )

    def clone_annotations_cleared(self) -> "MemRef":
        """A copy of this reference with all HLO annotations reset.

        Used by the experiment harness so that compiling the same loop under
        two configurations never leaks hints between runs.
        """
        return MemRef(
            name=self.name,
            pattern=self.pattern,
            size=self.size,
            stride=self.stride,
            offset=self.offset,
            is_fp=self.is_fp,
            space=self.space,
            index_ref=self.index_ref,
        )

    def __repr__(self) -> str:
        extra = ""
        if self.hint is not LatencyHint.NONE:
            extra += f" hint={self.hint.name}"
        if self.prefetched:
            extra += f" pf@{self.prefetch_distance}"
        return f"MemRef({self.name}:{self.pattern.value}{extra})"
