"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_size, parse_space

LOOP_TEXT = """
memref A affine stride=4 space=a
memref B affine stride=4 space=b
loop copy_add trips=200 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
"""


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.s"
    path.write_text(LOOP_TEXT)
    return str(path)


class TestParsers:
    def test_parse_size(self):
        assert parse_size("1024") == 1024
        assert parse_size("64K") == 64 * 1024
        assert parse_size("2m") == 2 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size("1.5M") == int(1.5 * (1 << 20))

    def test_parse_size_long_suffixes(self):
        assert parse_size("512kb") == 512 * 1024
        assert parse_size("64MB") == 64 << 20
        assert parse_size("2Gb") == 2 << 30

    @pytest.mark.parametrize("bad", ["0", "-1", "-64M", "0.0001", "bogus",
                                     "12q", "M", ""])
    def test_parse_size_rejects(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_size(bad)

    def test_parse_space(self):
        name, spec = parse_space("a=64M")
        assert name == "a" and spec.size == 64 << 20 and spec.reuse
        name, spec = parse_space("b=8K:stream")
        assert name == "b" and not spec.reuse
        name, spec = parse_space("c=8K:reuse")
        assert name == "c" and spec.reuse

    @pytest.mark.parametrize("bad", ["nonsense", "=64M", " =64M",
                                     "a=64M:typo", "a=64M:", "a=-4k"])
    def test_parse_space_malformed(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_space(bad)


class TestCompileCommand:
    def test_compile_prints_kernel(self, loop_file, capsys):
        assert main(["compile", loop_file]) == 0
        out = capsys.readouterr().out
        assert "pipelined" in out
        assert "br.ctop" in out
        assert "(p16)" in out

    def test_compile_verbose(self, loop_file, capsys):
        assert main(["compile", loop_file, "-v", "--policy", "all-loads-l3",
                     "-n", "0"]) == 0
        out = capsys.readouterr().out
        assert "boosted=True" in out

    def test_compile_baseline_policy(self, loop_file, capsys):
        assert main(["compile", loop_file, "--policy", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "boosted 0/1" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/loop.s"]) == 1
        assert "error" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulate(self, loop_file, capsys):
        rc = main([
            "simulate", loop_file, "--trips", "200", "--invocations", "2",
            "--space", "a=1M", "--space", "b=1M",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "loads by level" in out

    def test_simulate_missing_space(self, loop_file, capsys):
        rc = main(["simulate", loop_file, "--space", "a=1M"])
        assert rc == 2
        assert "no --space" in capsys.readouterr().err


class TestExperimentCommand:
    def test_single_benchmark(self, capsys):
        rc = main([
            "experiment", "--suite", "cpu2006",
            "--benchmark", "464.h264ref",
            "--policy", "all-loads-l3", "-n", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "464.h264ref" in out and "Geomean" in out

    def test_unknown_benchmark(self, capsys):
        rc = main(["experiment", "--benchmark", "999.bogus"])
        assert rc == 2

    def test_jobs_and_cache_dir(self, tmp_path, capsys):
        """--jobs routes through the pool, --cache-dir through the cache."""
        args = [
            "experiment", "--suite", "micro", "--policy", "hlo",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        out1 = capsys.readouterr().out
        assert "Geomean" in out1
        # second invocation replays from the cache, same table
        assert main(args) == 0
        assert capsys.readouterr().out == out1
        assert any((tmp_path / "cache").iterdir())


class TestBenchCommand:
    def test_bench_micro_smoke_and_warm_cache(self, tmp_path, capsys):
        args = [
            "bench", "--suite", "micro", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(tmp_path / "runs" / "a.json"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Geomean" in out and "cache 0/8 hits (0%)" in out

        args[-1] = str(tmp_path / "runs" / "b.json")
        assert main(args) == 0
        out = capsys.readouterr().out
        # acceptance criterion: an unchanged sweep re-runs >= 90% cached
        assert "cache 8/8 hits (100%)" in out

    def test_bench_no_cache(self, tmp_path, capsys):
        rc = main([
            "bench", "--suite", "micro", "--benchmark", "micro.lowtrip",
            "--no-cache", "--jobs", "1",
            "--manifest", str(tmp_path / "m.json"),
        ])
        assert rc == 0
        assert "cache 0/2 hits" in capsys.readouterr().out

    def test_bench_unknown_benchmark(self, capsys):
        assert main(["bench", "--benchmark", "999.bogus"]) == 2


class TestCompareCommand:
    def test_compare_two_manifests(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        for name in ("a.json", "b.json"):
            assert main([
                "bench", "--suite", "micro", "--jobs", "1",
                "--cache-dir", cache,
                "--manifest", str(tmp_path / name),
            ]) == 0
        capsys.readouterr()
        assert main([
            "compare", str(tmp_path / "a.json"), str(tmp_path / "b.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "overall geomean (B vs A): +0.00%" in out
        assert "micro.chase" in out

    def test_compare_missing_manifest(self, tmp_path, capsys):
        rc = main(["compare", str(tmp_path / "nope.json"),
                   str(tmp_path / "nope.json")])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestFig5Command:
    def test_fig5(self, capsys):
        assert main(["fig5", "--max-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "100.0%" in out
        assert out.strip().splitlines()[-1].startswith("4")


BAD_LOOP_TEXT = """
memref A affine stride=4 space=a
loop wide trips=100
  ld8 r4 = [r5], 8 !A
  add r7 = r4, r9
"""


class TestLintCommand:
    def test_lint_clean_file(self, loop_file, capsys):
        assert main(["lint", loop_file]) == 0
        out = capsys.readouterr().out
        assert "linted 1 loop(s): OK" in out

    def test_lint_reports_warnings_but_passes(self, tmp_path, capsys):
        # ld8 against a size=4 memref: SA109 warning, exit code stays 0
        path = tmp_path / "wide.s"
        path.write_text(BAD_LOOP_TEXT)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SA109" in out and "warning" in out

    def test_lint_suite_json(self, capsys):
        import json

        assert main(["lint", "--suite", "micro", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert set(payload["counts"]) == {"error", "warning", "note"}

    def test_lint_nothing_to_lint(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_lint_missing_file(self, capsys):
        assert main(["lint", "/nonexistent/loop.s"]) == 1
        assert "error" in capsys.readouterr().err


class TestVerifyFlags:
    def test_compile_verify_ok(self, loop_file, capsys):
        assert main(["compile", loop_file, "--verify"]) == 0
        assert "verification: OK" in capsys.readouterr().out

    def test_compile_verify_boosted(self, loop_file, capsys):
        assert main(["compile", loop_file, "--verify",
                     "--policy", "all-loads-l3", "-n", "0"]) == 0
        assert "verification: OK" in capsys.readouterr().out

    def test_bench_verify_records_cells(self, tmp_path, capsys):
        args = [
            "bench", "--suite", "micro", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(tmp_path / "a.json"), "--verify",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "verified 8/8 cells (0 error(s))" in out
        assert "verification: 8/8 cells verified, 0 error(s)" in out

    def test_bench_without_verify_prints_no_status(self, tmp_path, capsys):
        assert main([
            "bench", "--suite", "micro", "--benchmark", "micro.lowtrip",
            "--no-cache", "--jobs", "1",
            "--manifest", str(tmp_path / "m.json"),
        ]) == 0
        assert "verification:" not in capsys.readouterr().out

    def test_experiment_verify(self, tmp_path, capsys):
        assert main([
            "experiment", "--suite", "micro", "--policy", "all-loads-l3",
            "-n", "0", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"), "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "Geomean" in out
        assert "cells verified, 0 error(s)" in out


class TestTraceCommand:
    def test_trace_defaults_missing_spaces_and_writes_chrome(
        self, loop_file, tmp_path, capsys, monkeypatch
    ):
        import json

        from repro.trace import validate_chrome_trace

        monkeypatch.chdir(tmp_path)
        assert main(["trace", loop_file, "--trips", "300"]) == 0
        out = capsys.readouterr().out
        assert "stall attribution:" in out
        assert "closed accounting: OK" in out
        # default output: <loop file stem>.trace.json in the cwd
        data = json.loads((tmp_path / "loop.trace.json").read_text())
        assert validate_chrome_trace(data) == []

    def test_trace_report_and_timeline(self, loop_file, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        assert main([
            "trace", loop_file, "--trips", "200",
            "--chrome", str(tmp_path / "t.json"),
            "--report", str(report), "--timeline",
        ]) == 0
        out = capsys.readouterr().out
        assert "port-" in out and "ozq" in out  # the ASCII timeline
        data = json.loads(report.read_text())
        assert data["summary"]["ok"] is True
        # the acceptance identity: per-load stall cycles sum to the total
        sites = data["attribution"]["sites"]
        assert sum(s["stall_cycles"] for s in sites) == pytest.approx(
            data["summary"]["stall_on_use"]
        )

    def test_trace_explicit_space_and_ring(self, loop_file, tmp_path, capsys):
        assert main([
            "trace", loop_file, "--trips", "100",
            "--space", "a=1M:stream", "--space", "b=1M:stream",
            "--chrome", str(tmp_path / "t.json"), "--ring", "64",
        ]) == 0
        assert "closed accounting: OK" in capsys.readouterr().out

    def test_trace_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.s"),
                     "--chrome", str(tmp_path / "t.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestTraceFlags:
    def test_bench_trace_records_cells(self, tmp_path, capsys):
        args = [
            "bench", "--suite", "micro", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(tmp_path / "a.json"), "--trace",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "traced 8/8 cells (0 accounting failure(s))" in out
        assert "trace: 8/8 cells traced, accounting OK" in out

        # warm re-run: summaries come from the cache, status unchanged
        args[-2] = str(tmp_path / "b.json")
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache 8/8 hits (100%)" in out
        assert "trace: 8/8 cells traced, accounting OK" in out

    def test_experiment_trace(self, capsys):
        assert main([
            "experiment", "--suite", "micro", "--benchmark", "micro.stream",
            "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "cells traced, accounting OK" in out

    def test_bench_without_trace_prints_no_status(self, tmp_path, capsys):
        assert main([
            "bench", "--suite", "micro", "--benchmark", "micro.lowtrip",
            "--no-cache", "--jobs", "1",
            "--manifest", str(tmp_path / "m.json"),
        ]) == 0
        assert "trace:" not in capsys.readouterr().out


class TestCompareDisjoint:
    def test_compare_disjoint_manifests_exits_cleanly(
        self, tmp_path, capsys
    ):
        assert main([
            "bench", "--suite", "micro", "--benchmark", "micro.stream",
            "--no-cache", "--jobs", "1",
            "--manifest", str(tmp_path / "a.json"),
        ]) == 0
        assert main([
            "bench", "--suite", "micro", "--benchmark", "micro.chase",
            "--no-cache", "--jobs", "1",
            "--manifest", str(tmp_path / "b.json"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "compare", str(tmp_path / "a.json"), str(tmp_path / "b.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "(no matching cells)" in out
        assert "removed (only in A): 2 cell(s)" in out
        assert "added (only in B): 2 cell(s)" in out
        assert "n/a (no matched cells)" in out

    def test_compare_partial_overlap(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main([
            "bench", "--suite", "micro", "--cache-dir", cache,
            "--jobs", "1", "--manifest", str(tmp_path / "a.json"),
        ]) == 0
        assert main([
            "bench", "--suite", "micro", "--benchmark", "micro.stream",
            "--cache-dir", cache, "--jobs", "1",
            "--manifest", str(tmp_path / "b.json"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "compare", str(tmp_path / "a.json"), str(tmp_path / "b.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "removed (only in A): 6 cell(s)" in out
        assert "overall geomean (B vs A): +0.00% over 2 matched cells" in out


class TestServiceCommands:
    """``repro submit`` / ``repro status`` against a live server."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import ServerConfig, ServiceClient, serve_in_thread

        handle = serve_in_thread(ServerConfig(
            port=0,
            workers=1,
            cache_dir=str(tmp_path / "store"),
            runs_dir=str(tmp_path / "runs"),
            log_path=str(tmp_path / "log.jsonl"),
        ))
        ServiceClient(handle.url).wait_until_ready()
        yield handle.url
        handle.stop()

    def test_submit_bench_and_status(self, server, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        assert main([
            "submit", "bench", "--url", server,
            "--json", '{"suite": "micro"}',
            "--wait", "300", "--output", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "status: queued" in out or "status: running" in out
        assert "fingerprint: " in out
        assert out_path.exists()

        assert main(["status", "--url", server]) == 0
        out = capsys.readouterr().out
        assert "1 submitted, 1 executed" in out

        assert main(["status", "--url", server, "--jobs"]) == 0
        out = capsys.readouterr().out
        assert "bench:micro:hlo" in out
        assert "1 job(s), 0 pending" in out

        assert main(["status", "--url", server, "--runs"]) == 0
        assert "micro seed=2008" in capsys.readouterr().out

    def test_submit_compile_loop_file(self, server, loop_file, capsys):
        assert main([
            "submit", "compile", "--url", server,
            "--loop", loop_file, "--wait", "60",
        ]) == 0
        assert "II=" in capsys.readouterr().out

    def test_submit_batch_file(self, server, tmp_path, capsys):
        import json

        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps({"jobs": [
            {"kind": "bench", "suite": "micro"},
            {"kind": "bench", "suite": "micro"},
        ]}))
        assert main([
            "submit", "--url", server, "--file", str(batch),
        ]) == 0
        out = capsys.readouterr().out
        assert "(deduped)" in out

    def test_submit_invalid_request_errors(self, server, capsys):
        assert main([
            "submit", "bench", "--url", server,
            "--json", '{"suite": "micro", "workers": 4}',
        ]) == 1
        assert "workers" in capsys.readouterr().err

    def test_submit_without_kind_or_batch_errors(self, server, capsys):
        assert main(["submit", "--url", server]) == 2
        assert "KIND" in capsys.readouterr().err

    def test_status_unreachable_server_errors(self, capsys):
        assert main(["status", "--url", "http://127.0.0.1:9"]) == 1
        assert "unreachable" in capsys.readouterr().err
