"""Tests for profiles and trip-count estimation."""

import numpy as np
import pytest

from repro.config import CompilerConfig, baseline_config
from repro.errors import WorkloadError
from repro.hlo import (
    BlockProfile,
    TripDistribution,
    collect_block_profile,
    estimate_trip_count,
    static_profile_estimate,
)
from repro.hlo.profiles import geometric_mean
from repro.hlo.tripcount import prefetch_lookahead_trips
from repro.ir import parse_loop
from repro.ir.loop import TripCountInfo, TripCountSource


class TestTripDistribution:
    def test_constant(self):
        d = TripDistribution(kind="constant", mean=42)
        assert d.average() == 42
        rng = np.random.default_rng(1)
        assert set(d.sample(rng, 10)) == {42}

    def test_uniform(self):
        d = TripDistribution(kind="uniform", low=10, high=20)
        assert d.average() == 15
        rng = np.random.default_rng(1)
        samples = d.sample(rng, 200)
        assert samples.min() >= 10 and samples.max() <= 20

    def test_bimodal(self):
        d = TripDistribution(kind="bimodal", low=2, high=1000, p_low=0.5)
        assert d.average() == 501
        rng = np.random.default_rng(1)
        samples = d.sample(rng, 400)
        assert set(np.unique(samples)) == {2, 1000}

    def test_samples_at_least_one(self):
        d = TripDistribution(kind="constant", mean=0.2)
        rng = np.random.default_rng(1)
        assert d.sample(rng, 5).min() >= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            TripDistribution(kind="exponential")


class TestBlockProfile:
    def test_collect(self):
        profile = collect_block_profile(
            {"hot": TripDistribution(kind="constant", mean=154)}
        )
        info = profile.trip_info("hot")
        assert info is not None
        assert info.estimate == pytest.approx(154)
        assert info.source is TripCountSource.PGO

    def test_unknown_loop(self):
        assert BlockProfile().trip_info("nope") is None


class TestTripCountEstimation:
    def _loop(self, max_trips=None):
        extra = f" max_trips={max_trips}" if max_trips else ""
        return parse_loop(
            f"""
            memref A affine stride=4
            loop hot{extra}
              ld4 r1 = [r2], 4 !A
              add r3 = r1, r9
            """
        )

    def test_pgo_profile_wins(self):
        loop = self._loop()
        profile = collect_block_profile(
            {"hot": TripDistribution(kind="constant", mean=33)}
        )
        info = estimate_trip_count(loop, CompilerConfig(pgo=True), profile)
        assert info.source is TripCountSource.PGO
        assert info.estimate == pytest.approx(33)

    def test_static_heuristic_without_pgo(self):
        loop = self._loop()
        info = estimate_trip_count(loop, CompilerConfig(pgo=False), None)
        assert info.source is TripCountSource.HEURISTIC
        assert info.estimate == 100.0  # the low-accuracy default

    def test_static_bound_caps_heuristic(self):
        loop = self._loop(max_trips=12)
        info = estimate_trip_count(loop, CompilerConfig(pgo=False), None)
        assert info.estimate == 12.0

    def test_static_profile_estimate_direct(self):
        loop = self._loop(max_trips=7)
        info = static_profile_estimate(loop, default=50.0)
        assert info.estimate == 7.0

    def test_lookahead_infinite_with_outer_contiguity(self):
        info = TripCountInfo(estimate=8.0, contiguous_across_outer=True)
        assert prefetch_lookahead_trips(info, 100.0) == float("inf")
        info2 = TripCountInfo(estimate=8.0)
        assert prefetch_lookahead_trips(info2, 100.0) == 8.0


class TestGeomean:
    def test_identity(self):
        assert geometric_mean([]) == 1.0
        assert geometric_mean([1.0, 1.0]) == pytest.approx(1.0)

    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
