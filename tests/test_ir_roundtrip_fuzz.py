"""Printer -> parser identity, fuzzed, plus parser crash-class regressions.

The corpus only works if ``parse_loop(loop_to_source(loop))`` is an
identity for every loop the generator can emit.  These tests pin that
property over a seed sweep and keep the parser's historical crash
classes (raw ``ValueError``/``KeyError`` escaping instead of a
:class:`~repro.errors.ParseError`) fixed.
"""

import pytest

from repro.errors import ParseError
from repro.fuzz.gen import GenConfig, generate_loop, loop_fingerprint
from repro.ir import parse_loop
from repro.ir.printer import loop_to_source

SEEDS = range(60)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fingerprint_identity(self, seed):
        loop = generate_loop(seed)
        source = loop_to_source(loop)
        reparsed = parse_loop(source)
        assert loop_fingerprint(reparsed) == loop_fingerprint(loop)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_source_form_stable(self, seed):
        """Printing the re-parsed loop reproduces the text byte-for-byte
        (the fixpoint that makes corpus files diffable)."""
        loop = generate_loop(seed)
        source = loop_to_source(loop)
        assert loop_to_source(parse_loop(source)) == source

    def test_predicated_loops_round_trip(self):
        cfg = GenConfig(allow_predication=True)
        hits = 0
        for seed in range(40):
            loop = generate_loop(seed, cfg)
            if any(inst.qual_pred is not None for inst in loop.body):
                hits += 1
                reparsed = parse_loop(loop_to_source(loop))
                assert loop_fingerprint(reparsed) == loop_fingerprint(loop)
        assert hits, "predication knob never fired in 40 seeds"


class TestParserCrashClasses:
    """Generator-found crashes: each must be a ParseError, not a traceback."""

    def test_bad_trip_count_is_parse_error(self):
        with pytest.raises(ParseError, match="trip count"):
            parse_loop("loop l trips=abc\n  add r1 = r2, r3\n")

    def test_bad_post_increment_is_parse_error(self):
        with pytest.raises(ParseError, match="post-increment"):
            parse_loop(
                "memref A affine stride=4\n"
                "loop l trips=10\n"
                "  ld4 r1 = [r2], x !A\n"
            )

    def test_bad_memref_stride_is_parse_error(self):
        with pytest.raises(ParseError, match="stride"):
            parse_loop(
                "memref A affine stride=wide\n"
                "loop l trips=10\n"
                "  ld4 r1 = [r2] !A\n"
            )

    def test_unknown_hint_is_parse_error(self):
        with pytest.raises(ParseError, match="hint"):
            parse_loop(
                "memref A affine stride=4 hint=l9\n"
                "loop l trips=10\n"
                "  ld4 r1 = [r2] !A\n"
            )

    def test_memory_op_without_ref_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_loop("loop l trips=10\n  ld4 r1 = [r2]\n")

    def test_ref_on_non_memory_op_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_loop(
                "memref A affine stride=4\n"
                "loop l trips=10\n"
                "  add r1 = r2, r3 !A\n"
            )

    def test_bad_counted_flag_is_parse_error(self):
        with pytest.raises(ParseError, match="counted"):
            parse_loop("loop l trips=10 counted=maybe\n  add r1 = r2, r3\n")


class TestDialectExtensions:
    """The directives the corpus format depends on survive a round trip."""

    def test_liveness_and_independence_directives(self):
        source = (
            "memref A affine fp stride=8 size=8 offset=16 space=shared "
            "hint=l3 hint_source=hlo\n"
            "memref B affine stride=4 space=shared\n"
            "\n"
            "loop ex trips=250 source=pgo max_trips=500 contig=1\n"
            "  ldfd f4 = [r5], 8 !A\n"
            "  fadd f6 = f6, f4\n"
            "  st4 [r7] = r9, 4 !B\n"
            "live_in r9\n"
            "live_out f6\n"
            "independent shared\n"
        )
        loop = parse_loop(source)
        assert loop.independent_spaces == frozenset({"shared"})
        assert loop.trip_count.max_trips == 500
        assert loop.trip_count.contiguous_across_outer
        (ref_a, ref_b) = loop.memrefs
        assert ref_a.offset == 16 and ref_a.hint.name == "L3"
        assert ref_a.hint_source == "hlo"
        assert loop_to_source(parse_loop(loop_to_source(loop))) == \
            loop_to_source(loop)

    def test_while_loop_header_round_trips(self):
        source = "loop w trips=50 counted=0\n  add r1 = r1, r2\nlive_out r1\n"
        loop = parse_loop(source)
        assert not loop.counted
        assert not parse_loop(loop_to_source(loop)).counted
