"""The cost/benefit theory of Sec. 2.1 (Equations (1)-(3) and Fig. 5).

With a runtime load latency of ``L+1`` cycles, ``L`` is the part of the
latency exposable as a stall.  An additional scheduled latency ``d``
covers ``d`` of those cycles:

* Equ. (1): coverage ratio ``c = d / L``;
* clustering of ``k`` load instances turns a stall of ``L - d`` every
  iteration into one every ``k`` iterations, so the total stall reduction
  (Equ. (2)) is ``100 * (1 - (1 - c)/k)`` percent;
* Equ. (3): guaranteeing a clustering factor ``k`` requires an additional
  latency of at least ``d = (k - 1) * II``.
"""

from __future__ import annotations


def coverage_ratio(d: int, exposable_latency: int) -> float:
    """Equ. (1): the fraction of the exposable latency the schedule hides."""
    if exposable_latency <= 0:
        return 1.0
    return min(1.0, max(0.0, d / exposable_latency))


def stall_reduction_percent(c: float, k: int) -> float:
    """Equ. (2): percent stall reduction from coverage ``c``, clustering ``k``."""
    if k < 1:
        raise ValueError(f"clustering factor must be >= 1, got {k}")
    c = min(1.0, max(0.0, c))
    return 100.0 * (1.0 - (1.0 - c) / k)


def clustering_factor(d: int, ii: int) -> int:
    """Equ. (3) inverted: instances in flight given additional latency ``d``."""
    if ii < 1:
        raise ValueError(f"II must be >= 1, got {ii}")
    return max(0, d) // ii + 1


def additional_latency_for_clustering(k: int, ii: int) -> int:
    """Equ. (3): minimum additional latency for a clustering factor ``k``."""
    if k < 1 or ii < 1:
        raise ValueError("k and II must be >= 1")
    return (k - 1) * ii


def expected_stall_cycles(
    n: int, exposable_latency: int, d: int, ii: int
) -> float:
    """Total stall cycles over ``n`` iterations per the Sec. 2.1 model:
    a stall of ``L - d`` every ``k`` kernel iterations."""
    k = clustering_factor(d, ii)
    residual = max(0, exposable_latency - d)
    return n * residual / k


def fig5_series(
    coverages: tuple[float, ...] = (1.0, 0.5, 0.1, 0.01),
    max_k: int = 8,
) -> dict[float, list[tuple[int, float]]]:
    """The four curves of Fig. 5: stall reduction vs clustering factor."""
    return {
        c: [(k, stall_reduction_percent(c, k)) for k in range(1, max_k + 1)]
        for c in coverages
    }
