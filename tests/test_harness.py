"""Tests for the parallel experiment harness (``repro.harness``).

Covers the ISSUE checklist: cache hit/miss determinism (same key serves
bit-identical ``PerfCounters``), pool-vs-serial result equality on a
four-benchmark suite, manifest round-trips, and the ``compare`` geomean
math — plus the second-run cache-hit-rate acceptance criterion.
"""

import dataclasses
import json
import math

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core import Experiment
from repro.errors import HarnessError
from repro.harness import (
    ArtifactCache,
    BenchmarkJob,
    CellRecord,
    RunManifest,
    compare_configs,
    compare_manifests,
    format_comparison,
    hash_key,
    loop_run_key,
    run_job,
    run_jobs,
    run_suite,
)
from repro.harness.jobs import cached_loop_run
from repro.machine import ItaniumMachine
from repro.workloads import benchmark_by_name, micro_suite, suite_by_name


def hlo_cfg() -> CompilerConfig:
    return CompilerConfig(
        hint_policy=HintPolicy.HLO, trip_count_threshold=32, name="hlo"
    )


def assert_counters_equal(a, b):
    """Field-by-field bit-identity of two PerfCounters."""
    for field in dataclasses.fields(a):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


# --- cache -------------------------------------------------------------------

class TestArtifactCache:
    def test_hash_key_is_canonical(self):
        # key order and float formatting must not change the digest
        assert hash_key({"a": 1, "b": 2.5}) == hash_key({"b": 2.5, "a": 1})
        assert hash_key({"a": 1}) != hash_key({"a": 2})

    def test_put_get_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = hash_key({"kind": "test"})
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        cache.put(key, {"cycles": 1.25, "nested": {"x": [1, 2]}})
        assert key in cache
        assert cache.get(key) == {"cycles": 1.25, "nested": {"x": [1, 2]}}
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = hash_key({"kind": "test"})
        cache.put(key, {"cycles": 1.0})
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_loop_run_key_material_is_json_and_sensitive(self):
        bench = benchmark_by_name("micro.stream")
        machine = ItaniumMachine()
        base = loop_run_key(bench, baseline_config(), machine, 2008)
        json.dumps(base)  # must be JSON-serialisable as-is
        assert hash_key(base) == hash_key(
            loop_run_key(bench, baseline_config(), machine, 2008)
        )
        # every key ingredient perturbs the digest
        assert hash_key(base) != hash_key(
            loop_run_key(bench, hlo_cfg(), machine, 2008)
        )
        assert hash_key(base) != hash_key(
            loop_run_key(bench, baseline_config(), machine, 2009)
        )
        assert hash_key(base) != hash_key(
            loop_run_key(
                bench,
                baseline_config(),
                ItaniumMachine().with_ozq_capacity(1),
                2008,
            )
        )
        assert hash_key(base) != hash_key(
            loop_run_key(
                benchmark_by_name("micro.chase"),
                baseline_config(),
                machine,
                2008,
            )
        )


class TestCacheDeterminism:
    def test_hit_serves_identical_counters(self, tmp_path):
        """Same key: the cached replay is bit-identical to the live run."""
        bench = benchmark_by_name("micro.chase")
        cache = ArtifactCache(tmp_path)
        live, hit1 = cached_loop_run(
            bench, hlo_cfg(), ItaniumMachine(), 2008, cache
        )
        replay, hit2 = cached_loop_run(
            bench, hlo_cfg(), ItaniumMachine(), 2008, cache
        )
        assert (hit1, hit2) == (False, True)
        assert replay.loop_cycles == live.loop_cycles
        assert_counters_equal(replay.counters, live.counters)

    def test_job_through_cache_matches_uncached(self, tmp_path):
        job = BenchmarkJob(
            benchmark=benchmark_by_name("micro.stencil"), config=hlo_cfg()
        )
        bare = run_job(job, cache=None)
        cache = ArtifactCache(tmp_path)
        miss = run_job(job, cache)
        hit = run_job(job, cache)
        assert not bare.cache_hit and not miss.cache_hit and hit.cache_hit
        for outcome in (miss, hit):
            assert outcome.result.total_cycles == bare.result.total_cycles
            assert outcome.result.serial_cycles == bare.result.serial_cycles
            assert_counters_equal(
                outcome.result.counters, bare.result.counters
            )


# --- pool vs serial ----------------------------------------------------------

class TestPoolEquality:
    def test_parallel_matches_serial_on_four_benchmarks(self, tmp_path):
        """workers=2 + cache reproduces the serial Experiment bit-for-bit."""
        suite = micro_suite()
        assert len(suite) == 4
        base, variant = baseline_config(), hlo_cfg()

        exp = Experiment(suite, seed=2008)
        serial = exp.compare(base, variant)

        run = run_suite(
            suite,
            [base, variant],
            workers=2,
            cache=tmp_path / "cache",
            seed=2008,
        )
        pooled = compare_configs(run, base.label, variant.label)

        assert pooled.gains == serial.gains
        for name in serial.gains:
            for label in (base.label, variant.label):
                mine = run.config(label)[name]
                theirs = (serial.baseline if label == base.label
                          else serial.variant)[name]
                assert mine.total_cycles == theirs.total_cycles
                assert mine.loop_cycles == theirs.loop_cycles
                assert mine.serial_cycles == theirs.serial_cycles
                assert_counters_equal(mine.counters, theirs.counters)

    def test_results_come_back_in_submission_order(self, tmp_path):
        suite = micro_suite()
        jobs = [
            BenchmarkJob(benchmark=bench, config=baseline_config())
            for bench in reversed(suite)
        ]
        outcomes = run_jobs(jobs, workers=2, cache=tmp_path)
        assert [o.result.name for o in outcomes] == [
            bench.name for bench in reversed(suite)
        ]

    def test_timeout_is_recorded_not_raised(self, tmp_path):
        """A job over its deadline is reaped and recorded as a structured
        timeout outcome; the sweep itself completes instead of aborting."""
        jobs = [
            BenchmarkJob(
                benchmark=benchmark_by_name("micro.chase"),
                config=baseline_config(),
            )
        ]
        outcomes = run_jobs(jobs, workers=2, timeout=1e-4)
        assert len(outcomes) == 1
        assert outcomes[0].status == "timeout"
        assert outcomes[0].result is None
        assert not outcomes[0].cache_hit

    def test_timed_out_cells_land_in_the_manifest(self, tmp_path):
        run = run_suite(
            micro_suite()[:2],
            [baseline_config()],
            workers=2,
            timeout=1e-4,
            seed=2008,
        )
        manifest = run.manifest
        assert manifest.timeouts == len(manifest.cells) == 2
        assert "2 timeout(s)" in manifest.summary()
        for cell in manifest.cells:
            assert cell.status == "timeout"
            assert cell.total_cycles == 0.0
        # timed-out cells carry no results and are skipped by compare
        assert run.config(baseline_config().label) == {}


# --- suite runs and the second-run hit rate ----------------------------------

class TestRunSuite:
    def test_second_run_hits_cache_everywhere(self, tmp_path):
        suite = suite_by_name("micro")
        configs = [baseline_config(), hlo_cfg()]
        cold = run_suite(suite, configs, cache=tmp_path, seed=2008)
        warm = run_suite(suite, configs, cache=tmp_path, seed=2008)
        assert cold.manifest.cache_hit_rate == 0.0
        # acceptance criterion: >= 90% hits on an unchanged sweep
        assert warm.manifest.cache_hit_rate >= 0.9
        assert warm.manifest.cache_hit_rate == 1.0
        for config in configs:
            for bench in suite:
                assert (
                    warm.config(config.label)[bench.name].total_cycles
                    == cold.config(config.label)[bench.name].total_cycles
                )

    def test_duplicate_configs_are_deduplicated(self, tmp_path):
        run = run_suite(
            micro_suite()[:1],
            [baseline_config(), baseline_config()],
            cache=tmp_path,
        )
        assert len(run.manifest.configs) == 1
        assert len(run.manifest.cells) == 1

    def test_unknown_config_label_raises(self, tmp_path):
        run = run_suite(micro_suite()[:1], [baseline_config()])
        with pytest.raises(HarnessError, match="no config"):
            run.config("nonsense")


# --- manifests ---------------------------------------------------------------

def make_manifest(run_id, cells):
    return RunManifest(
        run_id=run_id,
        created_utc="20260805T000000Z",
        git_sha="deadbeef",
        suite="micro",
        seed=2008,
        workers=1,
        configs=sorted({cell.config for cell in cells}),
        cells=cells,
        wall_time_s=1.0,
    )


def make_cell(benchmark, config, cycles, hit=False):
    return CellRecord(
        benchmark=benchmark,
        suite="micro",
        config=config,
        total_cycles=cycles,
        loop_cycles=cycles * 0.8,
        serial_cycles=cycles * 0.2,
        cache_hit=hit,
        duration_s=0.1,
    )


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = make_manifest(
            "run-a", [make_cell("b1", "base", 100.0, hit=True),
                      make_cell("b2", "base", 250.5)]
        )
        path = manifest.save(tmp_path / "runs" / "m.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest
        assert loaded.cache_hits == 1
        assert loaded.cache_hit_rate == 0.5
        assert "2 cells" in loaded.summary()

    def test_version_guard(self, tmp_path):
        path = tmp_path / "m.json"
        data = make_manifest("run-a", [make_cell("b1", "base", 1.0)]).to_dict()
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(HarnessError, match="version"):
            RunManifest.load(path)

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(HarnessError, match="cannot read"):
            RunManifest.load(tmp_path / "missing.json")

    def test_run_suite_writes_manifest(self, tmp_path):
        path = tmp_path / "out.json"
        run = run_suite(
            micro_suite()[:1], [baseline_config()], manifest_path=path
        )
        assert RunManifest.load(path) == run.manifest


# --- compare -----------------------------------------------------------------

class TestCompare:
    def test_geomean_math(self):
        # ratios 1.21 and 1.0 -> geomean gain = sqrt(1.21) - 1 = 10%
        a = make_manifest("run-a", [make_cell("b1", "base", 121.0),
                                    make_cell("b2", "base", 70.0)])
        b = make_manifest("run-b", [make_cell("b1", "base", 100.0),
                                    make_cell("b2", "base", 70.0)])
        cmp = compare_manifests(a, b)
        assert cmp.matched_cells == 2
        deltas = {d.benchmark: d for d in cmp.deltas["base"]}
        assert deltas["b1"].delta_percent == pytest.approx(21.0)
        assert deltas["b2"].delta_percent == pytest.approx(0.0)
        expected = (math.sqrt(1.21) - 1.0) * 100.0
        assert cmp.geomean("base") == pytest.approx(expected)
        assert cmp.overall_geomean == pytest.approx(expected)

    def test_unmatched_cells_are_reported(self):
        a = make_manifest("run-a", [make_cell("b1", "base", 100.0),
                                    make_cell("b2", "base", 100.0)])
        b = make_manifest("run-b", [make_cell("b1", "base", 100.0),
                                    make_cell("b3", "base", 100.0)])
        cmp = compare_manifests(a, b)
        assert cmp.only_in_a == [("b2", "base")]
        assert cmp.only_in_b == [("b3", "base")]
        text = format_comparison(cmp)
        assert "removed (only in A): 1 cell(s)" in text
        assert "added (only in B): 1 cell(s)" in text
        assert "- b2 [base]" in text and "+ b3 [base]" in text
        # the geomean covers the intersection only
        assert "over 1 matched cells" in text

    def test_disjoint_manifests_do_not_raise(self):
        a = make_manifest("run-a", [make_cell("b1", "base", 100.0)])
        b = make_manifest("run-b", [make_cell("b2", "hlo", 90.0)])
        cmp = compare_manifests(a, b)
        assert cmp.matched_cells == 0
        assert cmp.only_in_a == [("b1", "base")]
        assert cmp.only_in_b == [("b2", "hlo")]
        # per-config and overall geomeans stay defined (empty intersection)
        assert cmp.geomean("base") == 0.0
        assert cmp.geomean("no-such-config") == 0.0
        assert cmp.overall_geomean == 0.0
        text = format_comparison(cmp)
        assert "(no matching cells)" in text
        assert "- b1 [base]" in text and "+ b2 [hlo]" in text
        assert "n/a (no matched cells)" in text

    def test_partial_overlap_geomean_uses_intersection_only(self):
        # matched: b1 ratio 1.21; the unmatched b2 (ratio would be 2.0)
        # must not leak into the geomean
        a = make_manifest("run-a", [make_cell("b1", "base", 121.0),
                                    make_cell("b2", "base", 200.0)])
        b = make_manifest("run-b", [make_cell("b1", "base", 100.0),
                                    make_cell("b3", "base", 100.0)])
        cmp = compare_manifests(a, b)
        assert cmp.matched_cells == 1
        assert cmp.geomean("base") == pytest.approx(21.0)
        assert cmp.overall_geomean == pytest.approx(21.0)

    def test_identical_runs_show_zero_drift(self, tmp_path):
        suite = micro_suite()[:2]
        configs = [baseline_config(), hlo_cfg()]
        run_a = run_suite(suite, configs, cache=tmp_path, seed=2008)
        run_b = run_suite(suite, configs, cache=tmp_path, seed=2008)
        cmp = compare_manifests(run_a.manifest, run_b.manifest)
        assert cmp.matched_cells == 4
        assert cmp.overall_geomean == pytest.approx(0.0, abs=1e-12)
        assert not cmp.only_in_a and not cmp.only_in_b


# --- verification plumbing ---------------------------------------------------

class TestVerification:
    def test_cached_cell_upgraded_in_place(self, tmp_path):
        """A verify=True request must not accept an unverified payload:
        the run is re-executed and the cache entry upgraded under the
        same key (cycles stay bit-identical)."""
        bench = micro_suite()[0]
        config = baseline_config()
        machine = ItaniumMachine()
        cache = ArtifactCache(tmp_path)
        cold, hit = cached_loop_run(bench, config, machine, 2008, cache)
        assert not hit and cold.verification is None
        upgraded, hit = cached_loop_run(
            bench, config, machine, 2008, cache, verify=True
        )
        assert not hit  # unverified payload rejected, run re-executed
        assert upgraded.verification is not None
        assert upgraded.verification["ok"]
        assert upgraded.loop_cycles == cold.loop_cycles
        served, hit = cached_loop_run(
            bench, config, machine, 2008, cache, verify=True
        )
        assert hit and served.verification == upgraded.verification
        # the upgraded payload still serves plain (non-verifying) requests
        _, hit = cached_loop_run(bench, config, machine, 2008, cache)
        assert hit

    def test_run_suite_records_verification(self, tmp_path):
        suite = micro_suite()[:2]
        run = run_suite(
            suite, [hlo_cfg()], cache=tmp_path, seed=2008, verify=True
        )
        manifest = run.manifest
        assert manifest.verified_cells == len(manifest.cells) == 2
        assert manifest.verify_errors == 0
        assert "verified 2/2 cells (0 error(s))" in manifest.summary()
        for cell in manifest.cells:
            assert cell.verified and cell.verify_errors == 0
        # the legacy summary contract the CI grep relies on still holds
        assert "cache 0/2 hits" in manifest.summary()

    def test_unverified_cells_stay_unverified(self, tmp_path):
        run = run_suite(micro_suite()[:1], [baseline_config()], cache=tmp_path)
        manifest = run.manifest
        assert manifest.verified_cells == 0
        assert "verified" not in manifest.summary()

    def test_manifests_without_verify_fields_still_load(self):
        """Cells written before verification existed lack the new keys;
        the dataclass defaults must absorb that."""
        data = dataclasses.asdict(make_cell("b1", "base", 1.0))
        for key in ("verified", "verify_errors", "verify_warnings"):
            data.pop(key)
        cell = CellRecord(**data)
        assert not cell.verified
        assert cell.verify_errors == 0 and cell.verify_warnings == 0
