#!/usr/bin/env python
"""The paper's Sec. 6 outlook, implemented: sampling and versioning.

"To make this information more precise and consequently increase the net
gain from the optimization, we are looking into dynamic cache-miss
sampling, more refined HLO and pipeliner heuristics, and/or trip-count
versioning."

Part 1 — dynamic cache-miss sampling: run a training execution in the
simulator, record per-reference effective latencies, and derive hints
from *measured* behaviour instead of prefetcher heuristics.

Part 2 — trip-count versioning: emit both a latency-tolerant and a
conventional kernel and pick at run time, which removes the 177.mesa
pathology (training said 154 iterations, the reference inputs run 8).

Run:  python examples/outlook_extensions.py
"""

from functools import partial

import numpy as np

from repro import ItaniumMachine, MemorySystem, baseline_config, simulate_loop
from repro.config import CompilerConfig, HintPolicy
from repro.core.compiler import LoopCompiler
from repro.core.versioning import compile_versions, simulate_versioned
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.hlo.sampling import collect_miss_profile, hints_from_miss_profile
from repro.workloads.loops import low_trip_linear, pointer_chase


def sampling_demo(machine) -> None:
    print("=== Part 1: dynamic cache-miss sampling (mcf archetype) ===\n")
    factory = partial(pointer_chase, "refresh", heap=64 << 20)

    miss_profile = collect_miss_profile(factory, machine, [3] * 60)
    print("sampled training run, per-reference effective latencies:")
    for (space, name), stats in sorted(miss_profile.stats.items()):
        print(f"  {name:<10} mean {stats.mean_latency:6.1f} cycles "
              f"over {stats.samples} samples "
              f"-> class L{stats.typical_level}")

    loop, layout = factory()
    marked = hints_from_miss_profile(loop, miss_profile)
    print(f"\n{marked} references hinted from the profile:")
    for ref in loop.memrefs:
        if ref.hint_source == "sampled":
            print(f"  {ref.name}: {ref.hint.name}")

    dist = TripDistribution(kind="uniform", low=1, high=4)
    pgo = collect_block_profile({"refresh": dist})
    rng = np.random.default_rng(1)
    trips = list(dist.sample(rng, 800))
    cycles = {}
    for label, build in (
        ("baseline", lambda: LoopCompiler(machine, baseline_config())
            .compile(factory()[0], pgo)),
        ("sampled", lambda: LoopCompiler(
            machine,
            CompilerConfig(hint_policy=HintPolicy.SAMPLED,
                           trip_count_threshold=32),
        ).compile(loop, pgo)),
    ):
        compiled = build()
        sim = simulate_loop(compiled.result, machine, layout, trips,
                            memory=MemorySystem(machine.timings))
        cycles[label] = sim.cycles
    gain = 100 * (cycles["baseline"] / cycles["sampled"] - 1)
    print(f"\nloop speedup from sampled hints: {gain:+.1f}%\n")


def versioning_demo(machine) -> None:
    print("=== Part 2: trip-count versioning (the mesa pathology) ===\n")
    factory = partial(low_trip_linear, "span")
    pgo = collect_block_profile(
        {"span": TripDistribution(kind="constant", mean=154)}
    )
    cfg = CompilerConfig(hint_policy=HintPolicy.ALL_LOADS_L3,
                         trip_count_threshold=32)
    trips = [8] * 400  # reference inputs run short

    loop, layout = factory()
    plain = LoopCompiler(machine, cfg).compile(loop, pgo)
    plain_sim = simulate_loop(plain.result, machine, layout, trips,
                              memory=MemorySystem(machine.timings))
    print(f"boosted-only build (trains at 154, runs at 8): "
          f"{plain_sim.cycles:,.0f} cycles, "
          f"{plain.stats.stage_count} stages")

    versioned, layout_v = compile_versions(factory, machine, cfg,
                                           profile=pgo, threshold=32)
    multi = simulate_versioned(versioned, machine, layout_v, trips,
                               memory=MemorySystem(machine.timings))
    print(f"versioned build (runtime trip-count check @ "
          f"{versioned.threshold}): {multi.cycles:,.0f} cycles")
    print(f"regression recovered: "
          f"{100 * (plain_sim.cycles / multi.cycles - 1):+.1f}%")


def main() -> None:
    machine = ItaniumMachine()
    sampling_demo(machine)
    versioning_demo(machine)


if __name__ == "__main__":
    main()
