"""SA5xx static performance bounds: clean paths and one mutation per code.

PR-2 style: compile a real loop, simulate it, assert the checks are
silent; then break one invariant at a time and assert exactly the
matching diagnostic fires.
"""

from __future__ import annotations

import copy
import math

import pytest

from repro.analysis import (
    build_perf_model,
    check_simulation,
    max_live,
    verify_compiled,
    verify_pressure,
)
from repro.core.compiler import LoopCompiler
from repro.ir import parse_loop
from repro.ir.registers import RegClass
from repro.machine import ItaniumMachine
from repro.sim.address import StreamSpec
from repro.sim.executor import simulate_loop
from repro.sim.memory import MemorySystem

TRIPS = [50, 7]
LAYOUT = {"a": StreamSpec(size=1 << 16), "b": StreamSpec(size=1 << 16)}

STORE_ONLY = """
memref B affine stride=4 space=b
loop store_only trips=200 source=pgo
  add r9 = r9, r4
  st4 [r6] = r9, 4 !B
"""


@pytest.fixture
def compiled(running_example, boost_all_config, machine):
    return LoopCompiler(machine, boost_all_config).compile(running_example)


@pytest.fixture
def simmed(compiled, machine):
    run = simulate_loop(
        compiled.result, machine, LAYOUT, TRIPS,
        memory=MemorySystem(machine.timings), seed=11,
    )
    model = build_perf_model(compiled.result, machine, LAYOUT)
    return model, run


class TestCleanPaths:
    def test_verify_result_is_error_free(self, compiled):
        report = verify_compiled(compiled)
        assert report.ok
        # the static observations are notes, present but non-fatal
        assert report.has("SA502") and report.has("SA503")

    def test_counters_inside_the_interval(self, simmed):
        model, run = simmed
        report = model.check_counters(TRIPS, run.counters, run.cycles)
        assert not len(report), report.render_text()
        lower, upper = model.cycle_interval(TRIPS)
        assert lower <= run.cycles * (1 + 1e-9) and run.cycles <= upper
        assert not math.isinf(upper)  # affine strides: bank bound provable

    def test_check_simulation_wrapper(self, compiled, machine, simmed):
        _, run = simmed
        report = check_simulation(
            compiled.result, machine, LAYOUT, TRIPS,
            run.counters, run.cycles,
        )
        assert not len(report)

    def test_zero_trip_invocations_still_pay_fixed_costs(
        self, compiled, machine
    ):
        trips = [0, 20, -3]
        run = simulate_loop(
            compiled.result, machine, LAYOUT, trips,
            memory=MemorySystem(machine.timings), seed=11,
        )
        model = build_perf_model(compiled.result, machine, LAYOUT)
        report = model.check_counters(trips, run.counters, run.cycles)
        assert not len(report), report.render_text()

    def test_trace_sites_within_residual_budget(self, compiled, machine):
        from repro.trace import trace_simulation

        traced = trace_simulation(
            compiled.result, machine, LAYOUT, TRIPS, seed=11
        )
        model = build_perf_model(compiled.result, machine, LAYOUT)
        stalls = {
            tag: site.stall_cycles
            for tag, site in traced.attribution.sites.items()
        }
        report = model.check_trace_sites(TRIPS, stalls)
        assert not len(report), report.render_text()

    def test_model_serialises_without_inf(self, simmed):
        import json

        model, _ = simmed
        json.dumps(model.to_dict())
        # an unprovable model serialises too (inf -> null)
        chase = parse_loop(
            "memref P chase space=p\n"
            "loop chase trips=200 source=pgo\n"
            "  ld8 r4 = [r4] !P\n"
            "  add r7 = r4, r9\n"
        )
        result = LoopCompiler(ItaniumMachine()).compile(chase).result
        unbounded = build_perf_model(result, ItaniumMachine())
        assert math.isinf(unbounded.l_max)
        assert json.dumps(unbounded.to_dict())


class TestPressure:
    def test_clean_allocation_passes(self, compiled):
        assert verify_pressure(compiled.result).ok

    def test_max_live_at_most_usage(self, compiled):
        peaks = max_live(compiled.result)
        used = compiled.result.rotating.used
        sc = compiled.result.schedule.stage_count
        for rclass, peak in peaks.items():
            extra = sc if rclass is RegClass.PR else 0
            assert peak + extra <= used[rclass]

    def test_sa501_fires_when_usage_shrunk(self, compiled):
        result = copy.deepcopy(compiled.result)
        result.rotating.used[RegClass.GR] -= 1
        report = verify_pressure(result)
        assert report.has("SA501")
        assert not report.ok


class TestStaticNotes:
    def test_sa502_fires_under_default_capacity(self, compiled, machine):
        model = build_perf_model(compiled.result, machine, LAYOUT)
        assert not model.ozq_zero_proof
        assert model.static_report().has("SA502")

    def test_sa502_absent_when_occupancy_provable(self, compiled, machine):
        roomy = machine.with_ozq_capacity(10**9)
        model = build_perf_model(compiled.result, roomy, LAYOUT)
        assert model.ozq_zero_proof
        assert not model.static_report().has("SA502")

    def test_sa503_fires_for_exposed_loads(self, compiled, machine):
        model = build_perf_model(compiled.result, machine, LAYOUT)
        assert not model.zero_stall_proof
        report = model.static_report()
        assert report.has("SA503")
        # one note per loop, with the per-site details in the payload
        notes = [d for d in report if d.code == "SA503"]
        assert len(notes) == 1
        assert notes[0].detail["sites"]

    def test_sa503_absent_without_load_sites(self, machine, base_config):
        compiled = LoopCompiler(machine, base_config).compile(
            parse_loop(STORE_ONLY)
        )
        model = build_perf_model(compiled.result, machine)
        assert model.zero_stall_proof
        assert not model.static_report().has("SA503")


class TestCounterMutations:
    """Break one counter at a time; the matching SA51x code must fire."""

    def test_sa511_event_count(self, simmed):
        model, run = simmed
        counters = copy.deepcopy(run.counters)
        counters.source_iterations += 1
        report = model.check_counters(TRIPS, counters, run.cycles)
        assert report.has("SA511")

    def test_sa511_load_count(self, simmed):
        model, run = simmed
        counters = copy.deepcopy(run.counters)
        level = next(iter(counters.loads_by_level))
        counters.loads_by_level[level] += 3
        assert model.check_counters(TRIPS, counters, run.cycles).has("SA511")

    def test_sa512_fixed_bucket(self, simmed):
        model, run = simmed
        counters = copy.deepcopy(run.counters)
        counters.be_flush_bubble += 1.0
        report = model.check_counters(TRIPS, counters, run.cycles)
        assert report.has("SA512")

    def test_sa513_bubble_over_bound(self, simmed):
        model, run = simmed
        counters = copy.deepcopy(run.counters)
        counters.be_exe_bubble = 1e12
        report = model.check_counters(TRIPS, counters, run.cycles)
        assert report.has("SA513")

    def test_sa514_ozq_counter(self, simmed):
        model, run = simmed
        counters = copy.deepcopy(run.counters)
        counters.ozq_full_cycles = run.cycles + 1000.0
        report = model.check_counters(TRIPS, counters, run.cycles)
        assert report.has("SA514")

    def test_sa514_under_zero_proof(self, compiled, machine, simmed):
        _, run = simmed
        roomy = machine.with_ozq_capacity(10**9)
        model = build_perf_model(compiled.result, roomy, LAYOUT)
        assert model.ozq_zero_proof
        counters = copy.deepcopy(run.counters)
        counters.be_l1d_fpu_bubble = 5.0
        report = model.check_counters(TRIPS, counters, run.cycles)
        assert report.has("SA514")

    def test_sa515_below_lower(self, simmed):
        model, run = simmed
        lower, _ = model.cycle_interval(TRIPS)
        report = model.check_counters(TRIPS, run.counters, lower - 50.0)
        assert report.has("SA515")

    def test_sa515_above_upper(self, simmed):
        model, run = simmed
        _, upper = model.cycle_interval(TRIPS)
        assert not math.isinf(upper)
        report = model.check_counters(TRIPS, run.counters, upper + 50.0)
        assert report.has("SA515")

    def test_sa516_site_over_budget(self, simmed):
        model, _ = simmed
        site = next(s for s in model.sites if s.residual > 0)
        report = model.check_trace_sites(TRIPS, {site.tag: 1e12})
        assert report.has("SA516")
        # unknown tags (non-load attribution keys) are ignored
        assert not len(model.check_trace_sites(TRIPS, {"other#9:st4": 1e12}))


class TestManifestIntegration:
    """A corrupted simulation must surface as manifest bound violations."""

    def test_corrupted_counters_reach_the_manifest(self, monkeypatch):
        import repro.harness.jobs as jobs
        from repro.config import baseline_config
        from repro.harness import run_suite
        from repro.workloads import micro_suite

        real = jobs.simulate_loop

        def corrupting(*args, **kwargs):
            run = real(*args, **kwargs)
            run.counters.source_iterations += 7
            return run

        monkeypatch.setattr(jobs, "simulate_loop", corrupting)
        bench = [b for b in micro_suite() if b.name == "micro.lowtrip"]
        run = run_suite(
            bench, [baseline_config()], workers=1, verify=True
        )
        cell = run.manifest.cells[0]
        assert cell.bounds_checked > 0
        assert cell.bounds_violations > 0
        assert cell.verify_errors > 0
        assert run.manifest.bounds_violations > 0
        assert "violation" in run.manifest.summary()

    def test_clean_run_records_zero_violations(self):
        from repro.config import baseline_config
        from repro.harness import run_suite
        from repro.workloads import micro_suite

        bench = [b for b in micro_suite() if b.name == "micro.lowtrip"]
        run = run_suite(
            bench, [baseline_config()], workers=1, verify=True
        )
        cell = run.manifest.cells[0]
        assert cell.bounds_checked > 0
        assert cell.bounds_violations == 0
        assert run.manifest.bounds_checked > 0
