"""Tests for the affine dependence test and its DDG integration."""

import pytest
from hypothesis import given, strategies as st

from repro.ddg import build_ddg
from repro.ddg.dependence import DependenceVerdict
from repro.ddg.dependence import test_dependence as dep_test
from repro.ddg.edges import DepKind
from repro.ir import LoopBuilder
from repro.ir.memref import AccessPattern, MemRef


def _ref(offset=0, stride=4, space="s", pattern=AccessPattern.AFFINE):
    return MemRef("r", pattern=pattern, stride=stride, offset=offset,
                  space=space)


class TestDependenceTest:
    def test_different_spaces_independent(self):
        assert dep_test(_ref(space="a"), _ref(space="b")).independent

    def test_same_ref_same_iteration(self):
        r = dep_test(_ref(0), _ref(0))
        assert r.verdict is DependenceVerdict.DISTANCE
        assert r.distance == 0

    def test_positive_distance(self):
        # A at offset 8, B at offset 0, stride 4: A(i) hits B(i+2)
        r = dep_test(_ref(8), _ref(0))
        assert r.verdict is DependenceVerdict.DISTANCE
        assert r.distance == 2

    def test_negative_distance(self):
        r = dep_test(_ref(0), _ref(8))
        assert r.distance == -2

    def test_gcd_independent(self):
        # offsets differ by 2, stride 4: never meet
        assert dep_test(_ref(2), _ref(0)).independent

    def test_unanalysable_patterns(self):
        chase = _ref(pattern=AccessPattern.POINTER_CHASE)
        assert (
            dep_test(chase, _ref()).verdict
            is DependenceVerdict.UNKNOWN
        )

    def test_different_strides_gcd(self):
        a = _ref(offset=0, stride=4)
        b = _ref(offset=2, stride=8)
        # gcd(4,8)=4 does not divide 2 -> independent
        assert dep_test(a, b).independent
        c = _ref(offset=4, stride=8)
        assert (
            dep_test(a, c).verdict is DependenceVerdict.UNKNOWN
        )

    def test_zero_stride_pairs(self):
        a = _ref(offset=0, stride=0)
        b = _ref(offset=0, stride=0)
        assert dep_test(a, b).distance == 0
        c = _ref(offset=8, stride=0)
        assert dep_test(a, c).independent

    @given(st.integers(-16, 16), st.integers(1, 8))
    def test_distance_antisymmetry(self, delta, stride_elems):
        stride = 4 * stride_elems
        a, b = _ref(offset=delta * 4), _ref(offset=0)
        ra, rb = dep_test(a, b), dep_test(b, a)
        if ra.verdict is DependenceVerdict.DISTANCE:
            assert rb.distance == -ra.distance


class TestDDGIntegration:
    def _loop_with_offsets(self, load_offset, store_offset):
        """load a[i + load_offset/4], store a[i + store_offset/4]."""
        b = LoopBuilder()
        lref = b.memref("a", stride=4, offset=load_offset, space="s")
        sref = b.memref("a", stride=4, offset=store_offset, space="s")
        x = b.load("ld4", b.live_greg("p"), lref, post_inc=4)
        y = b.alu_imm("adds", x, 1)
        b.store("st4", b.live_greg("q"), y, sref, post_inc=4)
        return b.build("ofs")

    def test_recurrence_through_memory(self, machine):
        """a[i] = f(a[i-2]): the store feeds the load two iterations
        later, a genuine memory recurrence with distance 2."""
        loop = self._loop_with_offsets(load_offset=0, store_offset=8)
        ddg = build_ddg(loop)
        mem_flow = [e for e in ddg.edges if e.kind is DepKind.MEM_FLOW]
        assert len(mem_flow) == 1
        assert mem_flow[0].omega == 2
        assert mem_flow[0].src.is_store and mem_flow[0].dst.is_load
        from repro.ddg import recurrence_ii

        # the cycle store -> (mem, w=2) -> load -> add -> store binds the II
        assert recurrence_ii(ddg, machine.latency_query) >= 2

    def test_forward_distance_is_anti(self):
        """load a[i+2] after store a[i]: the load reads ahead of the
        store wavefront — an anti dependence, not a recurrence."""
        loop = self._loop_with_offsets(load_offset=8, store_offset=0)
        ddg = build_ddg(loop)
        anti = [e for e in ddg.edges if e.kind is DepKind.MEM_ANTI]
        assert len(anti) == 1
        assert anti[0].omega == 2
        assert anti[0].src.is_load and anti[0].dst.is_store

    def test_in_place_update_intra_iteration(self):
        """a[i] = a[i] + 1: distance 0, ordering by body position only."""
        loop = self._loop_with_offsets(load_offset=0, store_offset=0)
        ddg = build_ddg(loop)
        mem = [e for e in ddg.edges if e.kind.is_memory]
        assert len(mem) == 1
        assert mem[0].omega == 0
        assert mem[0].kind is DepKind.MEM_ANTI

    def test_gcd_disjoint_accesses(self, machine):
        """Odd/even element split never aliases (GCD test)."""
        b = LoopBuilder()
        lref = b.memref("a", stride=8, offset=0, space="s")
        sref = b.memref("a", stride=8, offset=4, space="s")
        x = b.load("ld4", b.live_greg("p"), lref, post_inc=8)
        b.store("st4", b.live_greg("q"), x, sref, post_inc=8)
        ddg = build_ddg(b.build("oddeven"))
        assert not [e for e in ddg.edges if e.kind.is_memory]

    def test_memory_recurrence_limits_boosting(self, machine):
        """A load on a store->load memory recurrence must stay critical
        when boosting it would blow the II."""
        from repro.config import CompilerConfig, HintPolicy
        from repro.ir.memref import LatencyHint
        from repro.pipeliner import pipeline_loop

        loop = self._loop_with_offsets(load_offset=0, store_offset=4)
        loop.body[0].memref.hint = LatencyHint.L3
        loop.body[0].memref.hint_source = "hlo"
        loop.trip_count.estimate = 1000.0
        result = pipeline_loop(
            loop, machine, CompilerConfig(trip_count_threshold=0)
        )
        assert result.pipelined
        # distance-1 recurrence: load latency 21 would force II >= 23
        assert result.stats.boosted_loads == 0
        assert result.ii <= 4
