"""Tests for Instruction construction and accessors."""

import pytest

from repro.errors import IRError
from repro.ir.instructions import Instruction
from repro.ir.memref import MemRef
from repro.ir.opcodes import opcode
from repro.ir.registers import greg, preg


def _load(post_inc=None, qual_pred=None):
    return Instruction(
        opcode("ld4"),
        defs=(greg(1),),
        uses=(greg(2),),
        memref=MemRef("a"),
        post_increment=post_inc,
        qual_pred=qual_pred,
    )


class TestInstruction:
    def test_memory_op_requires_memref(self):
        with pytest.raises(IRError, match="requires a memref"):
            Instruction(opcode("ld4"), defs=(greg(1),), uses=(greg(2),))

    def test_non_memory_op_rejects_memref(self):
        with pytest.raises(IRError, match="carries a memref"):
            Instruction(
                opcode("add"),
                defs=(greg(1),),
                uses=(greg(2),),
                memref=MemRef("a"),
            )

    def test_post_increment_only_on_memory(self):
        with pytest.raises(IRError, match="post-increment"):
            Instruction(
                opcode("add"),
                defs=(greg(1),),
                uses=(greg(2),),
                post_increment=4,
            )

    def test_qual_pred_must_be_predicate(self):
        with pytest.raises(IRError, match="predicate"):
            _load(qual_pred=greg(3))
        inst = _load(qual_pred=preg(1))
        assert inst.qual_pred == preg(1)

    def test_address_reg(self):
        assert _load().address_reg == greg(2)
        alu = Instruction(opcode("add"), defs=(greg(1),), uses=(greg(2),))
        assert alu.address_reg is None

    def test_all_defs_includes_post_increment(self):
        plain = _load()
        assert plain.all_defs() == (greg(1),)
        inc = _load(post_inc=4)
        assert set(inc.all_defs()) == {greg(1), greg(2)}

    def test_all_uses_includes_qual_pred(self):
        inst = _load(qual_pred=preg(1))
        assert preg(1) in inst.all_uses()
        assert greg(2) in inst.all_uses()

    def test_identity_hashing(self):
        a, b = _load(), _load()
        assert a != b
        assert len({a, b}) == 2

    def test_flag_delegation(self):
        inst = _load()
        assert inst.is_load and inst.is_memory
        assert not inst.is_store and not inst.is_branch
        assert inst.mnemonic == "ld4"
