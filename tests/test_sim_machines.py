"""Behavioral tests for the non-Itanium machine backends.

``ldt-core`` (load-delay tracking) must *hide* short stalls — strictly
fewer stall cycles than itanium2 on a stall-bound loop, with the hidden
cycles surfaced in their own counter.  ``slsq-core`` (speculative LSQ)
must replay loads that collide with an in-window store — counted,
charged to the flush bucket, and absent on conflict-free streams.  Both
must keep the cycle identity closed, fall back to the interpreter under
``backend="fast"``, and leave itanium2's arithmetic untouched.
"""

import pytest

from repro.config import baseline_config
from repro.core.compiler import LoopCompiler
from repro.ir import parse_loop
from repro.machine import build_machine
from repro.sim.address import StreamSpec
from repro.sim.executor import simulate_loop

DAXPY = """\
memref X affine fp stride=8 size=8 space=x
memref Y affine fp stride=8 size=8 space=y

loop daxpy trips=1000 source=pgo
  ldfd f4 = [r5], 8 !X
  ldfd f5 = [r6] !Y
  fma f6 = f4, f2, f5
  stfd [r6] = f6, 8 !Y
"""

#: load lags the store by exactly one stride, so iteration i+1's load
#: reads the address iteration i stored — an exact-address conflict
#: inside the sLSQ speculation window on every steady-state iteration
CARRY_FWD = """\
memref RD affine stride=4 space=s
memref WR affine stride=4 offset=4 space=s

loop carry_fwd trips=200 source=pgo
  ld4 r4 = [r5], 4 !RD
  add r7 = r4, r9
  st4 [r6] = r7, 4 !WR
"""

STREAM_LAYOUT = {
    "x": StreamSpec(size=64 << 20, reuse=False),
    "y": StreamSpec(size=64 << 20, reuse=False),
}


def run(source, machine_name, layout, trips=None, backend="interp"):
    machine = build_machine(machine_name)
    loop = parse_loop(source)
    compiled = LoopCompiler(machine, baseline_config()).compile(loop)
    return simulate_loop(
        compiled.result, machine, layout,
        trips or [loop.trip_counts.ref.mean], seed=11, backend=backend,
    )


def assert_cycle_identity(result):
    c = result.counters
    total = (c.unstalled + c.be_exe_bubble + c.be_l1d_fpu_bubble
             + c.be_rse_bubble + c.be_flush_bubble + c.back_end_bubble_fe)
    assert total == pytest.approx(result.cycles, rel=1e-9)


# --- ldt-core -----------------------------------------------------------------

def test_ldt_core_hides_stall_cycles_on_streaming_loads():
    base = run(DAXPY, "itanium2", STREAM_LAYOUT, trips=[1000])
    ldt = run(DAXPY, "ldt-core", STREAM_LAYOUT, trips=[1000])
    assert base.counters.ldt_hidden_cycles == 0.0
    assert ldt.counters.ldt_hidden_cycles > 0.0
    assert ldt.cycles < base.cycles
    # hidden cycles leave the exposed-stall bucket, nothing else moves
    assert ldt.counters.be_exe_bubble < base.counters.be_exe_bubble
    assert_cycle_identity(base)
    assert_cycle_identity(ldt)


def test_ldt_core_hidden_cycles_bounded_by_window():
    ldt = run(DAXPY, "ldt-core", STREAM_LAYOUT, trips=[1000])
    window = build_machine("ldt-core").scoreboard.tracking_window
    # every stall event hides at most `window` cycles, and the loop has
    # at most two stalling uses per iteration
    assert ldt.counters.ldt_hidden_cycles <= window * 2 * 1000


# --- slsq-core ----------------------------------------------------------------

def test_slsq_core_replays_on_exact_address_conflicts():
    layout = {"s": StreamSpec(size=1 << 20, reuse=False)}
    base = run(CARRY_FWD, "itanium2", layout, trips=[200])
    slsq = run(CARRY_FWD, "slsq-core", layout, trips=[200])
    assert base.counters.slsq_replays == 0
    assert slsq.counters.slsq_replays > 0
    penalty = build_machine("slsq-core").queue.replay_penalty
    assert slsq.counters.slsq_replay_cycles == pytest.approx(
        slsq.counters.slsq_replays * penalty
    )
    # replays are flushes: the cycles land in be_flush_bubble
    assert slsq.counters.be_flush_bubble == pytest.approx(
        base.counters.be_flush_bubble + slsq.counters.slsq_replay_cycles
    )
    assert_cycle_identity(slsq)


def test_slsq_core_is_quiet_on_conflict_free_streams():
    slsq = run(DAXPY, "slsq-core", STREAM_LAYOUT, trips=[1000])
    assert slsq.counters.slsq_replays == 0
    assert slsq.counters.slsq_replay_cycles == 0.0
    assert_cycle_identity(slsq)


def test_slsq_runahead_hides_load_latency():
    base = run(DAXPY, "itanium2", STREAM_LAYOUT, trips=[1000])
    slsq = run(DAXPY, "slsq-core", STREAM_LAYOUT, trips=[1000])
    assert slsq.cycles < base.cycles


# --- itanium2 stays untouched -------------------------------------------------

def test_new_counters_stay_zero_on_itanium2():
    base = run(DAXPY, "itanium2", STREAM_LAYOUT, trips=[1000])
    assert base.counters.ldt_hidden_cycles == 0.0
    assert base.counters.slsq_replays == 0
    assert base.counters.slsq_replay_cycles == 0.0


# --- fastpath fallback --------------------------------------------------------

@pytest.mark.parametrize("machine_name", ["ldt-core", "slsq-core"])
def test_fast_backend_falls_back_to_interp_for_new_machines(machine_name):
    result = run(DAXPY, machine_name, STREAM_LAYOUT, trips=[1000],
                 backend="fast")
    assert result.backend == "interp"  # recorded fallback, not a raise


def test_fast_backend_stays_fast_for_itanium2():
    result = run(DAXPY, "itanium2", STREAM_LAYOUT, trips=[1000],
                 backend="fast")
    assert result.backend == "fast"


@pytest.mark.parametrize("machine_name", ["ldt-core", "slsq-core"])
def test_fast_fallback_is_bit_identical_to_interp(machine_name):
    interp = run(DAXPY, machine_name, STREAM_LAYOUT, trips=[1000],
                 backend="interp")
    fast = run(DAXPY, machine_name, STREAM_LAYOUT, trips=[1000],
               backend="fast")
    assert fast.cycles == interp.cycles


def test_fast_machine_supported_gate():
    from repro.sim.fastpath import fast_machine_supported

    assert fast_machine_supported(build_machine("itanium2"))
    assert not fast_machine_supported(build_machine("ldt-core"))
    assert not fast_machine_supported(build_machine("slsq-core"))
