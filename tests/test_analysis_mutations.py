"""Mutation tests for the translation validator: every diagnostic code fires.

Each test takes a *valid* compiler artifact (or builds a valid loop),
corrupts exactly one property the analysis claims to check, and asserts
the matching ``SAnnn`` code is reported.  Together with the clean-path
tests at the top this shows the validator is neither vacuous (it catches
every seeded bug) nor noisy (untouched artifacts verify clean).

The schedule/kernel mutations exploit that the artifacts are plain
mutable containers: ``Schedule.times`` is a dict (normalised only at
construction), ``Kernel.ops`` a list of frozen ``KernelOp``s,
``RotatingAllocation.blades`` a dict, ``Criticality.boosted`` a set and
``PipelineStats.placements`` a list of frozen ``LoadPlacement``s.
"""

import dataclasses

import pytest

from repro.analysis import (
    lint_loop,
    verify_hints,
    verify_kernel,
    verify_optimality,
    verify_result,
    verify_schedule,
)
from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core.compiler import LoopCompiler
from repro.ddg.edges import DepKind
from repro.ir import Instruction, Loop, MemRef, opcode, parse_loop
from repro.ir.registers import greg
from repro.machine import ItaniumMachine

COPY_ADD = """
memref A affine stride=4 space=a
memref B affine stride=4 space=b
loop copy_add trips=200 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
"""

# three M-unit ops (two loads + store): enough to over-subscribe a row
DAXPY = """
memref X affine fp stride=8 size=8 space=x
memref Y affine fp stride=8 size=8 space=y
loop daxpy trips=1000 source=pgo
  ldfd f4 = [r5], 8 !X
  ldfd f5 = [r6] !Y
  fma f6 = f4, f2, f5
  stfd [r6] = f6, 8 !Y
"""


def compile_text(text, config):
    compiler = LoopCompiler(ItaniumMachine(), config)
    return compiler.compile(parse_loop(text)).result


@pytest.fixture
def boosted():
    """copy_add under ALL_LOADS_L3, n=0: boosted load, full artifact set."""
    config = CompilerConfig(
        hint_policy=HintPolicy.ALL_LOADS_L3, trip_count_threshold=0
    )
    result = compile_text(COPY_ADD, config)
    assert result.pipelined and result.schedule is not None
    assert result.kernel is not None and result.rotating is not None
    assert result.stats.boosted_loads >= 1
    return result


@pytest.fixture
def baseline():
    result = compile_text(COPY_ADD, baseline_config())
    assert result.pipelined and result.schedule is not None
    return result


def boosted_load(schedule):
    return min(schedule.criticality.boosted, key=lambda i: i.index)


def data_consumer(schedule, load):
    """The dst of a flow edge carrying the load's data result."""
    data = set(load.defs)
    for edge in schedule.ddg.edges:
        if edge.src is load and edge.kind is DepKind.FLOW and edge.reg in data:
            return edge.dst
    raise AssertionError(f"no data consumer for {load}")


class TestCleanPath:
    """Untouched compiler output verifies without errors."""

    def test_boosted_compile_is_clean(self, boosted):
        report = verify_result(boosted)
        assert not report.errors, report.render_text()

    def test_baseline_compile_is_clean(self, baseline):
        report = verify_result(baseline)
        assert not report.errors, report.render_text()


class TestIRLintMutations:
    """SA1xx: seed one IR defect per code into a hand-built loop."""

    def test_sa101_empty_body(self):
        assert lint_loop(Loop("empty")).has("SA101")

    def test_sa102_branch_in_body(self):
        loop = Loop("branchy", body=[Instruction(opcode("br.cond"))])
        assert lint_loop(loop).has("SA102")

    def test_sa103_multiple_definitions(self):
        loop = Loop(
            "redef",
            body=[
                Instruction(opcode("add"), defs=(greg(7),), uses=(greg(4),)),
                Instruction(opcode("mov"), defs=(greg(7),), uses=(greg(5),)),
            ],
            live_in={greg(4), greg(5)},
            live_out={greg(7)},
        )
        assert lint_loop(loop).has("SA103")

    def test_sa104_use_never_defined(self):
        loop = Loop(
            "garbage",
            body=[Instruction(opcode("add"), defs=(greg(7),),
                              uses=(greg(4), greg(9)))],
            live_in={greg(4)},
            live_out={greg(7)},
        )
        report = lint_loop(loop)
        assert report.has("SA104")
        assert "never defined" in report.errors[0].message

    def test_sa105_store_missing_value_slot(self):
        loop = Loop(
            "badstore",
            body=[Instruction(opcode("st4"), uses=(greg(6),),
                              memref=MemRef("A"))],
            live_in={greg(6)},
        )
        assert lint_loop(loop).has("SA105")

    def test_sa106_memory_op_without_address(self):
        loop = Loop(
            "noaddr",
            body=[Instruction(opcode("ld4"), defs=(greg(4),),
                              memref=MemRef("A"))],
            live_out={greg(4)},
        )
        assert lint_loop(loop).has("SA106")

    def test_sa107_dead_definition(self):
        loop = Loop(
            "dead",
            body=[Instruction(opcode("add"), defs=(greg(7),), uses=(greg(4),))],
            live_in={greg(4)},
        )
        report = lint_loop(loop)
        assert report.has("SA107")
        assert report.ok  # a warning, not an error

    def test_sa108_live_out_never_defined(self):
        loop = Loop(
            "phantom",
            body=[Instruction(opcode("add"), defs=(greg(7),), uses=(greg(4),))],
            live_in={greg(4)},
            live_out={greg(7), greg(20)},
        )
        assert lint_loop(loop).has("SA108")

    def test_sa109_width_mismatch(self):
        loop = Loop(
            "narrow",
            body=[Instruction(opcode("ld8"), defs=(greg(4),), uses=(greg(5),),
                              memref=MemRef("A", size=4))],
            live_in={greg(5)},
            live_out={greg(4)},
        )
        report = lint_loop(loop)
        assert report.has("SA109")
        assert report.ok  # a warning, not an error


class TestScheduleMutations:
    """SA2xx: corrupt the time map, the stats, or a recorded placement."""

    def test_sa201_missing_schedule_time(self, boosted):
        schedule = boosted.schedule
        del schedule.times[schedule.loop.body[0]]
        assert verify_schedule(schedule).has("SA201")

    def test_sa201_ii_below_one(self, boosted):
        boosted.schedule.ii = 0
        assert verify_schedule(boosted.schedule).has("SA201")

    def test_sa202_dependence_violated(self, boosted):
        schedule = boosted.schedule
        load = boosted_load(schedule)
        consumer = data_consumer(schedule, load)
        # same-cycle placement violates the (boosted) flow latency
        schedule.times[consumer] = schedule.times[load]
        report = verify_schedule(schedule)
        assert report.has("SA202")
        assert any(d.detail.get("slack", 0) < 0 for d in report.errors)

    def test_sa203_row_oversubscribed(self):
        result = compile_text(DAXPY, baseline_config())
        schedule = result.schedule
        m_ops = [i for i, t in schedule.times.items()
                 if i.opcode.unit.name == "M"]
        assert len(m_ops) >= 3
        for k, inst in enumerate(m_ops[:3]):  # all three into row 0
            schedule.times[inst] = k * schedule.ii
        assert verify_schedule(schedule).has("SA203")

    def test_sa204_stage_count_mismatch(self, boosted):
        boosted.stats.stage_count += 1
        assert verify_schedule(boosted.schedule, boosted.stats).has("SA204")

    def test_sa204_boost_counter_mismatch(self, boosted):
        boosted.stats.boosted_loads += 1
        assert verify_schedule(boosted.schedule, boosted.stats).has("SA204")

    def test_sa205_placement_distance_mismatch(self, boosted):
        stats = boosted.stats
        placement = stats.placements[0]
        stats.placements[0] = dataclasses.replace(
            placement, use_distance=(placement.use_distance or 0) + 1
        )
        assert verify_schedule(boosted.schedule, stats).has("SA205")

    def test_sa205_placement_dropped(self, boosted):
        boosted.stats.placements.clear()
        assert verify_schedule(boosted.schedule, boosted.stats).has("SA205")


class TestKernelMutations:
    """SA3xx: corrupt the kernel ops or the rotating allocation."""

    def test_sa301_dropped_kernel_op(self, boosted):
        boosted.kernel.ops.pop()
        report = verify_kernel(boosted.kernel, boosted.schedule,
                               boosted.rotating)
        assert report.has("SA301")

    def test_sa301_ii_mismatch(self, boosted):
        boosted.kernel.ii += 1
        report = verify_kernel(boosted.kernel, boosted.schedule,
                               boosted.rotating)
        assert report.has("SA301")

    def test_sa302_wrong_stage_predicate(self, boosted):
        kernel = boosted.kernel
        kernel.ops[0] = dataclasses.replace(
            kernel.ops[0], stage_pred=kernel.ops[0].stage_pred + 1
        )
        report = verify_kernel(kernel, boosted.schedule, boosted.rotating)
        assert report.has("SA302")

    def test_sa303_off_by_one_rotation(self, boosted):
        kernel = boosted.kernel
        victim = next(
            (k, op) for k, op in enumerate(kernel.ops) if op.phys_uses
        )
        k, op = victim
        reg, num = op.phys_uses[0]
        kernel.ops[k] = dataclasses.replace(
            op, phys_uses=((reg, num + 1),) + op.phys_uses[1:]
        )
        report = verify_kernel(kernel, boosted.schedule, boosted.rotating)
        assert report.has("SA303")

    def test_sa304_blade_too_short(self, boosted):
        blades = boosted.rotating.blades
        reg = max(blades, key=lambda r: blades[r][1])  # longest lifetime
        base, span = blades[reg]
        blades[reg] = (base, span - 1)
        report = verify_kernel(boosted.kernel, boosted.schedule,
                               boosted.rotating)
        assert report.has("SA304")

    def test_sa304_missing_blade(self, boosted):
        blades = boosted.rotating.blades
        blades.pop(next(iter(blades)))
        report = verify_kernel(boosted.kernel, boosted.schedule,
                               boosted.rotating)
        assert report.has("SA304")


class TestHintMutations:
    """SA4xx: corrupt the boost set, the coverage, or the latency records."""

    def test_sa401_hint_not_covered(self, boosted):
        schedule = boosted.schedule
        load = boosted_load(schedule)
        consumer = data_consumer(schedule, load)
        schedule.times[consumer] = schedule.times[load] + 1
        report = verify_hints(schedule)
        assert report.has("SA401")

    def test_sa402_non_load_boosted(self, boosted):
        schedule = boosted.schedule
        non_load = next(i for i in schedule.loop.body if not i.is_load)
        schedule.criticality.boosted.add(non_load)
        assert verify_hints(schedule).has("SA402")

    def test_sa403_scheduled_latency_wrong(self, boosted):
        stats = boosted.stats
        placement = stats.placements[0]
        stats.placements[0] = dataclasses.replace(
            placement, scheduled_latency=placement.scheduled_latency + 1
        )
        assert verify_hints(boosted.schedule, stats).has("SA403")

    def test_sa404_unrequested_stretch_is_a_note(self, baseline):
        schedule = baseline.schedule
        load = schedule.loop.loads[0]
        consumer = data_consumer(schedule, load)
        # push the consumer two stages out, preserving its row
        schedule.times[consumer] += 2 * schedule.ii
        report = verify_hints(schedule)
        assert report.has("SA404")
        assert report.ok  # notes never fail verification


@pytest.fixture
def exact():
    """copy_add under the exact scheduler: proven optimal, full stats."""
    result = compile_text(COPY_ADD, CompilerConfig(scheduler="optimal"))
    assert result.pipelined and result.stats.scheduler == "optimal"
    assert result.stats.optimal_status == "optimal"
    return result


class TestOptimalityMutations:
    """SA6xx: forge the exact scheduler's certificate, one field per code."""

    def test_exact_compile_is_clean(self, exact):
        report = verify_result(exact)
        assert not report.errors, report.render_text()

    def test_sa601_claimed_optimal_above_a_schedulable_ii(self, exact):
        # pretend the driver settled one II higher while still claiming
        # optimality: the independent re-solve at achieved-1 (the true
        # optimum) produces a witness schedule and refutes the claim
        exact.stats.ii += 1
        exact.stats.ii_lower_bound = exact.stats.ii  # keep SA602 silent
        report = verify_optimality(exact)
        assert report.has("SA601")
        assert not report.has("SA602")

    def test_sa602_bound_above_achieved_ii(self, exact):
        exact.stats.ii_lower_bound = exact.stats.ii + 1
        report = verify_optimality(exact)
        assert report.has("SA602")

    def test_sa602_optimal_claim_with_missing_bound(self, exact):
        exact.stats.ii_lower_bound = None
        assert verify_optimality(exact).has("SA602")

    def test_heuristic_results_are_exempt(self, baseline):
        assert len(verify_optimality(baseline)) == 0
