"""Opcode table: execution-unit classes, base latencies, and attributes.

Latencies here are *operation* latencies independent of the memory
hierarchy.  Load latencies are special: the base latency encodes the
best-case (L1D hit for integer loads, L2 hit for FP loads, which bypass L1
on Itanium 2); the *scheduling* latency of a load is decided by the machine
model from the reference's latency hint and the pipeliner's
critical/non-critical classification (Sec. 3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class UnitClass(enum.Enum):
    """Execution-unit class required by an opcode.

    ``A``-type instructions (simple integer ALU) can execute on either an M
    or an I port; the others are tied to their unit.
    """

    A = "A"  #: integer ALU, dispatches to M or I ports
    I = "I"  #: integer unit (shifts, multimedia, ...)
    M = "M"  #: memory unit (loads, stores, prefetches, setf/getf)
    F = "F"  #: floating-point unit
    B = "B"  #: branch unit
    NONE = "-"  #: pseudo-ops that consume no issue slot


@dataclass(frozen=True, slots=True)
class Opcode:
    """Static description of one machine operation."""

    mnemonic: str
    unit: UnitClass
    latency: int
    is_load: bool = False
    is_store: bool = False
    is_fp: bool = False
    is_prefetch: bool = False
    is_branch: bool = False
    writes_predicate: bool = False

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store or self.is_prefetch

    def __str__(self) -> str:
        return self.mnemonic


def _op(mnemonic: str, unit: UnitClass, latency: int, **flags: bool) -> Opcode:
    return Opcode(mnemonic, unit, latency, **flags)


#: The opcode table.  Latencies follow the Itanium 2 reference manual's
#: common cases: 1-cycle integer ALU, 4-cycle FP arithmetic (fully
#: pipelined), multi-cycle cross-file transfers.
OPCODES: dict[str, Opcode] = {
    op.mnemonic: op
    for op in [
        # --- integer loads (best case: L1D hit, 1 cycle) ----------------
        _op("ld1", UnitClass.M, 1, is_load=True),
        _op("ld2", UnitClass.M, 1, is_load=True),
        _op("ld4", UnitClass.M, 1, is_load=True),
        _op("ld8", UnitClass.M, 1, is_load=True),
        # --- FP loads (bypass L1; best case: L2 hit, 5+1 cycles) --------
        _op("ldfs", UnitClass.M, 6, is_load=True, is_fp=True),
        _op("ldfd", UnitClass.M, 6, is_load=True, is_fp=True),
        # --- stores ------------------------------------------------------
        _op("st1", UnitClass.M, 1, is_store=True),
        _op("st2", UnitClass.M, 1, is_store=True),
        _op("st4", UnitClass.M, 1, is_store=True),
        _op("st8", UnitClass.M, 1, is_store=True),
        _op("stfs", UnitClass.M, 1, is_store=True, is_fp=True),
        _op("stfd", UnitClass.M, 1, is_store=True, is_fp=True),
        # --- software prefetch -------------------------------------------
        _op("lfetch", UnitClass.M, 1, is_prefetch=True),
        # --- integer ALU (A-type: M or I port) ---------------------------
        _op("add", UnitClass.A, 1),
        _op("sub", UnitClass.A, 1),
        _op("adds", UnitClass.A, 1),  # add short immediate
        _op("addl", UnitClass.A, 1),  # add long immediate
        _op("shladd", UnitClass.A, 1),
        _op("and", UnitClass.A, 1),
        _op("or", UnitClass.A, 1),
        _op("xor", UnitClass.A, 1),
        _op("mov", UnitClass.A, 1),
        _op("sxt4", UnitClass.I, 1),
        _op("zxt4", UnitClass.I, 1),
        _op("shl", UnitClass.I, 1),
        _op("shr", UnitClass.I, 1),
        # compares write predicate pairs
        _op("cmp", UnitClass.A, 1, writes_predicate=True),
        _op("tbit", UnitClass.I, 1, writes_predicate=True),
        # --- floating point ----------------------------------------------
        _op("fma", UnitClass.F, 4, is_fp=True),
        _op("fnma", UnitClass.F, 4, is_fp=True),
        _op("fadd", UnitClass.F, 4, is_fp=True),
        _op("fsub", UnitClass.F, 4, is_fp=True),
        _op("fmpy", UnitClass.F, 4, is_fp=True),
        _op("fcvt", UnitClass.F, 4, is_fp=True),
        _op("fcmp", UnitClass.F, 2, is_fp=True, writes_predicate=True),
        _op("frcpa", UnitClass.F, 4, is_fp=True, writes_predicate=True),
        # cross-file transfers are expensive on Itanium 2
        _op("setf", UnitClass.M, 6, is_fp=True),
        _op("getf", UnitClass.M, 5, is_fp=True),
        # --- branches -----------------------------------------------------
        _op("br.ctop", UnitClass.B, 1, is_branch=True),
        _op("br.cloop", UnitClass.B, 1, is_branch=True),
        _op("br.wtop", UnitClass.B, 1, is_branch=True),
        _op("br.cond", UnitClass.B, 1, is_branch=True),
        # --- pseudo -------------------------------------------------------
        _op("nop", UnitClass.A, 0),
    ]
}


def opcode(mnemonic: str) -> Opcode:
    """Look up an opcode by mnemonic, raising ``IRError`` for unknown names."""
    from repro.errors import IRError

    try:
        return OPCODES[mnemonic]
    except KeyError:
        raise IRError(f"unknown opcode: {mnemonic!r}") from None
