"""Tests for recurrence-cycle enumeration and Recurrence II.

The enumerative RecII (the form the paper's criticality analysis uses) is
cross-checked against the independent binary-search/Floyd-Warshall
implementation, including on randomly generated loops (hypothesis).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ddg import (
    build_ddg,
    enumerate_recurrence_cycles,
    recurrence_ii,
    recurrence_ii_search,
)
from repro.ddg.cycles import always_expected
from repro.errors import DependenceError
from repro.ir import LoopBuilder, parse_loop
from repro.ir.memref import AccessPattern, LatencyHint
from repro.machine import ItaniumMachine


@pytest.fixture
def query(machine):
    return machine.latency_query


class TestCycleEnumeration:
    def test_running_example_cycles(self, running_example, query):
        ddg = build_ddg(running_example)
        cycles = enumerate_recurrence_cycles(ddg)
        # the two post-increment self-recurrences
        assert len(cycles) == 2
        assert all(c.total_omega == 1 for c in cycles)
        assert all(len(c.edges) == 1 for c in cycles)

    def test_cycle_loads(self):
        b = LoopBuilder()
        node = b.live_greg("node")
        ref = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8)
        b.load_into("ld8", node, node, ref)
        ddg = build_ddg(b.build("chase"))
        cycles = [c for c in enumerate_recurrence_cycles(ddg)
                  if c.loads]
        assert len(cycles) == 1
        assert cycles[0].loads[0].is_load

    def test_multi_node_cycle(self, query):
        """x -> y -> x with a loop-carried back edge."""
        b = LoopBuilder()
        x = b.live_greg("x")
        y = b.alu_imm("adds", x, 1)
        b.alu_into("add", x, y)
        ddg = build_ddg(b.build("two"))
        cycles = enumerate_recurrence_cycles(ddg)
        two_node = [c for c in cycles if len(c.edges) == 2]
        assert len(two_node) == 1
        assert two_node[0].length(query) == 2
        assert two_node[0].ii_bound(query) == 2


class TestRecurrenceII:
    def test_running_example(self, running_example, query):
        ddg = build_ddg(running_example)
        assert recurrence_ii(ddg, query) == 1
        assert recurrence_ii_search(ddg, query) == 1

    def test_fp_accumulator_pins_rec_ii(self, query):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"),
                   b.memref("a", size=8, is_fp=True), post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        ddg = build_ddg(b.build("red"))
        # fadd latency 4, distance 1
        assert recurrence_ii(ddg, query) == 4
        assert recurrence_ii_search(ddg, query) == 4

    def test_expected_latency_raises_cycle_bound(self, machine, query):
        b = LoopBuilder()
        node = b.live_greg("node")
        ref = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8)
        ref.hint = LatencyHint.L3
        b.load_into("ld8", node, node, ref)
        ddg = build_ddg(b.build("chase"))
        assert recurrence_ii(ddg, query) == 1  # base latency
        boosted = recurrence_ii(ddg, query, always_expected)
        assert boosted == 21  # typical L3 scheduling latency

    def test_acyclic_graph_has_zero_rec_ii(self, query):
        loop = parse_loop(
            """
            memref A affine stride=4
            loop ac
              ld4 r1 = [r2] !A
              add r3 = r1, r9
            """
        )
        ddg = build_ddg(loop)
        assert recurrence_ii(ddg, query) == 0
        assert recurrence_ii_search(ddg, query) == 0

    def test_zero_distance_cycle_detected(self):
        """A combinational cycle (omega 0) is a malformed DDG."""
        from repro.ddg.edges import DepEdge, DepKind
        from repro.ddg.graph import DDG
        from repro.ir.instructions import Instruction
        from repro.ir.opcodes import opcode
        from repro.ir.registers import greg
        from repro.ir.loop import Loop

        a = Instruction(opcode("add"), defs=(greg(1),), uses=(greg(2),))
        b_ = Instruction(opcode("add"), defs=(greg(2),), uses=(greg(1),))
        loop = Loop(name="bad", body=[a, b_])
        ddg = DDG(loop)
        ddg.add_edge(DepEdge(a, b_, DepKind.FLOW, 0, reg=greg(1)))
        ddg.add_edge(DepEdge(b_, a, DepKind.FLOW, 0, reg=greg(2)))
        with pytest.raises(DependenceError):
            enumerate_recurrence_cycles(ddg)


def _random_loop(draw_ops):
    """Build a loop from a generated op list (always well-formed)."""
    b = LoopBuilder()
    acc = b.live_greg("acc")
    values = [acc]
    ref = b.memref("a", stride=4)
    addr = b.live_greg("pa")
    for kind in draw_ops:
        if kind == 0:
            values.append(b.load("ld4", addr, ref, post_inc=4))
        elif kind == 1 and values:
            values.append(b.alu_imm("adds", values[-1], 1))
        else:
            src = values[len(values) // 2]
            b.alu_into("add", acc, acc, src)
            break
    return b.build("rand", validate=False)


class TestCrossCheck:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=12))
    def test_enumerative_matches_search(self, ops):
        machine = ItaniumMachine()
        loop = _random_loop(ops)
        ddg = build_ddg(loop)
        enum = recurrence_ii(ddg, machine.latency_query)
        search = recurrence_ii_search(ddg, machine.latency_query)
        assert enum == search

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=12))
    def test_expected_never_below_base(self, ops):
        machine = ItaniumMachine()
        loop = _random_loop(ops)
        for ld in loop.loads:
            ld.memref.hint = LatencyHint.L2
        ddg = build_ddg(loop)
        base = recurrence_ii(ddg, machine.latency_query)
        boosted = recurrence_ii(ddg, machine.latency_query, always_expected)
        assert boosted >= base
