# DAXPY-style FP stream: y[i] += a * x[i].  Two FP loads feeding an fma,
# the archetype whose loads the ALL_FP_L2 policy boosts (Sec. 4.3).
memref X affine fp stride=8 size=8 space=x
memref Y affine fp stride=8 size=8 space=y

loop daxpy trips=1000 source=pgo
  ldfd f4 = [r5], 8 !X
  ldfd f5 = [r6] !Y
  fma f6 = f4, f2, f5
  stfd [r6] = f6, 8 !Y
