"""Cache-line locality grouping.

"When there are multiple data references that access the same cache line
inside a loop, prefetching is done only for the leading memory reference."
(Sec. 3.2).  Two references belong to the same line group when they access
the same space with the same pattern and stride — the model's stand-in for
"provably within one cache line of each other each iteration".  Hint marks
later propagate to the whole group: "all such accesses (to the same cache
line) will get marked for higher-latency scheduling".
"""

from __future__ import annotations

from repro.ir.loop import Loop
from repro.ir.memref import MemRef


def _group_key(ref: MemRef) -> tuple:
    return (ref.space, ref.pattern, ref.stride, ref.is_fp)


def line_groups(loop: Loop) -> list[list[MemRef]]:
    """Memory references partitioned into same-cache-line groups."""
    groups: dict[tuple, list[MemRef]] = {}
    for inst in loop.body:
        if inst.memref is None or inst.is_prefetch:
            continue
        groups.setdefault(_group_key(inst.memref), []).append(inst.memref)
    # deduplicate references appearing in several instructions
    result = []
    for members in groups.values():
        seen: dict[int, MemRef] = {}
        for ref in members:
            seen.setdefault(ref.uid, ref)
        result.append(list(seen.values()))
    return result


def leading_references(loop: Loop) -> dict[int, MemRef]:
    """Map every reference uid to its group's leading reference."""
    leaders: dict[int, MemRef] = {}
    for group in line_groups(loop):
        leader = group[0]
        for ref in group:
            leaders[ref.uid] = leader
    return leaders
