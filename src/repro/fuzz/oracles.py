"""Fuzzing oracles: everything a generated loop is checked against.

Each oracle re-derives ground truth through a path *disjoint* from the
machinery it judges, so a scheduler bug cannot vouch for itself:

``lint``           SA1xx well-formedness of the input loop.
``crash``          the compile path must not raise.
``analysis``       the full SA1xx-SA4xx translation validation of the
                   compiled artifact (schedule, kernel, rotation, hints).
``dependence``     every edge of a *freshly rebuilt* DDG holds at base
                   latency under the schedule times.  SA202 replays the
                   schedule's own DDG, so a dropped or mis-weighted edge
                   in ``build_ddg``-as-used-by-the-driver is invisible to
                   it; this oracle closes that gap.
``hlo-preserve``   HLO (hint annotation + prefetch insertion) must not
                   change architectural results.
``differential``   replaying the modulo schedule in schedule order
                   (:mod:`repro.fuzz.archexec`) must reproduce the
                   sequential reference's memory/register state.
``accounting``     the simulator's cycle identity: bucket sum == total
                   cycles (:func:`repro.core.accounting.verify_cycle_identity`).
``metamorphic-*``  program transformations with a provable relation to
                   the original compile:

                   * ``hints``: stripping all latency hints compiles the
                     loop through exactly the base-latency ladder, so if
                     the stripped loop pipelines, the hinted one must
                     pipeline at an II no larger (hints only ever *add*
                     scheduling freedom — the driver retries every II
                     with latencies demoted, Sec. 3.3);
                   * ``boost``: forcing every load's hint to ``MEM`` may
                     change the schedule but never the results, and the
                     same ladder argument bounds its II by the stripped
                     loop's;
                   * ``seed``: permuting the simulator's address seed
                     preserves iteration counts and closed accounting.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.analysis import lint_loop, verify_compiled
from repro.config import CompilerConfig
from repro.core.accounting import verify_cycle_identity
from repro.core.compiler import CompiledLoop, LoopCompiler
from repro.ddg.graph import build_ddg
from repro.fuzz.archexec import ArchOutcome, run_reference, run_scheduled
from repro.ir.loop import Loop
from repro.ir.memref import LatencyHint
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.driver import PipelineResult, pipeline_loop
from repro.sim.address import StreamSpec
from repro.sim.executor import simulate_loop

#: bump when oracle semantics change — part of the harness cache key, so
#: stale cached verdicts are never replayed against new oracles
#: (3: verdicts are machine-model-aware; the case key carries the name)
ORACLE_VERSION = 3

#: source iterations for the architectural executions — enough to cross
#: several stage boundaries of any schedule the generator can provoke
N_ARCH = 17

#: working-set bytes per memory space in the cycle-identity simulations
_SIM_SPACE_BYTES = 1 << 16


@dataclass(frozen=True)
class Violation:
    """One oracle failure for one case."""

    oracle: str
    detail: str
    code: str = ""

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "detail": self.detail, "code": self.code}


@dataclass
class CaseReport:
    """Everything the fuzzer learned about one loop."""

    name: str
    seed: int | None = None
    pipelined: bool = False
    ii: int = 0
    violations: list[Violation] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def oracles_failed(self) -> list[str]:
        """Distinct failing oracle names, first-failure order (the shrink
        target: a reduction must keep at least the first of these)."""
        seen: list[str] = []
        for v in self.violations:
            if v.oracle not in seen:
                seen.append(v.oracle)
        return seen

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "pipelined": self.pipelined,
            "ii": self.ii,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "stats": self.stats,
        }


def _diff_outcomes(ref: ArchOutcome, got: ArchOutcome, limit: int = 3) -> str:
    """Compact first-differences summary of two architectural outcomes."""
    diffs: list[str] = []
    for kind, a, b in (("mem", ref.memory, got.memory),
                       ("reg", ref.registers, got.registers)):
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                diffs.append(
                    f"{kind} {key}: ref={a.get(key)} got={b.get(key)}"
                )
            if len(diffs) >= limit:
                return "; ".join(diffs) + "; ..."
    return "; ".join(diffs)


def _check_fresh_ddg(
    report: CaseReport, result: PipelineResult, machine: ItaniumMachine
) -> None:
    """Rebuild the DDG from scratch and re-check every edge at base latency."""
    schedule = result.schedule
    assert schedule is not None
    fresh = build_ddg(result.loop)
    for edge in fresh.edges:
        lat = edge.latency(machine.latency_query, False)
        lhs = schedule.times[edge.dst]
        rhs = schedule.times[edge.src] + lat - schedule.ii * edge.omega
        if lhs < rhs:
            report.violations.append(Violation(
                "dependence",
                f"{edge!r} violated under fresh DDG: "
                f"t(dst)={lhs} < t(src)+lat-II*w={rhs}",
            ))


def _check_replay(
    report: CaseReport,
    oracle: str,
    reference: ArchOutcome,
    result: PipelineResult,
    n: int,
) -> None:
    """Replay a pipelined result and compare against ``reference``."""
    schedule = result.schedule
    assert schedule is not None
    replay = run_scheduled(result.loop, schedule.times, schedule.ii, n)
    for message in replay.violations[:3]:
        report.violations.append(Violation(oracle, f"ordering: {message}"))
    if replay.fingerprint() != reference.fingerprint():
        report.violations.append(Violation(
            oracle, f"state diverged: {_diff_outcomes(reference, replay)}"
        ))


def _sim_layout(loop: Loop) -> dict[str, StreamSpec]:
    return {
        ref.space: StreamSpec(size=_SIM_SPACE_BYTES)
        for ref in loop.memrefs
    }


def _sim_trips(loop: Loop) -> list[int]:
    est = int(loop.average_trips(100.0))
    return [min(64, max(2, est)), 7]


def _check_accounting(
    report: CaseReport, compiled: CompiledLoop, machine: ItaniumMachine
) -> None:
    layout = _sim_layout(compiled.loop)
    trips = _sim_trips(compiled.loop)
    runs = []
    for seed in (11, 12):  # metamorphic-seed: permute the address seed
        try:
            run = simulate_loop(
                compiled.result, machine, layout, trips, seed=seed
            )
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            report.violations.append(Violation(
                "accounting", f"simulation crashed (seed={seed}): {exc!r}"
            ))
            return
        runs.append(run)
        if not verify_cycle_identity(run.cycles, run.counters):
            report.violations.append(Violation(
                "accounting",
                f"cycle identity open (seed={seed}): cycles={run.cycles} "
                f"buckets={run.counters.total_cycles}",
            ))
    first, second = runs
    if (first.total_iterations, first.invocations) != (
        second.total_iterations, second.invocations
    ):
        report.violations.append(Violation(
            "metamorphic-seed",
            "address-seed permutation changed iteration accounting: "
            f"{first.total_iterations}/{first.invocations} vs "
            f"{second.total_iterations}/{second.invocations}",
        ))

    # SA5xx bounds oracle: every run's counters must lie inside the
    # statically derived interval, whatever loop the generator produced
    try:
        from repro.analysis import build_perf_model

        model = build_perf_model(compiled.result, machine, layout)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        report.violations.append(Violation(
            "bounds", f"static model construction crashed: {exc!r}"
        ))
        return
    for seed, run in zip((11, 12), runs):
        bound_report = model.check_counters(trips, run.counters, run.cycles)
        for diag in bound_report:
            report.violations.append(Violation(
                "bounds", f"(seed={seed}) {diag.format()}", diag.code
            ))


def check_loop(
    loop: Loop,
    machine: ItaniumMachine | None = None,
    config: CompilerConfig | None = None,
    seed: int | None = None,
    n_arch: int = N_ARCH,
    simulate: bool = True,
    metamorphic: bool = True,
) -> CaseReport:
    """Run every oracle over one loop; returns the full case report.

    ``loop`` is never mutated.  ``seed`` is carried into the report for
    manifests only.  ``simulate``/``metamorphic`` gate the expensive
    oracles (the shrinker disables whichever did not witness the failure).
    """
    machine = machine or ItaniumMachine()
    config = config or CompilerConfig()
    report = CaseReport(name=loop.name, seed=seed)

    for diag in lint_loop(loop).errors:
        report.violations.append(Violation("lint", diag.format(), diag.code))
    if report.violations:
        return report

    try:
        compiled = LoopCompiler(machine, config).compile(loop)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        report.violations.append(
            Violation("crash", f"compile raised {type(exc).__name__}: {exc}")
        )
        return report

    result = compiled.result
    report.pipelined = result.pipelined
    report.ii = result.stats.ii
    report.stats = {
        "pipelined": result.pipelined,
        "ii": result.stats.ii,
        "res_ii": result.bounds.res_ii,
        "rec_ii": result.bounds.rec_ii,
        "stage_count": result.stats.stage_count,
        "seq_length": result.seq_length,
    }

    for diag in verify_compiled(compiled).errors:
        report.violations.append(Violation("analysis", diag.format(), diag.code))

    # HLO must preserve architectural semantics (hints + prefetches only)
    reference = run_reference(loop, n_arch)
    hlo_reference = run_reference(compiled.loop, n_arch)
    if reference.fingerprint() != hlo_reference.fingerprint():
        report.violations.append(Violation(
            "hlo-preserve",
            f"HLO changed results: {_diff_outcomes(reference, hlo_reference)}",
        ))

    if result.pipelined and result.schedule is not None:
        _check_fresh_ddg(report, result, machine)
        _check_replay(report, "differential", hlo_reference, result, n_arch)

    if simulate:
        _check_accounting(report, compiled, machine)

    if metamorphic:
        _check_metamorphic(report, compiled, machine, config, n_arch)

    return report


def _check_metamorphic(
    report: CaseReport,
    compiled: CompiledLoop,
    machine: ItaniumMachine,
    config: CompilerConfig,
    n_arch: int,
) -> None:
    base = compiled.result
    hlo_reference = run_reference(compiled.loop, n_arch)

    # --- strip every latency hint -------------------------------------
    stripped_loop = copy.deepcopy(compiled.loop)
    for ref in stripped_loop.memrefs:
        ref.hint = LatencyHint.NONE
        ref.hint_source = ""
    try:
        stripped = pipeline_loop(stripped_loop, machine, config)
    except Exception as exc:  # noqa: BLE001
        report.violations.append(Violation(
            "metamorphic-hints", f"hint-stripped compile raised: {exc!r}"
        ))
        return
    if stripped.pipelined:
        if not base.pipelined:
            report.violations.append(Violation(
                "metamorphic-hints",
                "loop pipelines without hints but not with them "
                f"(stripped II={stripped.stats.ii})",
            ))
        elif base.stats.ii > stripped.stats.ii:
            report.violations.append(Violation(
                "metamorphic-hints",
                f"hints increased the II: hinted={base.stats.ii} "
                f"stripped={stripped.stats.ii} (driver retries every II "
                "at base latencies, so hinted II must not exceed this)",
            ))
        _check_replay(report, "metamorphic-hints", hlo_reference, stripped,
                      n_arch)

    # --- boost every load to the worst-case hint ----------------------
    boosted_loop = copy.deepcopy(compiled.loop)
    for inst in boosted_loop.loads:
        if inst.memref is not None and not inst.is_prefetch:
            inst.memref.hint = LatencyHint.MEM
            inst.memref.hint_source = "fuzz-boost"
    try:
        boosted = pipeline_loop(boosted_loop, machine, config)
    except Exception as exc:  # noqa: BLE001
        report.violations.append(Violation(
            "metamorphic-boost", f"boosted compile raised: {exc!r}"
        ))
        return
    if stripped.pipelined:
        if not boosted.pipelined:
            report.violations.append(Violation(
                "metamorphic-boost",
                "boosting hints defeated pipelining that succeeds at base "
                f"latencies (stripped II={stripped.stats.ii})",
            ))
        elif boosted.stats.ii > stripped.stats.ii:
            report.violations.append(Violation(
                "metamorphic-boost",
                f"boosted II={boosted.stats.ii} exceeds the base-latency "
                f"ladder's II={stripped.stats.ii}",
            ))
    if boosted.pipelined:
        _check_replay(report, "metamorphic-boost", hlo_reference, boosted,
                      n_arch)
