#!/usr/bin/env python
"""Measure simulator replay throughput: interpreter vs fast backend.

For every hot loop of a suite this compiles the loop once, builds its
address streams once, and then times the *replay* of the full invocation
sequence — :func:`repro.sim.core.run_iterations` against
:func:`repro.sim.fastpath.run_iterations_fast` — on identical inputs.
Compile time, stream synthesis and the cache pre-warm are excluded from
both sides (they are backend-independent one-time costs); what remains
is exactly the per-cycle work the fast backend exists to accelerate.

Every timed pair is also an equality check: the final cycle count and
every :class:`PerfCounters` field must come out bit-identical, or the
run aborts.  A throughput number from a wrong simulator is worse than
no number.

The JSON report (``--out``, canonically
``benchmarks/results/BENCH_sim_throughput.json``) is the repo's
perf-trajectory artifact: successive commits append comparable numbers,
and CI gates on ``--min-speedup``.

Usage::

    PYTHONPATH=src python tools/bench_sim_throughput.py \
        --out benchmarks/results/BENCH_sim_throughput.json --min-speedup 5
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import baseline_config
from repro.core.compiler import LoopCompiler
from repro.harness.jobs import _stable, collect_profile, counters_to_dict
from repro.machine.itanium2 import ItaniumMachine
from repro.sim.address import build_streams
from repro.sim.core import prepare_execution, run_iterations
from repro.sim.counters import PerfCounters
from repro.sim.executor import _prewarm_resident_regions, _run_invocation
from repro.sim.fastpath import compile_kernel, run_invocations_fast
from repro.sim.memory import MemorySystem
from repro.workloads.spec import suite_by_name


@dataclasses.dataclass
class _Prepared:
    """One loop's replay inputs, shared verbatim by both backends."""

    benchmark: str
    loop_name: str
    result: object
    setup: object
    kernel: object
    layout: dict
    streams: object
    trips: list
    restart_uids: set


def _prepare(suite: str, seed: int, machine: ItaniumMachine) -> list[_Prepared]:
    config = baseline_config()
    prepared: list[_Prepared] = []
    for bench in suite_by_name(suite):
        profile = collect_profile(bench, seed) if config.pgo else None
        compiler = LoopCompiler(machine, config)
        for pos, lw in enumerate(bench.loops):
            loop, layout = lw.build()
            compiled = compiler.compile(loop, profile)
            rng = np.random.default_rng(seed + pos * 977 + _stable(bench.name))
            trips = [int(t) for t in lw.data.ref.sample(rng, lw.invocations)]
            total = sum(trips)
            stream_len = max(total, max(trips) if trips else 0)
            streams = build_streams(
                compiled.result.loop, layout, stream_len, seed=seed + pos
            )
            reuse = {s for s, spec in layout.items() if spec.reuse}
            restart = {
                inst.memref.uid
                for inst in compiled.result.loop.body
                if inst.memref is not None and inst.memref.space in reuse
            }
            setup = prepare_execution(compiled.result, machine)
            prepared.append(_Prepared(
                benchmark=bench.name,
                loop_name=loop.name,
                result=compiled.result,
                setup=setup,
                kernel=compile_kernel(setup),
                layout=layout,
                streams=streams,
                trips=trips,
                restart_uids=restart,
            ))
    return prepared


def _replay(p: _Prepared, machine: ItaniumMachine, backend: str):
    """One full timed replay: (seconds, final cycle, counters)."""
    memory = MemorySystem(machine.timings)
    _prewarm_resident_regions(p.result, p.layout, p.streams, memory)
    counters = PerfCounters()
    cap = machine.ozq_capacity
    restart_frozen = frozenset(p.restart_uids)
    cycle = 0.0
    base = 0
    start = time.perf_counter()
    if backend == "fast":
        cycle = run_invocations_fast(
            p.kernel, p.streams, p.trips, memory, cap, counters,
            cycle, restart_frozen,
        )
    else:
        for n in p.trips:
            cycle = _run_invocation(
                p.setup, p.streams, p.restart_uids, base, n, memory, cap,
                counters, cycle,
            )
            base += n
    elapsed = time.perf_counter() - start
    return elapsed, cycle, counters


def run_bench(
    suite: str, seed: int, repeats: int, machine: ItaniumMachine | None = None
) -> dict:
    """The full measurement: per-loop and aggregate throughput + identity."""
    machine = machine or ItaniumMachine()
    prepared = _prepare(suite, seed, machine)
    cells = []
    tot_cycles = 0.0
    tot_interp = 0.0
    tot_fast = 0.0
    for p in prepared:
        interp_s = fast_s = float("inf")
        ref = None
        for _ in range(repeats):
            ei, cycle_i, counters_i = _replay(p, machine, "interp")
            ef, cycle_f, counters_f = _replay(p, machine, "fast")
            di = counters_to_dict(counters_i)
            df = counters_to_dict(counters_f)
            if cycle_i != cycle_f or di != df:
                diffs = [k for k in di if di[k] != df.get(k)]
                raise SystemExit(
                    f"BACKEND MISMATCH on {p.benchmark}/{p.loop_name}: "
                    f"cycles {cycle_i} vs {cycle_f}, fields {diffs}"
                )
            interp_s = min(interp_s, ei)
            fast_s = min(fast_s, ef)
            ref = cycle_i
        tot_cycles += ref
        tot_interp += interp_s
        tot_fast += fast_s
        cells.append({
            "benchmark": p.benchmark,
            "loop": p.loop_name,
            "sim_cycles": ref,
            "interp_s": interp_s,
            "fast_s": fast_s,
            "interp_cycles_per_s": ref / interp_s,
            "fast_cycles_per_s": ref / fast_s,
            "speedup": interp_s / fast_s,
        })
    return {
        "version": 1,
        "suite": suite,
        "seed": seed,
        "repeats": repeats,
        "config": baseline_config().label,
        "identical": True,
        "cells": cells,
        "aggregate": {
            "sim_cycles": tot_cycles,
            "interp_s": tot_interp,
            "fast_s": tot_fast,
            "interp_cycles_per_s": tot_cycles / tot_interp,
            "fast_cycles_per_s": tot_cycles / tot_fast,
            "speedup": tot_interp / tot_fast,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="micro")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per loop (best-of)")
    parser.add_argument("--out", default="",
                        help="write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless aggregate speedup reaches this")
    args = parser.parse_args(argv)

    report = run_bench(args.suite, args.seed, args.repeats)
    agg = report["aggregate"]
    for cell in report["cells"]:
        print(
            f"{cell['benchmark']:>12}/{cell['loop']:<18} "
            f"interp {cell['interp_cycles_per_s']:>12,.0f} cyc/s   "
            f"fast {cell['fast_cycles_per_s']:>12,.0f} cyc/s   "
            f"{cell['speedup']:5.2f}x"
        )
    print(
        f"{'aggregate':>31} "
        f"interp {agg['interp_cycles_per_s']:>12,.0f} cyc/s   "
        f"fast {agg['fast_cycles_per_s']:>12,.0f} cyc/s   "
        f"{agg['speedup']:5.2f}x"
    )
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {path}")
    if args.min_speedup and agg["speedup"] < args.min_speedup:
        print(
            f"FAIL: aggregate speedup {agg['speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
