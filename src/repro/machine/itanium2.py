"""The runtime machine model built from a :class:`MachineDescription`.

Bundles the resource model, the latency tables, and — most importantly —
the latency-query interface of Sec. 3.3: "the pipeliner queries the machine
model component of the code generator to obtain the latencies of
instructions.  For loads, an additional parameter is provided with the
query that specifies whether the machine model should return the minimum
(base) latency of the load, or a (possibly higher) expected latency value
specified by HLO hints."

The class keeps its historical name — ``ItaniumMachine()`` with no
arguments is still the paper's Dual-Core Itanium 2, bit-identical to the
pre-registry model — but any registered :class:`MachineDescription` can be
realised through :func:`build_machine`, which derives the resource model,
timings, hierarchy geometry, queue discipline, and scoreboard policy from
the description instead of module constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction
from repro.ir.memref import LatencyHint
from repro.ir.opcodes import UnitClass
from repro.ir.registers import Reg, RegClass, RegisterFile, itanium_register_files
from repro.machine.description import (
    ITANIUM2,
    MachineDescription,
    MemoryTimings,
    QueueDiscipline,
    ScoreboardPolicy,
    machine_description,
)
from repro.machine.hints import HintTranslation, TYPICAL_TRANSLATION
from repro.machine.resources import ResourceModel

__all__ = [
    "ItaniumMachine",
    "Machine",
    "MemoryTimings",
    "build_machine",
]


@dataclass(frozen=True)
class ItaniumMachine:
    """Everything the compiler and the simulator know about the target."""

    resources: ResourceModel = field(default_factory=ResourceModel)
    timings: MemoryTimings = field(default_factory=MemoryTimings)
    translation: HintTranslation = TYPICAL_TRANSLATION
    register_files: dict[RegClass, RegisterFile] = field(
        default_factory=itanium_register_files
    )
    #: outstanding memory requests the OzQ sustains without stalling
    #: ("At least 48 outstanding requests can be active throughout the
    #: memory hierarchy without stalling the execution pipeline", Sec. 2)
    ozq_capacity: int = 48
    #: the declarative source this machine was realised from
    description: MachineDescription = ITANIUM2

    # --- identity ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.description.name

    @property
    def queue(self) -> QueueDiscipline:
        return self.description.queue

    @property
    def scoreboard(self) -> ScoreboardPolicy:
        return self.description.scoreboard

    def digest(self) -> str:
        return self.description.digest()

    # --- latency queries ---------------------------------------------------
    def base_latency(self, inst: Instruction) -> int:
        """Minimum (base) result latency of ``inst``."""
        if self.description.latency_overrides:
            override = self.description.latency_override_map.get(
                inst.opcode.mnemonic
            )
            if override is not None:
                return override
        return inst.opcode.latency

    def expected_load_latency(self, inst: Instruction) -> int:
        """Hint-derived expected latency of a load (Sec. 3.3)."""
        base = self.base_latency(inst)
        if not inst.is_load or inst.memref is None:
            return base
        return self.translation.scheduling_latency(
            inst.memref.hint, inst.is_fp, base
        )

    def flow_latency(
        self, inst: Instruction, reg: Reg | None, expected: bool
    ) -> int:
        """Latency of the value ``inst`` produces in ``reg``.

        The post-incremented address register of a memory operation is an
        ALU-style result available after one cycle; only the *data* result
        of a load carries the memory latency.
        """
        if inst.is_memory and reg is not None and reg not in inst.defs:
            return 1  # post-increment address result
        if inst.is_load:
            if expected:
                return self.expected_load_latency(inst)
            return self.base_latency(inst)
        return max(1, self.base_latency(inst))

    @property
    def latency_query(self):
        """The query callable consumed by the DDG layer."""
        return self.flow_latency

    # --- derived structure -------------------------------------------------
    def memory_system(self):
        """A fresh :class:`~repro.sim.memory.MemorySystem` matching the
        description's hierarchy geometry (caches, TLB, L2 banking)."""
        from repro.sim.cache import CacheConfig
        from repro.sim.memory import MemorySystem
        from repro.sim.tlb import TLB

        d = self.description

        def _config(level) -> CacheConfig:
            return CacheConfig(
                level.name, size=level.size, line_size=level.line_size,
                associativity=level.associativity,
            )

        return MemorySystem(
            self.timings,
            l1d=_config(d.l1d),
            l2=_config(d.l2),
            l3=_config(d.l3),
            tlb=TLB(
                entries=d.tlb.entries,
                page_size=d.tlb.page_size,
                miss_penalty=d.tlb.miss_penalty,
            ),
            bank_conflicts=d.banks.enabled,
            banks=d.banks,
        )

    def with_translation(self, translation: HintTranslation) -> "ItaniumMachine":
        """A copy of this machine using a different hint translation."""
        return ItaniumMachine(
            resources=self.resources,
            timings=self.timings,
            translation=translation,
            register_files=self.register_files,
            ozq_capacity=self.ozq_capacity,
            description=self.description.with_(translation=translation),
        )

    def with_ozq_capacity(self, capacity: int) -> "ItaniumMachine":
        """A copy with a different OzQ depth (for MLP ablations)."""
        description = self.description.with_(
            queue=QueueDiscipline(
                kind=self.description.queue.kind,
                capacity=capacity,
                runahead=self.description.queue.runahead,
                replay_penalty=self.description.queue.replay_penalty,
            )
        )
        return ItaniumMachine(
            resources=self.resources,
            timings=self.timings,
            translation=self.translation,
            register_files=self.register_files,
            ozq_capacity=capacity,
            description=description,
        )

    def rotating_capacity(self, rclass: RegClass) -> int:
        return self.register_files[rclass].rotating_size


#: The runtime model is machine-agnostic; keep a neutral alias.
Machine = ItaniumMachine


def build_machine(source: str | MachineDescription) -> ItaniumMachine:
    """Realise a runtime machine from a description or a registered name.

    Unknown names raise :class:`~repro.errors.MachineModelError`.
    """
    if isinstance(source, MachineDescription):
        description = source
    else:
        description = machine_description(source)
    capacities = {
        UnitClass[unit]: capacity for unit, capacity in description.ports
    }
    return ItaniumMachine(
        resources=ResourceModel(
            capacities=capacities, issue_width=description.issue_width
        ),
        timings=description.timings,
        translation=description.translation,
        register_files=itanium_register_files(),
        ozq_capacity=description.queue.capacity,
        description=description,
    )
