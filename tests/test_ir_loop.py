"""Tests for the Loop container and trip-count info."""

import math

import pytest

from repro.errors import IRError
from repro.ir import LoopBuilder
from repro.ir.loop import (
    Loop,
    TripCountInfo,
    TripCountSource,
    stage_count_cost,
)


def _simple_loop(trips=None):
    b = LoopBuilder()
    a = b.memref("a", stride=4)
    addr = b.live_greg("pa")
    x = b.load("ld4", addr, a, post_inc=4)
    y = b.alu_imm("adds", x, 1)
    c = b.memref("c", stride=4)
    b.store("st4", b.live_greg("pc"), y, c, post_inc=4)
    return b.build("simple", trips=trips)


class TestTripCountInfo:
    def test_unknown_by_default(self):
        info = TripCountInfo()
        assert not info.known
        assert info.effective_estimate(64.0) == 64.0

    def test_max_trips_caps_estimate(self):
        info = TripCountInfo(estimate=500.0, max_trips=100)
        assert info.effective_estimate(0.0) == 100.0
        info2 = TripCountInfo(max_trips=10)
        assert info2.effective_estimate(64.0) == 10.0


class TestLoop:
    def test_indices_assigned_in_body_order(self):
        loop = _simple_loop()
        assert [inst.index for inst in loop.body] == [0, 1, 2]

    def test_memrefs_deduplicated(self):
        loop = _simple_loop()
        assert sorted(r.name for r in loop.memrefs) == ["a", "c"]

    def test_loads_stores_prefetches(self):
        loop = _simple_loop()
        assert len(loop.loads) == 1
        assert len(loop.stores) == 1
        assert loop.prefetches == []

    def test_unique_def_of(self):
        loop = _simple_loop()
        load = loop.body[0]
        data_reg = load.defs[0]
        assert loop.unique_def_of(data_reg) is load
        # the post-incremented address is also defined by the load
        assert loop.unique_def_of(load.address_reg) is load

    def test_uses_of(self):
        loop = _simple_loop()
        data_reg = loop.body[0].defs[0]
        assert loop.uses_of(data_reg) == [loop.body[1]]

    def test_average_trips(self):
        assert _simple_loop(trips=50.0).average_trips() == 50.0
        assert _simple_loop().average_trips(default=77.0) == 77.0

    def test_without_prefetches(self):
        b = LoopBuilder()
        a = b.memref("a", stride=4)
        addr = b.live_greg("pa")
        x = b.load("ld4", addr, a, post_inc=4)
        b.prefetch(addr, a)
        c = b.memref("c", stride=4)
        b.store("st4", b.live_greg("pc"), x, c, post_inc=4)
        loop = b.build("pf")
        assert len(loop.prefetches) == 1
        stripped = loop.without_prefetches()
        assert stripped.prefetches == []
        assert len(stripped) == 2

    def test_virtual_regs(self):
        loop = _simple_loop()
        regs = loop.virtual_regs()
        assert all(r.virtual for r in regs)
        assert len(regs) == 4  # pa, pc, load data, add result


class TestStageCountCost:
    def test_zero_trips_is_infinite(self):
        assert math.isinf(stage_count_cost(5, 0))

    def test_single_stage_is_free(self):
        assert stage_count_cost(1, 100) == 0.0

    def test_relative_cost(self):
        # 5 stages -> 4 extra kernel iterations per execution
        assert stage_count_cost(5, 8) == pytest.approx(0.5)
