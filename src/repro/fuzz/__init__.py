"""Seeded loop-IR fuzzing with differential and metamorphic oracles.

The fuzzer closes the gap between the static translation validator
(:mod:`repro.analysis`) and hand-written tests: it generates adversarial
but well-formed loops (:mod:`repro.fuzz.gen`), pushes each one through
the production compile path, and checks the results against oracles that
re-derive ground truth independently of the scheduler under test
(:mod:`repro.fuzz.oracles`):

* a *differential* architectural oracle — executing the modulo schedule
  in schedule order must produce the same memory/register state as a
  sequential reference interpretation (:mod:`repro.fuzz.archexec`);
* the cycle-accounting identity of :mod:`repro.core.accounting`;
* the full SA1xx-SA4xx static lint;
* *metamorphic* relations (Secs. 1.1/3.3 of the paper): removing hints
  or boosting latencies must never increase the II, and permuting the
  address-stream seed preserves iteration counts and closed accounting.

Failures are shrunk (:mod:`repro.fuzz.shrink`) and saved to a persistent
regression corpus as replayable ``.loop`` files (the dialect of
:func:`repro.ir.printer.loop_to_source`) plus JSON manifests, replayed
by the tier-1 suite.  ``python -m repro fuzz`` is the CLI entry point.
"""

from repro.fuzz.gapharvest import gap_info, harvest_case, is_hard
from repro.fuzz.gen import GenConfig, generate_loop, loop_fingerprint
from repro.fuzz.oracles import (
    ORACLE_VERSION,
    CaseReport,
    Violation,
    check_loop,
)
from repro.fuzz.runner import (
    FuzzOptions,
    FuzzSummary,
    replay_corpus,
    run_fuzz,
    scheduler_mutation,
)
from repro.fuzz.shrink import shrink_loop

__all__ = [
    "gap_info",
    "harvest_case",
    "is_hard",
    "GenConfig",
    "generate_loop",
    "loop_fingerprint",
    "ORACLE_VERSION",
    "CaseReport",
    "Violation",
    "check_loop",
    "FuzzOptions",
    "FuzzSummary",
    "run_fuzz",
    "replay_corpus",
    "scheduler_mutation",
    "shrink_loop",
]
