"""Compiler configuration: the knobs the paper's experiments turn.

Each experiment in Sec. 4 is a pair of :class:`CompilerConfig` values —
a baseline ("no non-critical latency increases at all") and a variant.
The knobs:

* :attr:`hint_policy` — how latency-hint tokens are assigned:
  ``BASELINE`` (none), ``ALL_LOADS_L3`` (the headroom experiment of
  Sec. 4.2), ``ALL_FP_L2`` (the moderate default of Sec. 4.3), and
  ``HLO`` (prefetcher-directed hints of Sec. 3.2 *plus* the FP-L2
  default, Sec. 4.3).
* :attr:`trip_count_threshold` — boost only loops whose average trip
  count meets the threshold (the n of Fig. 7; n=32 is the paper's pick).
* :attr:`pgo` — whether profile feedback supplies trip counts, or the
  low-accuracy static profile heuristic is used (Fig. 9).
* :attr:`prefetch` — software prefetching on/off (the prefetch-disabled
  headroom run of Sec. 4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


class SimBackend(enum.Enum):
    """Which simulator executes compiled loops.

    Both backends implement the *same* dynamic semantics (Sec. 2.1
    stall-on-use, OzQ occupancy, TLB) and are held to bit-identical
    :class:`repro.sim.counters.PerfCounters` by the differential test
    suite; the choice is purely an execution-speed knob and therefore
    never part of any content address (cached results are shared).
    """

    #: the reference per-cycle interpreter (`repro.sim.core`)
    INTERP = "interp"
    #: the table-driven schedule replayer (`repro.sim.fastpath`); falls
    #: back to the interpreter for features it cannot replay (traced
    #: runs, instrumented memory systems)
    FAST = "fast"

    @staticmethod
    def parse(name: "str | SimBackend | None") -> "SimBackend":
        """Normalise a CLI/service/API spelling to a backend."""
        if name is None or name == "":
            return DEFAULT_SIM_BACKEND
        if isinstance(name, SimBackend):
            return name
        try:
            return SimBackend(name)
        except ValueError:
            raise ConfigError(
                f"unknown sim backend {name!r} (expected one of "
                f"{', '.join(b.value for b in SimBackend)})"
            ) from None


#: the replayer is the default; the interpreter remains the reference
DEFAULT_SIM_BACKEND = SimBackend.FAST


#: registered modulo schedulers: the paper's iterative heuristic and the
#: exact branch-and-bound solver (`repro.pipeliner.optimal`)
SCHEDULERS = ("heuristic", "optimal")

#: default node budget for the exact scheduler's per-loop search — the
#: deterministic "time cap" of docs/optimal.md (wall-clock caps would
#: break byte-identical replay)
DEFAULT_OPTIMAL_BUDGET = 200_000


def parse_scheduler(name: "str | None") -> str:
    """Normalise a CLI/service/API scheduler spelling."""
    if name is None or name == "":
        return "heuristic"
    if name not in SCHEDULERS:
        raise ConfigError(
            f"unknown scheduler {name!r} (expected one of "
            f"{', '.join(SCHEDULERS)})"
        )
    return name


class HintPolicy(enum.Enum):
    """How expected-latency hints get assigned to memory references."""

    BASELINE = "baseline"  #: no hints: schedule every load at base latency
    ALL_LOADS_L3 = "all-loads-l3"  #: headroom: every load gets an L3 hint
    ALL_FP_L2 = "all-fp-l2"  #: every FP load gets an L2 hint
    HLO = "hlo"  #: prefetcher-directed hints + the FP-L2 default
    HLO_ONLY = "hlo-only"  #: prefetcher-directed hints without the default
    #: hints from a dynamic cache-miss sampling run (Sec. 6 outlook);
    #: expects the caller to have annotated the loop via
    #: :func:`repro.hlo.sampling.hints_from_miss_profile`
    SAMPLED = "sampled"


@dataclass(frozen=True)
class CompilerConfig:
    """One complete compiler setting."""

    hint_policy: HintPolicy = HintPolicy.HLO
    #: minimum average trip count for latency boosting (n in Fig. 7)
    trip_count_threshold: int = 32
    #: profile feedback available (trip counts from training runs)
    pgo: bool = True
    #: software prefetching enabled in HLO
    prefetch: bool = True
    #: master switch for latency-tolerant pipelining
    latency_tolerant: bool = True
    #: criticality comparison point: "min_ii" or "res_ii" (Sec. 3.3)
    criticality_threshold: str = "min_ii"
    #: ablation switch: when False, hinted loads on recurrence cycles are
    #: boosted too, demonstrating the II growth the criticality analysis
    #: exists to prevent (Sec. 3.3)
    respect_criticality: bool = True
    #: scheduling budget multiplier for iterative modulo scheduling
    budget_ratio: int = 10
    #: assumed trip count when nothing is known
    default_trip_estimate: float = 100.0
    #: assumed average memory latency the prefetcher tries to cover
    prefetch_target_latency: int = 180
    #: which modulo scheduler pipelines loops: the paper's iterative
    #: "heuristic", or the exact "optimal" branch-and-bound solver
    scheduler: str = "heuristic"
    #: node budget for the exact scheduler (per loop, shared across IIs)
    optimal_budget: int = DEFAULT_OPTIMAL_BUDGET
    name: str = ""

    def __post_init__(self) -> None:
        if self.trip_count_threshold < 0:
            raise ConfigError("trip_count_threshold must be >= 0")
        if self.criticality_threshold not in ("min_ii", "res_ii"):
            raise ConfigError(
                f"bad criticality_threshold {self.criticality_threshold!r}"
            )
        if self.budget_ratio < 1:
            raise ConfigError("budget_ratio must be >= 1")
        if self.scheduler not in SCHEDULERS:
            raise ConfigError(
                f"unknown scheduler {self.scheduler!r} (expected one of "
                f"{', '.join(SCHEDULERS)})"
            )
        if self.optimal_budget < 1:
            raise ConfigError("optimal_budget must be >= 1")

    @property
    def label(self) -> str:
        if self.name:
            return self.name
        parts = [self.hint_policy.value]
        parts.append(f"n={self.trip_count_threshold}")
        parts.append("pgo" if self.pgo else "nopgo")
        if not self.prefetch:
            parts.append("nopf")
        # only non-default schedulers mark the label, so every
        # pre-scheduler label (and manifest fingerprint) is preserved
        if self.scheduler != "heuristic":
            parts.append(self.scheduler)
        return ",".join(parts)

    def with_(self, **kwargs) -> "CompilerConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **kwargs)


def baseline_config(pgo: bool = True, prefetch: bool = True) -> CompilerConfig:
    """The paper's baseline compiler: no non-critical latency increases."""
    return CompilerConfig(
        hint_policy=HintPolicy.BASELINE,
        latency_tolerant=False,
        pgo=pgo,
        prefetch=prefetch,
        name=f"baseline{'' if pgo else '-nopgo'}{'' if prefetch else '-nopf'}",
    )
