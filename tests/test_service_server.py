"""End-to-end tests for the service HTTP front-end.

Everything here goes over a real socket: a server on a private event-loop
thread, the stdlib :class:`~repro.service.client.ServiceClient` on the
other end.  Covers the ISSUE checklist items that live at this layer —
dedup of simultaneous identical submissions, backpressure (429), store
maintenance over HTTP, the results API, and store-served replays across
a server restart.
"""

from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import ServerConfig, ServiceClient, serve_in_thread

COPY_ADD = (
    Path(__file__).resolve().parent.parent
    / "examples" / "loops" / "copy_add.s"
).read_text()


def make_config(tmp_path, **overrides) -> ServerConfig:
    defaults = dict(
        port=0,
        workers=2,
        cache_dir=str(tmp_path / "store"),
        runs_dir=str(tmp_path / "runs"),
        log_path=str(tmp_path / "service.log.jsonl"),
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


@pytest.fixture
def service(tmp_path):
    handle = serve_in_thread(make_config(tmp_path))
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    yield client
    handle.stop()


# --- basic job lifecycle ------------------------------------------------------

def test_compile_job_roundtrip(service):
    response = service.submit("compile", loop=COPY_ADD)
    job = response["job"]
    assert job["status"] in ("queued", "running")
    record = service.wait(job["id"], timeout=60)
    assert record["status"] == "done"
    result = record["result"]
    assert result["loop"] == "copy_add"
    assert result["ii"] >= 1
    assert "II=" in result["summary"]


def test_invalid_request_is_a_400_not_a_job(service):
    with pytest.raises(ServiceError) as exc:
        service.submit("bench", suite="micro", workers=8)
    assert exc.value.status == 400
    assert "workers" in str(exc.value)
    assert service.stats()["jobs"]["executed"] == 0


def test_unknown_job_is_a_404(service):
    with pytest.raises(ServiceError) as exc:
        service.job("f" * 64)
    assert exc.value.status == 404


def test_job_lookup_accepts_unique_prefix(service):
    job = service.submit("compile", loop=COPY_ADD)["job"]
    service.wait(job["id"], timeout=60)
    assert service.job(job["id"][:12])["id"] == job["id"]


# --- dedup --------------------------------------------------------------------

def test_simultaneous_identical_submissions_coalesce(service):
    first = service.submit("bench", suite="micro")
    second = service.submit("bench", suite="micro")  # in-flight duplicate
    assert second["job"]["id"] == first["job"]["id"]
    assert second["deduped"] is True
    record = service.wait(first["job"]["id"], timeout=120)
    assert record["status"] == "done"
    assert record["dedup_hits"] == 1
    stats = service.stats()["jobs"]
    assert stats["submitted"] == 2
    assert stats["executed"] == 1
    assert stats["deduped"] == 1


def test_textually_different_equal_requests_share_one_job(service):
    a = service.submit("bench", suite="micro")
    b = service.submit("bench", suite="micro", configs=["hlo"], seed=2008)
    assert a["job"]["id"] == b["job"]["id"]
    service.wait(a["job"]["id"], timeout=120)


def test_batch_submission_dedups_within_the_batch(service):
    responses = service.submit_batch([
        {"kind": "bench", "suite": "micro"},
        {"kind": "bench", "suite": "micro"},
    ])
    assert responses[0]["job"]["id"] == responses[1]["job"]["id"]
    assert responses[1]["deduped"] is True
    service.wait(responses[0]["job"]["id"], timeout=120)


# --- backpressure -------------------------------------------------------------

def test_queue_overflow_is_a_429(tmp_path):
    handle = serve_in_thread(
        make_config(tmp_path, workers=1, queue_limit=1)
    )
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    try:
        first = client.submit("bench", suite="micro")
        with pytest.raises(ServiceError) as exc:
            client.submit("bench", suite="micro", seed=7)  # distinct work
        assert exc.value.status == 429
        # a duplicate of the in-flight job still coalesces, never 429s
        dup = client.submit("bench", suite="micro")
        assert dup["deduped"] is True
        record = client.wait(first["job"]["id"], timeout=120)
        assert record["status"] == "done"
        assert client.stats()["jobs"]["rejected"] == 1
        # with the queue drained the rejected request goes through
        retry = client.submit("bench", suite="micro", seed=7)
        assert client.wait(retry["job"]["id"], timeout=120)["status"] == "done"
    finally:
        handle.stop()


# --- store over HTTP ----------------------------------------------------------

def test_cache_endpoints_roundtrip(service):
    job = service.submit("compile", loop=COPY_ADD)["job"]
    service.wait(job["id"], timeout=60)
    stats = service.cache_stats()
    assert stats["entries"] >= 1
    listing = service.cache_entries()
    assert listing["total"] == stats["entries"]
    assert any(e["key"] == job["id"] for e in listing["entries"])
    report = service.cache_verify()
    assert report["checked"] == stats["entries"]
    assert report["corrupt"] == []
    assert service.cache_delete(job["id"]) is True
    assert service.cache_delete(job["id"]) is False
    assert service.cache_prune(0) >= 0


def test_restarted_server_serves_results_from_the_shared_store(tmp_path):
    handle = serve_in_thread(make_config(tmp_path))
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    job = client.submit("bench", suite="micro")["job"]
    first = client.wait(job["id"], timeout=120)
    assert client.stats()["jobs"]["executed"] == 1
    handle.stop()

    handle = serve_in_thread(make_config(tmp_path))
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    try:
        replay = client.submit("bench", suite="micro")
        assert replay["job"]["status"] == "done"  # immediately terminal
        assert replay["job"]["cached"] is True
        assert replay["job"]["result"] == first["result"]
        stats = client.stats()["jobs"]
        assert stats["executed"] == 0
        assert stats["served_from_store"] == 1
    finally:
        handle.stop()


# --- results API --------------------------------------------------------------

def test_runs_and_compare_over_http(service):
    a = service.submit("bench", suite="micro")["job"]
    b = service.submit("bench", suite="micro", seed=7)["job"]
    service.wait(a["id"], timeout=120)
    service.wait(b["id"], timeout=120)
    runs = service.runs()
    assert len(runs) == 2
    assert {run["suite"] for run in runs} == {"micro"}
    manifest = service.run(runs[0]["run_id"])
    assert manifest["suite"] == "micro"
    assert manifest["cells"]
    comparison = service.compare(runs[0]["run_id"], runs[1]["run_id"])
    assert comparison["matched_cells"] > 0
    assert "text" in comparison


# --- observability ------------------------------------------------------------

def test_request_log_is_structured_jsonl(tmp_path):
    import json

    handle = serve_in_thread(make_config(tmp_path))
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    job = client.submit("compile", loop=COPY_ADD)["job"]
    client.wait(job["id"], timeout=60)
    handle.stop()

    lines = [
        json.loads(line) for line in
        (tmp_path / "service.log.jsonl").read_text().splitlines()
    ]
    events = [line["event"] for line in lines]
    assert "startup" in events
    assert "job" in events
    assert "shutdown" in events
    http = [line for line in lines if line["event"] == "http"]
    assert any(line["path"] == "/v1/jobs" and line["status"] == 202
               for line in http)
    job_lines = [line for line in lines if line["event"] == "job"]
    assert job_lines[0]["status"] == "done"
    assert job_lines[0]["key"] == job["id"]


def test_stats_exposes_pool_and_store_health(service):
    stats = service.stats()
    assert stats["workers"] == 2
    assert stats["pool"] == {"reaped": 0, "crashed": 0}
    assert stats["store"]["root"].endswith("store")
    assert service.health() is True
