"""Seeded, size-bounded random loop-IR generator.

Every loop this module emits is

* *well-formed*: built through :class:`repro.ir.builder.LoopBuilder` and
  accepted by :func:`repro.ir.validate.validate_loop`;
* *corpus-expressible*: restricted to the subset of the IR the textual
  dialect can represent, so ``parse_loop(loop_to_source(loop))`` is an
  identity and every failing case can be persisted as a ``.loop`` file.

The knobs mirror the stress axes of the paper: recurrence depth
(accumulators and pointer chases bound the Recurrence II), memref
aliasing (few spaces force conservative memory edges and exact affine
distances), latency hints (the boosted-scheduling machinery under test),
and trip counts (the Fig. 7 threshold gate and the fill/drain overhead).

Generation is a pure function of ``(seed, GenConfig)`` — the same pair
always produces the same loop, which is what makes corpus replay and
distributed fuzzing (:mod:`repro.fuzz.runner`) deterministic.
"""

from __future__ import annotations

import dataclasses
import random

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop, TripCountSource
from repro.ir.memref import AccessPattern, LatencyHint, MemRef
from repro.ir.registers import Reg, RegClass


@dataclasses.dataclass(frozen=True)
class GenConfig:
    """Bounds and feature toggles for one generated loop."""

    #: upper bound on body size (loads + ALU ops + stores, pre-HLO)
    max_ops: int = 14
    max_loads: int = 4
    #: accumulator recurrences (``acc = acc op x``) to thread through
    max_recurrences: int = 2
    #: distinct memory spaces; fewer spaces mean more aliasing pressure
    max_spaces: int = 3
    max_stores: int = 2
    allow_chase: bool = True
    allow_predication: bool = False
    trips_choices: tuple[float, ...] = (3.0, 8.0, 50.0, 200.0, 1000.0)

    def to_dict(self) -> dict:
        """JSON-able form (cache-key and manifest material)."""
        d = dataclasses.asdict(self)
        d["trips_choices"] = list(self.trips_choices)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "GenConfig":
        d = dict(d)
        d["trips_choices"] = tuple(d.get("trips_choices", cls.trips_choices))
        return cls(**d)


#: access-pattern weights: mostly affine (the analysable common case),
#: with a tail of the patterns that force conservative dependence edges
_PATTERNS = [
    (AccessPattern.AFFINE, 12),
    (AccessPattern.INVARIANT, 2),
    (AccessPattern.SYMBOLIC_STRIDE, 2),
]

_HINTS = [
    (LatencyHint.NONE, 5),
    (LatencyHint.L2, 3),
    (LatencyHint.L3, 3),
    (LatencyHint.MEM, 1),
]

_INT_BINOPS = ["add", "sub", "and", "or", "xor"]
_FP_BINOPS = ["fadd", "fsub", "fmpy"]


def _weighted(rng: random.Random, pairs):
    total = sum(w for _, w in pairs)
    pick = rng.randrange(total)
    for value, weight in pairs:
        pick -= weight
        if pick < 0:
            return value
    raise AssertionError("unreachable")


def generate_loop(seed: int, config: GenConfig | None = None) -> Loop:
    """The loop for ``(seed, config)`` — deterministic and validated."""
    config = config or GenConfig()
    rng = random.Random(seed)
    b = LoopBuilder()

    n_spaces = rng.randint(1, config.max_spaces)
    spaces = [f"s{i}" for i in range(n_spaces)]
    budget = config.max_ops

    int_vals: list[Reg] = []
    fp_vals: list[Reg] = []

    # --- loads ---------------------------------------------------------
    n_loads = rng.randint(1, min(config.max_loads, budget))
    for i in range(n_loads):
        is_chase = config.allow_chase and rng.random() < 0.10
        if is_chase:
            ref = b.memref(
                f"a{i}",
                pattern=AccessPattern.POINTER_CHASE,
                size=8,
                space=rng.choice(spaces),
            )
            node = b.live_greg(f"node{i}")
            b.load_into("ld8", node, node, ref)
            int_vals.append(node)
        else:
            fp = rng.random() < 0.4
            pattern = _weighted(rng, _PATTERNS)
            size = 8 if fp else rng.choice([4, 8])
            stride = size * rng.choice([1, 1, 2])
            ref = b.memref(
                f"a{i}",
                pattern=pattern,
                stride=stride if pattern is AccessPattern.AFFINE else None,
                size=size,
                is_fp=fp,
                space=rng.choice(spaces),
                offset=stride * rng.randint(0, 3),
            )
            ref.hint = _weighted(rng, _HINTS)
            if ref.hint is not LatencyHint.NONE:
                ref.hint_source = rng.choice(["hlo", "policy"])
            mnemonic = "ldfd" if fp else ("ld8" if size == 8 else "ld4")
            addr = b.live_greg(f"p{i}")
            post = stride if pattern is AccessPattern.AFFINE else None
            value = b.load(mnemonic, addr, ref, post_inc=post)
            (fp_vals if fp else int_vals).append(value)
        budget -= 1

    # --- optional predicate for if-converted ops -----------------------
    qp: Reg | None = None
    if config.allow_predication and int_vals and budget > 1 and rng.random() < 0.5:
        qp = b.cmp(int_vals[0], b.live_greg("bound"))
        budget -= 1

    # --- ALU / FP dataflow ---------------------------------------------
    n_alu = rng.randint(0, max(0, budget - 2))
    for _ in range(n_alu):
        use_fp = fp_vals and (not int_vals or rng.random() < 0.4)
        pred = qp if qp is not None and rng.random() < 0.4 else None
        if use_fp:
            if len(fp_vals) >= 3 and rng.random() < 0.4:
                a, c, d = rng.sample(fp_vals, 3)
                fp_vals.append(b.alu("fma", a, c, d, qual_pred=pred))
            else:
                op = rng.choice(_FP_BINOPS)
                a = rng.choice(fp_vals)
                c = rng.choice(fp_vals)
                fp_vals.append(b.alu(op, a, c, qual_pred=pred))
        elif int_vals:
            roll = rng.random()
            if roll < 0.25:
                op = rng.choice(["adds", "shl", "shr", "shladd"])
                src = rng.choice(int_vals)
                int_vals.append(
                    b.alu_imm(op, src, rng.randint(1, 8), qual_pred=pred)
                )
            elif roll < 0.35:
                src = rng.choice(int_vals)
                int_vals.append(
                    b.alu(rng.choice(["sxt4", "zxt4"]), src, qual_pred=pred)
                )
            else:
                op = rng.choice(_INT_BINOPS)
                a = rng.choice(int_vals)
                c = rng.choice(int_vals)
                int_vals.append(b.alu(op, a, c, qual_pred=pred))
        budget -= 1

    # --- accumulator recurrences (Recurrence II pressure) ---------------
    n_recs = rng.randint(0, config.max_recurrences)
    for r in range(n_recs):
        if budget <= 1:
            break
        use_fp = fp_vals and (not int_vals or rng.random() < 0.5)
        if use_fp:
            acc = b.live_freg(f"facc{r}")
            b.alu_into("fadd", acc, acc, rng.choice(fp_vals))
        elif int_vals:
            acc = b.live_greg(f"acc{r}")
            b.alu_into("add", acc, acc, rng.choice(int_vals))
        else:
            break
        b.mark_live_out(acc)
        budget -= 1

    # --- stores ---------------------------------------------------------
    n_stores = rng.randint(0, config.max_stores)
    for s in range(n_stores):
        if budget <= 0:
            break
        use_fp = bool(fp_vals) and rng.random() < 0.4
        pool = fp_vals if use_fp else int_vals
        if not pool:
            break
        size = 8 if use_fp else rng.choice([4, 8])
        stride = size * rng.choice([1, 2])
        ref = b.memref(
            f"o{s}",
            stride=stride,
            size=size,
            is_fp=use_fp,
            space=rng.choice(spaces),
            offset=stride * rng.randint(0, 3),
        )
        mnemonic = "stfd" if use_fp else ("st8" if size == 8 else "st4")
        b.store(mnemonic, b.live_greg(f"q{s}"), rng.choice(pool), ref,
                post_inc=stride)
        budget -= 1

    # --- aliasing metadata ----------------------------------------------
    if len(spaces) > 1 and rng.random() < 0.25:
        b.independent(rng.choice(spaces))

    trips = rng.choice(list(config.trips_choices))
    max_trips = int(trips * 2) if rng.random() < 0.3 else None
    return b.build(
        f"fz{seed}",
        trips=trips,
        trip_source=rng.choice(
            [TripCountSource.PGO, TripCountSource.PGO, TripCountSource.STATIC_BOUND]
        ),
        max_trips=max_trips,
        contiguous_across_outer=rng.random() < 0.2,
    )


# --- structural identity ---------------------------------------------------

def _reg_token(reg: Reg) -> str:
    return f"{reg.rclass.value}{reg.index}"


def _ref_fingerprint(ref: MemRef) -> dict:
    return {
        "name": ref.name,
        "pattern": ref.pattern.value,
        "size": ref.size,
        "stride": ref.stride,
        "offset": ref.offset,
        "is_fp": ref.is_fp,
        "space": ref.space,
        "index": ref.index_ref.name if ref.index_ref else None,
        "hint": ref.hint.name,
        "hint_source": ref.hint_source,
    }


def loop_fingerprint(loop: Loop) -> dict:
    """A canonical, JSON-able structural description of ``loop``.

    Two loops with equal fingerprints are the same program for every
    consumer in the pipeline; the printer→parser round-trip tests compare
    these (instruction and memref *identities* necessarily change when
    re-parsing, so object equality is the wrong notion).
    """
    return {
        "name": loop.name,
        "trips": loop.trip_count.estimate,
        "trip_source": loop.trip_count.source.value,
        "max_trips": loop.trip_count.max_trips,
        "contig": loop.trip_count.contiguous_across_outer,
        "counted": loop.counted,
        "independent": sorted(loop.independent_spaces),
        "live_in": sorted(_reg_token(r) for r in loop.live_in),
        "live_out": sorted(_reg_token(r) for r in loop.live_out),
        "memrefs": [_ref_fingerprint(ref) for ref in loop.memrefs],
        "body": [
            {
                "op": inst.mnemonic,
                "defs": [_reg_token(r) for r in inst.defs],
                "uses": [_reg_token(r) for r in inst.uses],
                "imm": inst.imm,
                "ref": inst.memref.name if inst.memref else None,
                "post_inc": inst.post_increment,
                "qp": _reg_token(inst.qual_pred) if inst.qual_pred else None,
            }
            for inst in loop.body
        ],
    }


def regclass_of(token: str) -> RegClass:
    """Inverse of :func:`_reg_token`'s class prefix (test helper)."""
    return {"r": RegClass.GR, "f": RegClass.FR, "p": RegClass.PR}[token[0]]
