"""Fig. 7: the headroom experiment (all loads at L3 hints, with PGO).

Sweeps the trip-count threshold n over {0, 8, 16, 32, 64} on both suites
and prints the per-benchmark gain columns plus geomeans.  Shape assertions
follow the paper: losses nearly neutralise gains at n=0, the geomean peaks
around n=16-32, 464.h264ref regresses hard at low thresholds and recovers,
177.mesa's train/ref mismatch loses at every threshold, and the largest
gains land in the benchmarks the paper names.

The sweep runs through :mod:`repro.harness`: all six configs (baseline +
five thresholds) go through one ``run_suite`` grid, so the baseline cells
are computed once and every column shares them via the session artifact
cache; ``REPRO_BENCH_JOBS`` parallelises the cells.
"""

import pytest

from benchmarks.conftest import base_cfg, l3_cfg, run_compare
from repro.core import format_gain_table
from repro.workloads import cpu2000_suite, cpu2006_suite

THRESHOLDS = (0, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def sweep2006(harness_cache, harness_jobs):
    results = run_compare(
        cpu2006_suite(),
        base_cfg(),
        [l3_cfg(n) for n in THRESHOLDS],
        cache=harness_cache,
        workers=harness_jobs,
        suite_name="cpu2006",
    )
    return {f"n={n}": results[l3_cfg(n).label] for n in THRESHOLDS}


@pytest.fixture(scope="module")
def sweep2000(harness_cache, harness_jobs):
    results = run_compare(
        cpu2000_suite(),
        base_cfg(),
        [l3_cfg(n) for n in THRESHOLDS],
        cache=harness_cache,
        workers=harness_jobs,
        suite_name="cpu2000",
    )
    return {f"n={n}": results[l3_cfg(n).label] for n in THRESHOLDS}


def test_fig7_cpu2006(benchmark, record, harness_cache, harness_jobs, sweep2006):
    # re-running one column against the warm cache measures harness overhead
    benchmark.pedantic(
        lambda: run_compare(
            cpu2006_suite(), base_cfg(), [l3_cfg(32)],
            cache=harness_cache, workers=harness_jobs, suite_name="cpu2006",
        ),
        rounds=1, iterations=1,
    )
    record(
        "fig7_headroom_cpu2006",
        format_gain_table(sweep2006, title="Fig 7 (CPU2006, PGO)"),
    )
    geo = {n: sweep2006[f"n={n}"].geomean_gain for n in THRESHOLDS}
    # paper: +0.5 / 1.3 / 2.4 / 2.3 / 2.1 — low at 0, peak near 16-32
    assert geo[0] < geo[16]
    assert geo[32] > 1.0
    assert geo[64] <= geo[32] + 0.2
    # named benchmarks
    g32 = sweep2006["n=32"].gains
    assert g32["429.mcf"] > 4.0
    assert g32["444.namd"] > 6.0
    assert g32["481.wrf"] > 4.0
    # h264ref: hard regression at n=0, rescued by the threshold
    assert sweep2006["n=0"].gains["464.h264ref"] < -10.0
    assert abs(g32["464.h264ref"]) < 0.5


def test_fig7_cpu2000(benchmark, record, sweep2000):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(
        "fig7_headroom_cpu2000",
        format_gain_table(sweep2000, title="Fig 7 (CPU2000, PGO)"),
    )
    geo = {n: sweep2000[f"n={n}"].geomean_gain for n in THRESHOLDS}
    assert geo[0] < geo[32]
    g32 = sweep2000["n=32"].gains
    assert g32["179.art"] > 5.0
    assert g32["200.sixtrack"] > 5.0
    # mesa: the train/ref mismatch defeats every threshold (Sec. 4.2)
    for n in THRESHOLDS:
        assert sweep2000[f"n={n}"].gains["177.mesa"] < -8.0
