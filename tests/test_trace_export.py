"""Tests for the trace exporters: Chrome JSON, ASCII timeline, summaries."""

import json

import pytest

from repro.config import baseline_config
from repro.ir import parse_loop
from repro.machine import ItaniumMachine
from repro.pipeliner import pipeline_loop
from repro.sim.address import StreamSpec
from repro.trace import (
    chrome_trace,
    ascii_timeline,
    merge_trace_summaries,
    trace_simulation,
    trace_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.chrome import OZQ_TID_BASE, STALL_TID
from tests.conftest import RUNNING_EXAMPLE

LAYOUT = {
    "a": StreamSpec(size=1 << 22, reuse=False),
    "b": StreamSpec(size=1 << 22, reuse=False),
}


@pytest.fixture(scope="module")
def traced():
    machine = ItaniumMachine()
    loop = parse_loop(RUNNING_EXAMPLE)
    result = pipeline_loop(loop, machine, baseline_config())
    return trace_simulation(result, machine, LAYOUT, [300], seed=5)


class TestChromeExport:
    def test_exported_trace_validates(self, traced):
        data = chrome_trace(traced.events, label="copy_add")
        assert validate_chrome_trace(data) == []
        assert data["metadata"]["clock"] == "cycles"

    def test_tracks_cover_ports_stalls_and_ozq(self, traced):
        data = chrome_trace(traced.events)
        tids = {e.get("tid") for e in data["traceEvents"] if e["ph"] == "X"}
        assert STALL_TID in tids  # this run stalls
        assert any(tid >= OZQ_TID_BASE for tid in tids)  # OzQ occupancy
        assert any(0 < tid < STALL_TID for tid in tids)  # issue ports
        names = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert any(n.startswith("port-") for n in names)
        assert "stalls" in names

    def test_stall_durations_match_the_analyzer(self, traced):
        data = chrome_trace(traced.events)
        stall_dur = sum(
            e["dur"]
            for e in data["traceEvents"]
            if e["ph"] == "X" and e.get("tid") == STALL_TID
            and e["name"].startswith("stall-on-use")
        )
        assert stall_dur == pytest.approx(
            traced.attribution.stall_on_use_total
        )

    def test_write_round_trips_through_json(self, traced, tmp_path):
        path = write_chrome_trace(tmp_path / "t" / "out.trace.json",
                                  traced.events, label="copy_add")
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []

    @pytest.mark.parametrize("bad, problem", [
        ([], "not an object"),
        ({}, "missing or not an array"),
        ({"traceEvents": []}, "empty"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 1,
                           "ts": -1.0, "dur": 1.0}]}, "bad ts"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 1,
                           "ts": 0.0, "dur": float("nan")}]}, "bad dur"),
        ({"traceEvents": [{"ph": "Z", "name": "x", "pid": 0}]},
         "unsupported phase"),
    ])
    def test_validator_rejects_malformed(self, bad, problem):
        problems = validate_chrome_trace(bad)
        assert any(problem in p for p in problems), problems


class TestAsciiTimeline:
    def test_rows_and_ruler(self, traced):
        text = ascii_timeline(traced.events, width=60)
        lines = text.splitlines()
        assert lines[0].startswith("cycle")
        assert any(line.startswith("port-") for line in lines)
        assert lines[-2].startswith("stall")
        assert lines[-1].startswith("ozq")
        body = lines[1].split()[-1]
        assert len(body) == 60

    def test_window_selection(self, traced):
        late = ascii_timeline(traced.events, start=200.0, width=40)
        assert "200" in late.splitlines()[0]

    def test_rejects_bad_width(self, traced):
        with pytest.raises(ValueError, match="width"):
            ascii_timeline(traced.events, width=0)


class TestSummaries:
    def test_summary_is_json_native(self, traced):
        summary = trace_summary(traced.attribution, traced.check)
        assert summary == json.loads(json.dumps(summary))
        assert summary["ok"] is True
        assert type(summary["coverage"]) is float
        assert type(summary["stall_on_use"]) is float
        assert all(type(k) is str for k in summary["clustering"])

    def test_attribution_report_is_json_native(self, traced):
        report = traced.attribution.to_dict()
        assert report == json.loads(json.dumps(report))

    def test_merge_sums_and_reweighs(self, traced):
        summary = trace_summary(traced.attribution, traced.check)
        merged = merge_trace_summaries([summary, summary])
        assert merged["loops"] == 2
        assert merged["events"] == 2 * summary["events"]
        assert merged["stall_on_use"] == pytest.approx(
            2 * summary["stall_on_use"]
        )
        # equal-weight merge of identical summaries preserves the means
        assert merged["coverage"] == pytest.approx(summary["coverage"])
        assert merged["mean_clustering"] == pytest.approx(
            summary["mean_clustering"]
        )

    def test_merge_of_nothing_is_the_identity_summary(self):
        merged = merge_trace_summaries([])
        assert merged["ok"] is True
        assert merged["loops"] == 0 and merged["coverage"] == 1.0
