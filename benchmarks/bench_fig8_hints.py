"""Fig. 8: FP-loads-L2 default vs HLO-directed hints (with PGO).

Two bars per suite: marking all FP loads with an L2 hint, and the full
HLO-directed hints on top of that default.  The paper reports 1.1%/0.6%
for the default alone and 2.0%/1.3% with HLO hints — "almost twice the
speedup as just the default setting" — with the mesa loss gone and mcf
now gaining through its integer loads.

Both bars come out of one :func:`repro.harness.run_suite` grid sharing
the session artifact cache with the Fig. 7 sweep (the baseline cells are
identical and hit the cache).
"""

import pytest

from benchmarks.conftest import base_cfg, fp_l2_cfg, hlo_cfg, run_compare
from repro.core import format_gain_table
from repro.workloads import cpu2000_suite, cpu2006_suite


@pytest.fixture(scope="module")
def fig8_2006(harness_cache, harness_jobs):
    results = run_compare(
        cpu2006_suite(),
        base_cfg(),
        [fp_l2_cfg(), hlo_cfg()],
        cache=harness_cache,
        workers=harness_jobs,
        suite_name="cpu2006",
    )
    return {
        "fp-l2": results[fp_l2_cfg().label],
        "hlo": results[hlo_cfg().label],
    }


@pytest.fixture(scope="module")
def fig8_2000(harness_cache, harness_jobs):
    results = run_compare(
        cpu2000_suite(),
        base_cfg(),
        [fp_l2_cfg(), hlo_cfg()],
        cache=harness_cache,
        workers=harness_jobs,
        suite_name="cpu2000",
    )
    return {
        "fp-l2": results[fp_l2_cfg().label],
        "hlo": results[hlo_cfg().label],
    }


def test_fig8_cpu2006(benchmark, record, harness_cache, harness_jobs, fig8_2006):
    benchmark.pedantic(
        lambda: run_compare(
            cpu2006_suite(), base_cfg(), [hlo_cfg()],
            cache=harness_cache, workers=harness_jobs, suite_name="cpu2006",
        ),
        rounds=1, iterations=1,
    )
    record(
        "fig8_hints_cpu2006",
        format_gain_table(fig8_2006, title="Fig 8 (CPU2006, PGO)"),
    )
    fp = fig8_2006["fp-l2"]
    hlo = fig8_2006["hlo"]
    # HLO hints roughly double the FP-L2 default's geomean
    assert hlo.geomean_gain > fp.geomean_gain
    assert fp.geomean_gain > 0.3
    assert hlo.geomean_gain > 1.2
    # mcf benefits only once integer loads are hinted (HLO rules)
    assert fp.gains["429.mcf"] == pytest.approx(0.0, abs=0.5)
    assert hlo.gains["429.mcf"] > 8.0
    # the large FP gains are preserved
    assert hlo.gains["444.namd"] > 6.0
    # no substantial regressions remain
    assert min(hlo.gains.values()) > -2.0


def test_fig8_cpu2000(benchmark, record, fig8_2000):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(
        "fig8_hints_cpu2000",
        format_gain_table(fig8_2000, title="Fig 8 (CPU2000, PGO)"),
    )
    fp = fig8_2000["fp-l2"]
    hlo = fig8_2000["hlo"]
    assert hlo.geomean_gain > fp.geomean_gain > 0.2
    assert hlo.gains["200.sixtrack"] > 5.0
    # mesa's headroom loss is gone under the selective hints (Sec. 4.3)
    assert hlo.gains["177.mesa"] == pytest.approx(0.0, abs=0.5)
    assert min(hlo.gains.values()) > -2.0
