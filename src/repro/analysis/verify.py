"""Top-level translation validation: run every analysis over one loop.

This is the entry point the CLI (``python -m repro lint``, ``--verify``)
and the harness use.  It composes the four passes:

* :func:`repro.analysis.irlint.lint_loop` (SA1xx) on the compiled loop
  (after HLO, so inserted prefetches are linted too);
* :func:`repro.analysis.schedverify.verify_schedule` (SA2xx),
* :func:`repro.analysis.kernelverify.verify_kernel` (SA3xx), and
* :func:`repro.analysis.hintcheck.verify_hints` (SA4xx)
  when the loop was actually software-pipelined;
* :func:`repro.analysis.pressure.verify_pressure` and the static
  findings of :mod:`repro.analysis.perfmodel` (SA5xx) for pipelined
  loops — re-derived register pressure plus saturation/stall-exposure
  notes.  The post-simulation SA51x counter cross-checks live in
  :func:`repro.analysis.perfmodel.check_simulation` and run from the
  harness after each cell simulates;
* :func:`repro.analysis.optimality.verify_optimality` (SA6xx) when the
  result came from the exact scheduler — the optimality claim and the
  certified lower bound are re-derived with an independent search.

Loops the driver left sequential (low trip counts, scheduling failures)
only get the IR lint — there is no schedule to validate.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.hintcheck import verify_hints
from repro.analysis.irlint import lint_loop
from repro.analysis.kernelverify import verify_kernel
from repro.analysis.optimality import verify_optimality
from repro.analysis.perfmodel import build_perf_model
from repro.analysis.pressure import verify_pressure
from repro.analysis.schedverify import verify_schedule
from repro.core.compiler import CompiledLoop
from repro.pipeliner.driver import PipelineResult


def verify_result(result: PipelineResult) -> DiagnosticReport:
    """Validate one pipeliner result end to end."""
    report = lint_loop(result.loop)
    if result.pipelined and result.schedule is not None:
        report.extend(verify_schedule(result.schedule, result.stats))
        if result.kernel is not None and result.rotating is not None:
            report.extend(
                verify_kernel(result.kernel, result.schedule, result.rotating)
            )
        report.extend(verify_hints(result.schedule, result.stats))
        report.extend(verify_pressure(result))
        model = build_perf_model(result, result.schedule.machine)
        report.extend(model.static_report())
        if result.stats.scheduler == "optimal":
            report.extend(verify_optimality(result))
    return report


def verify_compiled(compiled: CompiledLoop) -> DiagnosticReport:
    """Validate one compiled loop (the HLO-transformed IR + its schedule)."""
    return verify_result(compiled.result)


def verification_status(report: DiagnosticReport) -> dict:
    """Compact, JSON-serialisable summary for manifests and job payloads."""
    counts = report.counts()
    return {
        "ok": report.ok,
        "errors": counts["error"],
        "warnings": counts["warning"],
        "notes": counts["note"],
        "codes": report.codes(),
    }
