"""Software prefetch planning (Sec. 3.2).

The prefetch distance is "computed generally by applying the formula
``Lat/II_est``, where ``Lat`` is the average memory latency that needs to
be covered and ``II_est`` is the HLO estimate of the initiation interval".
Reductions below that optimum — and outright inability to prefetch — are
exactly the situations in which references get latency-hint candidates:

1. a non-loop-invariant reference that could not be prefetched at all;
2. (a) symbolic strides (TLB pressure caps the distance),
   (b) indirect references (prefetched at a lower distance than their
   index reference, also for TLB reasons);
3. loops with many integer references missing L1 stress the OzQ, so data
   is prefetched into L2 only and those references carry the L2 latency.

The hint *candidates* computed here are applied (or not) by the policy in
:mod:`repro.hlo.hintpass`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import CompilerConfig
from repro.hlo.locality import leading_references, line_groups
from repro.hlo.tripcount import prefetch_lookahead_trips
from repro.ir.instructions import Instruction
from repro.ir.loop import Loop, TripCountInfo
from repro.ir.memref import AccessPattern, LatencyHint, MemRef
from repro.ir.opcodes import opcode
from repro.machine.itanium2 import ItaniumMachine

#: distance cap for symbolic-stride references (rule 2a): each prefetch may
#: touch a new page, so the compiler keeps few pages in flight
SYMBOLIC_STRIDE_DISTANCE_CAP = 2
#: distance cap for the data side of indirect references (rule 2b)
INDIRECT_DISTANCE_CAP = 4
#: number of integer L1-missing references beyond which the prefetcher
#: switches to L2-only prefetching (rule 3, OzQ pressure)
OZQ_PRESSURE_REFS = 4


@dataclass
class PrefetchDecision:
    """What the prefetcher decided for one (leading) memory reference."""

    ref: MemRef
    emitted: bool = False
    distance: int = 0
    optimal_distance: int = 0
    l2_only: bool = False
    #: why the distance was reduced below optimal (None if it was not)
    reduced: str | None = None
    efficiency: float = 0.0

    @property
    def suboptimal(self) -> bool:
        return not self.emitted or self.reduced in ("symbolic", "indirect") or (
            self.l2_only
        )


@dataclass
class PrefetchPlan:
    """All prefetch decisions and the derived hint candidates for a loop."""

    decisions: dict[int, PrefetchDecision] = field(default_factory=dict)
    #: reference uid -> latency hint candidate (Sec. 3.2 marking rules)
    hint_candidates: dict[int, LatencyHint] = field(default_factory=dict)

    def decision_for(self, ref: MemRef) -> PrefetchDecision | None:
        return self.decisions.get(ref.uid)


def _hint_for(ref: MemRef) -> LatencyHint:
    """"An L2 hint is set for integer loads and an L3 hint for FP loads —
    one level lower than the highest cache level where these loads can
    hit (FP loads bypass the L1 cache)." (Sec. 3.2)"""
    return LatencyHint.L3 if ref.is_fp else LatencyHint.L2


def plan_prefetches(
    loop: Loop,
    machine: ItaniumMachine,
    config: CompilerConfig,
    trip_info: TripCountInfo | None = None,
) -> PrefetchPlan:
    """Compute prefetch decisions and hint candidates for ``loop``."""
    trip_info = trip_info or loop.trip_count
    plan = PrefetchPlan()
    leaders = leading_references(loop)
    groups = line_groups(loop)

    ii_est = max(1, machine.resources.resource_ii(loop.body))
    target_lat = config.prefetch_target_latency
    optimal = max(1, math.ceil(target_lat / ii_est))
    lookahead = prefetch_lookahead_trips(
        trip_info, config.default_trip_estimate
    )

    # rule 3 precondition: many integer references that will miss L1
    int_streams = [
        g[0]
        for g in groups
        if not g[0].is_fp
        and g[0].pattern is not AccessPattern.INVARIANT
        and g[0].prefetchable
    ]
    ozq_pressure = len(int_streams) > OZQ_PRESSURE_REFS

    for group in groups:
        leader = group[0]
        decision = PrefetchDecision(ref=leader, optimal_distance=optimal)
        plan.decisions[leader.uid] = decision

        if leader.pattern is AccessPattern.INVARIANT:
            continue  # one access, stays in cache; no prefetch, no hint

        if not leader.prefetchable or not config.prefetch:
            # rule 1: cannot be prefetched at all
            _mark_group(plan, group)
            continue

        distance = optimal
        if leader.pattern is AccessPattern.SYMBOLIC_STRIDE:
            # rule 2a: unknown, possibly large stride -> TLB pressure
            distance = min(distance, SYMBOLIC_STRIDE_DISTANCE_CAP)
            decision.reduced = "symbolic"
            _mark_group(plan, group)
        elif leader.pattern is AccessPattern.INDIRECT:
            # rule 2b: the indirect side gets a lower distance than the
            # index side (whose own decision covers the index array)
            distance = min(distance, INDIRECT_DISTANCE_CAP)
            decision.reduced = "indirect"
            _mark_group(plan, group)

        # trip-count adjustment: at least half the prefetches must be useful
        if math.isfinite(lookahead) and distance > lookahead / 2:
            distance = max(1, int(lookahead // 2))
            if decision.reduced is None:
                decision.reduced = "tripcount"

        if ozq_pressure and not leader.is_fp:
            # rule 3: prefetch into L2 only; reference runs at L2 latency
            decision.l2_only = True
            _mark_group(plan, group, LatencyHint.L2)

        decision.emitted = True
        decision.distance = distance
        covered = distance * ii_est
        decision.efficiency = min(1.0, covered / target_lat)

    return plan


def _mark_group(
    plan: PrefetchPlan, group: list[MemRef], hint: LatencyHint | None = None
) -> None:
    """Attach hint candidates to every reference in a line group."""
    for ref in group:
        candidate = hint if hint is not None else _hint_for(ref)
        current = plan.hint_candidates.get(ref.uid, LatencyHint.NONE)
        if candidate.value > current.value:
            plan.hint_candidates[ref.uid] = candidate


def apply_prefetch_plan(loop: Loop, plan: PrefetchPlan) -> list[Instruction]:
    """Materialise the plan: annotate references and emit lfetch ops.

    The lfetch reuses the leading reference's address register; the
    *distance* (in iterations, i.e. ``distance*stride`` bytes of lookahead)
    is carried on the reference and honoured by the simulator.  Returns
    the inserted instructions.
    """
    inserted: list[Instruction] = []
    addr_by_ref: dict[int, Instruction] = {}
    for inst in loop.body:
        if inst.memref is not None and not inst.is_prefetch:
            addr_by_ref.setdefault(inst.memref.uid, inst)

    for decision in plan.decisions.values():
        ref = decision.ref
        ref.prefetched = decision.emitted
        ref.prefetch_distance = decision.distance
        ref.prefetch_efficiency = decision.efficiency
        ref.prefetch_l2_only = decision.l2_only
        if not decision.emitted:
            continue
        carrier = addr_by_ref.get(ref.uid)
        if carrier is None:
            continue
        lfetch = Instruction(
            opcode("lfetch"),
            defs=(),
            uses=(carrier.uses[0],),
            memref=ref,
        )
        loop.append(lfetch)
        inserted.append(lfetch)
    return inserted
