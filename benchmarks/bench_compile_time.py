"""Sec. 3.3: compile-time cost of latency-tolerant pipelining.

"Latency-tolerant pipelining can, as described, lead to additional modulo
scheduling attempts if the register allocation fails, but the compile time
increase we measured due to this is in the noise range (0.5%)."

This bench times actual compilations of every suite loop under the
baseline and the HLO configuration (real pytest-benchmark timing rounds),
and compares scheduling-attempt counts.
"""

import pytest

from benchmarks.conftest import base_cfg, hlo_cfg
from repro.core.compiler import LoopCompiler
from repro.hlo.profiles import collect_block_profile
from repro.workloads import cpu2006_suite


def _all_loops():
    loops = []
    for bench in cpu2006_suite():
        for lw in bench.loops:
            loops.append(lw)
    return loops


def _compile_suite(machine, cfg):
    compiler = LoopCompiler(machine, cfg)
    attempts = 0
    for lw in _all_loops():
        loop, _ = lw.build()
        profile = collect_block_profile({loop.name: lw.data.train})
        compiled = compiler.compile(loop, profile)
        attempts += compiled.stats.attempts
    return attempts


def test_compile_time_baseline(benchmark, machine):
    attempts = benchmark(_compile_suite, machine, base_cfg())
    assert attempts > 0


def test_compile_time_hlo(benchmark, machine):
    attempts = benchmark(_compile_suite, machine, hlo_cfg())
    assert attempts > 0


def test_attempt_counts(benchmark, record, machine):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base_attempts = _compile_suite(machine, base_cfg())
    hlo_attempts = _compile_suite(machine, hlo_cfg())
    increase = 100.0 * (hlo_attempts / base_attempts - 1.0)
    record(
        "sec33_compile_time",
        (
            f"scheduling attempts, baseline : {base_attempts}\n"
            f"scheduling attempts, HLO hints: {hlo_attempts}\n"
            f"increase: {increase:+.1f}% (paper: compile time +0.5%)"
        ),
    )
    # extra attempts exist but stay moderate
    assert hlo_attempts >= base_attempts
    assert increase < 150.0
