"""Self-determinism lint for the repo's content-addressed paths.

The harness cache, the service protocol and the fuzz runner all promise
*fingerprint identity*: the same inputs produce byte-identical artifacts
and content addresses, across runs, processes and hosts.  That promise
dies silently the moment wall-clock time, an unseeded RNG or unordered
``set`` iteration leaks into anything that feeds a hash.  This AST lint
walks those modules and rejects the constructs outright:

* **ND001** — ``time.time()`` / ``time.time_ns()`` (monotonic and
  ``perf_counter`` clocks are fine: they never feed content, only
  durations);
* **ND002** — ``datetime.now()`` / ``utcnow()`` / ``today()``;
* **ND003** — module-level ``random.*`` calls and ``numpy.random.*``
  convenience functions (seeded generator objects — ``random.Random``,
  ``numpy.random.default_rng`` — are allowed);
* **ND004** — ``uuid.uuid1()`` / ``uuid.uuid4()`` / ``os.urandom()``;
* **ND005** — ``for`` iteration directly over a ``set`` literal, set
  comprehension or ``set(...)`` call (wrap in ``sorted(...)``).

Findings are plain data, not ``Diagnostic`` values: the SAnnn registry
is reserved for compiler-artifact findings, while this lint polices the
repo's own source.  ``python -m repro.analysis.selflint`` exits nonzero
on any finding, which is how CI runs it.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: modules whose behaviour is part of the content-address contract
DEFAULT_TARGETS = (
    "src/repro/harness/cache.py",
    "src/repro/service/protocol.py",
    "src/repro/fuzz/runner.py",
)

_TIME_BANNED = {"time", "time_ns"}
_DATETIME_BANNED = {"now", "utcnow", "today"}
_RANDOM_ALLOWED = {"Random", "SystemRandom", "default_rng", "Generator"}
_UUID_BANNED = {"uuid1", "uuid4"}


@dataclass(frozen=True)
class Finding:
    """One determinism violation at a source location."""

    code: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chains as a dotted string; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(code=code, path=self.path, line=node.lineno, message=message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            parts = name.split(".")
            head, tail = parts[0], parts[-1]
            if head == "time" and tail in _TIME_BANNED:
                self._add(
                    "ND001", node,
                    f"wall-clock {name}() in a content-addressed path; "
                    "use time.perf_counter()/monotonic() for durations",
                )
            elif head == "datetime" and tail in _DATETIME_BANNED:
                self._add(
                    "ND002", node,
                    f"{name}() makes output depend on the wall clock",
                )
            elif head == "random" and tail not in _RANDOM_ALLOWED:
                self._add(
                    "ND003", node,
                    f"module-level {name}() uses the shared unseeded RNG; "
                    "construct a seeded random.Random instead",
                )
            elif (
                len(parts) >= 2
                and parts[-2] == "random"
                and head in {"np", "numpy"}
                and tail not in _RANDOM_ALLOWED
            ):
                self._add(
                    "ND003", node,
                    f"{name}() uses numpy's global RNG; "
                    "use numpy.random.default_rng(seed)",
                )
            elif head == "uuid" and tail in _UUID_BANNED:
                self._add("ND004", node, f"{name}() is nondeterministic")
            elif name in {"os.urandom", "secrets.token_bytes",
                          "secrets.token_hex"}:
                self._add("ND004", node, f"{name}() is nondeterministic")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def _check_set_iter(self, it: ast.AST) -> None:
        is_set = isinstance(it, (ast.Set, ast.SetComp)) or (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in {"set", "frozenset"}
        )
        if is_set:
            self._add(
                "ND005", it,
                "iteration order over a set is unspecified; wrap in sorted()",
            )


def check_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text."""
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(path)
    visitor.visit(tree)
    return visitor.findings


def check_file(path: Path | str) -> list[Finding]:
    path = Path(path)
    return check_source(path.read_text(), str(path))


def check_paths(
    paths=DEFAULT_TARGETS, root: Path | str | None = None
) -> list[Finding]:
    """Lint the given files (repo-relative when ``root`` is given)."""
    base = Path(root) if root is not None else Path(".")
    findings: list[Finding] = []
    for rel in paths:
        findings.extend(check_file(base / rel))
    return findings


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    findings = check_paths(argv or DEFAULT_TARGETS)
    for finding in findings:
        print(finding.format())
    targets = argv or list(DEFAULT_TARGETS)
    print(
        f"selflint: {len(targets)} file(s), {len(findings)} finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
