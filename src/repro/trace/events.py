"""The trace event vocabulary and the sink protocol.

The simulator (:mod:`repro.sim.core`, :mod:`repro.sim.memory`) emits a
structured event stream describing *why* each cycle was spent: operation
issue, stall-on-use with the culprit load instance, OzQ-full stalls,
cache fills with the satisfying level, and prefetch issue/drop.  Emission
is guarded by a :class:`TraceSink`'s interest flags so that a disabled or
:class:`NullSink` run does no per-event work — the hot loops hoist the
flags into local booleans once per invocation, making tracing a handful
of branch tests when off.

Event ``cycle`` fields are simulation cycles (floats, the simulator's
native clock).  Load *instances* are identified by ``(slot, source_iter)``
— the per-loop load slot (see :class:`repro.sim.core.OpExec`) plus the
source-iteration index within the invocation — which is exactly the
granularity Diavastos & Carlson's load-delay tracking argues for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import ClassVar, Protocol, runtime_checkable


@dataclass(slots=True)
class TraceEvent:
    """Base class: every event carries the cycle it happened at."""

    kind: ClassVar[str] = "event"
    cycle: float

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        data.update(asdict(self))
        return data


@dataclass(slots=True)
class OpIssue(TraceEvent):
    """An operation issued (after its stall-on-use waits resolved)."""

    kind: ClassVar[str] = "issue"
    tag: str
    row: int
    stage: int
    kernel_iter: int
    source_iter: int
    op_kind: str  #: "load" | "store" | "prefetch" | "alu"


@dataclass(slots=True)
class UseStall(TraceEvent):
    """Stall-on-use: ``consumer`` waited on load instance
    ``(slot, source_iter)`` for ``wait`` cycles.  ``cycle`` is the stall
    *start*; ``inflight`` is the number of OzQ requests still outstanding
    at that moment — the paper's clustering factor k (Sec. 2.1): one
    stall shadows the remaining latency of all of them."""

    kind: ClassVar[str] = "stall"
    consumer: str
    slot: int
    source_iter: int
    wait: float
    inflight: int


@dataclass(slots=True)
class UseReady(TraceEvent):
    """A load-consuming operand check that did *not* stall: the load
    instance ``(slot, source_iter)`` was already complete — its latency
    was fully covered by the schedule (Sec. 3.1)."""

    kind: ClassVar[str] = "use"
    consumer: str
    slot: int
    source_iter: int


@dataclass(slots=True)
class OzqStall(TraceEvent):
    """A demand access found the OzQ full and waited ``wait`` cycles for
    the oldest entry to drain (``BE_L1D_FPU_BUBBLE``)."""

    kind: ClassVar[str] = "ozq-stall"
    tag: str
    wait: float


@dataclass(slots=True)
class OzqFull(TraceEvent):
    """The OzQ sat at capacity for ``duration`` wall-clock cycles
    starting at ``cycle`` (the ``L2D_OZQ_FULL`` counter's semantics)."""

    kind: ClassVar[str] = "ozq-full"
    duration: float


@dataclass(slots=True)
class LoadIssue(TraceEvent):
    """A demand load accessed the hierarchy: which level satisfied it,
    the end-to-end latency, and whether it holds an OzQ entry."""

    kind: ClassVar[str] = "load"
    tag: str
    slot: int
    source_iter: int
    ref: str
    addr: int
    level: int
    latency: float
    occupies_ozq: bool


@dataclass(slots=True)
class StoreIssue(TraceEvent):
    """A store accessed the hierarchy."""

    kind: ClassVar[str] = "store"
    tag: str
    ref: str
    addr: int
    level: int
    latency: float
    occupies_ozq: bool


@dataclass(slots=True)
class PrefetchIssue(TraceEvent):
    """An ``lfetch`` was issued to the hierarchy."""

    kind: ClassVar[str] = "prefetch"
    tag: str
    ref: str
    addr: int
    level: int
    latency: float
    occupies_ozq: bool


@dataclass(slots=True)
class PrefetchDrop(TraceEvent):
    """An ``lfetch`` was discarded: ``"ozq-full"`` (hardware drops hints
    when the queue is full) or ``"stream-end"`` (prefetch distance ran
    past the address stream)."""

    kind: ClassVar[str] = "prefetch-drop"
    tag: str
    reason: str


@dataclass(slots=True)
class CacheFill(TraceEvent):
    """One hierarchy access resolved by :class:`repro.sim.memory
    .MemorySystem`: the satisfying level and the resulting latency.
    ``access`` is ``"load"``/``"store"``/``"prefetch"``."""

    kind: ClassVar[str] = "fill"
    access: str
    addr: int
    level: int
    latency: float


@runtime_checkable
class TraceSink(Protocol):
    """Receives trace events; the four flags gate emission categories.

    * ``wants_issues`` — :class:`OpIssue` per executed operation;
    * ``wants_uses``   — :class:`UseReady` (non-stalling operand checks);
    * ``wants_stalls`` — :class:`UseStall`, :class:`OzqStall`,
      :class:`OzqFull` (required for closed stall accounting);
    * ``wants_memory`` — :class:`LoadIssue`, :class:`StoreIssue`,
      :class:`PrefetchIssue`, :class:`PrefetchDrop`, :class:`CacheFill`.
    """

    wants_issues: bool
    wants_uses: bool
    wants_stalls: bool
    wants_memory: bool

    def emit(self, event: TraceEvent) -> None: ...


class NullSink:
    """Wants nothing, discards everything — the zero-cost baseline.

    With a ``NullSink`` attached the simulator's hoisted interest flags
    are all ``False``, so per-event work never happens; the residual cost
    is a few branch tests per operation (<5% on the micro suite, see
    ``benchmarks/bench_trace_overhead.py``).
    """

    wants_issues = False
    wants_uses = False
    wants_stalls = False
    wants_memory = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never called
        pass


class CountingSink:
    """Counts events per kind and totals stall cycles; stores nothing."""

    wants_issues = True
    wants_uses = True
    wants_stalls = True
    wants_memory = True

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.stall_cycles = 0.0
        self.ozq_stall_cycles = 0.0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if kind == "stall":
            self.stall_cycles += event.wait
        elif kind == "ozq-stall":
            self.ozq_stall_cycles += event.wait


class RingBufferSink:
    """Keeps the last ``capacity`` events (flight-recorder mode) plus a
    total count, so long runs stay bounded in memory."""

    wants_issues = True
    wants_uses = True
    wants_stalls = True
    wants_memory = True

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self.buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.total = 0

    @property
    def dropped(self) -> int:
        return self.total - len(self.buffer)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self.buffer)

    def emit(self, event: TraceEvent) -> None:
        self.total += 1
        self.buffer.append(event)


class CaptureSink:
    """Keeps every event — full-fidelity capture for the exporters."""

    wants_issues = True
    wants_uses = True
    wants_stalls = True
    wants_memory = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    @property
    def total(self) -> int:
        return len(self.events)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)


class TeeSink:
    """Fans one event stream out to several sinks.

    The tee's interest flags are the union of its children's, so a child
    may receive categories it did not ask for — children must ignore
    kinds they don't handle (all the sinks here do).
    """

    def __init__(self, *sinks: TraceSink) -> None:
        if not sinks:
            raise ValueError("TeeSink needs at least one sink")
        self.sinks = sinks
        self.wants_issues = any(s.wants_issues for s in sinks)
        self.wants_uses = any(s.wants_uses for s in sinks)
        self.wants_stalls = any(s.wants_stalls for s in sinks)
        self.wants_memory = any(s.wants_memory for s in sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)
