"""The service request schema: validation and canonical content keys.

Every job the service accepts — ``compile``, ``simulate``, ``trace``,
``fuzz``, ``bench`` — is a JSON object.  :func:`normalize_request`
validates it against the per-kind schema, fills defaults, rejects unknown
fields, and returns the *canonical* form; :func:`request_key` hashes that
canonical form to the same SHA-256 content address the harness cache
uses.  Canonicalisation is what makes dedup and batching sound:

* two textually different submissions of the same work (field order,
  defaults spelled out or omitted, sizes as ``"64M"`` vs ``67108864``)
  normalise to the same canonical dict and therefore the same key, so
  they coalesce onto one computation / one stored artifact;
* only *result-determining* fields are admitted into the schema at all —
  execution hints like worker counts are a server concern, never part of
  a request — so a key equality really does imply result equality (the
  whole pipeline is deterministic).

The entire deterministic-pipeline argument from PR 1 carries over: a
cache hit on a request key is behaviour-preserving, which is why the
service can serve repeated traffic without touching a worker.
"""

from __future__ import annotations

from repro.config import SCHEDULERS, HintPolicy
from repro.errors import ServiceError
from repro.harness.cache import hash_key
from repro.machine import machine_names

#: bump when the request schema or result payloads change incompatibly
#: (part of every request key, so stale stored results become misses)
SCHEMA_VERSION = 3

JOB_KINDS = ("compile", "simulate", "trace", "fuzz", "bench")
SUITES = ("cpu2006", "cpu2000", "micro")
POLICIES = tuple(policy.value for policy in HintPolicy)
INJECT_MODES = ("none", "drop-edge")
#: registered machine models; unlike ``backend`` the machine *determines*
#: the result, so it stays in the canonical form and the request key
MACHINES = tuple(machine_names())
#: simulator backend choices; "" = the session default.  The backend is
#: an execution hint, not a result-determining field — both backends are
#: bit-identical — so :func:`request_key` strips it before hashing and
#: cached results are shared across backends.
BACKENDS = ("", "interp", "fast")

#: request body size cap mirrored by the HTTP layer
MAX_LOOP_BYTES = 1 << 20

_SIZE_SUFFIXES = (
    ("kb", 1 << 10), ("mb", 1 << 20), ("gb", 1 << 30),
    ("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30),
)


def _bad(field: str, message: str) -> ServiceError:
    return ServiceError(f"invalid request: {field}: {message}", status=400)


def _str(payload: dict, field: str, default: str | None = None) -> str:
    value = payload.get(field, default)
    if not isinstance(value, str) or not value.strip():
        raise _bad(field, "expected a non-empty string")
    return value


def _int(payload: dict, field: str, default: int, *, lo: int, hi: int) -> int:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(field, f"expected an integer, got {value!r}")
    if not lo <= value <= hi:
        raise _bad(field, f"must be in [{lo}, {hi}], got {value}")
    return value


def _bool(payload: dict, field: str, default: bool) -> bool:
    value = payload.get(field, default)
    if not isinstance(value, bool):
        raise _bad(field, f"expected a boolean, got {value!r}")
    return value


def _choice(payload: dict, field: str, default: str | None,
            choices: tuple[str, ...]) -> str:
    value = payload.get(field, default)
    if value not in choices:
        raise _bad(field, f"expected one of {', '.join(choices)}, "
                          f"got {value!r}")
    return value


def _size(field: str, value) -> int:
    """An integer byte count, or a ``"64M"``-style suffixed string."""
    if isinstance(value, bool):
        raise _bad(field, f"expected a size, got {value!r}")
    if isinstance(value, int):
        size = value
    elif isinstance(value, str):
        text = value.strip().lower()
        factor = 1
        for suffix, suffix_factor in _SIZE_SUFFIXES:
            if text.endswith(suffix):
                factor = suffix_factor
                text = text[: -len(suffix)]
                break
        try:
            size = int(float(text) * factor)
        except ValueError:
            raise _bad(field, f"unparsable size {value!r}") from None
    else:
        raise _bad(field, f"expected a size, got {value!r}")
    if size <= 0:
        raise _bad(field, f"size must be positive, got {size}")
    return size


def _reject_unknown(kind: str, payload: dict, known: set[str]) -> None:
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ServiceError(
            f"invalid request: unknown field(s) for {kind!r}: "
            f"{', '.join(unknown)} (accepted: {', '.join(sorted(known))})",
            status=400,
        )


def _loop_text(payload: dict) -> str:
    loop = _str(payload, "loop")
    if len(loop.encode("utf-8", "replace")) > MAX_LOOP_BYTES:
        raise _bad("loop", f"loop text exceeds {MAX_LOOP_BYTES} bytes")
    return loop


def _config_fields(payload: dict) -> dict:
    return {
        "policy": _choice(payload, "policy", "hlo", POLICIES),
        "threshold": _int(payload, "threshold", 32, lo=0, hi=1_000_000),
        "pgo": _bool(payload, "pgo", True),
        "prefetch": _bool(payload, "prefetch", True),
        # result-determining: the exact scheduler can produce different
        # schedules (and optimality metadata) than the heuristic, so the
        # scheduler stays in the canonical form and the request key
        "scheduler": _choice(payload, "scheduler", "heuristic", SCHEDULERS),
    }


_CONFIG_KEYS = {"policy", "threshold", "pgo", "prefetch", "scheduler"}


def _machine(payload: dict) -> str:
    """The machine-model name, validated against the registry."""
    return _choice(payload, "machine", "itanium2", MACHINES)


def _normalize_compile(payload: dict) -> dict:
    _reject_unknown(
        "compile", payload, {"loop", "verify", "machine"} | _CONFIG_KEYS
    )
    return {
        "loop": _loop_text(payload),
        **_config_fields(payload),
        "machine": _machine(payload),
        "verify": _bool(payload, "verify", False),
    }


def _normalize_spaces(payload: dict) -> dict:
    spaces = payload.get("spaces", {})
    if not isinstance(spaces, dict):
        raise _bad("spaces", "expected {name: {size, reuse}}")
    canonical = {}
    for name in sorted(spaces):
        spec = spaces[name]
        if isinstance(spec, (int, str)):  # shorthand: "a": "64M"
            spec = {"size": spec}
        if not isinstance(spec, dict):
            raise _bad(f"spaces.{name}", "expected {size, reuse}")
        _reject_unknown(f"spaces.{name}", spec, {"size", "reuse"})
        canonical[name] = {
            "size": _size(f"spaces.{name}.size", spec.get("size")),
            "reuse": _bool(spec, "reuse", True),
        }
    return canonical


def _normalize_simulate(payload: dict, kind: str = "simulate") -> dict:
    known = {"loop", "trips", "invocations", "spaces", "seed",
             "machine"} | _CONFIG_KEYS
    if kind == "simulate":  # traced runs pin the interpreter
        known.add("backend")
    _reject_unknown(kind, payload, known)
    canonical = {
        "loop": _loop_text(payload),
        **_config_fields(payload),
        "machine": _machine(payload),
        "trips": _int(payload, "trips", 1000, lo=1, hi=10_000_000),
        "invocations": _int(payload, "invocations", 1, lo=1, hi=100_000),
        "spaces": _normalize_spaces(payload),
        "seed": _int(payload, "seed", 11, lo=0, hi=2**31 - 1),
    }
    if kind == "simulate":
        canonical["backend"] = _choice(payload, "backend", "", BACKENDS)
    return canonical


def _normalize_trace(payload: dict) -> dict:
    return _normalize_simulate(payload, kind="trace")


def _normalize_fuzz(payload: dict) -> dict:
    _reject_unknown(
        "fuzz", payload,
        {"cases", "seed", "max_ops", "inject", "shrink", "machine"},
    )
    return {
        "cases": _int(payload, "cases", 100, lo=1, hi=100_000),
        "seed": _int(payload, "seed", 0, lo=0, hi=2**31 - 1),
        "max_ops": _int(payload, "max_ops", 14, lo=2, hi=64),
        "inject": _choice(payload, "inject", "none", INJECT_MODES),
        "shrink": _bool(payload, "shrink", True),
        "machine": _machine(payload),
    }


def _normalize_bench(payload: dict) -> dict:
    _reject_unknown(
        "bench", payload,
        {"suite", "benchmarks", "configs", "seed", "verify", "trace",
         "backend", "machine"}
        | _CONFIG_KEYS - {"policy"},
    )
    suite = _choice(payload, "suite", None, SUITES)
    benchmarks = payload.get("benchmarks")
    if benchmarks is not None:
        if (not isinstance(benchmarks, list) or not benchmarks
                or not all(isinstance(b, str) and b for b in benchmarks)):
            raise _bad("benchmarks", "expected a non-empty list of names")
        benchmarks = sorted(set(benchmarks))
    configs = payload.get("configs", ["hlo"])
    if not isinstance(configs, list) or not configs:
        raise _bad("configs", "expected a non-empty list of policies")
    for policy in configs:
        if policy not in POLICIES:
            raise _bad("configs", f"unknown policy {policy!r} "
                                  f"(expected {', '.join(POLICIES)})")
    return {
        "suite": suite,
        "benchmarks": benchmarks,
        "configs": sorted(set(configs)),
        "threshold": _int(payload, "threshold", 32, lo=0, hi=1_000_000),
        "pgo": _bool(payload, "pgo", True),
        "prefetch": _bool(payload, "prefetch", True),
        "scheduler": _choice(payload, "scheduler", "heuristic", SCHEDULERS),
        "seed": _int(payload, "seed", 2008, lo=0, hi=2**31 - 1),
        "machine": _machine(payload),
        "verify": _bool(payload, "verify", False),
        "trace": _bool(payload, "trace", False),
        "backend": _choice(payload, "backend", "", BACKENDS),
    }


_NORMALIZERS = {
    "compile": _normalize_compile,
    "simulate": _normalize_simulate,
    "trace": _normalize_trace,
    "fuzz": _normalize_fuzz,
    "bench": _normalize_bench,
}


def normalize_request(kind: str, payload: dict) -> dict:
    """Validate ``payload`` for ``kind`` and return its canonical form.

    Raises :class:`ServiceError` (status 400) on an unknown kind, an
    unknown field, or an out-of-range value.  The canonical form is
    JSON-serialisable, has every default filled in, and is byte-stable
    under :func:`repro.harness.cache.hash_key` — the property the
    in-flight dedup and the artifact store rely on.
    """
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"invalid request: unknown job kind {kind!r} "
            f"(expected one of {', '.join(JOB_KINDS)})",
            status=400,
        )
    if not isinstance(payload, dict):
        raise ServiceError(
            f"invalid request: expected a JSON object, got {payload!r}",
            status=400,
        )
    return _NORMALIZERS[kind](payload)


def request_key(kind: str, canonical: dict) -> str:
    """The content address of one canonical request.

    This is the job id, the dedup key, and the artifact-store key, all in
    one: the SHA-256 of the canonical JSON (plus the schema version, so a
    schema change invalidates stored results instead of mis-serving them).

    The ``backend`` field is stripped before hashing: the interpreter and
    the fast replayer are bit-identical, so a stored result satisfies a
    resubmission under either backend — the choice is provenance, never
    content.  The ``machine`` field is NOT stripped: different machine
    models produce different cycles, so each machine addresses its own
    stored artifact.
    """
    return hash_key({
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "request": {k: v for k, v in canonical.items() if k != "backend"},
    })


def describe_request(kind: str, canonical: dict) -> str:
    """A short human label for logs and job listings."""
    if kind == "bench":
        extent = canonical["suite"]
        if canonical["benchmarks"]:
            extent += f"[{len(canonical['benchmarks'])}]"
        return f"bench:{extent}:{'+'.join(canonical['configs'])}"
    if kind == "fuzz":
        return f"fuzz:{canonical['cases']}@{canonical['seed']}"
    if kind in ("compile", "simulate", "trace"):
        first = canonical["loop"].strip().splitlines()[0][:40]
        return f"{kind}:{canonical['policy']}:{first}"
    return kind  # pragma: no cover - exhaustive over JOB_KINDS
