# The paper's running example (Fig. 1/6): load, add, store over two
# affine streams.  Compile / validate with
#   python -m repro compile examples/loops/copy_add.s --policy all-loads-l3 -n 0
#   python -m repro lint examples/loops/copy_add.s
memref A affine stride=4 space=a
memref B affine stride=4 space=b

loop copy_add trips=200 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
