"""Lower bounds on the initiation interval (Sec. 1.1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddg.cycles import (
    RecurrenceCycle,
    enumerate_recurrence_cycles,
    recurrence_ii,
)
from repro.ddg.graph import DDG
from repro.machine.itanium2 import ItaniumMachine


@dataclass(frozen=True)
class IIBounds:
    """Resource and recurrence lower bounds for one loop."""

    res_ii: int
    rec_ii: int
    cycles: tuple[RecurrenceCycle, ...]

    @property
    def min_ii(self) -> int:
        return max(self.res_ii, self.rec_ii, 1)


def compute_bounds(ddg: DDG, machine: ItaniumMachine) -> IIBounds:
    """Resource II from the machine model, Recurrence II at base latencies.

    "Initially, when the Recurrence II is computed, the pipeliner always
    requests the base latencies." (Sec. 3.3)
    """
    res_ii = machine.resources.resource_ii(ddg.loop.body)
    cycles = enumerate_recurrence_cycles(ddg)
    rec_ii = recurrence_ii(ddg, machine.latency_query, cycles=cycles)
    return IIBounds(res_ii=res_ii, rec_ii=rec_ii, cycles=tuple(cycles))
