"""Modulo reservation table (MRT).

Tracks per-row (cycle mod II) occupancy of execution resources.  An
operation placed at schedule time ``t`` occupies resources in row
``t mod II`` of *every* kernel iteration, which is exactly what the MRT
enforces.  ``A``-type operations may take an I or an M slot; the table
records which one was chosen so removal frees the right resource.  One
B-port slot and one issue slot in the last row are reserved for the
implicit ``br.ctop``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Instruction
from repro.ir.opcodes import UnitClass
from repro.machine.resources import ResourceModel


@dataclass
class _Row:
    used: dict[UnitClass, int]
    issue: int


class ModuloReservationTable:
    """Resource occupancy for one candidate II."""

    def __init__(self, ii: int, resources: ResourceModel) -> None:
        if ii < 1:
            raise ValueError(f"II must be >= 1, got {ii}")
        self.ii = ii
        self.resources = resources
        self._rows = [
            _Row(used={u: 0 for u in UnitClass if u in resources.capacities}, issue=0)
            for _ in range(ii)
        ]
        # reserve the loop branch in the last row
        self._rows[ii - 1].used[UnitClass.B] += 1
        self._rows[ii - 1].issue += 1
        #: inst -> (row, concrete unit class charged)
        self._placed: dict[Instruction, tuple[int, UnitClass]] = {}

    # --- queries ---------------------------------------------------------
    def row_of(self, time: int) -> int:
        return time % self.ii

    def _unit_choices(self, inst: Instruction) -> tuple[UnitClass, ...]:
        unit = inst.opcode.unit
        if unit is UnitClass.A:
            return (UnitClass.I, UnitClass.M)
        if unit is UnitClass.NONE:
            return ()
        return (unit,)

    def fits(self, inst: Instruction, time: int) -> bool:
        """Whether ``inst`` can be placed at ``time`` given current occupancy."""
        row = self._rows[self.row_of(time)]
        if row.issue >= self.resources.issue_width:
            return False
        choices = self._unit_choices(inst)
        if not choices:
            return True
        return any(
            row.used[u] < self.resources.capacities[u] for u in choices
        )

    def place(self, inst: Instruction, time: int) -> None:
        if inst in self._placed:
            raise ValueError(f"{inst!r} already placed")
        if not self.fits(inst, time):
            raise ValueError(f"no resources for {inst!r} at t={time}")
        r = self.row_of(time)
        row = self._rows[r]
        charged = UnitClass.NONE
        for u in self._unit_choices(inst):
            if row.used[u] < self.resources.capacities[u]:
                row.used[u] += 1
                charged = u
                break
        row.issue += 1
        self._placed[inst] = (r, charged)

    def remove(self, inst: Instruction) -> None:
        r, charged = self._placed.pop(inst)
        row = self._rows[r]
        if charged is not UnitClass.NONE:
            row.used[charged] -= 1
        row.issue -= 1

    def occupants_of_row(self, row: int) -> list[Instruction]:
        return [inst for inst, (r, _) in self._placed.items() if r == row]

    def conflicting_unit(self, inst: Instruction) -> tuple[UnitClass, ...]:
        """Unit classes whose occupants could block ``inst``."""
        choices = self._unit_choices(inst)
        if not choices:
            return tuple(self.resources.capacities)
        expanded: set[UnitClass] = set(choices)
        # A-type occupants holding I or M slots also compete
        return tuple(expanded)

    def __contains__(self, inst: Instruction) -> bool:
        return inst in self._placed

    def __len__(self) -> int:
        return len(self._placed)
