"""Tests for the textual loop parser."""

import pytest

from repro.errors import ParseError
from repro.ir import parse_loop
from repro.ir.memref import AccessPattern
from repro.ir.registers import RegClass


class TestParser:
    def test_running_example(self):
        loop = parse_loop(
            """
            memref A affine stride=4
            memref B affine stride=4
            loop copy_add trips=200 source=pgo
              ld4 r4 = [r5], 4 !A
              add r7 = r4, r9
              st4 [r6] = r7, 4 !B
            """
        )
        assert loop.name == "copy_add"
        assert len(loop.body) == 3
        assert loop.trip_count.estimate == 200.0
        ld, add, st = loop.body
        assert ld.is_load and ld.post_increment == 4
        assert ld.memref.name == "A"
        assert add.defs[0].index == 7
        assert st.is_store and st.memref.name == "B"

    def test_memref_patterns(self):
        loop = parse_loop(
            """
            memref H chase size=8 space=heap
            loop walk
              ld8 r1 = [r1] !H
            """
        )
        ref = loop.body[0].memref
        assert ref.pattern is AccessPattern.POINTER_CHASE
        assert ref.size == 8
        assert ref.space == "heap"

    def test_indirect_memref_links_index(self):
        loop = parse_loop(
            """
            memref I affine stride=4
            memref D indirect index=I
            loop g
              ld4 r2 = [r1], 4 !I
              shladd r3 = r2, r9
              ld4 r4 = [r3] !D
              add r5 = r4, r8
              st4 [r6] = r5, 4 !I
            """
        )
        data = loop.body[2].memref
        assert data.pattern is AccessPattern.INDIRECT
        assert data.index_ref is loop.body[0].memref

    def test_qualifying_predicate(self):
        loop = parse_loop(
            """
            memref A affine stride=4
            loop p
              cmp p1 = r2, r3
              (p1) ld4 r4 = [r5], 4 !A
              add r6 = r4, r2
            """
        )
        assert loop.body[1].qual_pred is not None
        assert loop.body[1].qual_pred.rclass is RegClass.PR

    def test_fp_instructions(self):
        loop = parse_loop(
            """
            memref X affine stride=8 size=8 fp
            loop f
              ldfd f1 = [r1], 8 !X
              fma f4 = f1, f2, f3
              stfd [r2] = f4, 8 !X
            """
        )
        assert loop.body[0].is_fp
        assert loop.body[1].mnemonic == "fma"

    def test_immediate_operand(self):
        loop = parse_loop(
            """
            memref A affine stride=4
            loop imm
              ld4 r1 = [r2], 4 !A
              adds r3 = r1, 16
              st4 [r4] = r3, 4 !A
            """
        )
        assert loop.body[1].imm == 16

    def test_comments_and_blank_lines(self):
        loop = parse_loop(
            """
            # header comment
            memref A affine stride=4

            loop c  # trailing comment
              ld4 r1 = [r2], 4 !A   # load
              add r3 = r1, r4
            """
        )
        assert len(loop.body) == 2

    def test_unknown_memref_rejected(self):
        with pytest.raises(ParseError, match="unknown memref"):
            parse_loop("loop x\n  ld4 r1 = [r2] !Z")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ParseError, match="unknown opcode"):
            parse_loop("loop x\n  bogus r1 = r2")

    def test_instruction_before_header_rejected(self):
        with pytest.raises(ParseError, match="before loop header"):
            parse_loop("add r1 = r2, r3")

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError, match="no loop header"):
            parse_loop("memref A affine stride=4")

    def test_empty_loop_rejected(self):
        with pytest.raises(ParseError, match="no instructions"):
            parse_loop("loop empty")

    def test_malformed_load_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("memref A affine\nloop x\n  ld4 r1, r2 !A")

    def test_line_numbers_in_errors(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_loop("memref A affine stride=4\nloop x\n  ld4 r1 = [r2] !Q")
