# Indirect gather: an index stream drives a data-dependent load
# (the namd/art archetype — prefetchable only at reduced distance,
# Sec. 3.2 rule 2b).
memref IDX affine stride=4 space=idx
memref DATA indirect size=8 space=data index=IDX

loop gather trips=500 source=pgo
  ld4 r4 = [r5], 4 !IDX
  shladd r7 = r4, r8
  ld8 r9 = [r7] !DATA
  add r10 = r9, r10
  st8 [r6] = r10, 8 !DATA
