"""The service acceptance criterion: HTTP runs ≡ local runs, bit for bit.

A suite submitted over HTTP must produce a manifest bit-identical (same
content fingerprint, same cells) to a local ``repro bench`` — serial,
parallel, and cache-hit replay — and a repeated submission must be served
entirely from the shared artifact store with zero worker executions.
"""

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.harness import RunManifest, run_suite
from repro.service import ServerConfig, ServiceClient, serve_in_thread
from repro.workloads import micro_suite


def local_micro_run(tmp_path, *, workers, cache=None):
    """What ``repro bench --suite micro`` computes, as the service does."""
    base = baseline_config(pgo=True, prefetch=True)
    variant = CompilerConfig(
        hint_policy=HintPolicy.HLO, trip_count_threshold=32,
        pgo=True, prefetch=True,
    )
    return run_suite(
        micro_suite(),
        [base, variant],
        seed=2008,
        workers=workers,
        cache=cache,
        suite_name="micro",
    )


@pytest.fixture(scope="module")
def http_run(tmp_path_factory):
    """One micro suite over HTTP: (manifest dict, fingerprint, store dir)."""
    tmp_path = tmp_path_factory.mktemp("service")
    handle = serve_in_thread(ServerConfig(
        port=0,
        workers=2,
        cache_dir=str(tmp_path / "store"),
        runs_dir=str(tmp_path / "runs"),
        log_path=str(tmp_path / "log.jsonl"),
    ))
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    job = client.submit("bench", suite="micro")["job"]
    record = client.wait(job["id"], timeout=300)
    assert record["status"] == "done"
    executed = client.stats()["jobs"]["executed"]
    handle.stop()
    assert executed == 1
    return record["result"], tmp_path


def test_http_manifest_matches_local_serial_run(http_run, tmp_path):
    result, _service_tmp = http_run
    local = local_micro_run(tmp_path, workers=1)
    assert result["fingerprint"] == local.manifest.fingerprint()
    # cell-level bit-identity, not just digest equality
    http_manifest = RunManifest.from_dict(result["manifest"])
    local_cells = {
        (c.benchmark, c.config): (c.total_cycles, c.loop_cycles,
                                  c.serial_cycles, c.status)
        for c in local.manifest.cells
    }
    http_cells = {
        (c.benchmark, c.config): (c.total_cycles, c.loop_cycles,
                                  c.serial_cycles, c.status)
        for c in http_manifest.cells
    }
    assert http_cells == local_cells


def test_http_manifest_matches_local_parallel_run(http_run, tmp_path):
    result, _service_tmp = http_run
    local = local_micro_run(tmp_path, workers=2)
    assert result["fingerprint"] == local.manifest.fingerprint()


def test_http_manifest_matches_local_cache_hit_replay(http_run, tmp_path):
    from repro.harness import ArtifactCache

    result, _service_tmp = http_run
    cache = ArtifactCache(tmp_path / "cache")
    cold = local_micro_run(tmp_path, workers=1, cache=cache)
    warm = local_micro_run(tmp_path, workers=1, cache=cache)
    assert warm.manifest.cache_hits == len(warm.manifest.cells)
    assert cold.manifest.fingerprint() == warm.manifest.fingerprint()
    assert result["fingerprint"] == warm.manifest.fingerprint()


def test_second_http_submission_is_served_without_workers(http_run):
    result, service_tmp = http_run
    # a fresh server over the same store: nothing left to compute
    handle = serve_in_thread(ServerConfig(
        port=0,
        workers=2,
        cache_dir=str(service_tmp / "store"),
        runs_dir=str(service_tmp / "runs2"),
        log_path=str(service_tmp / "log2.jsonl"),
    ))
    client = ServiceClient(handle.url)
    client.wait_until_ready()
    try:
        replay = client.submit("bench", suite="micro")
        assert replay["job"]["status"] == "done"
        assert replay["job"]["cached"] is True
        assert replay["job"]["result"]["fingerprint"] == \
            result["fingerprint"]
        assert replay["job"]["result"]["manifest"] == result["manifest"]
        stats = client.stats()["jobs"]
        assert stats["executed"] == 0  # zero worker executions
        assert stats["served_from_store"] == 1
    finally:
        handle.stop()


def test_manifest_fingerprint_ignores_provenance_only(tmp_path):
    run_a = local_micro_run(tmp_path, workers=1)
    manifest = run_a.manifest
    twin = RunManifest.from_dict(manifest.to_dict())
    twin.run_id = "different-run-id"
    twin.started_utc = "19700101T000000Z"
    twin.workers = 99
    assert twin.fingerprint() == manifest.fingerprint()
    # but the measured content does bind the digest
    twin.cells[0].total_cycles += 1.0
    assert twin.fingerprint() != manifest.fingerprint()
