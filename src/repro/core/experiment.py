"""Suite-level experiments: baseline vs variant, gains, geomean.

The harness mirrors the paper's methodology (Sec. 4.1): each benchmark is
"run by itself", the percentage gain over the baseline compiler is
reported per benchmark, and suites are summarised by the geometric mean of
the runtime ratios.

Determinism guarantees that percentage differences are pure compiler
effects: for one benchmark, the per-invocation trip counts, address
streams and dataset seeds are identical across configurations.

The per-cell run logic lives in :mod:`repro.harness.jobs` as pure
functions; :class:`Experiment` is the convenient in-process driver that
memoises profiles, serial anchors and finished results across calls.  For
parallel or disk-cached sweeps use :func:`repro.harness.run_suite`, which
executes the same job functions and produces bit-identical results.
"""

from __future__ import annotations

from repro.config import CompilerConfig, baseline_config
from repro.core.results import (  # noqa: F401  (re-exported API)
    SERIAL_SPLIT,
    BenchmarkResult,
    ExperimentResult,
    LoopOutcome,
    percent_gain,
)
# module-object import: stays valid even when repro.harness is mid-import
# (repro.harness.jobs pulls in repro.core, which imports this module)
from repro.harness import jobs as _jobs
from repro.hlo.profiles import BlockProfile
from repro.machine.itanium2 import ItaniumMachine
from repro.workloads.spec import Benchmark


class Experiment:
    """Runs benchmark suites under compiler configurations, with caching."""

    def __init__(
        self,
        benchmarks: list[Benchmark],
        machine: ItaniumMachine | None = None,
        seed: int = 2008,
    ) -> None:
        self.benchmarks = benchmarks
        self.machine = machine or ItaniumMachine()
        self.seed = seed
        self._cache: dict[tuple[str, str], BenchmarkResult] = {}
        self._serial_anchor: dict[str, float] = {}
        self._profiles: dict[str, BlockProfile] = {}

    # --- internals ------------------------------------------------------------
    def _profile_for(self, bench: Benchmark) -> BlockProfile:
        """The PGO block profile from the training input (cached)."""
        if bench.name not in self._profiles:
            self._profiles[bench.name] = _jobs.collect_profile(
                bench, self.seed
            )
        return self._profiles[bench.name]

    def _serial_cycles(self, bench: Benchmark) -> float:
        """Non-loop cycles: anchored to the canonical baseline run."""
        if bench.name not in self._serial_anchor:
            anchor = _jobs.run_loops(
                bench,
                baseline_config(),
                self.machine,
                self.seed,
                profile=self._profile_for(bench),
            )
            self._serial_anchor[bench.name] = (
                bench.serial_factor * anchor.loop_cycles
            )
        return self._serial_anchor[bench.name]

    # --- public API ---------------------------------------------------------
    def run_benchmark(
        self, bench: Benchmark, config: CompilerConfig
    ) -> BenchmarkResult:
        key = (bench.name, config.label)
        if key in self._cache:
            return self._cache[key]
        loop_run = _jobs.run_loops(
            bench,
            config,
            self.machine,
            self.seed,
            profile=self._profile_for(bench) if config.pgo else None,
        )
        serial = self._serial_cycles(bench)
        result = _jobs.assemble_result(bench, config, loop_run, serial)
        self._cache[key] = result
        return result

    def run_config(self, config: CompilerConfig) -> dict[str, BenchmarkResult]:
        return {
            bench.name: self.run_benchmark(bench, config)
            for bench in self.benchmarks
        }

    def compare(
        self, baseline: CompilerConfig, variant: CompilerConfig
    ) -> ExperimentResult:
        base = self.run_config(baseline)
        var = self.run_config(variant)
        gains = {
            name: percent_gain(base[name].total_cycles, var[name].total_cycles)
            for name in base
        }
        return ExperimentResult(
            baseline_label=baseline.label,
            variant_label=variant.label,
            gains=gains,
            baseline=base,
            variant=var,
        )
