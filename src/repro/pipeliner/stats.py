"""Pipeliner statistics, mirroring the compiler counters of Sec. 4.5."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.registers import RegClass
from repro.pipeliner.schedule import LoadPlacement


@dataclass
class PipelineStats:
    """Everything the experiment harness aggregates per compiled loop."""

    loop_name: str
    pipelined: bool
    ii: int
    res_ii: int
    rec_ii: int
    stage_count: int = 1
    #: scheduling/allocation attempts the driver made (compile-time proxy)
    attempts: int = 1
    #: the Sec. 3.3 fallback fired: latencies were reduced back to base
    latency_fallback: bool = False
    #: loads scheduled with expected (boosted) latencies
    boosted_loads: int = 0
    critical_loads: int = 0
    total_loads: int = 0
    #: allocated registers per class (rotating + static), Sec. 4.5
    registers: dict[RegClass, int] = field(default_factory=dict)
    rotating: dict[RegClass, int] = field(default_factory=dict)
    spills: int = 0
    stacked_frame: int = 0
    placements: list[LoadPlacement] = field(default_factory=list)
    #: which scheduler produced this result ("heuristic" or "optimal")
    scheduler: str = "heuristic"
    #: exact-scheduler verdict: "optimal" (achieved II equals the
    #: certified lower bound), "capped" (node budget left a gap) or
    #: "infeasible" (no II up to the profitability cap schedules);
    #: ``None`` for heuristic results
    optimal_status: str | None = None
    #: certified lower bound on any schedulable II (exact scheduler only)
    ii_lower_bound: int | None = None
    #: branch-and-bound nodes spent across all IIs (exact scheduler only)
    solver_nodes: int = 0

    @property
    def extra_stages_cost(self) -> int:
        return max(0, self.stage_count - 1)

    def register_total(self, rclass: RegClass) -> int:
        return self.registers.get(rclass, 0)

    def summary(self) -> str:
        mode = "pipelined" if self.pipelined else "not pipelined"
        boosts = f", boosted {self.boosted_loads}/{self.total_loads} loads"
        return (
            f"{self.loop_name}: {mode}, II={self.ii} "
            f"(res {self.res_ii}, rec {self.rec_ii}), SC={self.stage_count}"
            f"{boosts if self.pipelined else ''}"
        )
