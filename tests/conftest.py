"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.ir import parse_loop
from repro.machine import ItaniumMachine

#: The paper's running example (Fig. 1): load, add, store with
#: post-incremented addresses and no cross-iteration flow except the
#: induction variables.
RUNNING_EXAMPLE = """
memref A affine stride=4 space=a
memref B affine stride=4 space=b
loop copy_add trips=200 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
"""


@pytest.fixture
def machine() -> ItaniumMachine:
    return ItaniumMachine()


@pytest.fixture
def running_example():
    return parse_loop(RUNNING_EXAMPLE)


@pytest.fixture
def base_config() -> CompilerConfig:
    return baseline_config()


@pytest.fixture
def hlo_config() -> CompilerConfig:
    return CompilerConfig(hint_policy=HintPolicy.HLO, trip_count_threshold=32)


@pytest.fixture
def boost_all_config() -> CompilerConfig:
    """All loads at L3 latency, no trip-count gate (headroom setting)."""
    return CompilerConfig(
        hint_policy=HintPolicy.ALL_LOADS_L3, trip_count_threshold=0
    )
