"""Fig. 9: CPU2006 without profile feedback.

Without PGO the static profile overestimates trip counts, so blanket L3
boosting loses on the geomean while HLO-directed hints still win — "load
latency information can compensate for the absence of reliable trip-count
information" (Sec. 4.3).  The 445.gobmk loss persists: the worst case
where both trip counts and latencies are mis-estimated.
"""

import pytest

from benchmarks.conftest import base_cfg, hlo_cfg, l3_cfg
from repro.core import format_gain_table


@pytest.fixture(scope="module")
def fig9(exp2006):
    base = base_cfg(pgo=False)
    return {
        "all-l3": exp2006.compare(base, l3_cfg(32, pgo=False)),
        "hlo": exp2006.compare(base, hlo_cfg(pgo=False)),
    }


def test_fig9_nopgo(benchmark, record, exp2006, fig9):
    benchmark.pedantic(
        lambda: exp2006.compare(base_cfg(pgo=False), hlo_cfg(pgo=False)),
        rounds=1, iterations=1,
    )
    record(
        "fig9_nopgo_cpu2006",
        format_gain_table(fig9, title="Fig 9 (CPU2006, no PGO)"),
    )
    l3 = fig9["all-l3"]
    hlo = fig9["hlo"]
    # blanket boosting without trip counts loses; HLO hints win
    assert l3.geomean_gain < 0.0
    assert hlo.geomean_gain > 1.0
    # the gobmk worst case persists under HLO hints
    assert hlo.gains["445.gobmk"] < -2.0
    assert l3.gains["445.gobmk"] < hlo.gains["445.gobmk"]
    # large gains survive the loss of PGO
    assert hlo.gains["444.namd"] > 6.0
    assert hlo.gains["429.mcf"] > 8.0
    assert hlo.gains["481.wrf"] > 4.0


def test_fig9_hlo_beats_blanket_everywhere_that_matters(benchmark, fig9):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The selective policy never loses where the blanket one wins big."""
    l3, hlo = fig9["all-l3"], fig9["hlo"]
    losses_l3 = sum(1 for g in l3.gains.values() if g < -1.0)
    losses_hlo = sum(1 for g in hlo.gains.values() if g < -1.0)
    assert losses_hlo < losses_l3
