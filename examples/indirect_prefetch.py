#!/usr/bin/env python
"""Prefetcher/pipeliner coupling on an indirect gather (Sec. 3.2).

For ``c[i] = f(data[idx[i]])`` the HLO prefetcher:

* prefetches the *index* stream at its full computed distance
  (``Lat / II_est`` iterations ahead);
* prefetches the *indirect* data side at a reduced distance — it may hop
  across memory pages, and far-ahead page-hopping prefetches stress the
  TLB (rule 2b);
* therefore marks the indirect reference with an expected-latency hint,
  and the pipeliner schedules it latency-tolerantly.

This example prints the prefetch plan and compares four compiler settings
on the same loop.

Run:  python examples/indirect_prefetch.py
"""

import numpy as np

from repro import ItaniumMachine, MemorySystem, baseline_config, simulate_loop
from repro.config import CompilerConfig, HintPolicy
from repro.core.compiler import LoopCompiler
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.workloads.loops import gather

MB = 1 << 20

CONFIGS = [
    ("baseline (prefetch, no hints)", baseline_config()),
    ("no prefetch, no hints", baseline_config(prefetch=False)),
    ("prefetch + HLO hints",
     CompilerConfig(hint_policy=HintPolicy.HLO, trip_count_threshold=32)),
    ("HLO hints, prefetch off",
     CompilerConfig(hint_policy=HintPolicy.HLO, trip_count_threshold=32,
                    prefetch=False, name="hlo-nopf")),
]


def main() -> None:
    machine = ItaniumMachine()
    data = TripDistribution(kind="constant", mean=400)
    profile = collect_block_profile({"spmv": data})

    print("loop: c[i] = scale * data[idx[i]] + bias   (FP gather, 10 MB)")
    print()
    results = {}
    for label, config in CONFIGS:
        loop, layout = gather("spmv", index_set=2 * MB, data_set=10 * MB,
                              fp=True)
        compiled = LoopCompiler(machine, config).compile(loop, profile)

        print(f"--- {label} ---")
        for ref in compiled.loop.memrefs:
            decision = compiled.plan.decision_for(ref)
            pf = (f"prefetch @ {ref.prefetch_distance} iters"
                  if ref.prefetched else "no prefetch")
            reduced = (f" (reduced: {decision.reduced})"
                       if decision and decision.reduced else "")
            print(f"  {ref.name:<6} {ref.pattern.value:<9} {pf}{reduced}"
                  f"   hint={ref.hint.name}")
        stats = compiled.stats
        print(f"  II={stats.ii}, stages={stats.stage_count}, "
              f"boosted {stats.boosted_loads}/{stats.total_loads} loads")

        rng = np.random.default_rng(3)
        trips = data.sample(rng, 10)
        sim = simulate_loop(compiled.result, machine, layout, list(trips),
                            memory=MemorySystem(machine.timings))
        results[label] = sim.cycles
        print(f"  cycles: {sim.cycles:,.0f}  "
              f"(stalls {sim.counters.be_exe_bubble:,.0f})")
        print()

    base = results["baseline (prefetch, no hints)"]
    print("speedups over the baseline:")
    for label, cycles in results.items():
        print(f"  {label:<32} {100 * (base / cycles - 1):+6.1f}%")


if __name__ == "__main__":
    main()
