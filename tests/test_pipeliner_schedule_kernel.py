"""Tests for Schedule metrics and kernel generation (paper Figs. 3 and 6)."""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.ir.memref import LatencyHint
from repro.pipeliner import pipeline_loop


class TestScheduleMetrics:
    def test_load_placement_metrics(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        placements = result.stats.placements
        assert len(placements) == 1
        p = placements[0]
        assert p.use_distance == 1
        assert p.additional_latency == 0
        assert p.clustering_factor(result.ii) == 1
        assert not p.boosted

    def test_boosted_metrics_match_equation_3(self, running_example, machine):
        """d = (k-1)·II (Equ. 3)."""
        running_example.body[0].memref.hint = LatencyHint.L2
        result = pipeline_loop(
            running_example, machine, CompilerConfig(trip_count_threshold=0)
        )
        p = result.stats.placements[0]
        assert p.boosted
        assert p.use_distance == 11
        assert p.additional_latency == 10
        k = p.clustering_factor(result.ii)
        assert p.additional_latency >= (k - 1) * result.ii

    def test_coverage_ratio(self, running_example, machine):
        running_example.body[0].memref.hint = LatencyHint.L2
        result = pipeline_loop(
            running_example, machine, CompilerConfig(trip_count_threshold=0)
        )
        p = result.stats.placements[0]
        # runtime latency 14 (L3): exposable 13, covered 10
        assert p.coverage_ratio(14) == pytest.approx(10 / 13)
        assert p.coverage_ratio(1) == 1.0

    def test_makespan_and_stages(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        sched = result.schedule
        assert sched.makespan == 3
        assert sched.stage_count == 3
        assert sched.extra_kernel_iterations == 2

    def test_format_contains_rows(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        text = result.schedule.format()
        assert "II=1" in text and "stages=3" in text


class TestKernelGeneration:
    def test_fig3_baseline_kernel(self, running_example, machine):
        """The paper's Fig. 3: stage predicates p16-p18, registers
        r32-r35 threaded by rotation."""
        result = pipeline_loop(running_example, machine, baseline_config())
        kernel = result.kernel
        assert kernel.ii == 1
        assert kernel.stage_count == 3
        text = kernel.format()
        assert "(p16) ld4 r32" in text
        assert "(p17) add r34 = r33" in text
        assert "(p18) st4" in text and "r35" in text
        assert "br.ctop" in text

    def test_fig6_latency_tolerant_kernel(self, running_example, machine):
        """The paper's Fig. 6 shape: with d=2 extra cycles the pipeline has
        5 stages; the add reads three rotations after the load's def."""
        # craft a hint translation giving exactly a 3-cycle load latency
        from repro.machine.hints import HintTranslation

        machine3 = machine.with_translation(
            HintTranslation(name="d2", l2=3, l3=3)
        )
        running_example.body[0].memref.hint = LatencyHint.L2
        result = pipeline_loop(
            running_example, machine3, CompilerConfig(trip_count_threshold=0)
        )
        kernel = result.kernel
        assert kernel.ii == 1
        assert kernel.stage_count == 5
        text = kernel.format()
        assert "(p16) ld4 r32" in text
        assert "(p19) add r36 = r35" in text  # exactly the paper's Fig. 6
        assert "(p20) st4" in text and "r37" in text

    def test_kernel_iterations_fill_drain(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        kernel = result.kernel
        # trips + SC - 1 (Sec. 1.1)
        assert kernel.total_kernel_iterations(100) == 102
        assert kernel.total_kernel_iterations(0) == 0

    def test_address_registers_stay_static(self, running_example, machine):
        """Post-incremented address registers are not renamed (Fig. 6
        keeps r5/r6 untouched)."""
        result = pipeline_loop(running_example, machine, baseline_config())
        text = result.kernel.format()
        assert "[vr5]" in text  # still the virtual/static name
        assert "[vr6]" in text

    def test_rows_grouping(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        rows = result.kernel.rows()
        assert len(rows) == result.ii
        assert sum(len(r) for r in rows) == len(running_example.body)


class TestWhileLoopKernels:
    def test_while_loop_uses_br_wtop(self, machine):
        """While loops pipeline with br.wtop and speculative fill — the
        paper's mcf loop is a ``while (node)`` loop (Sec. 4.4)."""
        from repro.workloads.loops import pointer_chase

        loop, _ = pointer_chase("w", heap=1 << 20)
        assert not loop.counted
        loop.trip_count.estimate = 100.0
        result = pipeline_loop(loop, machine, baseline_config())
        assert result.pipelined
        assert "br.wtop" in result.kernel.format()

    def test_counted_loop_keeps_br_ctop(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        assert "br.ctop" in result.kernel.format()
