"""The fuzzing campaign driver: generate, check, shrink, persist.

One *case* is ``(seed, GenConfig, inject-mode)``: the loop is generated,
every oracle of :mod:`repro.fuzz.oracles` runs over it, and the verdict
is optionally cached through the harness's content-addressed
:class:`~repro.harness.cache.ArtifactCache`.  The cache key includes the
generator seed and configuration, :data:`~repro.fuzz.oracles.ORACLE_VERSION`,
the machine-model name and the injection mode, so changing any of them —
in particular strengthening an oracle — invalidates stale verdicts
instead of replaying them.

Failing cases are re-derived in the parent process, greedily shrunk
(:mod:`repro.fuzz.shrink`), and saved to a corpus directory as a
replayable ``.loop`` file plus a JSON manifest recording provenance and
the violations observed.  ``tests/corpus/`` is the persistent regression
corpus replayed by the tier-1 suite; campaign output directories use the
same format, so promoting a new reproducer into the repository is a file
copy.

``scheduler_mutation`` deliberately breaks the pipeliner (currently: the
driver's DDG loses the first load-data flow edge) to prove the oracles
can catch a real scheduling bug end to end — the fuzzing equivalent of
the analysis layer's mutation tests.
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro.pipeliner.driver as _driver
from repro.ddg.edges import DepKind
from repro.ddg.graph import DDG
from repro.fuzz.gen import GenConfig, generate_loop
from repro.fuzz.oracles import ORACLE_VERSION, check_loop
from repro.fuzz.shrink import shrink_loop
from repro.harness.cache import ArtifactCache, hash_key
from repro.harness.pool import run_tasks
from repro.ir.loop import Loop
from repro.ir.parser import parse_loop
from repro.ir.printer import loop_to_source

#: supported deliberate-bug modes for ``scheduler_mutation``
INJECT_MODES = ("none", "drop-edge")


# --- deliberate scheduler bugs ---------------------------------------------

def _drop_first_load_flow_edge(ddg: DDG) -> DDG:
    """A copy of ``ddg`` without the first load-data FLOW edge.

    "First" in body-and-edge order, which is deterministic for a given
    loop and — unlike dropping the k-th edge of the list — stays aimed at
    the same kind of edge while the shrinker rewrites the loop around it.
    """
    victim = None
    for edge in ddg.edges:
        if (
            edge.kind is DepKind.FLOW
            and edge.src.is_load
            and edge.reg in edge.src.defs
        ):
            victim = edge
            break
    if victim is None:
        return ddg
    pruned = DDG(ddg.loop)
    for edge in ddg.edges:
        if edge is not victim:
            pruned.add_edge(edge)
    return pruned


@contextlib.contextmanager
def scheduler_mutation(mode: str | None):
    """Temporarily install a known scheduler bug (tests the oracles).

    ``"drop-edge"`` rebinds the pipeliner driver's ``build_ddg`` so every
    schedule is computed against a DDG missing one load-use dependence.
    The oracles build their *own* fresh DDG straight from
    :mod:`repro.ddg.graph`, which stays untouched — exactly the situation
    the ``dependence`` and ``differential`` oracles exist for, and one
    the schedule's self-check (SA202, which replays the schedule's own
    DDG) provably cannot see.
    """
    if mode in (None, "", "none"):
        yield
        return
    if mode != "drop-edge":
        raise ValueError(
            f"unknown injection mode {mode!r} (choose from {INJECT_MODES})"
        )
    original = _driver.build_ddg

    def mutated(loop: Loop) -> DDG:
        return _drop_first_load_flow_edge(original(loop))

    _driver.build_ddg = mutated
    try:
        yield
    finally:
        _driver.build_ddg = original


# --- one case ---------------------------------------------------------------

def case_key(seed: int, gen: GenConfig, inject: str,
             machine: str = "itanium2") -> str:
    """Cache key for one fuzz case's verdict."""
    return hash_key({
        "kind": "fuzz-case",
        "seed": seed,
        "gen": gen.to_dict(),
        "oracle_version": ORACLE_VERSION,
        "machine": machine or "itanium2",
        "inject": inject or "none",
    })


def _run_case(payload: dict) -> dict:
    """Pool worker: one seed through generation and every oracle."""
    from repro.machine import build_machine

    seed = payload["seed"]
    gen = GenConfig.from_dict(payload["gen"])
    inject = payload.get("inject", "none")
    machine_name = payload.get("machine", "itanium2") or "itanium2"
    cache = (
        ArtifactCache(payload["cache_dir"]) if payload.get("cache_dir") else None
    )
    key = case_key(seed, gen, inject, machine_name)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return {**hit, "cache_hit": True}

    with scheduler_mutation(inject):
        loop = generate_loop(seed, gen)
        report = check_loop(
            loop,
            machine=build_machine(machine_name),
            seed=seed,
            simulate=payload.get("simulate", True),
            metamorphic=payload.get("metamorphic", True),
        )
    data = report.to_dict()
    if cache is not None:
        cache.put(key, data)
    return {**data, "cache_hit": False}


# --- the campaign -----------------------------------------------------------

@dataclass
class FuzzOptions:
    """One fuzzing campaign's knobs (mirrors ``python -m repro fuzz``)."""

    cases: int = 100
    seed: int = 0
    jobs: int = 1
    shrink: bool = True
    #: where failing cases are persisted (``None``: don't persist)
    corpus_dir: str | Path | None = None
    cache_dir: str | Path | None = None
    inject: str = "none"
    #: machine-model registry name the oracles check against; part of
    #: every verdict cache key, so per-machine verdicts never collide
    machine: str = "itanium2"
    gen: GenConfig = field(default_factory=GenConfig)
    simulate: bool = True
    metamorphic: bool = True


@dataclass
class FuzzSummary:
    """Outcome of one campaign (or one corpus replay)."""

    cases: int
    #: failing case reports (dicts), shrink info attached when available
    failures: list[dict]
    cache_hits: int = 0
    duration_s: float = 0.0
    #: corpus files written for the failures
    saved: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "ok": self.ok,
            "failures": self.failures,
            "cache_hits": self.cache_hits,
            "duration_s": self.duration_s,
            "saved": self.saved,
        }


def _shrink_gates(target: str) -> tuple[bool, bool]:
    """(simulate, metamorphic) oracle gates needed to witness ``target``."""
    simulate = target in ("accounting", "metamorphic-seed")
    metamorphic = (not simulate) and target.startswith("metamorphic-")
    return simulate, metamorphic


def _save_case(
    corpus_dir: Path,
    loop: Loop,
    report: dict,
    *,
    seed: int,
    gen: GenConfig,
    inject: str,
    machine: str = "itanium2",
) -> list[str]:
    """Persist one reproducer: ``<stem>.loop`` + ``<stem>.json``."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    stem = f"fz-{seed}" if inject in ("", "none") else f"fz-{seed}-{inject}"
    loop_path = corpus_dir / f"{stem}.loop"
    loop_path.write_text(loop_to_source(loop), encoding="utf-8")
    manifest = {
        "seed": seed,
        "gen": gen.to_dict(),
        "oracle_version": ORACLE_VERSION,
        "inject": inject or "none",
        "machine": machine or "itanium2",
        "ops": len(loop.body),
        "report": report,
    }
    json_path = corpus_dir / f"{stem}.json"
    json_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return [str(loop_path), str(json_path)]


def run_fuzz(options: FuzzOptions) -> FuzzSummary:
    """Run one campaign: ``options.cases`` seeds from ``options.seed``."""
    start = time.perf_counter()
    payloads = [
        {
            "seed": options.seed + i,
            "gen": options.gen.to_dict(),
            "inject": options.inject or "none",
            "machine": options.machine or "itanium2",
            "cache_dir": str(options.cache_dir) if options.cache_dir else None,
            "simulate": options.simulate,
            "metamorphic": options.metamorphic,
        }
        for i in range(options.cases)
    ]
    results = run_tasks(_run_case, payloads, workers=options.jobs)

    from repro.machine import build_machine

    shrink_machine = build_machine(options.machine or "itanium2")
    failures: list[dict] = []
    saved: list[str] = []
    for result in results:
        if result["ok"]:
            continue
        failure = dict(result)
        # re-derive the loop in-process; shrink while the verdict holds
        with scheduler_mutation(options.inject):
            loop = generate_loop(failure["seed"], options.gen)
            if options.shrink and failure["violations"]:
                target = failure["violations"][0]["oracle"]
                simulate, metamorphic = _shrink_gates(target)

                def recheck(cand: Loop):
                    return check_loop(
                        cand, machine=shrink_machine,
                        simulate=simulate, metamorphic=metamorphic,
                    )

                loop, shrunk_report = shrink_loop(loop, recheck, target)
                failure["shrunk"] = shrunk_report.to_dict()
                failure["shrunk_ops"] = len(loop.body)
        failure["source"] = loop_to_source(loop)
        if options.corpus_dir is not None:
            saved.extend(_save_case(
                Path(options.corpus_dir),
                loop,
                failure.get("shrunk", {
                    k: failure[k]
                    for k in ("name", "seed", "ok", "violations")
                }),
                seed=failure["seed"],
                gen=options.gen,
                inject=options.inject or "none",
                machine=options.machine or "itanium2",
            ))
        failures.append(failure)

    return FuzzSummary(
        cases=len(results),
        failures=failures,
        cache_hits=sum(1 for r in results if r.get("cache_hit")),
        duration_s=time.perf_counter() - start,
        saved=saved,
    )


def replay_corpus(
    corpus_dir: str | Path,
    *,
    simulate: bool = True,
    metamorphic: bool = True,
) -> FuzzSummary:
    """Re-check every ``.loop`` file in a corpus directory.

    Replays run *without* any injected mutation — a corpus entry is a
    regression reproducer for a bug that is fixed (or a deliberately
    interesting passing case), so the expectation is zero violations.
    The manifest's ``inject`` field only records provenance.
    """
    start = time.perf_counter()
    corpus = sorted(Path(corpus_dir).glob("*.loop"))
    failures: list[dict] = []
    for path in corpus:
        try:
            loop = parse_loop(path.read_text(encoding="utf-8"))
        except Exception as exc:  # noqa: BLE001 - unreadable corpus entry
            failures.append({
                "name": path.stem,
                "ok": False,
                "violations": [{
                    "oracle": "corpus",
                    "detail": f"failed to parse {path.name}: {exc}",
                    "code": "",
                }],
            })
            continue
        report = check_loop(loop, simulate=simulate, metamorphic=metamorphic)
        if not report.ok:
            entry = report.to_dict()
            entry["corpus_file"] = str(path)
            failures.append(entry)
    return FuzzSummary(
        cases=len(corpus),
        failures=failures,
        duration_s=time.perf_counter() - start,
    )
