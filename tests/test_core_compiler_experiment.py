"""Tests for the LoopCompiler and the experiment harness."""

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core import (
    Experiment,
    LoopCompiler,
    accumulate_account,
    format_account_table,
    format_gain_table,
    percent_gain,
    register_statistics,
)
from repro.core.statistics import format_register_table
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.ir.memref import LatencyHint
from repro.workloads import benchmark_by_name
from repro.workloads.loops import pointer_chase, stream_int


class TestLoopCompiler:
    def test_compile_does_not_mutate_input(self, machine):
        loop, _ = stream_int("s", streams=1)
        n_insts = len(loop.body)
        compiler = LoopCompiler(
            machine, CompilerConfig(hint_policy=HintPolicy.ALL_LOADS_L3)
        )
        compiled = compiler.compile(loop)
        assert len(loop.body) == n_insts  # no lfetch leaked into the input
        assert loop.loads[0].memref.hint is LatencyHint.NONE
        assert compiled.loop is not loop

    def test_low_trip_loops_not_pipelined(self, machine):
        loop, _ = pointer_chase("m")
        profile = collect_block_profile(
            {loop.name: TripDistribution(kind="constant", mean=1)}
        )
        compiled = LoopCompiler(machine, baseline_config()).compile(
            loop, profile
        )
        assert not compiled.pipelined
        assert compiled.result.seq_length > 0

    def test_mcf_trip_count_still_pipelined(self, machine):
        """The paper's refresh_potential runs 2.3 iterations on average
        and is pipelined (Sec. 4.4)."""
        loop, _ = pointer_chase("m")
        profile = collect_block_profile(
            {loop.name: TripDistribution(kind="constant", mean=2.3)}
        )
        compiled = LoopCompiler(machine, baseline_config()).compile(
            loop, profile
        )
        assert compiled.pipelined

    def test_prefetches_added_by_hlo(self, machine):
        loop, _ = stream_int("s", streams=2)
        compiled = LoopCompiler(machine, CompilerConfig()).compile(loop)
        assert compiled.loop.prefetches
        assert compiled.plan.decisions


@pytest.fixture(scope="module")
def mini_experiment():
    benches = [benchmark_by_name("429.mcf"), benchmark_by_name("464.h264ref")]
    return Experiment(benches, seed=7)


class TestExperiment:
    def test_percent_gain(self):
        assert percent_gain(110, 100) == pytest.approx(10.0)
        assert percent_gain(100, 110) == pytest.approx(-9.0909, abs=1e-3)

    def test_compare_shapes(self, mini_experiment):
        base = baseline_config()
        hlo = CompilerConfig(hint_policy=HintPolicy.HLO,
                             trip_count_threshold=32, name="hlo")
        res = mini_experiment.compare(base, hlo)
        assert set(res.gains) == {"429.mcf", "464.h264ref"}
        # mcf gains from HLO hints; h264ref is untouched at n=32
        assert res.gains["429.mcf"] > 5.0
        assert res.gains["464.h264ref"] == pytest.approx(0.0, abs=0.3)
        assert res.geomean_gain > 0

    def test_caching_is_consistent(self, mini_experiment):
        base = baseline_config()
        r1 = mini_experiment.run_config(base)
        r2 = mini_experiment.run_config(base)
        assert r1["429.mcf"] is r2["429.mcf"]

    def test_serial_cycles_constant_across_configs(self, mini_experiment):
        base = baseline_config()
        hlo = CompilerConfig(hint_policy=HintPolicy.HLO, name="hlo2")
        b = mini_experiment.run_config(base)["429.mcf"]
        v = mini_experiment.run_config(hlo)["429.mcf"]
        assert b.serial_cycles == v.serial_cycles

    def test_gain_table_formatting(self, mini_experiment):
        base = baseline_config()
        hlo = CompilerConfig(hint_policy=HintPolicy.HLO, name="hlo")
        res = mini_experiment.compare(base, hlo)
        table = format_gain_table({"hlo": res}, title="T")
        assert "429.mcf" in table and "Geomean" in table and "%" in table


class TestAccountingAndStatistics:
    def test_cycle_account(self, mini_experiment):
        base = baseline_config()
        hlo = CompilerConfig(hint_policy=HintPolicy.HLO, name="hlo")
        res = mini_experiment.compare(base, hlo)
        acc_b = accumulate_account(res.baseline, "baseline")
        acc_v = accumulate_account(res.variant, "hlo")
        assert acc_b.total > 0
        assert sum(acc_b.share(b) for b in (
            "unstalled", "be_exe_bubble", "be_l1d_fpu_bubble",
            "be_rse_bubble", "be_flush_bubble", "back_end_bubble_fe",
        )) == pytest.approx(1.0)
        # latency tolerance cuts data stalls on this pair (mcf dominates)
        assert acc_v.delta_percent(acc_b, "be_exe_bubble") < 0
        table = format_account_table(acc_b, acc_v)
        assert "be_exe_bubble" in table and "ozq-full" in table

    def test_register_statistics(self, mini_experiment):
        base = baseline_config()
        hlo = CompilerConfig(hint_policy=HintPolicy.HLO, name="hlo")
        res = mini_experiment.compare(base, hlo)
        st_b = register_statistics(res.baseline, "baseline")
        st_v = register_statistics(res.variant, "hlo")
        from repro.ir.registers import RegClass

        # boosting grows register usage (Sec. 4.5) but never exhausts files
        assert st_v.increase_percent(st_b, RegClass.GR) > 0
        assert st_v.increase_percent(st_b, RegClass.PR) > 0
        assert st_v.utilization[RegClass.GR] < 0.5
        assert st_v.boosted_loads > 0
        table = format_register_table(st_b, st_v)
        assert "GR" in table and "spills" in table
