"""Tier-1 corpus replay: every persisted reproducer stays green.

``tests/corpus/`` is the fuzzer's persistent regression corpus (see its
README): reduced reproducers of fixed bugs and pinned interesting cases.
Replaying them through the full oracle stack on every test run is what
makes a fuzzing find permanent — a regression reintroducing the bug
fails here, not in some future nightly campaign.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz.gen import GenConfig, generate_loop, loop_fingerprint
from repro.fuzz.oracles import ORACLE_VERSION, check_loop
from repro.fuzz.runner import replay_corpus
from repro.ir import parse_loop

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.loop"))


def test_corpus_is_not_empty():
    assert ENTRIES, "tests/corpus must ship at least one entry"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    loop = parse_loop(path.read_text(encoding="utf-8"))
    report = check_loop(loop)
    assert report.ok, [v.to_dict() for v in report.violations]


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_manifest_provenance(path):
    manifest = json.loads(path.with_suffix(".json").read_text())
    assert manifest["oracle_version"] <= ORACLE_VERSION
    loop = parse_loop(path.read_text(encoding="utf-8"))
    assert len(loop.body) == manifest["ops"]
    # organic (non-injected) entries regenerate from their recorded seed
    if manifest["inject"] == "none" and "gen" in manifest:
        regenerated = generate_loop(
            manifest["seed"], GenConfig.from_dict(manifest["gen"])
        )
        assert loop_fingerprint(regenerated) == loop_fingerprint(loop)


def test_replay_corpus_summary():
    summary = replay_corpus(CORPUS)
    assert summary.cases == len(ENTRIES)
    assert summary.ok, summary.failures
