"""The fast replay backend's safety net: bit-identity everywhere.

The fast backend (:mod:`repro.sim.fastpath`) is a compiled replayer for
the per-cycle interpreter, and its entire contract is *bit-identity*:
every cycle total and every :class:`PerfCounters` field must match the
interpreter exactly, on every workload, under caching and parallelism,
and inside the SA5xx static bounds.  These tests are that contract —
plus the cache-sharing property: the backend choice must never enter a
content address, so a result computed under one backend serves the
other.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import CompilerConfig, SimBackend, baseline_config
from repro.core.compiler import LoopCompiler
from repro.harness import run_suite
from repro.harness.jobs import (
    counters_to_dict,
    loop_run_key,
    run_loops,
)
from repro.ir import parse_loop
from repro.machine import ItaniumMachine
from repro.sim import MemorySystem, simulate_loop
from repro.sim.fastpath import compile_kernel
from repro.workloads import micro_suite, suite_by_name

CORPUS_DIR = Path(__file__).parent / "corpus"


def _outcome_digest(outcome) -> tuple:
    """Everything observable about one run, as a comparable value."""
    return (
        outcome.loop_cycles,
        tuple(sorted(counters_to_dict(outcome.counters).items(),
                     key=lambda kv: kv[0])),
    )


class TestBackendBitIdentity:
    """interp and fast agree on every field, for every workload."""

    @pytest.mark.parametrize("suite", ["micro", "cpu2006", "cpu2000"])
    def test_full_suite_identical(self, machine, suite):
        config = baseline_config()
        for bench in suite_by_name(suite):
            interp = run_loops(bench, config, machine, 2008,
                               backend="interp")
            fast = run_loops(bench, config, machine, 2008, backend="fast")
            assert _outcome_digest(interp) == _outcome_digest(fast), (
                f"backend divergence on {bench.name}"
            )

    def test_default_config_identical_on_micro(self, machine):
        # a second config exercises different schedules/hints
        config = CompilerConfig()
        for bench in micro_suite():
            interp = run_loops(bench, config, machine, 2008,
                               backend="interp")
            fast = run_loops(bench, config, machine, 2008, backend="fast")
            assert _outcome_digest(interp) == _outcome_digest(fast)

    def test_corpus_replays_identical(self, machine):
        """Every fuzz-corpus regression reproducer replays bit-identically."""
        from repro.sim.address import StreamSpec

        loops = sorted(CORPUS_DIR.glob("*.loop"))
        assert loops, "fuzz corpus is missing"
        compiler = LoopCompiler(machine, CompilerConfig())
        for path in loops:
            loop = parse_loop(path.read_text(encoding="utf-8"))
            compiled = compiler.compile(loop)
            layout = {
                ref.space: StreamSpec(size=1 << 20)
                for ref in loop.memrefs
            }
            runs = {}
            for backend in ("interp", "fast"):
                run = simulate_loop(
                    compiled.result, machine, layout, [64, 7],
                    memory=MemorySystem(machine.timings),
                    backend=backend,
                )
                runs[backend] = (run.cycles,
                                 counters_to_dict(run.counters))
            assert runs["interp"] == runs["fast"], (
                f"corpus divergence on {path.name}"
            )


class TestManifestsAndBounds:
    """Suite sweeps agree across backends, workers and the cache."""

    def test_micro_fingerprints_match_cached_and_parallel(self, tmp_path):
        suite = micro_suite()
        configs = [baseline_config()]
        interp = run_suite(suite, configs, workers=1, backend="interp")
        # parallel + cold cache
        fast = run_suite(
            suite, configs, workers=2, cache=tmp_path / "cache",
            backend="fast",
        )
        # serial + warm cache (every cell a hit)
        cached = run_suite(
            suite, configs, workers=1, cache=tmp_path / "cache",
            backend="fast",
        )
        fp = interp.manifest.fingerprint()
        assert fast.manifest.fingerprint() == fp
        assert cached.manifest.fingerprint() == fp
        assert all(cell.cache_hit for cell in cached.manifest.cells)
        # the backend is provenance: recorded per cell, outside the digest
        assert {c.backend for c in fast.manifest.cells} == {"fast"}
        assert {c.backend for c in interp.manifest.cells} == {"interp"}

    def test_bounds_hold_on_fast_backend(self):
        """SA5xx static bounds: zero violations with the fast replayer."""
        run = run_suite(
            micro_suite(), [baseline_config()], workers=1,
            verify=True, backend="fast",
        )
        assert run.manifest.bounds_checked > 0
        assert run.manifest.bounds_violations == 0
        assert all(not c.verify_errors for c in run.manifest.cells)


class TestBackendOutsideContentAddresses:
    """The backend never enters a cache key or request key."""

    def test_loop_run_key_has_no_backend(self, machine):
        bench = micro_suite()[0]
        key = loop_run_key(bench, baseline_config(), machine, 2008)
        assert "backend" not in str(key)

    def test_cache_entry_shared_across_backends(self, machine, tmp_path):
        from repro.harness.cache import ArtifactCache
        from repro.harness.jobs import cached_loop_run

        bench = [b for b in micro_suite() if b.name == "micro.lowtrip"][0]
        cache = ArtifactCache(tmp_path / "cache")
        config = baseline_config()
        first, hit1 = cached_loop_run(
            bench, config, machine, 2008, cache, backend="interp"
        )
        second, hit2 = cached_loop_run(
            bench, config, machine, 2008, cache, backend="fast"
        )
        assert (not hit1) and hit2  # the interp entry served the fast run
        assert _outcome_digest(first) == _outcome_digest(second)

    def test_service_request_key_strips_backend(self):
        from repro.service.protocol import normalize_request, request_key

        loop = "memref A affine stride=4 space=a\nloop l trips=8\n  ld4 r1 = [r2], 4 !A\n"
        keys = set()
        for backend in ("", "interp", "fast"):
            canonical = normalize_request(
                "simulate", {"loop": loop, "backend": backend}
            )
            assert canonical["backend"] == backend
            keys.add(request_key("simulate", canonical))
        assert len(keys) == 1
        bench_keys = {
            request_key("bench", normalize_request(
                "bench", {"suite": "micro", "backend": backend}
            ))
            for backend in ("", "interp", "fast")
        }
        assert len(bench_keys) == 1


class TestBackendSelection:
    """Selection, fallback and the compiled-kernel machinery itself."""

    def test_parse_and_default(self):
        assert SimBackend.parse(None) is not None
        assert SimBackend.parse("interp") is SimBackend.INTERP
        assert SimBackend.parse("fast") is SimBackend.FAST
        assert SimBackend.parse(SimBackend.FAST) is SimBackend.FAST
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SimBackend.parse("turbo")

    def test_result_records_backend(self, machine, running_example):
        from repro.sim.address import StreamSpec

        compiled = LoopCompiler(machine, baseline_config()).compile(
            running_example
        )
        layout = {"a": StreamSpec(size=1 << 20),
                  "b": StreamSpec(size=1 << 20)}
        fast = simulate_loop(compiled.result, machine, layout, [50],
                             backend="fast")
        interp = simulate_loop(compiled.result, machine, layout, [50],
                               backend="interp")
        assert fast.backend == "fast"
        assert interp.backend == "interp"
        assert fast.cycles == interp.cycles

    def test_traced_run_falls_back_to_interp(self, machine, running_example):
        from repro.sim.address import StreamSpec
        from repro.trace.events import CaptureSink

        compiled = LoopCompiler(machine, baseline_config()).compile(
            running_example
        )
        layout = {"a": StreamSpec(size=1 << 20),
                  "b": StreamSpec(size=1 << 20)}
        run = simulate_loop(
            compiled.result, machine, layout, [50],
            sink=CaptureSink(), backend="fast",
        )
        assert run.backend == "interp"  # silent, bit-identical downgrade

    def test_kernel_variants_cached_per_geometry(self, machine,
                                                 running_example):
        from repro.sim.core import prepare_execution

        compiled = LoopCompiler(machine, baseline_config()).compile(
            running_example
        )
        kernel = compile_kernel(prepare_execution(compiled.result, machine))
        memory = MemorySystem(machine.timings)
        replay = kernel.replay_for(memory)
        assert callable(replay)
        assert kernel.replay_for(MemorySystem(machine.timings)) is replay
