"""Cycle-level simulation of an Itanium-2-class in-order core.

The simulator executes compiled (pipelined or list-scheduled) loops over
concrete address streams and models the microarchitectural mechanisms the
paper's optimization exploits and stresses:

* **stall-on-use** — a cache miss stalls the pipeline only when an
  instruction reads the not-yet-ready register (Sec. 2);
* **memory-level parallelism** — outstanding requests proceed in the
  shadow of a stall, which is what makes load *clustering* profitable;
* **the OzQ** — the out-of-order memory request queue between L1 and L2;
  when its 48 entries fill up, issue stalls (the
  ``BE_L1D_FPU_BUBBLE``/``L2D_OZQ_FULL`` growth of Fig. 10);
* **caches and the TLB** — set-associative L1D/L2/L3 with realistic
  latencies; software prefetches are dropped on TLB misses, which is why
  the prefetcher limits distances for page-hopping references (Sec. 3.2).
"""

from repro.sim.cache import Cache, CacheConfig
from repro.sim.tlb import TLB
from repro.sim.memory import MemorySystem, AccessResult
from repro.sim.counters import PerfCounters
from repro.sim.address import (
    Region,
    AddressMap,
    StreamSpec,
    build_streams,
)
from repro.sim.core import ExecutionSetup, prepare_execution, run_iterations
from repro.sim.fastpath import (
    CompiledKernel,
    compile_kernel,
    fast_replay_supported,
    run_iterations_fast,
)
from repro.sim.executor import LoopRunResult, simulate_loop

__all__ = [
    "Cache",
    "CacheConfig",
    "TLB",
    "MemorySystem",
    "AccessResult",
    "PerfCounters",
    "Region",
    "AddressMap",
    "StreamSpec",
    "build_streams",
    "ExecutionSetup",
    "prepare_execution",
    "run_iterations",
    "CompiledKernel",
    "compile_kernel",
    "fast_replay_supported",
    "run_iterations_fast",
    "LoopRunResult",
    "simulate_loop",
]
