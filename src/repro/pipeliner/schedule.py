"""Schedule objects and the derived per-load placement metrics.

The scheduler assigns every operation an absolute time ``t >= 0`` for one
source iteration; the kernel executes operation ``op`` of source iteration
``i`` at absolute cycle ``i*II + t(op)`` (plus dynamic stalls).  Derived
quantities used throughout the paper:

* stage of ``op``      = ``t // II``
* stage count SC       = ``max stage + 1``
* load-use distance    = ``min over data uses of (t(use) + II*omega - t(load))``
* additional latency d = distance − base latency (Sec. 2.1)
* clustering factor k  = ``d // II + 1``  (Equ. (3): d = (k−1)·II)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ddg.graph import DDG
from repro.ir.instructions import Instruction
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.criticality import Criticality


@dataclass(frozen=True)
class LoadPlacement:
    """Scheduling facts about one load in a finished schedule."""

    load: Instruction
    time: int
    #: distance in cycles to the earliest data use (across iterations)
    use_distance: int | None
    base_latency: int
    scheduled_latency: int
    boosted: bool

    @property
    def additional_latency(self) -> int:
        """``d`` of Sec. 2.1: schedule distance beyond the base latency."""
        if self.use_distance is None:
            return 0
        return max(0, self.use_distance - self.base_latency)

    def clustering_factor(self, ii: int) -> int:
        """``k`` of Equ. (3): instances in flight before the first use."""
        return self.additional_latency // ii + 1

    def coverage_ratio(self, runtime_latency: int) -> float:
        """``c`` of Equ. (1) for an actual runtime latency ``L+1``."""
        exposable = runtime_latency - self.base_latency
        if exposable <= 0:
            return 1.0
        return min(1.0, self.additional_latency / exposable)


@dataclass
class Schedule:
    """A feasible modulo schedule for one loop."""

    ddg: DDG
    ii: int
    times: dict[Instruction, int]
    machine: ItaniumMachine
    criticality: Criticality
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.times:
            shift = min(self.times.values())
            if shift:
                self.times = {i: t - shift for i, t in self.times.items()}

    # --- basic accessors ---------------------------------------------------
    @property
    def loop(self):
        return self.ddg.loop

    def time_of(self, inst: Instruction) -> int:
        return self.times[inst]

    def row_of(self, inst: Instruction) -> int:
        return self.times[inst] % self.ii

    def stage_of(self, inst: Instruction) -> int:
        return self.times[inst] // self.ii

    @property
    def makespan(self) -> int:
        """Schedule length of one source iteration (last issue time + 1)."""
        return max(self.times.values()) + 1 if self.times else 0

    @property
    def stage_count(self) -> int:
        """Number of pipeline stages SC."""
        if not self.times:
            return 1
        return max(self.times.values()) // self.ii + 1

    @property
    def extra_kernel_iterations(self) -> int:
        """Fill/drain cost: SC − 1 extra kernel iterations per execution."""
        return self.stage_count - 1

    # --- latency policy ------------------------------------------------------
    def scheduled_latency(self, load: Instruction) -> int:
        """The latency the scheduler assumed for ``load``'s data result."""
        if self.criticality.is_boosted(load):
            return self.machine.expected_load_latency(load)
        return self.machine.base_latency(load)

    # --- load metrics ----------------------------------------------------------
    def load_use_distance(self, load: Instruction) -> int | None:
        """Cycles between ``load`` and its earliest data use (or ``None``)."""
        edges = self.ddg.first_uses_of_load(load)
        if not edges:
            return None
        return min(
            self.times[e.dst] + self.ii * e.omega - self.times[load]
            for e in edges
        )

    def load_placements(self) -> list[LoadPlacement]:
        placements = []
        for load in self.loop.loads:
            placements.append(
                LoadPlacement(
                    load=load,
                    time=self.times[load],
                    use_distance=self.load_use_distance(load),
                    base_latency=self.machine.base_latency(load),
                    scheduled_latency=self.scheduled_latency(load),
                    boosted=self.criticality.is_boosted(load),
                )
            )
        return placements

    def verify(self) -> None:
        """Assert all dependence constraints hold (tests/invariants)."""
        from repro.errors import SchedulingError

        for edge in self.ddg.edges:
            lat = edge.latency(
                self.machine.latency_query, self.criticality.expected_fn(edge)
            )
            lhs = self.times[edge.dst]
            rhs = self.times[edge.src] + lat - self.ii * edge.omega
            if lhs < rhs:
                raise SchedulingError(
                    f"dependence violated in {self.loop.name}: {edge} "
                    f"t(dst)={lhs} < t(src)+lat-II*w={rhs}"
                )

    def format(self) -> str:
        """Human-readable schedule dump grouped by stage and row."""
        from repro.ir.printer import format_instruction

        lines = [
            f"schedule {self.loop.name}: II={self.ii} stages={self.stage_count}"
        ]
        for inst in sorted(self.loop.body, key=lambda i: (self.times[i], i.index)):
            lines.append(
                f"  t={self.times[inst]:3d} row={self.row_of(inst)} "
                f"stage={self.stage_of(inst)}  {format_instruction(inst)}"
            )
        return "\n".join(lines)
