"""Compiler statistics of Sec. 4.5.

Aggregates the pipeliner's per-loop counters across a suite run:

* allocated registers per class and their increase over the baseline —
  the paper measures +14% general, +20% FP and +35% predicate registers,
  while "the number of allocated registers remains less than one fifth of
  the number of available registers on an average";
* spills attributable to the loops (paper: +1.8% outside pipelined loops,
  spill fraction 1.1% of instructions);
* scheduling attempts (the compile-time proxy; paper: ~0.5% compile-time
  increase from the extra attempts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import BenchmarkResult
from repro.ir.registers import RegClass


@dataclass
class RegisterStatistics:
    """Aggregate register/spill/attempt statistics for one suite run."""

    label: str
    #: summed allocated registers per class (rotating + static)
    allocated: dict[RegClass, int]
    #: average utilisation of the register files across pipelined loops
    utilization: dict[RegClass, float]
    spills: int
    attempts: int
    pipelined_loops: int
    boosted_loads: int
    total_loads: int
    latency_fallbacks: int

    def increase_percent(
        self, baseline: "RegisterStatistics", rclass: RegClass
    ) -> float:
        """Percent increase in allocated registers vs the baseline run."""
        base = baseline.allocated.get(rclass, 0)
        if base == 0:
            return 0.0
        return 100.0 * (self.allocated.get(rclass, 0) / base - 1.0)

    def spill_increase_percent(self, baseline: "RegisterStatistics") -> float:
        if baseline.spills == 0:
            return 0.0 if self.spills == 0 else 100.0
        return 100.0 * (self.spills / baseline.spills - 1.0)

    def attempts_increase_percent(self, baseline: "RegisterStatistics") -> float:
        if baseline.attempts == 0:
            return 0.0
        return 100.0 * (self.attempts / baseline.attempts - 1.0)


#: total architected registers per class on the machine
_FILE_SIZES = {RegClass.GR: 128, RegClass.FR: 128, RegClass.PR: 64}


def register_statistics(
    results: dict[str, BenchmarkResult], label: str
) -> RegisterStatistics:
    """Aggregate pipeliner statistics over a suite run."""
    allocated = {rc: 0 for rc in _FILE_SIZES}
    util_sum = {rc: 0.0 for rc in _FILE_SIZES}
    spills = 0
    attempts = 0
    pipelined = 0
    boosted = 0
    total_loads = 0
    fallbacks = 0

    for bench in results.values():
        for outcome in bench.loops:
            stats = outcome.compiled.stats
            attempts += stats.attempts
            total_loads += stats.total_loads
            if not stats.pipelined:
                continue
            pipelined += 1
            boosted += stats.boosted_loads
            spills += stats.spills
            fallbacks += int(stats.latency_fallback)
            for rc in _FILE_SIZES:
                count = stats.registers.get(rc, 0)
                allocated[rc] += count
                util_sum[rc] += count / _FILE_SIZES[rc]

    utilization = {
        rc: (util_sum[rc] / pipelined if pipelined else 0.0)
        for rc in _FILE_SIZES
    }
    return RegisterStatistics(
        label=label,
        allocated=allocated,
        utilization=utilization,
        spills=spills,
        attempts=attempts,
        pipelined_loops=pipelined,
        boosted_loads=boosted,
        total_loads=total_loads,
        latency_fallbacks=fallbacks,
    )


def format_register_table(
    baseline: RegisterStatistics, variant: RegisterStatistics
) -> str:
    """The Sec. 4.5 register statistics as a table."""
    lines = [
        f"{'class':<12}{'baseline':>10}{'variant':>10}{'increase':>10}"
        f"{'utilization':>13}"
    ]
    for rc in (RegClass.GR, RegClass.FR, RegClass.PR):
        lines.append(
            f"{rc.name:<12}{baseline.allocated[rc]:>10}"
            f"{variant.allocated[rc]:>10}"
            f"{variant.increase_percent(baseline, rc):>+9.1f}%"
            f"{100 * variant.utilization[rc]:>12.1f}%"
        )
    lines.append(
        f"{'spills':<12}{baseline.spills:>10}{variant.spills:>10}"
        f"{variant.spill_increase_percent(baseline):>+9.1f}%"
    )
    lines.append(
        f"{'attempts':<12}{baseline.attempts:>10}{variant.attempts:>10}"
        f"{variant.attempts_increase_percent(baseline):>+9.1f}%"
    )
    return "\n".join(lines)
