"""Instruction objects.

Instructions are identity-hashable (two structurally identical instructions
in a loop body are distinct schedulable entities).  Scheduling results live
outside the IR in :class:`repro.pipeliner.schedule.Schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.memref import MemRef
from repro.ir.opcodes import Opcode
from repro.ir.registers import Reg, RegClass


@dataclass(eq=False)
class Instruction:
    """One operation in a loop body.

    ``defs``/``uses`` list register operands.  Memory operations carry a
    :class:`MemRef` and an address register (always the first use for loads
    and prefetches, and for stores the first use is the *address*, the
    second the stored value).  ``post_increment`` models the Itanium
    ``ld4 r4 = [r5], 4`` form: the address register is both read and
    written, creating the loop recurrence on the induction variable.
    ``qual_pred`` is the qualifying predicate of an if-converted operation.
    """

    opcode: Opcode
    defs: tuple[Reg, ...] = ()
    uses: tuple[Reg, ...] = ()
    imm: int | None = None
    memref: MemRef | None = None
    post_increment: int | None = None
    qual_pred: Reg | None = None
    #: position in the loop body; assigned by :class:`repro.ir.loop.Loop`.
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.opcode.is_memory and self.memref is None:
            raise IRError(f"memory operation {self.opcode} requires a memref")
        if not self.opcode.is_memory and self.memref is not None:
            raise IRError(f"non-memory operation {self.opcode} carries a memref")
        if self.post_increment is not None and not self.opcode.is_memory:
            raise IRError("post-increment only valid on memory operations")
        if self.qual_pred is not None and self.qual_pred.rclass is not RegClass.PR:
            raise IRError("qualifying predicate must be a predicate register")

    # --- convenience delegations ---------------------------------------
    @property
    def mnemonic(self) -> str:
        return self.opcode.mnemonic

    @property
    def is_load(self) -> bool:
        return self.opcode.is_load

    @property
    def is_store(self) -> bool:
        return self.opcode.is_store

    @property
    def is_prefetch(self) -> bool:
        return self.opcode.is_prefetch

    @property
    def is_memory(self) -> bool:
        return self.opcode.is_memory

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def is_fp(self) -> bool:
        return self.opcode.is_fp

    @property
    def address_reg(self) -> Reg | None:
        """The address register of a memory operation (``None`` otherwise)."""
        if not self.opcode.is_memory or not self.uses:
            return None
        return self.uses[0]

    def all_uses(self) -> tuple[Reg, ...]:
        """Register uses including the qualifying predicate."""
        if self.qual_pred is None:
            return self.uses
        return self.uses + (self.qual_pred,)

    def all_defs(self) -> tuple[Reg, ...]:
        """Register defs including the post-incremented address register."""
        if self.post_increment is not None and self.address_reg is not None:
            return self.defs + (self.address_reg,)
        return self.defs

    def __repr__(self) -> str:
        from repro.ir.printer import format_instruction

        return f"<{self.index}: {format_instruction(self)}>"
