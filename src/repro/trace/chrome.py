"""Chrome trace-event JSON export (``chrome://tracing`` / Perfetto).

One process (pid 0) with one track per issue port (the op's row within
the II — the in-order core issues the same rows every kernel iteration),
one track per occupied OzQ slot, and a stall track.  Timestamps are
simulation cycles written into the ``ts``/``dur`` microsecond fields, so
1 us in the viewer = 1 cycle.

The exported object is plain JSON (the "JSON Object Format" of the trace
event spec: a ``traceEvents`` array plus metadata), and
:func:`validate_chrome_trace` performs the structural schema check CI
runs against every exported trace.
"""

from __future__ import annotations

import heapq
import json
from pathlib import Path

from repro.trace.events import TraceEvent

PID = 0
#: tid layout: ports first, then the stall track, then OzQ slots
STALL_TID = 900
OZQ_TID_BASE = 1000


def _meta(name: str, tid: int | None = None, sort: int | None = None) -> list[dict]:
    """Process/thread metadata events naming the tracks."""
    events = []
    if tid is None:
        events.append({
            "name": "process_name", "ph": "M", "pid": PID,
            "args": {"name": name},
        })
    else:
        events.append({
            "name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
            "args": {"name": name},
        })
        if sort is not None:
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": PID,
                "tid": tid, "args": {"sort_index": sort},
            })
    return events


def _assign_ozq_slots(
    intervals: list[tuple[float, float, str]],
) -> list[tuple[int, float, float, str]]:
    """Greedily pack (start, end, name) intervals onto slot tracks.

    Requests are assigned the lowest slot free at their start time —
    the same first-fit the hardware queue's occupancy visualisation
    needs.  Returns (slot, start, end, name) tuples.
    """
    free: list[int] = []  # min-heap of free slot ids
    busy: list[tuple[float, int]] = []  # (end, slot)
    next_slot = 0
    out: list[tuple[int, float, float, str]] = []
    for start, end, name in intervals:
        while busy and busy[0][0] <= start:
            _, slot = heapq.heappop(busy)
            heapq.heappush(free, slot)
        if free:
            slot = heapq.heappop(free)
        else:
            slot = next_slot
            next_slot += 1
        heapq.heappush(busy, (end, slot))
        out.append((slot, start, end, name))
    return out


def chrome_trace(
    events: list[TraceEvent],
    *,
    label: str = "repro-sim",
) -> dict:
    """Render a captured event stream as a Chrome trace-event object."""
    trace: list[dict] = _meta(label)
    ports: set[int] = set()
    ozq_intervals: list[tuple[float, float, str]] = []

    for event in events:
        kind = event.kind
        if kind == "issue":
            ports.add(event.row)
            trace.append({
                "name": event.tag, "cat": event.op_kind, "ph": "X",
                "ts": event.cycle, "dur": 1.0,
                "pid": PID, "tid": 1 + event.row,
                "args": {
                    "kernel_iter": event.kernel_iter,
                    "source_iter": event.source_iter,
                    "stage": event.stage,
                },
            })
        elif kind == "stall":
            trace.append({
                "name": f"stall-on-use {event.consumer}", "cat": "stall",
                "ph": "X", "ts": event.cycle, "dur": event.wait,
                "pid": PID, "tid": STALL_TID,
                "args": {
                    "slot": event.slot,
                    "source_iter": event.source_iter,
                    "inflight_k": event.inflight,
                },
            })
        elif kind == "ozq-stall":
            trace.append({
                "name": f"ozq-full {event.tag}", "cat": "stall",
                "ph": "X", "ts": event.cycle, "dur": event.wait,
                "pid": PID, "tid": STALL_TID,
                "args": {},
            })
        elif kind in ("load", "store", "prefetch"):
            if event.occupies_ozq and event.latency > 0:
                ozq_intervals.append((
                    event.cycle, event.cycle + event.latency,
                    f"{kind} {event.ref} L{event.level}",
                ))
        elif kind == "prefetch-drop":
            trace.append({
                "name": f"drop {event.tag}", "cat": "prefetch",
                "ph": "i", "ts": event.cycle, "pid": PID,
                "tid": STALL_TID, "s": "t",
                "args": {"reason": event.reason},
            })

    slots: set[int] = set()
    for slot, start, end, name in _assign_ozq_slots(ozq_intervals):
        slots.add(slot)
        trace.append({
            "name": name, "cat": "ozq", "ph": "X",
            "ts": start, "dur": end - start,
            "pid": PID, "tid": OZQ_TID_BASE + slot,
            "args": {},
        })

    for row in sorted(ports):
        trace.extend(_meta(f"port-{row}", tid=1 + row, sort=1 + row))
    trace.extend(_meta("stalls", tid=STALL_TID, sort=STALL_TID))
    for slot in sorted(slots):
        trace.extend(_meta(
            f"ozq-slot-{slot}", tid=OZQ_TID_BASE + slot,
            sort=OZQ_TID_BASE + slot,
        ))

    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "metadata": {"tool": "repro.trace", "clock": "cycles"},
    }


def validate_chrome_trace(data: object) -> list[str]:
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["top level is not an object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph not in ("X", "B", "E", "i", "M", "C"):
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing pid")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: missing tid")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    try:
        json.dumps(data)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serialisable: {exc}")
    return problems


def write_chrome_trace(
    path: str | Path, events: list[TraceEvent], *, label: str = "repro-sim"
) -> Path:
    """Export ``events`` to ``path`` as Chrome trace-event JSON."""
    path = Path(path)
    data = chrome_trace(events, label=label)
    problems = validate_chrome_trace(data)
    if problems:  # pragma: no cover - exporter bug guard
        raise ValueError(f"invalid chrome trace: {problems[:3]}")
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data) + "\n")
    return path
