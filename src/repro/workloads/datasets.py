"""Training vs reference input configurations.

SPEC benchmarks are compiled with profiles from *training* inputs and
measured on *reference* inputs.  A :class:`DataSet` pairs the two trip
distributions; mismatches between them reproduce the paper's 177.mesa
pathology ("an average trip count of 154 in the training sets, it becomes
a short-trip-count loop in the reference input sets with 8 iterations on
an average", Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hlo.profiles import TripDistribution


@dataclass(frozen=True)
class DataSet:
    """Train/ref trip behaviour for one loop workload."""

    train: TripDistribution
    ref: TripDistribution

    @staticmethod
    def steady(trips: float) -> "DataSet":
        """Same constant trip count in training and reference runs."""
        dist = TripDistribution(kind="constant", mean=trips)
        return DataSet(train=dist, ref=dist)

    @staticmethod
    def mismatch(train_trips: float, ref_trips: float) -> "DataSet":
        """Different behaviour between train and ref (the mesa case)."""
        return DataSet(
            train=TripDistribution(kind="constant", mean=train_trips),
            ref=TripDistribution(kind="constant", mean=ref_trips),
        )

    @staticmethod
    def variable(low: int, high: int) -> "DataSet":
        """Uniformly varying trip counts (high variance, Sec. 3.1)."""
        dist = TripDistribution(kind="uniform", low=low, high=high)
        return DataSet(train=dist, ref=dist)

    @staticmethod
    def bimodal(low: int, high: int, p_low: float = 0.5) -> "DataSet":
        dist = TripDistribution(kind="bimodal", low=low, high=high, p_low=p_low)
        return DataSet(train=dist, ref=dist)
