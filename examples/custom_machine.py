#!/usr/bin/env python
"""Exploring the machine-model knobs: what-if studies the paper hints at.

Sec. 4.5 closes with: "it indicates that the benefit could be much higher
if the queuing capacities in the cache hierarchy were increased."  This
example sweeps the OzQ depth and the hint-translation table on the mcf
archetype to quantify both statements:

* memory-level parallelism (OzQ depth) is what clustering converts into
  speedup — with depth 1 the benefit collapses;
* typical-latency translation (11/21) beats best-case translation (5/14)
  because the extra headroom absorbs dynamic hazards.

Run:  python examples/custom_machine.py
"""

import numpy as np

from repro import ItaniumMachine, MemorySystem, baseline_config, simulate_loop
from repro.config import CompilerConfig, HintPolicy
from repro.core.compiler import LoopCompiler
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.machine import BEST_CASE_TRANSLATION, TYPICAL_TRANSLATION
from repro.workloads.loops import pointer_chase


def run(machine, config, trips, invocations=1200):
    loop, layout = pointer_chase("refresh", heap=96 << 20)
    profile = collect_block_profile({"refresh": trips})
    compiled = LoopCompiler(machine, config).compile(loop, profile)
    rng = np.random.default_rng(7)
    sim = simulate_loop(
        compiled.result, machine, layout,
        list(trips.sample(rng, invocations)),
        memory=MemorySystem(machine.timings),
    )
    return sim.cycles


def main() -> None:
    trips = TripDistribution(kind="uniform", low=1, high=4)
    hlo = CompilerConfig(hint_policy=HintPolicy.HLO, trip_count_threshold=32)

    print("OzQ depth sweep (mcf archetype, HLO hints vs baseline):")
    for depth in (1, 2, 4, 8, 16, 48):
        machine = ItaniumMachine().with_ozq_capacity(depth)
        base = run(machine, baseline_config(), trips)
        boosted = run(machine, hlo, trips)
        gain = (base / boosted - 1) * 100
        print(f"  depth {depth:>2}: loop speedup {gain:+6.1f}%")
    print()

    print("Hint translation (48-entry OzQ):")
    for translation in (TYPICAL_TRANSLATION, BEST_CASE_TRANSLATION):
        machine = ItaniumMachine().with_translation(translation)
        base = run(machine, baseline_config(), trips)
        boosted = run(machine, hlo, trips)
        gain = (base / boosted - 1) * 100
        print(f"  {translation.name:<10} (L2->{translation.l2}, "
              f"L3->{translation.l3}): loop speedup {gain:+6.1f}%")


if __name__ == "__main__":
    main()
