"""Parallel experiment orchestration with a content-addressed cache.

The harness decomposes a suite experiment into pure, picklable
(benchmark, config) jobs (:mod:`repro.harness.jobs`), schedules them over
a supervised process pool (:mod:`repro.harness.workers` driven by
:mod:`repro.harness.pool`), memoises compile+simulate outcomes in an
on-disk content-addressed cache (:mod:`repro.harness.cache`), records
every run in a JSON manifest (:mod:`repro.harness.manifest`), and diffs
manifests (:mod:`repro.harness.compare`).  The repro service
(:mod:`repro.service`) is built on the same pieces.

Typical use::

    from repro.harness import ArtifactCache, run_suite, compare_configs

    cache = ArtifactCache("benchmarks/results/cache")
    run = run_suite(cpu2006_suite(), [baseline, variant],
                    workers=8, cache=cache, suite_name="cpu2006")
    result = compare_configs(run, baseline.label, variant.label)
"""

from repro.harness.cache import ArtifactCache, CacheStats, hash_key
from repro.harness.gap import measure_loop, run_gap_campaign
from repro.harness.jobs import (
    BenchmarkJob,
    JobOutcome,
    collect_profile,
    loop_run_key,
    run_job,
    run_loops,
)
from repro.harness.manifest import CellRecord, RunManifest, current_git_sha
from repro.harness.compare import (
    CellDelta,
    ManifestComparison,
    compare_manifests,
    format_comparison,
)
from repro.harness.pool import SuiteRun, compare_configs, run_jobs, run_suite
from repro.harness.workers import (
    TASK_ERROR,
    TASK_OK,
    TASK_TIMEOUT,
    TaskResult,
    WorkerPool,
    run_supervised,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "hash_key",
    "measure_loop",
    "run_gap_campaign",
    "BenchmarkJob",
    "JobOutcome",
    "collect_profile",
    "loop_run_key",
    "run_job",
    "run_loops",
    "CellRecord",
    "RunManifest",
    "current_git_sha",
    "CellDelta",
    "ManifestComparison",
    "compare_manifests",
    "format_comparison",
    "SuiteRun",
    "compare_configs",
    "run_jobs",
    "run_suite",
    "TASK_ERROR",
    "TASK_OK",
    "TASK_TIMEOUT",
    "TaskResult",
    "WorkerPool",
    "run_supervised",
]
