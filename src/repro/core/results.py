"""Result containers for benchmark and suite experiments.

These dataclasses are the common currency between the serial
:class:`~repro.core.experiment.Experiment` driver and the parallel
:mod:`repro.harness` job layer: both produce the same
:class:`BenchmarkResult` values, and the equality tests in
``tests/test_harness.py`` hold them to bit-identical cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler import CompiledLoop
from repro.hlo.profiles import geometric_mean
from repro.sim.counters import PerfCounters

#: how the serial (non-loop) component of a benchmark splits into the
#: cycle-accounting buckets — identical under every config by construction
SERIAL_SPLIT = {
    "unstalled": 0.52,
    "be_exe_bubble": 0.28,
    "be_l1d_fpu_bubble": 0.07,
    "be_rse_bubble": 0.04,
    "be_flush_bubble": 0.05,
    "back_end_bubble_fe": 0.04,
}


@dataclass
class LoopOutcome:
    """Per-loop compile + simulate outcome within one benchmark run."""

    compiled: CompiledLoop
    cycles: float
    counters: PerfCounters


@dataclass
class BenchmarkResult:
    """One benchmark under one configuration.

    ``loops`` carries the full per-loop compile artifacts when the result
    was produced in-process; results loaded from the artifact cache carry
    an empty list (the cycles and counters are cached, the compiled IR is
    not).
    """

    name: str
    suite: str
    config_label: str
    loop_cycles: float
    serial_cycles: float
    counters: PerfCounters
    loops: list[LoopOutcome] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return self.loop_cycles + self.serial_cycles


@dataclass
class ExperimentResult:
    """A baseline-vs-variant comparison over one suite."""

    baseline_label: str
    variant_label: str
    #: benchmark name -> percent gain over baseline (positive = faster)
    gains: dict[str, float]
    baseline: dict[str, BenchmarkResult]
    variant: dict[str, BenchmarkResult]

    @property
    def geomean_gain(self) -> float:
        ratios = [
            self.baseline[name].total_cycles / self.variant[name].total_cycles
            for name in self.gains
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0

    def gain(self, name: str) -> float:
        return self.gains[name]


def percent_gain(baseline_cycles: float, variant_cycles: float) -> float:
    """Speedup percentage: positive when the variant is faster."""
    return (baseline_cycles / variant_cycles - 1.0) * 100.0
