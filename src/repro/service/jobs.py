"""Execute canonical service requests: the worker side of the service.

:func:`execute_request` is the single picklable entry point the
:class:`~repro.harness.workers.WorkerPool` runs.  It receives a canonical
request (already validated by :mod:`repro.service.protocol`), dispatches
on the job kind, and returns a JSON-serialisable result dict — which the
front-end stores in the artifact store under the request key, so the next
identical submission never reaches a worker.

Everything here is built from the existing layers — the compiler driver,
the simulator, :mod:`repro.trace`, :mod:`repro.fuzz` and the PR 1 harness
— with no service-specific compute of its own: a ``bench`` job *is*
``run_suite`` (serial inside the worker; the pool provides process-level
parallelism across jobs, and workers share the store for per-loop-run
entries), a ``fuzz`` job *is* ``run_fuzz`` with its verdict cache pointed
at the shared store, and so on.  That is what keeps an HTTP-submitted
suite bit-identical to a local ``repro bench``.
"""

from __future__ import annotations

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.errors import ServiceError


def _build_config(canonical: dict) -> CompilerConfig:
    scheduler = canonical.get("scheduler", "heuristic")
    policy = HintPolicy(canonical["policy"])
    if policy is HintPolicy.BASELINE:
        config = baseline_config(
            pgo=canonical["pgo"], prefetch=canonical["prefetch"]
        )
        return config.with_(
            trip_count_threshold=canonical["threshold"], scheduler=scheduler
        )
    return CompilerConfig(
        hint_policy=policy,
        trip_count_threshold=canonical["threshold"],
        pgo=canonical["pgo"],
        prefetch=canonical["prefetch"],
        scheduler=scheduler,
    )


def _build_layout(canonical: dict, loop) -> dict:
    from repro.sim.address import StreamSpec

    layout = {
        name: StreamSpec(size=spec["size"], reuse=spec["reuse"])
        for name, spec in canonical["spaces"].items()
    }
    missing = sorted(
        {i.memref.space for i in loop.body if i.memref is not None}
        - set(layout)
    )
    # unspecified spaces default to 64M streaming, mirroring `repro trace`
    for space in missing:
        layout[space] = StreamSpec(size=64 << 20, reuse=False)
    return layout


def _resolve_machine(canonical: dict):
    from repro.machine import build_machine

    return build_machine(canonical.get("machine", "itanium2"))


def _run_compile(canonical: dict, cache_root: str | None) -> dict:
    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop

    loop = parse_loop(canonical["loop"])
    compiled = LoopCompiler(
        _resolve_machine(canonical), _build_config(canonical)
    ).compile(loop)
    stats = compiled.stats
    result = {
        "loop": loop.name,
        "summary": stats.summary(),
        "ii": stats.ii,
        "res_ii": stats.res_ii,
        "rec_ii": stats.rec_ii,
        "stage_count": stats.stage_count,
        "kernel": (
            compiled.result.kernel.format()
            if compiled.result.kernel is not None else None
        ),
        "verification": None,
    }
    if canonical["verify"]:
        from repro.analysis import verify_compiled

        report = verify_compiled(compiled)
        result["verification"] = {
            "ok": report.ok,
            "counts": report.counts(),
            "codes": sorted(report.codes()),
            "text": report.render_text(),
        }
    return result


def _compile_for_run(canonical: dict):
    from repro.core.compiler import LoopCompiler
    from repro.ir import parse_loop

    machine = _resolve_machine(canonical)
    loop = parse_loop(canonical["loop"])
    compiled = LoopCompiler(machine, _build_config(canonical)).compile(loop)
    return machine, loop, compiled


def _run_simulate(canonical: dict, cache_root: str | None) -> dict:
    from repro.harness.jobs import counters_to_dict
    from repro.sim import MemorySystem, simulate_loop

    machine, loop, compiled = _compile_for_run(canonical)
    run = simulate_loop(
        compiled.result,
        machine,
        _build_layout(canonical, loop),
        [canonical["trips"]] * canonical["invocations"],
        memory=machine.memory_system(),
        seed=canonical["seed"],
        backend=canonical.get("backend") or None,
    )
    return {
        "loop": run.loop_name,
        "summary": compiled.stats.summary(),
        "cycles": float(run.cycles),
        "cycles_per_iteration": run.cycles_per_iteration,
        "iterations": run.total_iterations,
        "counters": counters_to_dict(run.counters),
        "backend": run.backend,
    }


def _run_trace(canonical: dict, cache_root: str | None) -> dict:
    from repro.trace import trace_simulation, trace_summary

    machine, loop, compiled = _compile_for_run(canonical)
    traced = trace_simulation(
        compiled.result,
        machine,
        _build_layout(canonical, loop),
        [canonical["trips"]] * canonical["invocations"],
        seed=canonical["seed"],
    )
    run = traced.run
    return {
        "loop": run.loop_name,
        "summary": compiled.stats.summary(),
        "cycles": float(run.cycles),
        "cycles_per_iteration": run.cycles_per_iteration,
        "events": traced.total_events,
        "ok": traced.check.ok,
        "trace": trace_summary(traced.attribution, traced.check),
        "attribution": traced.attribution.to_dict(),
    }


def _run_fuzz(canonical: dict, cache_root: str | None) -> dict:
    from repro.fuzz import FuzzOptions, GenConfig, run_fuzz

    summary = run_fuzz(FuzzOptions(
        cases=canonical["cases"],
        seed=canonical["seed"],
        jobs=1,  # the service pool is the parallelism; workers stay flat
        shrink=canonical["shrink"],
        corpus_dir=None,
        cache_dir=cache_root,  # verdicts share the artifact store
        inject=canonical["inject"],
        machine=canonical.get("machine", "itanium2"),
        gen=GenConfig(max_ops=canonical["max_ops"]),
    ))
    return summary.to_dict()


def _run_bench(canonical: dict, cache_root: str | None) -> dict:
    from repro.harness import compare_configs, run_suite
    from repro.workloads import suite_by_name

    suite = suite_by_name(canonical["suite"])
    if canonical["benchmarks"]:
        wanted = set(canonical["benchmarks"])
        suite = [bench for bench in suite if bench.name in wanted]
        missing = wanted - {bench.name for bench in suite}
        if missing:
            raise ServiceError(
                f"unknown benchmark(s) in suite {canonical['suite']!r}: "
                f"{', '.join(sorted(missing))}",
                status=400,
            )
    scheduler = canonical.get("scheduler", "heuristic")
    base = baseline_config(
        pgo=canonical["pgo"], prefetch=canonical["prefetch"]
    )
    if scheduler != "heuristic":
        # the scheduler applies to every column, baseline included
        base = base.with_(
            scheduler=scheduler, name=f"{base.name},{scheduler}"
        )
    variants = [
        CompilerConfig(
            hint_policy=HintPolicy(policy),
            trip_count_threshold=canonical["threshold"],
            pgo=canonical["pgo"],
            prefetch=canonical["prefetch"],
            scheduler=scheduler,
        )
        for policy in canonical["configs"]
        if HintPolicy(policy) is not HintPolicy.BASELINE
    ]
    run = run_suite(
        suite,
        [base] + variants,
        machine=_resolve_machine(canonical),
        seed=canonical["seed"],
        workers=1,  # one job = one worker; the pool parallelises jobs
        cache=cache_root,
        suite_name=canonical["suite"],
        verify=canonical["verify"],
        trace=canonical["trace"],
        backend=canonical.get("backend", ""),
    )
    manifest = run.manifest
    gains = {
        variant.label: compare_configs(run, base.label, variant.label).gains
        for variant in variants
    }
    return {
        "manifest": manifest.to_dict(),
        "fingerprint": manifest.fingerprint(),
        "summary": manifest.summary(),
        "gains": gains,
    }


_EXECUTORS = {
    "compile": _run_compile,
    "simulate": _run_simulate,
    "trace": _run_trace,
    "fuzz": _run_fuzz,
    "bench": _run_bench,
}


def execute_request(spec: dict, cache_root: str | None = None) -> dict:
    """Run one canonical request; the WorkerPool entry point.

    ``spec`` is ``{"kind": ..., "request": <canonical dict>}``;
    ``cache_root`` points workers at the shared artifact store so nested
    per-loop-run and fuzz-verdict entries land next to the job results.
    """
    kind = spec["kind"]
    try:
        executor = _EXECUTORS[kind]
    except KeyError:
        raise ServiceError(f"unknown job kind {kind!r}", status=400) from None
    return executor(spec["request"], cache_root)
