"""Cross-cutting property-based tests on compiler invariants.

These complement the per-module tests with end-to-end invariants that
must hold for *any* loop the pipeline accepts:

* rotating blades of distinct values never overlap;
* kernel renaming is consistent: every use reads the register its
  producer's rotated definition lands in;
* the simulator never finishes a loop faster than its nominal issue time;
* compiling the same loop twice is deterministic;
* MinDist path weights are monotone under latency boosting, and acyclic
  slack is a well-formed non-negative quantity with a tight minimum.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import CompilerConfig, baseline_config
from repro.ddg.edges import DepKind
from repro.ddg.graph import build_ddg
from repro.ddg.mindist import NO_PATH, mindist_matrix
from repro.ddg.slack import acyclic_slacks
from repro.ir import LoopBuilder
from repro.ir.memref import LatencyHint
from repro.ir.registers import RegClass
from repro.machine import ItaniumMachine
from repro.pipeliner import pipeline_loop


@st.composite
def pipelinable_loops(draw):
    """Random loops with mixed hinted/unhinted loads and an optional
    accumulator recurrence."""
    b = LoopBuilder()
    n_loads = draw(st.integers(1, 4))
    values = []
    for i in range(n_loads):
        fp = draw(st.booleans())
        ref = b.memref(
            f"a{i}",
            stride=8 if fp else 4,
            size=8 if fp else 4,
            is_fp=fp,
            space=f"s{i}",
        )
        ref.hint = draw(st.sampled_from(
            [LatencyHint.NONE, LatencyHint.L2, LatencyHint.L3]
        ))
        ref.hint_source = "hlo" if ref.hint is not LatencyHint.NONE else ""
        mnemonic = "ldfd" if fp else "ld4"
        values.append(
            b.load(mnemonic, b.live_greg(f"p{i}"), ref, post_inc=ref.stride)
        )
    int_vals = [v for v in values if v.rclass is RegClass.GR]
    for _ in range(draw(st.integers(0, 4))):
        src_pool = int_vals or [b.live_greg("z")]
        int_vals.append(b.alu_imm("adds", draw(st.sampled_from(src_pool)), 1))
    if draw(st.booleans()):
        acc = b.live_freg("acc")
        fp_vals = [v for v in values if v.rclass is RegClass.FR]
        if fp_vals:
            b.alu_into("fadd", acc, acc, fp_vals[0])
            b.mark_live_out(acc)
    if int_vals and draw(st.booleans()):
        out = b.memref("c", stride=4, space="out")
        b.store("st4", b.live_greg("pc"), int_vals[-1], out, post_inc=4)
    return b.build("prop", trips=1000.0)


CFG = CompilerConfig(trip_count_threshold=0, prefetch=False)


class TestAllocationInvariants:
    @settings(max_examples=40, deadline=None)
    @given(pipelinable_loops())
    def test_blades_disjoint(self, loop):
        machine = ItaniumMachine()
        result = pipeline_loop(loop, machine, CFG)
        if not result.pipelined:
            return
        by_class: dict = {}
        for reg, (base, span) in result.rotating.blades.items():
            by_class.setdefault(reg.rclass, []).append((base, base + span))
        for intervals in by_class.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2, "overlapping rotating blades"

    @settings(max_examples=40, deadline=None)
    @given(pipelinable_loops())
    def test_kernel_renaming_consistent(self, loop):
        """use register == def register + rotations between def and use."""
        machine = ItaniumMachine()
        result = pipeline_loop(loop, machine, CFG)
        if not result.pipelined:
            return
        schedule, alloc = result.schedule, result.rotating
        kernel_ops = {op.inst.index: op for op in result.kernel.ops}
        for edge in result.ddg.edges:
            if edge.kind is not DepKind.FLOW or edge.reg is None:
                continue
            if edge.reg not in alloc.blades:
                continue
            t_def = schedule.time_of(edge.src)
            t_use = schedule.time_of(edge.dst) + schedule.ii * edge.omega
            rot = t_use // schedule.ii - t_def // schedule.ii
            def_num = dict(kernel_ops[edge.src.index].phys_defs)[edge.reg]
            use_nums = dict(kernel_ops[edge.dst.index].phys_uses)
            if edge.reg in use_nums:
                # the kernel reads the max-rotation instance; it must be
                # at least as far along as this edge's rotation
                assert use_nums[edge.reg] >= def_num + rot or rot == 0

    @settings(max_examples=30, deadline=None)
    @given(pipelinable_loops())
    def test_stage_predicates_cover_stages(self, loop):
        machine = ItaniumMachine()
        result = pipeline_loop(loop, machine, CFG)
        if not result.pipelined:
            return
        preds = {op.stage_pred for op in result.kernel.ops}
        assert all(16 <= p < 16 + result.stats.stage_count for p in preds)


class TestDependenceProperties:
    """Sec. 1/3.3 analytics: MinDist and slack over arbitrary loops."""

    @settings(max_examples=40, deadline=None)
    @given(pipelinable_loops(), st.integers(2, 12))
    def test_mindist_monotone_under_latency_boost(self, loop, ii):
        """Boosting load latencies never shortens any dependence path.

        Per-edge weights are non-decreasing when every flow edge resolves
        at the expected (hinted) latency instead of the base one, so the
        Floyd-Warshall longest paths are non-decreasing too — the formal
        reason a boosted schedule can only *stretch* (Sec. 3.3), never
        relax, a constraint.  ``check=False`` tolerates the boosted
        Recurrence II exceeding ``ii``.
        """
        machine = ItaniumMachine()
        ddg = build_ddg(loop)
        query = machine.latency_query
        base = mindist_matrix(ddg, ii, query, check=False)
        boosted = mindist_matrix(
            ddg, ii, query, expected=lambda edge: True, check=False
        )
        # reachability is a property of the edges, not the latencies
        assert ((base == NO_PATH) == (boosted == NO_PATH)).all()
        reachable = base != NO_PATH
        assert (boosted[reachable] >= base[reachable]).all()

    @settings(max_examples=40, deadline=None)
    @given(pipelinable_loops())
    def test_acyclic_slack_nonnegative_with_tight_minimum(self, loop):
        """Slack is >= 0 everywhere and some critical op has zero slack.

        Slack is the latest-minus-earliest placement gap within the
        acyclic critical path; a negative value would mean Lstart <
        Estart (an infeasible window), and a loop where *every* op had
        positive slack would contradict the critical path being critical
        (Sec. 1: non-critical loads are the ones with slack to spend).
        """
        machine = ItaniumMachine()
        ddg = build_ddg(loop)
        slacks = acyclic_slacks(ddg, machine.latency_query)
        assert slacks, "non-empty loop must yield slacks"
        assert all(s >= 0 for s in slacks.values())
        assert min(slacks.values()) == 0

    @settings(max_examples=25, deadline=None)
    @given(pipelinable_loops())
    def test_schedule_respects_mindist(self, loop):
        """Any schedule the driver accepts satisfies the MinDist bound:
        ``t(j) - t(i) >= mindist[i][j]`` for every reachable pair."""
        machine = ItaniumMachine()
        result = pipeline_loop(loop, machine, CFG)
        if not result.pipelined:
            return
        schedule = result.schedule
        dist = mindist_matrix(
            result.ddg, schedule.ii, machine.latency_query, check=False
        )
        times = {i.index: t for i, t in schedule.times.items()}
        n = len(result.ddg.nodes)
        for i in range(n):
            for j in range(n):
                if dist[i, j] == NO_PATH:
                    continue
                assert times[j] - times[i] >= dist[i, j]


class TestExecutionInvariants:
    @settings(max_examples=20, deadline=None)
    @given(pipelinable_loops(), st.integers(10, 60))
    def test_cycles_at_least_nominal(self, loop, trips):
        from repro.core.compiler import LoopCompiler
        from repro.sim import MemorySystem, simulate_loop
        from repro.sim.address import StreamSpec

        machine = ItaniumMachine()
        compiled = LoopCompiler(machine, baseline_config()).compile(loop)
        layout = {
            inst.memref.space: StreamSpec(size=1 << 20, reuse=True)
            for inst in compiled.loop.body
            if inst.memref is not None
        }
        run = simulate_loop(
            compiled.result, machine, layout, [trips],
            memory=MemorySystem(machine.timings),
        )
        stats = compiled.stats
        nominal = (trips + stats.stage_count - 1) * stats.ii
        assert run.cycles >= nominal

    @settings(max_examples=15, deadline=None)
    @given(pipelinable_loops())
    def test_compilation_deterministic(self, loop):
        import copy

        machine = ItaniumMachine()
        a = pipeline_loop(copy.deepcopy(loop), machine, CFG)
        b = pipeline_loop(copy.deepcopy(loop), machine, CFG)
        assert a.pipelined == b.pipelined
        if a.pipelined:
            assert a.ii == b.ii
            assert a.stats.stage_count == b.stats.stage_count
            assert [a.schedule.times[i] for i in a.loop.body] == [
                b.schedule.times[i] for i in b.loop.body
            ]
