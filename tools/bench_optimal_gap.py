#!/usr/bin/env python
"""Heuristic-vs-optimal scheduling gap across suites and machines.

How good is the paper's iterative modulo scheduler?  This campaign
compiles every hot loop of the workload suites — plus a seeded slice of
fuzz-generated loops — twice under the same HLO configuration, once
with the production heuristic and once with the exact branch-and-bound
scheduler (``repro.pipeliner.optimal``), verifies both results through
the full SA1xx–SA6xx translation validator, and reports the II,
stage-count and register gaps per loop and as a geomean.

The JSON report (``--out``, canonically
``benchmarks/results/BENCH_optimal_gap.json``) is deterministic — the
solver budget is counted in branch-and-bound nodes, never wall-clock —
so ``--check`` can regenerate the campaign and compare content
fingerprints, which is what the CI ``optimal-smoke`` job does.

``--harvest-dir`` scans the fuzz slice for hard instances (II gap above
one cycle, or a budget-capped solve) and commits shrunk reproducers to
the corpus via ``repro.fuzz.gapharvest``.

Usage::

    PYTHONPATH=src python tools/bench_optimal_gap.py \
        --out benchmarks/results/BENCH_optimal_gap.json --jobs 4
    PYTHONPATH=src python tools/bench_optimal_gap.py \
        --check benchmarks/results/BENCH_optimal_gap.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import DEFAULT_OPTIMAL_BUDGET
from repro.harness.gap import (
    DEFAULT_FUZZ_CASES,
    DEFAULT_FUZZ_SEED,
    GAP_SEED,
    harvestable,
    run_gap_campaign,
)

SUITES = ("micro", "cpu2000", "cpu2006")


def _print_summary(report: dict) -> None:
    for machine in report["machines"]:
        for section in ("suite", "fuzz"):
            s = report["summary"][machine][section]
            geo = s["ii_geomean_ratio"]
            ratio = f"{geo:.4f}" if geo is not None else "n/a"
            print(
                f"[{machine}] {section}: {s['loops']} loops, "
                f"{s['pipelined_pairs']} pairs, "
                f"{s['proven_optimal']} proven optimal, "
                f"{s['capped']} capped; "
                f"II gap total {s['ii_gap_total']} "
                f"(geomean ratio {ratio})"
            )
    print(f"fingerprint {report['fingerprint']}")
    print(f"{report['violations']} violation(s)")


def _harvest(report: dict, corpus_dir: Path, budget: int) -> list[str]:
    from repro.fuzz import GenConfig, generate_loop, harvest_case
    from repro.machine import build_machine

    machines = {}
    saved: list[str] = []
    seen: set[int] = set()
    for record in report["fuzz_loops"]:
        seed = record["fuzz_seed"]
        if seed in seen or not harvestable(record):
            continue
        seen.add(seed)
        name = record["machine"]
        if name not in machines:
            machines[name] = build_machine(name)
        loop = generate_loop(seed, GenConfig())
        files = harvest_case(
            loop, machines[name], budget, corpus_dir, seed=seed
        )
        if files:
            print(f"harvested og-{seed} ({record['machine']}): "
                  f"{', '.join(Path(f).name for f in files)}")
        saved.extend(files)
    return saved


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/"
                                     "BENCH_optimal_gap.json"))
    parser.add_argument("--check", type=Path, default=None, metavar="JSON",
                        help="regenerate the campaign recorded in JSON and "
                             "compare fingerprints instead of writing")
    parser.add_argument("--suite", action="append", default=None,
                        choices=SUITES, dest="suites",
                        help="suite(s) to measure (default: all three)")
    parser.add_argument("--machine", action="append", default=None,
                        dest="machines",
                        help="machine registry name(s) (default: all)")
    parser.add_argument("--budget", type=int,
                        default=DEFAULT_OPTIMAL_BUDGET, metavar="NODES",
                        help="exact-solver node budget per loop")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=GAP_SEED,
                        help="PGO profile seed (matches the bench harness)")
    parser.add_argument("--fuzz-cases", type=int, default=DEFAULT_FUZZ_CASES)
    parser.add_argument("--fuzz-seed", type=int, default=DEFAULT_FUZZ_SEED)
    parser.add_argument("--harvest-dir", type=Path, default=None,
                        help="commit shrunk hard fuzz instances here "
                             "(canonically tests/corpus)")
    args = parser.parse_args(argv)

    if args.check is not None:
        committed = json.loads(args.check.read_text())
        report = run_gap_campaign(
            suites=tuple(committed["suites"]),
            machines=tuple(committed["machines"]),
            budget=committed["budget"],
            seed=committed["seed"],
            fuzz_cases=committed["fuzz"]["cases"],
            fuzz_seed=committed["fuzz"]["seed"],
            jobs=args.jobs,
        )
        _print_summary(report)
        if report["fingerprint"] != committed["fingerprint"]:
            print(f"FINGERPRINT MISMATCH: regenerated "
                  f"{report['fingerprint']} != committed "
                  f"{committed['fingerprint']} ({args.check})")
            return 1
        print(f"fingerprint matches {args.check}")
        return 0 if report["violations"] == 0 else 1

    report = run_gap_campaign(
        suites=tuple(args.suites or SUITES),
        machines=tuple(args.machines) if args.machines else None,
        budget=args.budget,
        seed=args.seed,
        fuzz_cases=args.fuzz_cases,
        fuzz_seed=args.fuzz_seed,
        jobs=args.jobs,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.harvest_dir is not None:
        _harvest(report, args.harvest_dir, args.budget)
    _print_summary(report)
    return 0 if report["violations"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
