"""Ad-hoc validation: static bounds vs live simulation on all suites."""
import sys

import numpy as np

from repro.analysis.perfmodel import build_perf_model
from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core.compiler import LoopCompiler
from repro.harness.jobs import _stable, collect_profile
from repro.machine import ItaniumMachine
from repro.sim.executor import simulate_loop
from repro.sim.memory import MemorySystem
from repro.workloads import cpu2000_suite, cpu2006_suite, micro_suite

machine = ItaniumMachine()
configs = [
    baseline_config(),
    CompilerConfig(hint_policy=HintPolicy.HLO, trip_count_threshold=32),
    CompilerConfig(hint_policy=HintPolicy.ALL_LOADS_L3, trip_count_threshold=0),
]
suites = micro_suite() + cpu2006_suite() + cpu2000_suite()

checked = violations = 0
slack_min = float("inf")
for bench in suites:
    for config in configs:
        profile = collect_profile(bench, 11) if config.pgo else None
        compiler = LoopCompiler(machine, config)
        for pos, lw in enumerate(bench.loops):
            loop, layout = lw.build()
            compiled = compiler.compile(loop, profile)
            rng = np.random.default_rng(11 + pos * 977 + _stable(bench.name))
            trips = lw.data.ref.sample(rng, lw.invocations)
            memory = MemorySystem(machine.timings)
            sim = simulate_loop(
                compiled.result, machine, layout, trips,
                memory=memory, seed=11 + pos,
            )
            model = build_perf_model(compiled.result, machine, layout)
            rep = model.check_counters(trips, sim.counters, sim.cycles)
            checked += 1
            lo, up = model.cycle_interval(trips)
            if up != float("inf"):
                slack = (up - sim.cycles) / max(sim.cycles, 1)
                slack_min = min(slack_min, slack)
            tag = "OK " if rep.ok and not len(rep) else "BAD"
            status = (
                f"{tag} {bench.name}/{loop.name} [{config.label}] "
                f"pl={compiled.result.pipelined} ii={model.ii} "
                f"cyc={sim.cycles:.0f} lo={lo:.0f} "
                f"up={'inf' if up == float('inf') else f'{up:.0f}'} "
                f"zero_stall={model.zero_stall_proof} "
                f"ozq0={model.ozq_zero_proof} bank={model.bank_provable}"
            )
            print(status)
            if len(rep):
                violations += 1
                print(rep.render_text())
print(f"\nchecked {checked} cells, {violations} with findings; "
      f"min upper-bound slack {slack_min:.3f}")
sys.exit(1 if violations else 0)
