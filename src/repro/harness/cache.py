"""Content-addressed on-disk cache for compile + simulate outcomes.

A cache entry is addressed by the SHA-256 of a canonical JSON description
of everything the outcome depends on: the loop IR text, the memory-space
layout, the dataset distributions, the :class:`~repro.config.CompilerConfig`
knobs, the machine/memory parameters, and the dataset seed (the key
material is assembled in :func:`repro.harness.jobs.loop_run_key`).  Because
the whole pipeline is deterministic, two runs with the same key produce
bit-identical cycles and counters — so serving the second from disk is
behaviour-preserving, and repeated sweeps cost one JSON read per cell.

Entries are JSON files under ``root/<k[:2]>/<k>.json``.  Writes go through
a temporary file plus :func:`os.replace`, so concurrent pool workers — or
the :mod:`repro.service` front-end and its whole worker fleet — can share
one cache directory without torn reads.  A corrupt or truncated entry
(e.g. a crash mid-``fsync`` on a less forgiving filesystem) is treated as
a miss, deleted, and logged, so one bad file can never wedge a shared
store.  Passing ``max_entries`` bounds the directory: the oldest entries
are evicted automatically as writes go past the limit, which is what lets
a long-running service treat the cache as an artifact *store* rather than
an append-only log.  :meth:`ArtifactCache.verify` audits every entry and
:meth:`ArtifactCache.stats_snapshot` exposes the hit/miss/eviction
counters — the two maintenance calls behind the service's
``/v1/cache/verify`` and ``/v1/cache/stats`` endpoints.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: bump when the payload layout or key material changes incompatibly
CACHE_FORMAT_VERSION = 1

_log = logging.getLogger("repro.harness.cache")


def hash_key(material: dict) -> str:
    """SHA-256 over the canonical JSON encoding of ``material``."""
    canonical = json.dumps(
        material, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counts observed by one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: corrupt or truncated entries discarded on ``get``
    corrupt: int = 0
    #: entries removed by ``prune`` (explicit or the ``max_entries`` bound)
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """A directory of content-addressed JSON artifacts.

    ``max_entries`` (optional) turns the cache into a size-bounded store:
    once writes push the entry count past the bound, the oldest entries
    are evicted (checked every few puts, so a burst can transiently
    overshoot by the check interval).
    """

    def __init__(
        self, root: str | Path, *, max_entries: int | None = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._puts_since_bound_check = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` on a miss.

        A corrupt or truncated file counts as a miss *and is deleted* (a
        shared store must not serve — or keep re-parsing — a half-written
        entry forever); a missing file or a format-version mismatch is a
        plain miss and the entry is recomputed and rewritten.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._discard_corrupt(path, "undecodable JSON")
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or "data" not in payload:
            self._discard_corrupt(path, "missing payload envelope")
            self.stats.misses += 1
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["data"]

    def _discard_corrupt(self, path: Path, reason: str) -> None:
        self.stats.corrupt += 1
        try:
            os.unlink(path)
            _log.warning("discarded corrupt cache entry %s (%s)", path, reason)
        except OSError:  # another reader already discarded it
            _log.warning("corrupt cache entry %s (%s); already gone", path,
                         reason)

    def put(self, key: str, data: dict) -> None:
        """Store ``data`` under ``key`` (atomic, last writer wins).

        The payload is staged in a temporary file inside the cache root
        and moved into place with :func:`os.replace`, so any number of
        concurrent writers — pool workers, service workers, the service
        front-end — produce either the old complete entry or the new
        complete entry, never a torn one.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_FORMAT_VERSION, "key": key, "data": data}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        self._enforce_bound()

    def _enforce_bound(self) -> None:
        """Evict the oldest entries when writes exceed ``max_entries``.

        The (linear) directory scan runs every few puts, not on each one,
        so a write-heavy sweep amortises the bound check.
        """
        if self.max_entries is None:
            return
        self._puts_since_bound_check += 1
        interval = max(1, min(64, self.max_entries // 4))
        if self._puts_since_bound_check < interval:
            return
        self._puts_since_bound_check = 0
        self.prune(self.max_entries)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # --- maintenance -----------------------------------------------------
    def entries(self) -> list[tuple[str, float]]:
        """All stored ``(key, mtime)`` pairs, oldest first.

        Keys are recovered from the file names (they are content hashes,
        so the name *is* the key); in-flight temporaries are excluded.
        """
        if not self.root.is_dir():
            return []
        found: list[tuple[str, float]] = []
        for path in self.root.glob("*/*.json"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                found.append((path.stem, path.stat().st_mtime))
            except OSError:  # racing eviction from another process
                continue
        found.sort(key=lambda kv: (kv[1], kv[0]))
        return found

    def delete(self, key: str) -> bool:
        """Drop one entry; ``True`` when something was removed."""
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries until at most ``max_entries`` remain.

        Long-running fuzzing campaigns write one entry per case, so an
        unbounded cache directory grows forever; callers bound it with a
        periodic prune.  Returns the number of entries removed.  Safe
        under concurrent writers: eviction races count as already-gone.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        stored = self.entries()
        removed = 0
        for key, _mtime in stored[: max(0, len(stored) - max_entries)]:
            if self.delete(key):
                removed += 1
        self.stats.evictions += removed
        return removed

    def total_bytes(self) -> int:
        """Disk footprint of all stored entries (temporaries excluded)."""
        if not self.root.is_dir():
            return 0
        total = 0
        for path in self.root.glob("*/*.json"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def stats_snapshot(self) -> dict:
        """The ``stats`` maintenance view: counters plus store footprint.

        Counters are per-instance (this handle's lookups); ``entries`` and
        ``bytes`` reflect the shared on-disk state.
        """
        snapshot = self.stats.as_dict()
        snapshot.update({
            "root": str(self.root),
            "entries": len(self),
            "bytes": self.total_bytes(),
            "max_entries": self.max_entries,
        })
        return snapshot

    def verify(self, *, delete: bool = False) -> dict:
        """Audit every entry: decodable, right version, key matches name.

        Returns a report ``{"checked", "ok", "corrupt": [keys],
        "stale": [keys], "mismatched": [keys], "deleted"}`` where
        *corrupt* entries do not decode (or lack the payload envelope),
        *stale* ones carry a different :data:`CACHE_FORMAT_VERSION`, and
        *mismatched* ones embed a key that disagrees with their file name
        (an artifact copied to the wrong address).  With ``delete=True``
        every flagged entry is removed.
        """
        report = {
            "checked": 0,
            "ok": 0,
            "corrupt": [],
            "stale": [],
            "mismatched": [],
            "deleted": 0,
        }
        if not self.root.is_dir():
            return report
        for path in sorted(self.root.glob("*/*.json")):
            if path.name.startswith(".tmp-"):
                continue
            report["checked"] += 1
            bucket = None
            try:
                with open(path, encoding="utf-8") as fh:
                    payload = json.load(fh)
            except OSError:  # racing eviction
                report["checked"] -= 1
                continue
            except (json.JSONDecodeError, UnicodeDecodeError):
                bucket = "corrupt"
                payload = None
            if bucket is None:
                if not isinstance(payload, dict) or "data" not in payload:
                    bucket = "corrupt"
                elif payload.get("version") != CACHE_FORMAT_VERSION:
                    bucket = "stale"
                elif payload.get("key") != path.stem:
                    bucket = "mismatched"
            if bucket is None:
                report["ok"] += 1
                continue
            report[bucket].append(path.stem)
            if delete:
                try:
                    os.unlink(path)
                    report["deleted"] += 1
                except OSError:
                    pass
        return report
