"""Cycle accounting aggregation (Fig. 10) and the accounting identity.

Aggregates the simulator's per-benchmark counters across a whole suite
into the six microarchitectural buckets Caliper reports, so the benches
can print the baseline-vs-variant stacked columns of Fig. 10 and the
OzQ-full percentage discussed in Sec. 4.5.

The *cycle-accounting identity* lives here too: for any simulated run,
the sum of the bubble buckets plus ``unstalled`` must equal the total
simulated cycles — every cycle lands in exactly one bucket.  The
simulator accrues the buckets and the wall clock through separate code
paths, so :func:`verify_cycle_identity` is a real cross-check; it is the
same invariant ``repro.trace``'s closed-accounting check enforces per
traced run (see :func:`repro.trace.attribution.check_closed_accounting`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.results import BenchmarkResult
from repro.sim.counters import PerfCounters

BUCKETS = (
    "unstalled",
    "be_exe_bubble",
    "be_l1d_fpu_bubble",
    "be_rse_bubble",
    "be_flush_bubble",
    "back_end_bubble_fe",
)


@dataclass
class CycleAccount:
    """Suite-wide cycle accounting for one configuration."""

    label: str
    counters: PerfCounters

    @property
    def total(self) -> float:
        return self.counters.total_cycles

    def share(self, bucket: str) -> float:
        """Fraction of all cycles spent in ``bucket``."""
        if bucket not in BUCKETS:
            raise KeyError(f"unknown bucket {bucket!r}")
        return getattr(self.counters, bucket) / max(self.total, 1e-9)

    def ozq_full_percent(self) -> float:
        """Percent of cycles with a full OzQ (the L2D_OZQ_FULL counter)."""
        return 100.0 * self.counters.ozq_full_cycles / max(self.total, 1e-9)

    def delta_percent(self, other: "CycleAccount", bucket: str) -> float:
        """Percent change of a bucket's cycles vs another account.

        A bucket that appears out of nowhere (baseline zero, variant
        nonzero) is an infinite regression, not a no-op: returns
        ``math.inf``, which the report renderers print as ``new``.
        """
        mine = getattr(self.counters, bucket)
        theirs = getattr(other.counters, bucket)
        if theirs == 0:
            return 0.0 if mine == 0 else math.inf
        return 100.0 * (mine / theirs - 1.0)


def cycle_identity_residual(cycles: float, counters: PerfCounters) -> float:
    """``cycles - sum(buckets)``: zero when the accounting is closed."""
    return cycles - counters.total_cycles


def verify_cycle_identity(
    cycles: float,
    counters: PerfCounters,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-6,
) -> bool:
    """True when the bucket sum reproduces the simulated cycle total.

    The tolerances only absorb float summation-order differences — the
    buckets and the wall clock accrue the same terms in different
    groupings — not real accounting gaps.
    """
    return math.isclose(
        cycles, counters.total_cycles, rel_tol=rel_tol, abs_tol=abs_tol
    )


def accumulate_account(
    results: dict[str, BenchmarkResult], label: str
) -> CycleAccount:
    """Sum counters across a suite run into one account."""
    total = PerfCounters()
    for result in results.values():
        total.merge(result.counters)
    return CycleAccount(label=label, counters=total)
