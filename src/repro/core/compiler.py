"""The loop compiler: HLO + pipeliner under one configuration.

This is the library's main entry point::

    from repro import LoopCompiler, CompilerConfig, ItaniumMachine

    compiler = LoopCompiler(ItaniumMachine(), CompilerConfig())
    compiled = compiler.compile(loop)
    print(compiled.result.kernel.format())

Compilation never mutates the caller's loop: the pipeline clones the IR
(including memory references, so hint annotations cannot leak between
configurations — important when the experiment harness compiles the same
workload under baseline and variant settings).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.config import CompilerConfig
from repro.hlo.hintpass import run_hlo
from repro.hlo.prefetcher import PrefetchPlan
from repro.hlo.profiles import BlockProfile
from repro.ir.loop import Loop
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.driver import PipelineResult, pipeline_loop
from repro.pipeliner.stats import PipelineStats

#: loops estimated to run fewer iterations than this are left to the
#: acyclic scheduler — with fewer than two overlappable iterations,
#: pipelining cannot even fill (the paper's mcf loop runs at 2.3
#: iterations on average and *is* pipelined, Sec. 4.4)
MIN_PIPELINE_TRIPS = 2


@dataclass
class CompiledLoop:
    """Everything compilation produced for one loop."""

    loop: Loop
    config: CompilerConfig
    plan: PrefetchPlan
    result: PipelineResult

    @property
    def stats(self) -> PipelineStats:
        return self.result.stats

    @property
    def pipelined(self) -> bool:
        return self.result.pipelined


class LoopCompiler:
    """Compiles loops: HLO passes, then the software pipeliner."""

    def __init__(
        self,
        machine: ItaniumMachine | None = None,
        config: CompilerConfig | None = None,
    ) -> None:
        self.machine = machine or ItaniumMachine()
        self.config = config or CompilerConfig()

    def compile(
        self, loop: Loop, profile: BlockProfile | None = None
    ) -> CompiledLoop:
        """Compile one loop; ``profile`` supplies PGO trip counts."""
        work = copy.deepcopy(loop)
        plan = run_hlo(work, self.machine, self.config, profile)

        trips = work.average_trips(self.config.default_trip_estimate)
        if trips >= MIN_PIPELINE_TRIPS:
            # counted loops pipeline with br.ctop; while loops with
            # br.wtop and speculative fill (the mcf refresh_potential
            # loop of Sec. 4.4 is a while loop)
            if self.config.scheduler == "optimal":
                from repro.pipeliner.optimal import optimal_pipeline_loop

                result = optimal_pipeline_loop(work, self.machine, self.config)
            else:
                result = pipeline_loop(work, self.machine, self.config)
        else:
            # too few iterations: the acyclic global scheduler handles it
            result = self._unpipelined(work)
        return CompiledLoop(loop=work, config=self.config, plan=plan, result=result)

    def _unpipelined(self, loop: Loop) -> PipelineResult:
        from repro.ddg.graph import build_ddg
        from repro.pipeliner.bounds import compute_bounds
        from repro.pipeliner.scheduler import list_schedule_length

        ddg = build_ddg(loop)
        bounds = compute_bounds(ddg, self.machine)
        seq = list_schedule_length(ddg, self.machine)
        stats = PipelineStats(
            loop_name=loop.name,
            pipelined=False,
            ii=seq,
            res_ii=bounds.res_ii,
            rec_ii=bounds.rec_ii,
            total_loads=len(loop.loads),
        )
        return PipelineResult(
            loop=loop,
            ddg=ddg,
            bounds=bounds,
            pipelined=False,
            stats=stats,
            seq_length=seq,
        )
