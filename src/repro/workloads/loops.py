"""Loop templates: the hot-loop archetypes behind the paper's results.

Each template builds a fresh :class:`~repro.ir.loop.Loop` plus the
:class:`~repro.sim.address.StreamSpec` layout describing the runtime
behaviour of its memory spaces.  Templates are pure factories — every call
returns new IR, so compilations under different configs never share
mutable memrefs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop
from repro.ir.memref import AccessPattern
from repro.sim.address import StreamSpec

KB = 1024
MB = 1024 * 1024

LoopFactory = Callable[[], tuple[Loop, dict[str, StreamSpec]]]


@dataclass(frozen=True)
class LoopTemplate:
    """A named loop factory with a short description."""

    name: str
    build: LoopFactory
    description: str


def stream_int(
    name: str,
    streams: int = 1,
    working_set: int = 64 * MB,
    stride: int = 4,
    reuse: bool = False,
) -> tuple[Loop, dict[str, StreamSpec]]:
    """Integer streaming: ``c[i] = a0[i] + a1[i] + ... + k`` (the running
    example generalised).  With ``streams > 4`` the prefetcher's OzQ
    pressure rule kicks in (Sec. 3.2 rule 3)."""
    b = LoopBuilder()
    addend = b.live_greg("addend")
    acc = None
    for s in range(streams):
        ref = b.memref(f"a{s}", stride=stride, size=4, space=f"{name}.a{s}")
        addr = b.live_greg(f"pa{s}")
        x = b.load("ld4", addr, ref, post_inc=stride)
        acc = x if acc is None else b.alu("add", acc, x)
    assert acc is not None
    total = b.alu("add", acc, addend)
    out = b.memref("c", stride=stride, size=4, space=f"{name}.c")
    b.store("st4", b.live_greg("pc"), total, out, post_inc=stride)
    loop = b.build(name)
    layout = {
        f"{name}.a{s}": StreamSpec(size=working_set, reuse=reuse)
        for s in range(streams)
    }
    layout[f"{name}.c"] = StreamSpec(size=working_set, reuse=reuse)
    return loop, layout


def stream_fp(
    name: str,
    working_set: int = 64 * MB,
    reuse: bool = False,
    extra_flops: int = 1,
    stride: int = 8,
) -> tuple[Loop, dict[str, StreamSpec]]:
    """FP daxpy-style kernel: ``y[i] = a*x[i] + y[i]`` with optional extra
    dependent fma work per iteration (namd/wrf-style FP loops).  A stride
    wider than a cache line (lbm-style scattered lattice cells) makes every
    iteration miss and keeps many fills in flight — OzQ pressure."""
    b = LoopBuilder()
    a = b.live_freg("a")
    xref = b.memref("x", stride=stride, size=8, is_fp=True, space=f"{name}.x")
    yref = b.memref("y", stride=stride, size=8, is_fp=True, space=f"{name}.y")
    px, py, pz = b.live_greg("px"), b.live_greg("py"), b.live_greg("pz")
    x = b.load("ldfd", px, xref, post_inc=stride)
    y = b.load("ldfd", py, yref, post_inc=stride)
    v = b.fma(a, x, y)
    for _ in range(extra_flops - 1):
        v = b.fma(a, v, y)
    zref = b.memref("z", stride=stride, size=8, is_fp=True, space=f"{name}.z")
    b.store("stfd", pz, v, zref, post_inc=stride)
    loop = b.build(name)
    layout = {
        f"{name}.x": StreamSpec(size=working_set, reuse=reuse),
        f"{name}.y": StreamSpec(size=working_set, reuse=reuse),
        f"{name}.z": StreamSpec(size=working_set, reuse=reuse),
    }
    return loop, layout


def reduction_fp(
    name: str, working_set: int = 8 * MB, reuse: bool = False
) -> tuple[Loop, dict[str, StreamSpec]]:
    """FP sum reduction: the accumulator recurrence pins the Recurrence II
    at the fadd latency, so the *load* still has slack (non-critical)."""
    b = LoopBuilder()
    xref = b.memref("x", stride=8, size=8, is_fp=True, space=f"{name}.x")
    px = b.live_greg("px")
    acc = b.live_freg("acc")
    x = b.load("ldfd", px, xref, post_inc=8)
    b.alu_into("fadd", acc, acc, x)
    b.mark_live_out(acc)
    loop = b.build(name)
    return loop, {f"{name}.x": StreamSpec(size=working_set, reuse=reuse)}


def gather(
    name: str,
    index_set: int = 4 * MB,
    data_set: int = 64 * MB,
    reuse: bool = False,
    fp: bool = False,
) -> tuple[Loop, dict[str, StreamSpec]]:
    """Indirect gather ``c[i] = f(data[idx[i]])`` — Sec. 3.2 rule 2b: the
    indirect side is prefetched at a reduced distance and marked.  With
    ``fp=True`` the gathered data is floating point (the namd/wrf/art
    interaction-list archetype)."""
    b = LoopBuilder()
    elem = 8 if fp else 4
    iref = b.memref("idx", stride=4, size=4, space=f"{name}.idx")
    dref = b.memref(
        "data",
        pattern=AccessPattern.INDIRECT,
        size=elem,
        is_fp=fp,
        space=f"{name}.data",
        index_ref=iref,
    )
    pi = b.live_greg("pi")
    idx = b.load("ld4", pi, iref, post_inc=4)
    daddr = b.alu("shladd", idx, b.live_greg("base"))
    if fp:
        val = b.load("ldfd", daddr, dref)
        out = b.fma(b.live_freg("scale"), val, b.live_freg("bias"))
        cref = b.memref(
            "c", stride=8, size=8, is_fp=True, space=f"{name}.c"
        )
        b.store("stfd", b.live_greg("pc"), out, cref, post_inc=8)
    else:
        val = b.load("ld4", daddr, dref)
        out = b.alu_imm("adds", val, 1)
        cref = b.memref("c", stride=4, size=4, space=f"{name}.c")
        b.store("st4", b.live_greg("pc"), out, cref, post_inc=4)
    loop = b.build(name)
    return loop, {
        f"{name}.idx": StreamSpec(size=index_set, reuse=reuse),
        f"{name}.data": StreamSpec(size=data_set, reuse=reuse),
        f"{name}.c": StreamSpec(size=index_set, reuse=reuse),
    }


def pointer_chase(
    name: str,
    heap: int = 96 * MB,
    field_loads: int = 2,
    node_size: int = 64,
    predicated: bool = False,
) -> tuple[Loop, dict[str, StreamSpec]]:
    """The 429.mcf ``refresh_potential`` archetype (Sec. 4.4)::

        while (node) {
            node->potential = node->basic_arc->cost + node->pred->potential;
            node = node->child;
        }

    The ``node = node->child`` load is a self-recurrent pointer chase (on
    the recurrence cycle, hence *critical*); the field dereferences are
    delinquent, unprefetchable, and off-cycle — the loads the paper's
    rule 1 marks and clusters (k = 2 at the observed trip count)."""
    b = LoopBuilder()
    node = b.live_greg("node")

    # the original C has "if (node->orientation == UP) ... else ...";
    # after if-conversion the sides carry qualifying predicates
    qual = None
    if predicated:
        qual = b.cmp(node, b.live_greg("up_const"))

    # fields of the *current* node first (their addresses come from the
    # previous iteration's chase result — an omega-1 flow dependence that
    # keeps them OFF the recurrence cycle, hence boostable)
    total = None
    layout: dict[str, StreamSpec] = {}
    for f in range(field_loads):
        fref = b.memref(
            f"field{f}",
            pattern=AccessPattern.POINTER_CHASE,
            size=8,
            space=f"{name}.field{f}",
        )
        val = b.load("ld8", node, fref, qual_pred=qual)
        total = val if total is None else b.alu("add", total, val,
                                                qual_pred=qual)
        layout[f"{name}.field{f}"] = StreamSpec(
            size=heap, node_size=node_size, reuse=False
        )
    assert total is not None
    pref = b.memref(
        "potential",
        pattern=AccessPattern.POINTER_CHASE,
        size=8,
        space=f"{name}.potential",
    )
    b.store("st8", node, total, pref)
    layout[f"{name}.potential"] = StreamSpec(
        size=heap, node_size=node_size, reuse=False
    )

    # node = node->child last: self-recurrent load, ON the recurrence
    # cycle (the pipeliner must keep it at base latency — it is critical)
    chase_ref = b.memref(
        "child",
        pattern=AccessPattern.POINTER_CHASE,
        size=8,
        space=f"{name}.nodes",
    )
    b.load_into("ld8", node, node, chase_ref)
    layout[f"{name}.nodes"] = StreamSpec(
        size=heap, node_size=node_size, reuse=False
    )
    loop = b.build(name, counted=False)  # "while (node)" — a while loop
    return loop, layout


def low_trip_linear(
    name: str, working_set: int = 8 * KB, trips_bound: int | None = None
) -> tuple[Loop, dict[str, StreamSpec]]:
    """The 464.h264ref archetype: a hot, low-trip-count loop over
    L1-resident data (SAD-style).  Boosting its loads buys nothing and
    adds pipeline stages (Sec. 4.2)."""
    b = LoopBuilder()
    aref = b.memref("blk", stride=4, size=4, space=f"{name}.blk")
    bref = b.memref("refb", stride=4, size=4, space=f"{name}.ref")
    pa, pb = b.live_greg("pa"), b.live_greg("pb")
    acc = b.live_greg("acc")
    x = b.load("ld4", pa, aref, post_inc=4)
    y = b.load("ld4", pb, bref, post_inc=4)
    d = b.alu("sub", x, y)
    b.alu_into("add", acc, acc, d)
    b.mark_live_out(acc)
    loop = b.build(name, max_trips=trips_bound)
    return loop, {
        f"{name}.blk": StreamSpec(size=working_set, reuse=True),
        f"{name}.ref": StreamSpec(size=working_set, reuse=True),
    }


def symbolic_stride(
    name: str,
    working_set: int = 64 * MB,
    runtime_stride: int = 4096,
) -> tuple[Loop, dict[str, StreamSpec]]:
    """Column-walk with a stride unknown at compile time (rule 2a): the
    prefetch distance is capped for TLB pressure, exposing latency."""
    b = LoopBuilder()
    aref = b.memref(
        "col",
        pattern=AccessPattern.SYMBOLIC_STRIDE,
        size=8,
        is_fp=True,
        space=f"{name}.col",
    )
    pa = b.live_greg("pa")
    stride_reg = b.live_greg("stride")
    x = b.load("ldfd", pa, aref)
    b.alu_into("add", pa, pa, stride_reg)  # pa += stride (in place)
    acc = b.live_freg("acc")
    b.alu_into("fadd", acc, acc, x)
    b.mark_live_out(acc)
    loop = b.build(name)
    return loop, {
        f"{name}.col": StreamSpec(
            size=working_set, runtime_stride=runtime_stride, reuse=False
        )
    }


def stencil_fp(
    name: str, working_set: int = 32 * MB, taps: int = 3, reuse: bool = False
) -> tuple[Loop, dict[str, StreamSpec]]:
    """Multi-tap FP stencil: several references share cache lines, so the
    prefetcher picks one leading reference per group (Sec. 3.2)."""
    b = LoopBuilder()
    px = b.live_greg("px")
    coef = b.live_freg("coef")
    acc = None
    layout = {f"{name}.x": StreamSpec(size=working_set, reuse=reuse)}
    refs = [
        b.memref(
            "x",
            stride=8,
            size=8,
            is_fp=True,
            space=f"{name}.x",
            offset=8 * t,
        )
        for t in range(taps)
    ]
    first = b.load("ldfd", px, refs[0], post_inc=8)
    acc = first
    for t in range(1, taps):
        v = b.load("ldfd", px, refs[t])
        acc = b.fma(coef, v, acc)
    oref = b.memref("out", stride=8, size=8, is_fp=True, space=f"{name}.out")
    b.store("stfd", b.live_greg("po"), acc, oref, post_inc=8)
    layout[f"{name}.out"] = StreamSpec(size=working_set, reuse=reuse)
    loop = b.build(name)
    return loop, layout


def l2_resident_fp(
    name: str, working_set: int = 160 * KB
) -> tuple[Loop, dict[str, StreamSpec]]:
    """FP data that lives in L2: every FP load pays the L2 latency (FP
    bypasses L1), which the ALL_FP_L2 default hint covers (Sec. 4.3)."""
    return stream_fp(name, working_set=working_set, reuse=True)


def l3_resident_int(
    name: str, working_set: int = 6 * MB
) -> tuple[Loop, dict[str, StreamSpec]]:
    """Integer data in L3: moderate-latency misses, prefetchable."""
    return stream_int(name, streams=2, working_set=working_set, reuse=True)


def cache_resident_gather(
    name: str, working_set: int = 48 * KB
) -> tuple[Loop, dict[str, StreamSpec]]:
    """The 445.gobmk archetype: indirect references that *look* delinquent
    to the static heuristics but actually hit in cache, in loops whose
    real trip count is tiny (Sec. 4.3's worst case)."""
    return gather(
        name, index_set=working_set, data_set=working_set, reuse=True
    )


#: registry used by tests and the example scripts
TEMPLATES: dict[str, LoopTemplate] = {
    t.name: t
    for t in [
        LoopTemplate("stream_int", lambda: stream_int("stream_int"),
                     "integer streaming (running example)"),
        LoopTemplate("stream_fp", lambda: stream_fp("stream_fp"),
                     "FP daxpy streaming"),
        LoopTemplate("reduction_fp", lambda: reduction_fp("reduction_fp"),
                     "FP reduction with accumulator recurrence"),
        LoopTemplate("gather", lambda: gather("gather"),
                     "indirect gather a[b[i]]"),
        LoopTemplate("pointer_chase", lambda: pointer_chase("pointer_chase"),
                     "mcf refresh_potential pointer chase"),
        LoopTemplate("low_trip_linear", lambda: low_trip_linear("low_trip"),
                     "h264ref low-trip L1-resident loop"),
        LoopTemplate("symbolic_stride", lambda: symbolic_stride("symbolic"),
                     "symbolic-stride column walk"),
        LoopTemplate("stencil_fp", lambda: stencil_fp("stencil_fp"),
                     "multi-tap FP stencil with line groups"),
    ]
}
