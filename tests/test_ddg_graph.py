"""Tests for DDG construction."""

from repro.ddg import DepKind, build_ddg
from repro.ir import LoopBuilder, parse_loop
from repro.ir.memref import AccessPattern


def _edges(ddg, kind=None):
    return [e for e in ddg.edges if kind is None or e.kind is kind]


class TestRegisterDependences:
    def test_running_example_edges(self, running_example):
        ddg = build_ddg(running_example)
        flows = _edges(ddg, DepKind.FLOW)
        assert len(flows) == 4
        # post-increment self-recurrences on both address registers
        self_loops = [e for e in flows if e.src is e.dst]
        assert len(self_loops) == 2
        assert all(e.omega == 1 for e in self_loops)
        # the two intra-iteration data flows
        intra = [e for e in flows if e.omega == 0]
        assert len(intra) == 2

    def test_live_in_has_no_edge(self, running_example):
        ddg = build_ddg(running_example)
        # r9 (the addend) is live-in: no producer edge targets its use
        add = running_example.body[1]
        pred_regs = {e.reg for e in ddg.preds(add)}
        load_data = running_example.body[0].defs[0]
        assert pred_regs == {load_data}

    def test_accumulator_creates_loop_carried_flow(self):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"), b.memref("a", size=8, is_fp=True),
                   post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        ddg = build_ddg(b.build("red"))
        self_edges = [e for e in ddg.edges if e.src is e.dst and e.reg == acc]
        assert len(self_edges) == 1
        assert self_edges[0].omega == 1

    def test_use_before_def_is_loop_carried(self):
        """A register read at a smaller body index than its definition
        carries the previous iteration's value."""
        b = LoopBuilder()
        node = b.live_greg("node")
        ref = b.memref("f", pattern=AccessPattern.POINTER_CHASE, size=8)
        val = b.load("ld8", node, ref)  # reads node (defined below)
        chase = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8,
                         space="nodes")
        b.load_into("ld8", node, node, chase)
        ddg = build_ddg(b.build("walk"))
        carried = [
            e for e in ddg.edges
            if e.reg == node and e.dst.index == 0 and e.omega == 1
        ]
        assert carried, "field load must depend on previous iteration's chase"


class TestMemoryDependences:
    def test_distinct_spaces_are_independent(self, running_example):
        ddg = build_ddg(running_example)
        assert not [e for e in ddg.edges if e.kind.is_memory]

    def test_same_space_intra_iteration_ordering(self):
        loop = parse_loop(
            """
            memref A affine stride=4 space=s
            memref B affine stride=4 space=s
            loop rw
              ld4 r1 = [r2], 4 !A
              add r3 = r1, r9
              st4 [r4] = r3, 4 !B
            """
        )
        ddg = build_ddg(loop)
        anti = [e for e in ddg.edges if e.kind is DepKind.MEM_ANTI]
        assert len(anti) == 1
        assert anti[0].omega == 0

    def test_affine_pairs_have_no_carried_memory_edges(self):
        loop = parse_loop(
            """
            memref A affine stride=4 space=s
            memref B affine stride=4 space=s
            loop rw
              ld4 r1 = [r2], 4 !A
              st4 [r4] = r1, 4 !B
            """
        )
        ddg = build_ddg(loop)
        carried = [e for e in ddg.edges if e.kind.is_memory and e.omega == 1]
        assert not carried

    def test_non_analysable_store_gets_self_output_dep(self):
        b = LoopBuilder()
        node = b.live_greg("node")
        pref = b.memref("p", pattern=AccessPattern.POINTER_CHASE, size=8)
        x = b.live_greg("x")
        b.store("st8", node, x, pref)
        chase = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8,
                         space="nodes")
        b.load_into("ld8", node, node, chase)
        ddg = build_ddg(b.build("w"))
        self_out = [
            e for e in ddg.edges
            if e.kind is DepKind.MEM_OUTPUT and e.src is e.dst
        ]
        assert len(self_out) == 1

    def test_prefetches_unconstrained(self):
        b = LoopBuilder()
        a = b.memref("a", stride=4)
        addr = b.live_greg("pa")
        x = b.load("ld4", addr, a, post_inc=4)
        b.prefetch(addr, a)
        b.store("st4", b.live_greg("pc"), x, b.memref("c", stride=4),
                post_inc=4)
        ddg = build_ddg(b.build("pf"))
        lfetch = b._body[1]
        mem_edges = [
            e for e in ddg.edges
            if e.kind.is_memory and (e.src is lfetch or e.dst is lfetch)
        ]
        assert not mem_edges

    def test_succs_preds_consistency(self, running_example):
        ddg = build_ddg(running_example)
        for inst in ddg.nodes:
            for e in ddg.succs(inst):
                assert e.src is inst
                assert e in ddg.preds(e.dst)
