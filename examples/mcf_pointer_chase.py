#!/usr/bin/env python
"""The Sec. 4.4 case study: mcf's refresh_potential() pointer chase.

    while (node) {
        node->potential = node->basic_arc->cost + node->pred->potential;
        node = node->child;
    }

The ``node->child`` load is a self-recurrent pointer chase — it sits on
the recurrence cycle, cannot be prefetched, and must stay at its base
latency (the criticality analysis keeps it there).  The two field loads
are delinquent too, but OFF the cycle: HLO rule 1 marks them, the
pipeliner stretches their load-use distances, and instances from
successive iterations cluster even though the loop runs only ~2.3
iterations per invocation.

Run:  python examples/mcf_pointer_chase.py
"""

import numpy as np

from repro import ItaniumMachine, MemorySystem, baseline_config, simulate_loop
from repro.config import CompilerConfig, HintPolicy
from repro.core.compiler import LoopCompiler
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.workloads.loops import pointer_chase


def main() -> None:
    machine = ItaniumMachine()
    data = TripDistribution(kind="uniform", low=1, high=4)  # avg ~2.5
    profile = collect_block_profile({"refresh": data})

    runs = {}
    for label, config in (
        ("baseline", baseline_config()),
        ("hlo-hints", CompilerConfig(hint_policy=HintPolicy.HLO,
                                     trip_count_threshold=32)),
    ):
        loop, layout = pointer_chase("refresh", heap=96 << 20)
        compiled = LoopCompiler(machine, config).compile(loop, profile)
        stats = compiled.stats

        print(f"--- {label} ---")
        print(f"pipelined: {stats.pipelined}, II={stats.ii}, "
              f"stages={stats.stage_count}")
        print(f"critical loads: {stats.critical_loads} "
              f"(the node->child chase)")
        print(f"boosted loads : {stats.boosted_loads} (the field loads)")
        for p in stats.placements:
            kind = "critical" if not p.boosted else "boosted"
            print(f"  {p.load.memref.name:<10} use distance "
                  f"{p.use_distance:>2} cycles  [{kind}]")

        rng = np.random.default_rng(42)
        trips = data.sample(rng, 1500)
        sim = simulate_loop(
            compiled.result, machine, layout, list(trips),
            memory=MemorySystem(machine.timings),
        )
        runs[label] = sim
        print(f"simulated {sim.total_iterations} iterations over "
              f"{sim.invocations} invocations: {sim.cycles:,.0f} cycles")
        print(f"  data-stall cycles: {sim.counters.be_exe_bubble:,.0f}")
        print()

    speedup = (runs["baseline"].cycles / runs["hlo-hints"].cycles - 1) * 100
    print(f"loop speedup: {speedup:+.1f}%   (paper, Sec. 4.4: ~40%)")


if __name__ == "__main__":
    main()
