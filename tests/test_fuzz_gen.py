"""The loop generator: determinism, validity, and knob coverage."""

import pytest

from repro.fuzz.gen import GenConfig, generate_loop, loop_fingerprint
from repro.ir.memref import AccessPattern, LatencyHint
from repro.ir.validate import validate_loop


class TestDeterminism:
    def test_same_seed_same_loop(self):
        for seed in range(20):
            a = generate_loop(seed)
            b = generate_loop(seed)
            assert loop_fingerprint(a) == loop_fingerprint(b)

    def test_different_seeds_differ(self):
        prints = {
            frozenset(str(loop_fingerprint(generate_loop(seed)).items()))
            for seed in range(20)
        }
        # a couple of collisions would be fine; total collapse would not
        assert len(prints) > 10

    def test_config_is_part_of_the_identity(self):
        small = GenConfig(max_ops=4, max_loads=1, max_stores=0,
                          max_recurrences=0)
        assert loop_fingerprint(generate_loop(7, small)) != loop_fingerprint(
            generate_loop(7)
        )


class TestValidity:
    @pytest.mark.parametrize("seed", range(40))
    def test_every_loop_validates(self, seed):
        validate_loop(generate_loop(seed))

    def test_size_bound_respected(self):
        cfg = GenConfig(max_ops=6)
        for seed in range(30):
            loop = generate_loop(seed, cfg)
            assert 1 <= len(loop.body) <= 6


class TestKnobCoverage:
    """Every stress axis of the paper shows up somewhere in a seed sweep."""

    def _sweep(self, config=None, n=80):
        return [generate_loop(seed, config) for seed in range(n)]

    def test_recurrences_appear(self):
        assert any(loop.live_out for loop in self._sweep())

    def test_hints_appear_and_vary(self):
        hints = {
            ref.hint
            for loop in self._sweep()
            for ref in loop.memrefs
        }
        assert LatencyHint.NONE in hints
        assert hints & {LatencyHint.L2, LatencyHint.L3, LatencyHint.MEM}

    def test_aliasing_pressure_appears(self):
        shared = 0
        for loop in self._sweep():
            spaces = [ref.space for ref in loop.memrefs]
            if len(spaces) != len(set(spaces)):
                shared += 1
        assert shared, "no seed ever put two refs in one space"

    def test_independence_assertions_appear(self):
        assert any(loop.independent_spaces for loop in self._sweep())

    def test_pointer_chase_appears_and_can_be_disabled(self):
        def has_chase(loop):
            return any(
                ref.pattern is AccessPattern.POINTER_CHASE
                for ref in loop.memrefs
            )

        assert any(has_chase(loop) for loop in self._sweep())
        cfg = GenConfig(allow_chase=False)
        assert not any(has_chase(loop) for loop in self._sweep(cfg))

    def test_trip_counts_span_the_threshold(self):
        trips = {loop.trip_count.estimate for loop in self._sweep()}
        assert min(trips) < 32 < max(trips)

    def test_stores_appear(self):
        assert any(loop.stores for loop in self._sweep())
