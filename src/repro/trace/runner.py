"""High-level tracing entry points.

:func:`trace_simulation` runs a compiled loop through the simulator with
a capture sink and the streaming stall-attribution analyzer teed
together, then verifies closed accounting against the run's counters.
:func:`trace_summary` condenses an analyzer into the compact, JSON-
round-trippable dict the harness records per manifest cell and stores in
the artifact cache; :func:`merge_trace_summaries` folds the per-loop
summaries of a benchmark into one cell summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.driver import PipelineResult
from repro.sim.address import AddressMap, StreamSpec
from repro.sim.executor import LoopRunResult, simulate_loop
from repro.sim.memory import MemorySystem
from repro.trace.attribution import (
    AccountingCheck,
    StallAttribution,
    check_closed_accounting,
)
from repro.trace.events import (
    CaptureSink,
    RingBufferSink,
    TeeSink,
    TraceEvent,
)


@dataclass
class TraceResult:
    """A traced simulation: the run, the events, and the roll-up."""

    run: LoopRunResult
    events: list[TraceEvent]
    attribution: StallAttribution
    check: AccountingCheck
    #: total events emitted (>= len(events) when a ring buffer dropped)
    total_events: int


def trace_simulation(
    result: PipelineResult,
    machine: ItaniumMachine,
    layout: dict[str, StreamSpec],
    trip_counts: list[int] | np.ndarray,
    *,
    seed: int = 11,
    memory: MemorySystem | None = None,
    address_map: AddressMap | None = None,
    ring: int | None = None,
) -> TraceResult:
    """Simulate ``result`` with full tracing and closed accounting.

    ``ring`` bounds event capture to the last N events (flight-recorder
    mode); the attribution analyzer always sees the complete stream, so
    the per-load reports and accounting stay exact either way.
    """
    capture = RingBufferSink(ring) if ring else CaptureSink()
    attribution = StallAttribution()
    sink = TeeSink(capture, attribution)
    run = simulate_loop(
        result,
        machine,
        layout,
        trip_counts,
        memory=memory or machine.memory_system(),
        seed=seed,
        address_map=address_map,
        sink=sink,
    )
    check = check_closed_accounting(attribution, run.counters, run.cycles)
    return TraceResult(
        run=run,
        events=capture.events,
        attribution=attribution,
        check=check,
        total_events=capture.total,
    )


# --- compact summaries (manifest cells / cache payloads) ----------------------

def trace_summary(
    attribution: StallAttribution, check: AccountingCheck
) -> dict:
    """The compact cell summary: totals, coverage, clustering, status.

    Every value is JSON-native (str keys, ints, floats), so a summary
    loaded back from a cache payload or a manifest compares equal to the
    in-process one — the property the harness determinism tests pin.
    """
    return {
        "ok": check.ok,
        "failures": list(check.failures),
        "events": attribution.events,
        "loops": 1,
        "sites": len(attribution.sites),
        # plain floats: numpy scalars leaking in from the address streams
        # would not round-trip through the JSON cache layer unchanged
        "stall_on_use": float(attribution.stall_on_use_total),
        "ozq_stall": float(attribution.ozq_stall_total),
        "ozq_full": float(attribution.ozq_full_total),
        "coverage": float(attribution.coverage),
        "mean_clustering": float(attribution.mean_clustering),
        "clustering": {
            str(k): n for k, n in sorted(attribution.clustering.items())
        },
        "prefetches_issued": attribution.prefetches_issued,
        "prefetches_dropped": attribution.prefetches_dropped,
    }


def merge_trace_summaries(summaries: list[dict]) -> dict:
    """Fold per-loop summaries into one benchmark-cell summary.

    Sums are added; ``coverage`` and ``mean_clustering`` are re-derived
    as stall-weighted/latency-weighted means are not reconstructible from
    the compact form, so the merged values are the event-weighted means —
    documented in docs/trace.md.
    """
    if not summaries:
        return {"ok": True, "failures": [], "events": 0, "loops": 0,
                "sites": 0, "stall_on_use": 0.0, "ozq_stall": 0.0,
                "ozq_full": 0.0, "coverage": 1.0, "mean_clustering": 0.0,
                "clustering": {}, "prefetches_issued": 0,
                "prefetches_dropped": 0}
    out = {
        "ok": all(s["ok"] for s in summaries),
        "failures": [f for s in summaries for f in s["failures"]],
        "events": sum(s["events"] for s in summaries),
        "loops": sum(s["loops"] for s in summaries),
        "sites": sum(s["sites"] for s in summaries),
        "stall_on_use": float(sum(s["stall_on_use"] for s in summaries)),
        "ozq_stall": float(sum(s["ozq_stall"] for s in summaries)),
        "ozq_full": float(sum(s["ozq_full"] for s in summaries)),
        "prefetches_issued": sum(s["prefetches_issued"] for s in summaries),
        "prefetches_dropped": sum(s["prefetches_dropped"] for s in summaries),
    }
    clustering: dict[str, int] = {}
    for s in summaries:
        for k, n in s["clustering"].items():
            clustering[k] = clustering.get(k, 0) + n
    out["clustering"] = {k: clustering[k] for k in sorted(clustering, key=int)}
    stalls = sum(sum(s["clustering"].values()) for s in summaries)
    out["mean_clustering"] = float(
        sum(s["mean_clustering"] * sum(s["clustering"].values())
            for s in summaries) / stalls
        if stalls else 0.0
    )
    weights = sum(s["events"] for s in summaries)
    out["coverage"] = float(
        sum(s["coverage"] * s["events"] for s in summaries) / weights
        if weights else 1.0
    )
    return out


# --- text rendering -----------------------------------------------------------

def render_attribution_text(attribution: StallAttribution) -> str:
    """The per-load stall/coverage table plus the clustering histogram."""
    lines = []
    sites = sorted(
        attribution.sites.values(),
        key=lambda s: (-s.stall_cycles, s.tag),
    )
    total_stall = attribution.stall_on_use_total
    lines.append(
        f"stall attribution: {total_stall:,.0f} stall-on-use cycles "
        f"over {len(sites)} load site(s)"
    )
    if sites:
        width = max(len(s.tag) for s in sites) + 2
        lines.append(
            f"  {'site':<{width}}{'loads':>8}{'lat(avg)':>10}"
            f"{'coverage':>10}{'stall cyc':>12}{'share':>8}"
        )
        for s in sites:
            share = 100.0 * s.stall_cycles / total_stall if total_stall else 0.0
            lines.append(
                f"  {s.tag:<{width}}{s.instances:>8}{s.mean_latency:>10.1f}"
                f"{100.0 * s.coverage:>9.1f}%{s.stall_cycles:>12.0f}"
                f"{share:>7.1f}%"
            )
    lines.append(
        f"OzQ: {attribution.ozq_stall_total:,.0f} issue-stall cycles, "
        f"{attribution.ozq_full_total:,.0f} cycles at capacity"
    )
    if attribution.prefetches_issued or attribution.prefetches_dropped:
        lines.append(
            f"prefetches: {attribution.prefetches_issued} issued, "
            f"{attribution.prefetches_dropped} dropped"
        )
    if attribution.clustering:
        lines.append(
            "clustering (k = misses in flight at each stall, Sec. 2.1):"
        )
        for k in sorted(attribution.clustering):
            n = attribution.clustering[k]
            cycles = attribution.clustering_cycles.get(k, 0.0)
            lines.append(
                f"  k={k:<3} {n:>8} stall(s) {cycles:>12,.0f} cycles"
            )
        lines.append(
            f"  mean k = {attribution.mean_clustering:.2f} "
            f"(cycle-weighted)"
        )
    lines.append(
        f"measured latency coverage: {100.0 * attribution.coverage:.1f}%"
    )
    return "\n".join(lines)
