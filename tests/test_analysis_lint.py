"""IR lint (SA1xx) behaviour tests, including the validate_loop gaps.

The mutation tests in ``test_analysis_mutations.py`` prove each code can
fire; this file pins the *behaviour*: clean loops stay clean, the two
historical ``validate_loop`` gaps (use-before-def and store arity) are
closed, and the legacy wrapper still raises ``IRError`` with the
messages its callers match on.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_loop
from repro.errors import IRError
from repro.ir import (
    Instruction,
    Loop,
    MemRef,
    opcode,
    parse_loop,
    validate_loop,
)
from repro.ir.registers import greg
from repro.workloads import suite_by_name

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "loops"

COPY_ADD = """
memref A affine stride=4 space=a
memref B affine stride=4 space=b
loop copy_add trips=200 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
"""


class TestCleanLoops:
    def test_parsed_loop_is_clean(self):
        assert not lint_loop(parse_loop(COPY_ADD)).findings

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES.glob("*.s")), ids=lambda p: p.stem
    )
    def test_shipped_examples_are_clean(self, path):
        report = lint_loop(parse_loop(path.read_text()))
        assert not report.errors, report.render_text()

    @pytest.mark.parametrize("suite", ["micro", "cpu2000", "cpu2006"])
    def test_workload_suites_are_clean(self, suite):
        for bench in suite_by_name(suite):
            for lw in bench.loops:
                loop, _ = lw.build()
                report = lint_loop(loop)
                assert not report.findings, report.render_text()


class TestUseBeforeDefGap:
    """Satellite fix: validate_loop never caught reads of garbage."""

    def carried_loop(self, live_in):
        # vr4 is read at index 0 but only defined at index 1: iteration 0
        # reads garbage unless vr4 carries an initial live-in value.
        return Loop(
            "carried",
            body=[
                Instruction(opcode("add"), defs=(greg(7),), uses=(greg(4),)),
                Instruction(opcode("ld4"), defs=(greg(4),), uses=(greg(5),),
                            memref=MemRef("A"), post_increment=4),
            ],
            live_in=live_in,
            live_out={greg(7)},
        )

    def test_loop_carried_first_read_needs_live_in(self):
        report = lint_loop(self.carried_loop(live_in={greg(5)}))
        assert report.has("SA104")
        assert "read before its definition" in report.errors[0].message

    def test_live_in_initial_value_makes_it_legal(self):
        report = lint_loop(self.carried_loop(live_in={greg(4), greg(5)}))
        assert not report.has("SA104")

    def test_validate_loop_now_rejects_it(self):
        with pytest.raises(IRError, match="read before its definition"):
            validate_loop(self.carried_loop(live_in={greg(5)}))

    def test_never_defined_use_rejected(self):
        loop = Loop(
            "garbage",
            body=[Instruction(opcode("add"), defs=(greg(7),),
                              uses=(greg(9),))],
            live_out={greg(7)},
        )
        with pytest.raises(IRError, match="never defined"):
            validate_loop(loop)


class TestStoreArityGap:
    """Satellite fix: the old check counted mentions, not slots."""

    def test_store_with_one_mention_rejected(self):
        # old check: len(uses) < 2 was only reachable with 0 or 1 operands;
        # a store writing its own address register ([r6] = r6) still has a
        # single *mention* even though two slots are required
        loop = Loop(
            "selfstore",
            body=[Instruction(opcode("st4"), uses=(greg(6),),
                              memref=MemRef("B"))],
            live_in={greg(6)},
        )
        report = lint_loop(loop)
        assert report.has("SA105")
        assert "one mention is not both" in report.errors[0].message

    def test_store_defining_a_register_rejected(self):
        loop = Loop(
            "defstore",
            body=[Instruction(opcode("st4"), defs=(greg(8),),
                              uses=(greg(6), greg(7)), memref=MemRef("B"))],
            live_in={greg(6), greg(7)},
            live_out={greg(8)},
        )
        report = lint_loop(loop)
        assert report.has("SA105")
        assert "must not define" in report.errors[0].message

    def test_load_with_two_results_rejected(self):
        loop = Loop(
            "twodefs",
            body=[Instruction(opcode("ld4"), defs=(greg(4), greg(8)),
                              uses=(greg(5),), memref=MemRef("A"))],
            live_in={greg(5)},
            live_out={greg(4), greg(8)},
        )
        assert lint_loop(loop).has("SA105")

    def test_prefetch_with_result_rejected(self):
        loop = Loop(
            "pfdef",
            body=[Instruction(opcode("lfetch"), defs=(greg(4),),
                              uses=(greg(5),), memref=MemRef("A"))],
            live_in={greg(5)},
            live_out={greg(4)},
        )
        assert lint_loop(loop).has("SA105")


class TestLegacyWrapper:
    """validate_loop stays the parser/builder entry point: raises IRError
    with the message fragments its existing callers and tests match on."""

    @pytest.mark.parametrize(
        "loop, fragment",
        [
            (Loop("empty"), "empty body"),
            (
                Loop("branchy",
                     body=[Instruction(opcode("br.cond"))]),
                "branch",
            ),
            (
                Loop(
                    "redef",
                    body=[
                        Instruction(opcode("add"), defs=(greg(7),),
                                    uses=(greg(4),)),
                        Instruction(opcode("mov"), defs=(greg(7),),
                                    uses=(greg(4),)),
                    ],
                    live_in={greg(4)},
                    live_out={greg(7)},
                ),
                "multiple definitions",
            ),
            (
                Loop(
                    "phantom",
                    body=[Instruction(opcode("add"), defs=(greg(7),),
                                      uses=(greg(4),))],
                    live_in={greg(4)},
                    live_out={greg(7), greg(20)},
                ),
                "live-out",
            ),
        ],
        ids=["empty", "branch", "redef", "liveout"],
    )
    def test_error_messages_keep_their_fragments(self, loop, fragment):
        with pytest.raises(IRError, match=fragment):
            validate_loop(loop)

    def test_warnings_do_not_raise(self):
        loop = Loop(
            "dead",
            body=[Instruction(opcode("add"), defs=(greg(7),),
                              uses=(greg(4),))],
            live_in={greg(4)},
        )
        assert lint_loop(loop).has("SA107")
        validate_loop(loop)  # warning severity: no exception

    def test_clean_loop_passes(self):
        validate_loop(parse_loop(COPY_ADD))
