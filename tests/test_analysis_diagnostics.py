"""Tests for the diagnostics framework: registry, findings, renderers."""

import json

import pytest

from repro.analysis import CODES, Diagnostic, DiagnosticReport, Severity
from repro.ir import Instruction, Loop, opcode
from repro.ir.registers import greg


def make_inst():
    loop = Loop(
        "probe",
        body=[Instruction(opcode("add"), defs=(greg(7),), uses=(greg(4),))],
        live_in={greg(4)},
        live_out={greg(7)},
    )
    return loop.body[0]


class TestRegistry:
    def test_every_subsystem_is_covered(self):
        prefixes = {code[:3] for code in CODES}
        assert prefixes == {"SA1", "SA2", "SA3", "SA4", "SA5", "SA6"}

    def test_codes_are_well_formed(self):
        for code, info in CODES.items():
            assert code == info.code
            assert code.startswith("SA") and code[2:].isdigit()
            assert info.title
            assert isinstance(info.severity, Severity)

    def test_note_codes_are_exactly_the_observations(self):
        notes = [c for c, i in CODES.items() if i.severity is Severity.NOTE]
        assert notes == ["SA404", "SA502", "SA503"]

    def test_severity_ordering(self):
        assert Severity.ERROR < Severity.WARNING < Severity.NOTE
        assert not Severity.NOTE < Severity.ERROR

    def test_docs_list_every_code(self):
        """docs/analysis.md is the user-facing registry; keep it in sync."""
        from pathlib import Path

        docs = (
            Path(__file__).resolve().parent.parent / "docs" / "analysis.md"
        ).read_text()
        for code in CODES:
            assert code in docs, f"{code} missing from docs/analysis.md"


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic(code="SA999", message="nope")

    def test_severity_and_title_come_from_registry(self):
        diag = Diagnostic(code="SA404", message="m")
        assert diag.severity is Severity.NOTE
        assert diag.title == CODES["SA404"].title

    def test_format_carries_location_and_instruction(self):
        report = DiagnosticReport()
        diag = report.add("SA107", "never used", loop="probe",
                          inst=make_inst())
        line = diag.format()
        assert line.startswith("probe:0: SA107 warning: never used")
        assert "[add vr7 = vr4]" in line

    def test_to_dict_is_json_ready(self):
        diag = Diagnostic(code="SA202", message="m", loop="l", inst=3,
                          detail={"slack": -2})
        payload = diag.to_dict()
        assert payload["code"] == "SA202"
        assert payload["severity"] == "error"
        assert payload["inst"] == 3
        assert payload["detail"] == {"slack": -2}
        json.dumps(payload)  # must round-trip


class TestReport:
    def make_report(self):
        report = DiagnosticReport()
        report.add("SA404", "stretched", loop="l", inst=2)
        report.add("SA202", "violated", loop="l", inst=1)
        report.add("SA107", "dead", loop="l", inst=0)
        return report

    def test_accounting(self):
        report = self.make_report()
        assert len(report) == 3
        assert report.counts() == {"error": 1, "warning": 1, "note": 1}
        assert not report.ok
        assert report.codes() == ["SA107", "SA202", "SA404"]
        assert report.has("SA202") and not report.has("SA203")

    def test_ok_ignores_warnings_and_notes(self):
        report = DiagnosticReport()
        report.add("SA107", "dead", loop="l")
        report.add("SA404", "stretched", loop="l")
        assert report.ok

    def test_sorted_is_most_severe_first(self):
        codes = [d.code for d in self.make_report().sorted()]
        assert codes == ["SA202", "SA107", "SA404"]

    def test_extend_merges(self):
        a, b = self.make_report(), self.make_report()
        assert len(a.extend(b)) == 6

    def test_render_text(self):
        text = self.make_report().render_text()
        assert text.splitlines()[0].startswith("l:1: SA202 error:")
        assert text.endswith("1 error(s), 1 warning(s), 1 note(s)")
        assert DiagnosticReport().render_text() == "no findings"

    def test_render_json_matches_to_dict(self):
        report = self.make_report()
        assert json.loads(report.render_json()) == report.to_dict()
        payload = report.to_dict()
        assert payload["ok"] is False
        assert [f["code"] for f in payload["findings"]] == [
            "SA202", "SA107", "SA404",
        ]

    def test_add_accepts_instruction_or_index(self):
        report = DiagnosticReport()
        by_inst = report.add("SA103", "m", loop="l", inst=make_inst())
        by_index = report.add("SA103", "m", loop="l", inst=5)
        assert by_inst.inst == 0 and by_inst.where == "add vr7 = vr4"
        assert by_index.inst == 5 and by_index.where == ""
