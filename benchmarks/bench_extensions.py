"""Benches for the Sec. 6 outlook extensions and the Sec. 5 comparisons.

1. **Dynamic cache-miss sampling** vs the static HLO heuristics on the
   mcf archetype: measured miss levels should match or beat the
   heuristic hints.
2. **Trip-count versioning** removes the mesa train/ref pathology while
   keeping the long-invocation gains.
3. **Balanced scheduling** (Kerns & Eggers) vs hint-directed boosting:
   uniform budgets pay pipeline depth on loads that never miss.
4. **Modulo variable expansion** vs register rotation: the code-size cost
   of clustering without rotating registers (Sec. 5: "Without rotating
   registers, this effect could only be achieved with unrolling").
"""

from functools import partial

import numpy as np
import pytest

from benchmarks.conftest import base_cfg, hlo_cfg
from repro.config import CompilerConfig, HintPolicy
from repro.core.compiler import LoopCompiler
from repro.core.versioning import compile_versions, simulate_versioned
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.hlo.sampling import collect_miss_profile, hints_from_miss_profile
from repro.pipeliner.balanced import balanced_pipeline
from repro.pipeliner.mve import generate_mve_kernel
from repro.sim import MemorySystem, simulate_loop
from repro.workloads.loops import low_trip_linear, pointer_chase

MB = 1 << 20


def _simulate(machine, result, layout, trips, seed=7):
    return simulate_loop(
        result, machine, layout, trips,
        memory=MemorySystem(machine.timings), seed=seed,
    )


def test_ext_sampled_hints(benchmark, record, machine):
    """Sampling-directed hints on the mcf archetype."""
    factory = partial(pointer_chase, "smp", heap=64 * MB)
    dist = TripDistribution(kind="uniform", low=1, high=4)
    profile = collect_block_profile({"smp": dist}, seed=2008)
    rng = np.random.default_rng(2008)
    trips = list(dist.sample(rng, 900))

    runs = {}
    miss_profile = collect_miss_profile(factory, machine, [3] * 60)
    for label in ("baseline", "hlo", "sampled"):
        loop, layout = factory()
        if label == "sampled":
            hints_from_miss_profile(loop, miss_profile)
            cfg = CompilerConfig(hint_policy=HintPolicy.SAMPLED,
                                 trip_count_threshold=32, name="sampled")
        elif label == "hlo":
            cfg = hlo_cfg()
        else:
            cfg = base_cfg()
        compiled = LoopCompiler(machine, cfg).compile(loop, profile)
        runs[label] = _simulate(machine, compiled.result, layout, trips)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = runs["baseline"].cycles
    lines = [
        f"{label:<10} {run.cycles:>12,.0f} cycles  "
        f"{100 * (base / run.cycles - 1):+6.1f}%"
        for label, run in runs.items()
    ]
    record("ext_sampled_hints", "\n".join(lines))
    # sampling matches (or beats) the static heuristics on this loop
    assert runs["sampled"].cycles < base * 0.8
    assert runs["sampled"].cycles <= runs["hlo"].cycles * 1.1


def test_ext_trip_count_versioning(benchmark, record, machine):
    """Versioning vs the mesa pathology under blanket L3 hints."""
    factory = partial(low_trip_linear, "ver")
    profile = collect_block_profile(
        {"ver": TripDistribution(kind="constant", mean=154)}, seed=2008
    )
    cfg = CompilerConfig(hint_policy=HintPolicy.ALL_LOADS_L3,
                         trip_count_threshold=32, name="l3")
    trips = [8] * 500  # the reference inputs run short

    loop, layout = factory()
    plain = LoopCompiler(machine, cfg).compile(loop, profile)
    plain_sim = _simulate(machine, plain.result, layout, trips)

    versioned, layout_v = compile_versions(
        factory, machine, cfg, profile=profile, threshold=32
    )
    multi = simulate_versioned(
        versioned, machine, layout_v, trips,
        memory=MemorySystem(machine.timings),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    gain = 100 * (plain_sim.cycles / multi.cycles - 1)
    record(
        "ext_trip_count_versioning",
        (
            f"boosted-only build : {plain_sim.cycles:,.0f} cycles\n"
            f"versioned build    : {multi.cycles:,.0f} cycles "
            f"({gain:+.1f}%)\n"
            "(the runtime check routes 8-iteration invocations to the\n"
            " conventional kernel, undoing the mesa regression)"
        ),
    )
    assert multi.cycles < plain_sim.cycles * 0.92


def test_ext_balanced_vs_hints(benchmark, record, machine):
    """Uniform latency budgets vs selective hint-directed boosting."""
    results = {}
    # a loop that needs deep boosting (mcf fields)...
    chase_factory = partial(pointer_chase, "balmcf", heap=64 * MB)
    dist = TripDistribution(kind="uniform", low=1, high=4)
    profile = collect_block_profile({"balmcf": dist}, seed=2008)
    rng = np.random.default_rng(2008)
    chase_trips = list(dist.sample(rng, 700))
    # ...and one that needs none (L1-resident SAD)
    resident_factory = partial(low_trip_linear, "balres",
                               working_set=8 * 1024)
    resident_trips = [12] * 300

    for label in ("hlo", "balanced"):
        per_loop = {}
        for key, factory, trips, est in (
            ("delinquent", chase_factory, chase_trips, 2.5),
            ("resident", resident_factory, resident_trips, 12.0),
        ):
            loop, layout = factory()
            loop.trip_count.estimate = est
            if label == "balanced":
                result = balanced_pipeline(loop, machine, total_budget=22)
            else:
                result = LoopCompiler(machine, hlo_cfg()).compile(
                    loop, profile
                ).result
            per_loop[key] = _simulate(machine, result, layout, trips).cycles
        results[label] = per_loop

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'loop':<12}{'hint-directed':>15}{'balanced':>12}"]
    for key in ("delinquent", "resident"):
        lines.append(
            f"{key:<12}{results['hlo'][key]:>15,.0f}"
            f"{results['balanced'][key]:>12,.0f}"
        )
    lines.append(
        "(uniform budgets add pipeline depth to cache-resident loads\n"
        " the paper's case for selective, prefetcher-guided boosting)"
    )
    record("ext_balanced_vs_hints", "\n".join(lines))
    # on the loop that never misses, the uniform budget is pure cost
    assert results["balanced"]["resident"] > results["hlo"]["resident"] * 1.05
    # on the delinquent loop both approaches recover the stalls
    assert results["balanced"]["delinquent"] < results["hlo"]["delinquent"] * 1.15


def test_ext_mve_code_size(benchmark, record, machine):
    """Rotation vs unrolling: static code size of clustered pipelines."""
    from repro.ir import parse_loop
    from repro.ir.memref import LatencyHint
    from repro.pipeliner import pipeline_loop
    from tests.conftest import RUNNING_EXAMPLE

    rows = ["d   k   rotation-ops   MVE-ops   expansion"]
    for hint, label in ((None, 0), (LatencyHint.L2, 10), (LatencyHint.L3, 20)):
        loop = parse_loop(RUNNING_EXAMPLE)
        if hint is not None:
            loop.body[0].memref.hint = hint
            cfg = CompilerConfig(trip_count_threshold=0, prefetch=False)
        else:
            cfg = base_cfg(prefetch=False)
        result = pipeline_loop(loop, machine, cfg)
        mve = generate_mve_kernel(result.schedule)
        body = len(loop.body)
        k = result.stats.placements[0].clustering_factor(result.ii)
        rows.append(
            f"{label:<3} {k:<3} {len(result.kernel.ops):>12} "
            f"{mve.total_ops:>9}   x{mve.expansion_factor(body):.1f}"
        )
        if hint is LatencyHint.L3:
            assert mve.unroll_factor >= k
            assert mve.total_ops > 10 * len(result.kernel.ops)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record("ext_mve_code_size", "\n".join(rows))
