"""The ``--machine`` knob on the fuzzing campaign.

The verdict cache key must separate machines (a verdict minted on
itanium2 must never be replayed as an ldt-core verdict), the oracle
version must be at the machine-aware generation, and a small campaign
must come back clean on every registered backend.
"""

import pytest

from repro.fuzz import FuzzOptions, GenConfig, run_fuzz
from repro.fuzz.oracles import ORACLE_VERSION
from repro.fuzz.runner import case_key
from repro.machine import machine_names


def test_oracle_version_is_machine_aware():
    assert ORACLE_VERSION >= 3


def test_case_key_separates_machines():
    gen = GenConfig()
    keys = {case_key(7, gen, "none", name) for name in machine_names()}
    assert len(keys) == len(machine_names())
    # the default spelling and the explicit default agree
    assert case_key(7, gen, "none") == case_key(7, gen, "none", "itanium2")


def test_case_key_still_covers_seed_and_inject():
    gen = GenConfig()
    assert case_key(1, gen, "none", "ldt-core") != \
        case_key(2, gen, "none", "ldt-core")
    assert case_key(1, gen, "none", "ldt-core") != \
        case_key(1, gen, "drop-edge", "ldt-core")


@pytest.mark.parametrize("machine_name", machine_names())
def test_small_campaign_is_clean_on_every_machine(machine_name):
    summary = run_fuzz(FuzzOptions(
        cases=3, seed=100, machine=machine_name,
        gen=GenConfig(max_ops=8),
    ))
    assert summary.ok, summary.failures


def test_per_machine_verdicts_do_not_collide_in_the_cache(tmp_path):
    cache = tmp_path / "verdicts"
    first = run_fuzz(FuzzOptions(cases=2, seed=50, machine="itanium2",
                                 cache_dir=cache, gen=GenConfig(max_ops=8)))
    # same seeds, different machine: must recompute, not replay
    second = run_fuzz(FuzzOptions(cases=2, seed=50, machine="slsq-core",
                                  cache_dir=cache, gen=GenConfig(max_ops=8)))
    assert first.cache_hits == 0
    assert second.cache_hits == 0
    # and the same machine replays from the cache
    third = run_fuzz(FuzzOptions(cases=2, seed=50, machine="slsq-core",
                                 cache_dir=cache, gen=GenConfig(max_ops=8)))
    assert third.cache_hits == 2
