"""Determinism tests: repeat runs, OzQ tie-breaking, and the harness.

Covers two ISSUE satellites: the uid-keyed OzQ heap (repeat runs of the
same simulation are bit-identical, trace and all) and trace determinism
across harness execution modes — serial, parallel (``--jobs``), and
cache-hit runs must produce identical trace summaries.
"""

import dataclasses

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.harness import run_suite
from repro.harness.jobs import run_loops
from repro.machine import ItaniumMachine
from repro.trace import trace_simulation, trace_summary
from repro.workloads import micro_suite


def hlo_cfg() -> CompilerConfig:
    return CompilerConfig(
        hint_policy=HintPolicy.HLO, trip_count_threshold=32, name="hlo"
    )


def assert_counters_equal(a, b):
    for field in dataclasses.fields(a):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


def trace_stream(seed=13):
    """The chase benchmark traced twice must agree event for event."""
    from repro.core.compiler import LoopCompiler
    from repro.harness.jobs import collect_profile

    bench = next(b for b in micro_suite() if "stream" in b.name)
    lw = bench.loops[0]
    loop, layout = lw.build()
    machine = ItaniumMachine()
    compiled = LoopCompiler(machine, hlo_cfg()).compile(
        loop, collect_profile(bench, seed)
    )
    return trace_simulation(
        compiled.result, machine, layout, [120, 80], seed=seed
    )


class TestRepeatRunEquality:
    def test_cycles_counters_and_events_are_bit_identical(self):
        a, b = trace_stream(), trace_stream()
        assert a.run.cycles == b.run.cycles
        assert_counters_equal(a.run.counters, b.run.counters)
        assert len(a.events) == len(b.events)
        assert all(
            x.to_dict() == y.to_dict() for x, y in zip(a.events, b.events)
        )

    def test_summaries_are_identical(self):
        a, b = trace_stream(), trace_stream()
        assert (trace_summary(a.attribution, a.check)
                == trace_summary(b.attribution, b.check))

    def test_ozq_pop_order_is_deterministic_under_ties(self):
        # the stream benchmark fills the OzQ with same-latency misses, so
        # completion-time ties are routine; the uid tie-break keeps the
        # inflight counts (and with them the clustering histogram) stable
        a, b = trace_stream(), trace_stream()
        assert a.attribution.clustering == b.attribution.clustering
        assert a.attribution.clustering_cycles == b.attribution.clustering_cycles


class TestRunLoopsTraceDeterminism:
    def test_traced_run_matches_untraced_bit_exactly(self):
        bench = micro_suite()[0]
        machine = ItaniumMachine()
        plain = run_loops(bench, hlo_cfg(), machine, seed=2008)
        traced = run_loops(bench, hlo_cfg(), machine, seed=2008, trace=True)
        assert plain.loop_cycles == traced.loop_cycles
        assert_counters_equal(plain.counters, traced.counters)
        assert plain.trace is None
        assert traced.trace is not None and traced.trace["ok"]

    def test_repeat_traces_agree(self):
        bench = micro_suite()[1]
        machine = ItaniumMachine()
        a = run_loops(bench, baseline_config(), machine, seed=2008, trace=True)
        b = run_loops(bench, baseline_config(), machine, seed=2008, trace=True)
        assert a.trace == b.trace


class TestHarnessTraceDeterminism:
    def test_serial_parallel_and_cache_hit_summaries_agree(self, tmp_path):
        suite = micro_suite()
        configs = [baseline_config(), hlo_cfg()]

        def summaries(run):
            return [
                (c.benchmark, c.config, c.trace) for c in run.manifest.cells
            ]

        serial = run_suite(suite, configs, seed=2008, workers=1, trace=True)
        parallel = run_suite(suite, configs, seed=2008, workers=4, trace=True)
        assert summaries(serial) == summaries(parallel)
        assert all(cell.trace["ok"] for cell in serial.manifest.cells)

        cold = run_suite(
            suite, configs, seed=2008, workers=1,
            cache=tmp_path / "cache", trace=True,
        )
        warm = run_suite(
            suite, configs, seed=2008, workers=1,
            cache=tmp_path / "cache", trace=True,
        )
        assert warm.manifest.cache_hits == len(warm.manifest.cells)
        assert summaries(cold) == summaries(warm) == summaries(serial)

    def test_traced_and_untraced_runs_share_cycles_not_cache_keys(
        self, tmp_path
    ):
        suite = micro_suite()[:2]
        configs = [baseline_config()]
        plain = run_suite(
            suite, configs, seed=2008, cache=tmp_path / "cache"
        )
        traced = run_suite(
            suite, configs, seed=2008, cache=tmp_path / "cache", trace=True
        )
        # tracing never changes simulation results...
        for cell_p, cell_t in zip(plain.manifest.cells, traced.manifest.cells):
            assert cell_p.total_cycles == cell_t.total_cycles
        # ...but addresses separate cache entries, so the traced sweep
        # cannot be served a summary-less payload
        assert traced.manifest.cache_hits == 0
        assert all(c.trace is not None for c in traced.manifest.cells)

    def test_manifest_roundtrip_preserves_trace_summaries(self, tmp_path):
        from repro.harness import RunManifest

        run = run_suite(
            micro_suite()[:1], [baseline_config()], seed=2008, trace=True,
            manifest_path=tmp_path / "m.json",
        )
        loaded = RunManifest.load(tmp_path / "m.json")
        assert loaded == run.manifest
        assert loaded.traced_cells == len(loaded.cells)
        assert "traced" in loaded.summary()
