"""Harvest hard scheduling instances into the regression corpus.

The gap campaign (:mod:`repro.harness.gap`) occasionally surfaces
fuzz-generated loops where the exact scheduler matters: the heuristic's
II is more than one cycle above optimal, or the branch-and-bound solver
exhausts its node budget before proving anything (a *hard instance*).
Those loops are exactly what the persistent corpus should pin — they
are the regression tests for future scheduler work, and re-measuring
them is how a change to the heuristic shows whether it closed the gap.

Harvesting mirrors the fuzzer's failure path (:mod:`repro.fuzz.runner`)
but with a *predicate* instead of a failing oracle: the loop is greedily
shrunk through the same candidate edits and textual round-trip as
:func:`repro.fuzz.shrink.shrink_loop`, keeping a smaller variant only
while the gap (or cap) survives, then saved as ``og-<seed>.loop`` plus a
JSON manifest recording both IIs, the solver verdict and the node
budget.  Manifests deliberately omit the generator ``gen`` block: the
shrunk loop no longer regenerates from its seed, and the corpus replay
test keys regeneration on that field's presence.

Harvested entries must replay clean through the full oracle stack
(tier-1 replays the corpus with zero expected violations), so a
candidate that fails any oracle after shrinking is discarded rather
than committed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fuzz.oracles import ORACLE_VERSION, check_loop
from repro.fuzz.shrink import _candidates, _normalise, _size
from repro.harness.gap import measure_loop
from repro.ir.loop import Loop
from repro.ir.printer import loop_to_source

#: an II gap strictly above this many cycles is worth pinning
GAP_THRESHOLD = 1


def gap_info(loop: Loop, machine, budget: int) -> dict:
    """Both schedulers' verdicts on ``loop`` (a thin measure wrapper)."""
    record = measure_loop(loop, machine, budget)
    return {
        "heuristic_ii": record["heuristic"]["ii"],
        "optimal_ii": record["optimal"]["ii"],
        "pipelined": bool(record["gaps"] is not None),
        "ii_gap": record["gaps"]["ii"] if record["gaps"] else 0,
        "optimal_status": record["optimal"].get("status"),
        "solver_nodes": record["optimal"].get("nodes", 0),
    }


def is_hard(info: dict, threshold: int = GAP_THRESHOLD) -> bool:
    """The harvest predicate: real gap or budget-capped solve."""
    if info["pipelined"] and info["ii_gap"] > threshold:
        return True
    return info["optimal_status"] == "capped"


def shrink_hard_case(
    loop: Loop, machine, budget: int, *,
    threshold: int = GAP_THRESHOLD, max_rounds: int = 25,
) -> tuple[Loop, dict]:
    """Greedy predicate-preserving reduction (cf. ``shrink_loop``)."""
    current = _normalise(loop) or loop
    info = gap_info(current, machine, budget)
    if not is_hard(info, threshold):
        return current, info
    for _ in range(max_rounds):
        improved = False
        for raw in _candidates(current):
            cand = _normalise(raw)
            if cand is None or _size(cand) >= _size(current):
                continue
            cand_info = gap_info(cand, machine, budget)
            if is_hard(cand_info, threshold):
                current, info = cand, cand_info
                improved = True
                break
        if not improved:
            break
    return current, info


def harvest_case(
    loop: Loop, machine, budget: int, corpus_dir: str | Path, *,
    seed: int, threshold: int = GAP_THRESHOLD, shrink: bool = True,
) -> list[str]:
    """Shrink and persist one hard instance; returns the files written.

    Returns ``[]`` when the loop is not hard under ``threshold``/
    ``budget``, or when no (shrunk or original) variant replays clean
    through the oracle stack — the corpus only takes entries tier-1 can
    hold at zero violations.
    """
    info = gap_info(loop, machine, budget)
    if not is_hard(info, threshold):
        return []
    if shrink:
        reduced, reduced_info = shrink_hard_case(
            loop, machine, budget, threshold=threshold
        )
    else:
        reduced, reduced_info = loop, info
    # the corpus contract: every entry replays with zero violations
    for candidate, cand_info in ((reduced, reduced_info), (loop, info)):
        if check_loop(candidate, machine=machine).ok:
            return _save(candidate, cand_info, machine, budget,
                         Path(corpus_dir), seed=seed)
    return []


def _save(loop: Loop, info: dict, machine, budget: int,
          corpus_dir: Path, *, seed: int) -> list[str]:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    stem = f"og-{seed}"
    loop_path = corpus_dir / f"{stem}.loop"
    loop_path.write_text(loop_to_source(loop), encoding="utf-8")
    # no "gen" block: the shrunk loop does not regenerate from its seed
    manifest = {
        "seed": seed,
        "oracle_version": ORACLE_VERSION,
        "inject": "none",
        "machine": machine.name,
        "ops": len(loop.body),
        "gap": {
            "heuristic_ii": info["heuristic_ii"],
            "optimal_ii": info["optimal_ii"],
            "ii_gap": info["ii_gap"],
            "optimal_status": info["optimal_status"],
            "budget": budget,
        },
        "report": {
            "name": loop.name,
            "ok": True,
            "seed": seed,
            "violations": [],
        },
    }
    json_path = corpus_dir / f"{stem}.json"
    json_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return [str(loop_path), str(json_path)]
