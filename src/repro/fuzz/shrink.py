"""Greedy test-case reduction for failing fuzz cases.

Given a loop that fails some oracle, the shrinker repeatedly tries
smaller variants — dropping one instruction, clearing hints, dropping
live-outs or no-alias assertions, lowering the trip count — and keeps a
variant whenever it still fails the *same* oracle.  Every candidate is
round-tripped through the textual dialect
(``parse_loop(loop_to_source(...))``), which guarantees two properties
of the final reproducer: it is a valid loop (the parser re-validates),
and it can be persisted verbatim to the regression corpus as a ``.loop``
file.  Variants that no longer parse or validate are simply skipped.

The reduction is first-improvement greedy to a fixpoint: each round
scans all single-step edits and restarts on the first one that keeps the
verdict.  That is O(rounds * edits * oracle-cost) with no backtracking —
the classical delta-debugging trade-off that works well here because the
generator's loops are small (tens of operations) to begin with.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator

from repro.errors import IRError, ParseError
from repro.fuzz.oracles import CaseReport
from repro.ir.loop import Loop, TripCountInfo
from repro.ir.memref import LatencyHint
from repro.ir.parser import parse_loop
from repro.ir.printer import loop_to_source

#: trip-count values tried during reduction, smallest first
_TRIP_LADDER = (3.0, 8.0, 50.0)


def _size(loop: Loop) -> tuple:
    """Lexicographic size metric: smaller is simpler."""
    hints = sum(
        1 for ref in loop.memrefs if ref.hint is not LatencyHint.NONE
    )
    return (
        len(loop.body),
        len(loop.memrefs),
        len(loop.independent_spaces),
        hints,
        len(loop.live_out),
        loop.trip_count.estimate or 0.0,
    )


def _normalise(loop: Loop) -> Loop | None:
    """Round-trip through the dialect; ``None`` when invalid."""
    try:
        return parse_loop(loop_to_source(loop))
    except (ParseError, IRError):
        return None


def _prune_live_out(loop: Loop) -> None:
    defined = {reg for inst in loop.body for reg in inst.all_defs()}
    loop.live_out = {reg for reg in loop.live_out if reg in defined}


def _candidates(loop: Loop) -> Iterator[Loop]:
    """All single-step reductions of ``loop``, simplest-looking first."""
    # drop one instruction (later drops first: they tend to be dead ends
    # like stores and accumulators, so more likely to keep the verdict)
    for i in reversed(range(len(loop.body))):
        cand = copy.deepcopy(loop)
        del cand.body[i]
        if not cand.body:
            continue
        _prune_live_out(cand)
        yield cand

    # drop a no-alias assertion (widens dependence edges: still failing
    # means the assertion was not load-bearing)
    for space in sorted(loop.independent_spaces):
        cand = copy.deepcopy(loop)
        cand.independent_spaces = frozenset(
            s for s in cand.independent_spaces if s != space
        )
        yield cand

    # clear all hints at once, then one at a time
    hinted = [
        ref.name for ref in loop.memrefs if ref.hint is not LatencyHint.NONE
    ]
    scopes = ([None] if len(hinted) > 1 else []) + [[n] for n in hinted]
    for scope in scopes:
        cand = copy.deepcopy(loop)
        for ref in cand.memrefs:
            if scope is None or ref.name in scope:
                ref.hint = LatencyHint.NONE
                ref.hint_source = ""
        yield cand

    # drop one live-out
    for reg in sorted(loop.live_out, key=lambda r: (r.rclass.value, r.index)):
        cand = copy.deepcopy(loop)
        cand.live_out = {r for r in cand.live_out if r != reg}
        yield cand

    # lower the trip count
    estimate = loop.trip_count.estimate
    for trips in _TRIP_LADDER:
        if estimate is not None and trips < estimate:
            cand = copy.deepcopy(loop)
            cand.trip_count = TripCountInfo(
                estimate=trips,
                source=loop.trip_count.source,
                max_trips=None,
                contiguous_across_outer=False,
            )
            yield cand


def shrink_loop(
    loop: Loop,
    check: Callable[[Loop], CaseReport],
    target_oracle: str | None = None,
    max_rounds: int = 25,
) -> tuple[Loop, CaseReport]:
    """Reduce ``loop`` while it keeps failing ``target_oracle``.

    ``check`` runs the oracles over a candidate (typically a partial
    application of :func:`repro.fuzz.oracles.check_loop`).  When
    ``target_oracle`` is ``None`` it is taken from the first failing
    oracle of the initial report.  Returns the smallest loop found and
    its report; if the input does not fail at all it is returned as-is.
    """
    current = _normalise(loop) or loop
    report = check(current)
    if report.ok:
        return current, report
    target = target_oracle or report.oracles_failed[0]

    for _ in range(max_rounds):
        improved = False
        for raw in _candidates(current):
            cand = _normalise(raw)
            if cand is None or _size(cand) >= _size(current):
                continue
            cand_report = check(cand)
            if target in cand_report.oracles_failed:
                current, report = cand, cand_report
                improved = True
                break
        if not improved:
            break
    return current, report
