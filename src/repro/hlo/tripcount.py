"""Trip-count estimation (Sec. 3.2).

"If the compilation options include the use of dynamic profiles, the
trip-count information is readily available.  In other cases, the
trip-count estimation [...] makes use of information such as: static array
sizes [...]; if the data access occurs in a loop-nest, and the compiler can
prove that the data access is contiguous across outer-loop iterations,
then the prefetch distance can be high even if the inner-loop trip-count
is small."
"""

from __future__ import annotations

from repro.config import CompilerConfig
from repro.hlo.profiles import BlockProfile, static_profile_estimate
from repro.ir.loop import Loop, TripCountInfo, TripCountSource


def estimate_trip_count(
    loop: Loop,
    config: CompilerConfig,
    profile: BlockProfile | None = None,
) -> TripCountInfo:
    """The compiler's view of the loop's trip count under ``config``."""
    if config.pgo and profile is not None:
        info = profile.trip_info(loop.name)
        if info is not None:
            info.max_trips = loop.trip_count.max_trips
            info.contiguous_across_outer = (
                loop.trip_count.contiguous_across_outer
            )
            return info
    if config.pgo and loop.trip_count.source is TripCountSource.PGO:
        # the loop was built with PGO-quality information already attached
        return loop.trip_count
    return static_profile_estimate(loop, default=config.default_trip_estimate)


def prefetch_lookahead_trips(info: TripCountInfo, default: float) -> float:
    """How far ahead the prefetcher may reach, in iterations.

    Contiguity across outer-loop iterations lets prefetches run past the
    inner loop's end, so the inner trip count stops being the limit.
    """
    if info.contiguous_across_outer:
        return float("inf")
    return info.effective_estimate(default)
