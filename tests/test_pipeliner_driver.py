"""Tests for the pipeliner driver: gates and the Sec. 3.3 retry ladder."""

import pytest

from repro.config import CompilerConfig, baseline_config
from repro.ir import LoopBuilder, parse_loop
from repro.ir.memref import AccessPattern, LatencyHint
from repro.machine import ItaniumMachine
from repro.machine.itanium2 import MemoryTimings
from repro.machine.resources import ResourceModel
from repro.ir.registers import RegClass, RegisterFile, ROTATING_PR_BASE
from repro.pipeliner import pipeline_loop


def _hinted_example(text_loop, hint=LatencyHint.L3, source="policy"):
    for load in text_loop.loads:
        load.memref.hint = hint
        load.memref.hint_source = source
    return text_loop


class TestGates:
    def test_master_switch(self, running_example, machine):
        _hinted_example(running_example)
        result = pipeline_loop(
            running_example, machine,
            CompilerConfig(latency_tolerant=False, trip_count_threshold=0),
        )
        assert result.stats.boosted_loads == 0

    def test_trip_threshold_gates_policy_hints(self, machine):
        loop = parse_loop(
            """
            memref A affine stride=4
            loop small trips=10 source=pgo
              ld4 r1 = [r2], 4 !A
              add r3 = r1, r9
              st4 [r4] = r3, 4 !A
            """
        )
        _hinted_example(loop, source="policy")
        gated = pipeline_loop(loop, machine, CompilerConfig(trip_count_threshold=32))
        assert gated.stats.boosted_loads == 0
        open_ = pipeline_loop(loop, machine, CompilerConfig(trip_count_threshold=8))
        assert open_.stats.boosted_loads == 1

    def test_hlo_hints_bypass_threshold(self, machine):
        """Sec. 3.1/4.4: expected-long-latency loads are boosted even in
        low-trip-count loops."""
        loop = parse_loop(
            """
            memref A affine stride=4
            loop small trips=3 source=pgo
              ld4 r1 = [r2], 4 !A
              add r3 = r1, r9
              st4 [r4] = r3, 4 !A
            """
        )
        _hinted_example(loop, hint=LatencyHint.L2, source="hlo")
        result = pipeline_loop(loop, machine, CompilerConfig(trip_count_threshold=32))
        assert result.stats.boosted_loads == 1


class TestRetryLadder:
    def _wide_fp_loop(self, loads=12):
        """Many hinted FP loads: boosting blows the FP rotating file."""
        b = LoopBuilder()
        acc = None
        for i in range(loads):
            ref = b.memref(f"x{i}", stride=8, size=8, is_fp=True,
                           space=f"s{i}")
            ref.hint = LatencyHint.L3
            ref.hint_source = "hlo"
            v = b.load("ldfd", b.live_greg(f"p{i}"), ref, post_inc=8)
            acc = v if acc is None else b.alu("fadd", acc, v)
        out = b.memref("c", stride=8, size=8, is_fp=True)
        b.store("stfd", b.live_greg("pc"), acc, out, post_inc=8)
        return b.build("wide", trips=1000.0)

    def test_register_pressure_fallback(self, machine):
        """When rotating allocation fails, the driver first reduces the
        non-critical latencies at the same II (latency_fallback), rather
        than giving up or spilling (Sec. 3.3)."""
        small_files = dict(machine.register_files)
        small_files[RegClass.FR] = RegisterFile(RegClass.FR, 64, 32, 32)
        tight = ItaniumMachine(
            resources=machine.resources,
            timings=machine.timings,
            translation=machine.translation,
            register_files=small_files,
            ozq_capacity=machine.ozq_capacity,
        )
        loop = self._wide_fp_loop()
        result = pipeline_loop(loop, tight, CompilerConfig(trip_count_threshold=0))
        assert result.pipelined
        assert result.stats.latency_fallback
        assert result.stats.boosted_loads == 0
        assert result.stats.attempts >= 2

    def test_no_fallback_with_ample_registers(self, machine):
        loop = self._wide_fp_loop(loads=4)
        result = pipeline_loop(loop, machine, CompilerConfig(trip_count_threshold=0))
        assert result.pipelined
        assert not result.stats.latency_fallback
        assert result.stats.boosted_loads == 4

    def test_seq_length_fallback_exists(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        assert result.seq_length == 3


class TestStats:
    def test_stats_fields(self, running_example, machine):
        result = pipeline_loop(running_example, machine, baseline_config())
        st = result.stats
        assert st.pipelined and st.ii == 1
        assert st.total_loads == 1
        assert st.registers[RegClass.GR] > 0
        assert st.registers[RegClass.PR] >= st.stage_count
        assert "copy_add" in st.summary()

    def test_register_growth_with_boosting(self, running_example, machine):
        base = pipeline_loop(running_example, machine, baseline_config())
        running_example.body[0].memref.hint = LatencyHint.L3
        boosted = pipeline_loop(
            running_example, machine, CompilerConfig(trip_count_threshold=0)
        )
        # longer lifetimes need more rotating registers (Sec. 2.2)
        assert (
            boosted.stats.registers[RegClass.GR]
            > base.stats.registers[RegClass.GR]
        )
        assert (
            boosted.stats.registers[RegClass.PR]
            > base.stats.registers[RegClass.PR]
        )
