"""Sec. 4.4: the 429.mcf refresh_potential() example.

"The indirect references ... are delinquent with average latencies of up
to a hundred cycles; they cannot be prefetched since they depend on a
pointer-chasing recurrence.  Hence they are marked for higher-latency
scheduling according to heuristic (1) ... and, since not on a recurrence
cycle, scheduled accordingly ... Although this occurs on average only for
two respective instances per loop execution — the average trip count of
this loop is 2.3 — there is a 40% speedup for the loop."
"""

import numpy as np
import pytest

from benchmarks.conftest import base_cfg, hlo_cfg
from repro.core.compiler import LoopCompiler
from repro.hlo.profiles import collect_block_profile
from repro.ir.memref import LatencyHint
from repro.sim import MemorySystem, simulate_loop
from repro.workloads import benchmark_by_name


@pytest.fixture(scope="module")
def mcf_runs(machine):
    bench = benchmark_by_name("429.mcf")
    lw = bench.loops[0]  # the refresh_potential archetype
    profile = collect_block_profile(
        {lw.build()[0].name: lw.data.train}, seed=2008
    )
    runs = {}
    for cfg in (base_cfg(), hlo_cfg()):
        loop, layout = lw.build()
        compiled = LoopCompiler(machine, cfg).compile(loop, profile)
        rng = np.random.default_rng(2008)
        trips = lw.data.ref.sample(rng, 1200)
        sim = simulate_loop(
            compiled.result, machine, layout, list(trips),
            memory=MemorySystem(machine.timings),
        )
        runs[cfg.name or cfg.label] = (compiled, sim)
    return runs


def test_sec44_mcf_loop(benchmark, record, machine, mcf_runs):
    (base_c, base_sim) = mcf_runs["baseline"]
    (hlo_c, hlo_sim) = mcf_runs["hlo"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    speedup = (base_sim.cycles / hlo_sim.cycles - 1.0) * 100.0
    lines = [
        f"trip count (avg)    : 2.5 (paper: 2.3)",
        f"baseline loop cycles: {base_sim.cycles:.0f}",
        f"hinted loop cycles  : {hlo_sim.cycles:.0f}",
        f"loop speedup        : {speedup:+.1f}%  (paper: ~40%)",
        f"II                  : {hlo_c.stats.ii}, stages "
        f"{base_c.stats.stage_count} -> {hlo_c.stats.stage_count}",
    ]
    record("sec44_mcf_refresh_potential", "\n".join(lines))

    # marked by rule 1 (unprefetchable), chase stays critical
    for load in hlo_c.loop.loads[:-1]:
        assert load.memref.hint is LatencyHint.L2
        assert load.memref.hint_source == "hlo"
        assert not load.memref.prefetched
    assert hlo_c.stats.critical_loads == 1
    assert hlo_c.stats.boosted_loads == 2

    # the paper's ~40% loop speedup band
    assert speedup > 25.0

    # II unchanged; only stages grow
    assert hlo_c.stats.ii == base_c.stats.ii
    assert hlo_c.stats.stage_count > base_c.stats.stage_count


def test_sec44_clustering_limited_by_trip_count(benchmark, machine, mcf_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """With ~2.5 iterations per invocation, only ~2 instances of each
    field load can actually cluster, regardless of the scheduled k."""
    (hlo_c, _) = mcf_runs["hlo"]
    placements = [p for p in hlo_c.stats.placements if p.boosted]
    for p in placements:
        assert p.clustering_factor(hlo_c.stats.ii) >= 2
