"""Modulo lifetimes of loop-defined values.

A value defined at schedule time ``t_def`` and last consumed at
``t_use + II*omega`` crosses ``floor(end/II) - floor(t_def/II)`` kernel
back-edges, i.e. that many register rotations.  Under rotating-register
renaming it therefore occupies a *blade* of ``rotations + 1`` consecutive
rotating registers (cf. the paper's Fig. 6, where the load with a
three-iteration reach occupies ``r32``-``r35`` and its blade spans four
registers).  Longer scheduled load latencies directly grow these spans —
that is the register-pressure cost analysed in Sec. 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddg.edges import DepKind
from repro.ir.instructions import Instruction
from repro.ir.registers import Reg, RegClass
from repro.pipeliner.schedule import Schedule


@dataclass(frozen=True)
class RegLifetime:
    """One virtual register's lifetime in the modulo schedule."""

    reg: Reg
    definer: Instruction
    def_time: int
    #: latest consumption time, folded across iterations (>= def_time)
    end_time: int

    @property
    def rclass(self) -> RegClass:
        return self.reg.rclass

    @property
    def length(self) -> int:
        return self.end_time - self.def_time

    def span(self, ii: int) -> int:
        """Number of consecutive rotating registers the value occupies."""
        return self.end_time // ii - self.def_time // ii + 1


def is_self_recurrent(inst: Instruction, reg: Reg) -> bool:
    """A register its own definer also reads (post-incremented addresses,
    in-place accumulators).  Such values update one static register in
    place each iteration and are *not* rotated — the paper's Fig. 6 keeps
    the address register ``r5`` unrenamed."""
    return reg in inst.all_uses()


def compute_lifetimes(schedule: Schedule) -> list[RegLifetime]:
    """Lifetimes of every rotated virtual register defined in the body.

    Self-recurrent registers are excluded (they stay static); live-out
    values are extended by one full kernel iteration so they survive into
    the epilog.
    """
    ddg = schedule.ddg
    loop = schedule.loop
    ii = schedule.ii
    lifetimes: list[RegLifetime] = []
    for inst in loop.body:
        t_def = schedule.time_of(inst)
        for reg in inst.all_defs():
            if not reg.virtual or is_self_recurrent(inst, reg):
                continue
            end = t_def
            for edge in ddg.succs(inst):
                if edge.kind is not DepKind.FLOW or edge.reg != reg:
                    continue
                end = max(end, schedule.time_of(edge.dst) + ii * edge.omega)
            if reg in loop.live_out:
                end = max(end, t_def + ii)
            lifetimes.append(
                RegLifetime(reg=reg, definer=inst, def_time=t_def, end_time=end)
            )
    return lifetimes
