"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_size, parse_space

LOOP_TEXT = """
memref A affine stride=4 space=a
memref B affine stride=4 space=b
loop copy_add trips=200 source=pgo
  ld4 r4 = [r5], 4 !A
  add r7 = r4, r9
  st4 [r6] = r7, 4 !B
"""


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.s"
    path.write_text(LOOP_TEXT)
    return str(path)


class TestParsers:
    def test_parse_size(self):
        assert parse_size("1024") == 1024
        assert parse_size("64K") == 64 * 1024
        assert parse_size("2m") == 2 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size("1.5M") == int(1.5 * (1 << 20))

    def test_parse_space(self):
        name, spec = parse_space("a=64M")
        assert name == "a" and spec.size == 64 << 20 and spec.reuse
        name, spec = parse_space("b=8K:stream")
        assert name == "b" and not spec.reuse

    def test_parse_space_malformed(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_space("nonsense")


class TestCompileCommand:
    def test_compile_prints_kernel(self, loop_file, capsys):
        assert main(["compile", loop_file]) == 0
        out = capsys.readouterr().out
        assert "pipelined" in out
        assert "br.ctop" in out
        assert "(p16)" in out

    def test_compile_verbose(self, loop_file, capsys):
        assert main(["compile", loop_file, "-v", "--policy", "all-loads-l3",
                     "-n", "0"]) == 0
        out = capsys.readouterr().out
        assert "boosted=True" in out

    def test_compile_baseline_policy(self, loop_file, capsys):
        assert main(["compile", loop_file, "--policy", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "boosted 0/1" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/loop.s"]) == 1
        assert "error" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulate(self, loop_file, capsys):
        rc = main([
            "simulate", loop_file, "--trips", "200", "--invocations", "2",
            "--space", "a=1M", "--space", "b=1M",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "loads by level" in out

    def test_simulate_missing_space(self, loop_file, capsys):
        rc = main(["simulate", loop_file, "--space", "a=1M"])
        assert rc == 2
        assert "no --space" in capsys.readouterr().err


class TestExperimentCommand:
    def test_single_benchmark(self, capsys):
        rc = main([
            "experiment", "--suite", "cpu2006",
            "--benchmark", "464.h264ref",
            "--policy", "all-loads-l3", "-n", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "464.h264ref" in out and "Geomean" in out

    def test_unknown_benchmark(self, capsys):
        rc = main(["experiment", "--benchmark", "999.bogus"])
        assert rc == 2


class TestFig5Command:
    def test_fig5(self, capsys):
        assert main(["fig5", "--max-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "100.0%" in out
        assert out.strip().splitlines()[-1].startswith("4")
