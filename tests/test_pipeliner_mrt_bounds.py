"""Tests for the modulo reservation table and II bounds."""

import pytest

from repro.ddg import build_ddg
from repro.ir import LoopBuilder
from repro.ir.instructions import Instruction
from repro.ir.memref import MemRef
from repro.ir.opcodes import opcode
from repro.ir.registers import greg, freg
from repro.machine import ItaniumMachine, ResourceModel
from repro.pipeliner import ModuloReservationTable, compute_bounds


def _ld(n):
    return Instruction(opcode("ld4"), defs=(greg(100 + n),),
                       uses=(greg(1),), memref=MemRef(f"m{n}"))


def _add(n):
    return Instruction(opcode("add"), defs=(greg(200 + n),), uses=(greg(1),))


def _fma(n):
    return Instruction(opcode("fma"), defs=(freg(n),), uses=(freg(1),))


class TestMRT:
    def test_basic_place_remove(self):
        mrt = ModuloReservationTable(2, ResourceModel())
        a = _ld(0)
        assert mrt.fits(a, 0)
        mrt.place(a, 0)
        assert a in mrt
        mrt.remove(a)
        assert a not in mrt

    def test_m_port_saturation(self):
        mrt = ModuloReservationTable(1, ResourceModel())
        mrt.place(_ld(0), 0)
        mrt.place(_ld(1), 0)
        # two M ports full; a third load cannot fit in the same row
        assert not mrt.fits(_ld(2), 0)
        assert not mrt.fits(_ld(2), 7)  # any time maps to row 0 at II=1

    def test_a_type_overflow_to_m(self):
        mrt = ModuloReservationTable(1, ResourceModel())
        # fill both I slots with A-type ops, then both M slots
        for n in range(4):
            assert mrt.fits(_add(n), 0)
            mrt.place(_add(n), 0)
        assert not mrt.fits(_add(4), 0)
        # and loads are blocked too because A ops spilled onto M
        assert not mrt.fits(_ld(0), 0)

    def test_issue_width_including_branch(self):
        mrt = ModuloReservationTable(1, ResourceModel())
        # the implicit branch reserves one of the six issue slots
        placed = 0
        ops = [_add(0), _add(1), _fma(0), _fma(1), _ld(0), _ld(1)]
        for op in ops:
            if mrt.fits(op, 0):
                mrt.place(op, 0)
                placed += 1
        assert placed == 5  # 6-wide minus the branch

    def test_rows_are_modular(self):
        mrt = ModuloReservationTable(3, ResourceModel())
        a = _ld(0)
        mrt.place(a, 7)  # row 1
        assert mrt.occupants_of_row(1) == [a]
        b = _ld(1)
        assert mrt.fits(b, 4)  # also row 1, second M port
        mrt.place(b, 4)
        assert not mrt.fits(_ld(2), 10)

    def test_double_place_rejected(self):
        mrt = ModuloReservationTable(2, ResourceModel())
        a = _ld(0)
        mrt.place(a, 0)
        with pytest.raises(ValueError):
            mrt.place(a, 1)

    def test_invalid_ii(self):
        with pytest.raises(ValueError):
            ModuloReservationTable(0, ResourceModel())


class TestBounds:
    def test_running_example_bounds(self, running_example, machine):
        ddg = build_ddg(running_example)
        bounds = compute_bounds(ddg, machine)
        assert bounds.res_ii == 1
        assert bounds.rec_ii == 1
        assert bounds.min_ii == 1

    def test_recurrence_dominates(self, machine):
        b = LoopBuilder()
        acc = b.live_freg("acc")
        x = b.load("ldfd", b.live_greg("p"),
                   b.memref("a", size=8, is_fp=True), post_inc=8)
        b.alu_into("fadd", acc, acc, x)
        ddg = build_ddg(b.build("red"))
        bounds = compute_bounds(ddg, machine)
        assert bounds.rec_ii == 4
        assert bounds.min_ii == 4

    def test_bounds_use_base_latencies(self, machine):
        """Sec. 3.3: the initial Recurrence II always uses base latencies."""
        from repro.ir.memref import AccessPattern, LatencyHint

        b = LoopBuilder()
        node = b.live_greg("node")
        ref = b.memref("n", pattern=AccessPattern.POINTER_CHASE, size=8)
        ref.hint = LatencyHint.L3
        b.load_into("ld8", node, node, ref)
        ddg = build_ddg(b.build("chase"))
        bounds = compute_bounds(ddg, machine)
        assert bounds.rec_ii == 1  # not 21
