"""Tests for hint policies and the HLO pass pipeline."""

import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.hlo import apply_hints, run_hlo
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.ir.loop import TripCountSource
from repro.ir.memref import LatencyHint
from repro.workloads.loops import gather, pointer_chase, stream_fp, stream_int


class TestPolicies:
    def test_baseline_clears_hints(self, machine):
        loop, _ = stream_int("s")
        loop.loads[0].memref.hint = LatencyHint.L3
        apply_hints(loop, baseline_config())
        assert loop.loads[0].memref.hint is LatencyHint.NONE

    def test_all_loads_l3(self, machine):
        loop, _ = stream_fp("s")
        apply_hints(loop, CompilerConfig(hint_policy=HintPolicy.ALL_LOADS_L3))
        for load in loop.loads:
            assert load.memref.hint is LatencyHint.L3
            assert load.memref.hint_source == "policy"

    def test_all_fp_l2(self, machine):
        loop, _ = gather("g", fp=True)
        apply_hints(loop, CompilerConfig(hint_policy=HintPolicy.ALL_FP_L2))
        for load in loop.loads:
            if load.is_fp:
                assert load.memref.hint is LatencyHint.L2
            else:
                assert load.memref.hint is LatencyHint.NONE

    def test_hlo_policy_includes_fp_default(self, machine):
        """Sec. 4.3: the FP-L2 default remains under HLO-directed hints."""
        loop, _ = stream_fp("s")
        cfg = CompilerConfig(hint_policy=HintPolicy.HLO)
        run_hlo(loop, machine, cfg)
        for load in loop.loads:
            assert load.memref.hint is LatencyHint.L2
            assert load.memref.hint_source == "policy"

    def test_hlo_only_policy_skips_fp_default(self, machine):
        loop, _ = stream_fp("s")
        run_hlo(loop, machine, CompilerConfig(hint_policy=HintPolicy.HLO_ONLY))
        for load in loop.loads:
            assert load.memref.hint is LatencyHint.NONE

    def test_hlo_marks_take_precedence_over_default(self, machine):
        loop, _ = gather("g", fp=True)
        run_hlo(loop, machine, CompilerConfig(hint_policy=HintPolicy.HLO))
        data = next(l.memref for l in loop.loads if l.is_fp)
        assert data.hint is LatencyHint.L3  # rule 2b, not the L2 default
        assert data.hint_source == "hlo"

    def test_store_only_refs_not_hinted(self, machine):
        loop, _ = stream_int("s")
        apply_hints(loop, CompilerConfig(hint_policy=HintPolicy.ALL_LOADS_L3))
        store_ref = loop.stores[0].memref
        assert store_ref.hint is LatencyHint.NONE


class TestRunHlo:
    def test_sets_trip_count_from_profile(self, machine):
        loop, _ = stream_int("s")
        profile = collect_block_profile(
            {loop.name: TripDistribution(kind="constant", mean=77)}
        )
        run_hlo(loop, machine, CompilerConfig(pgo=True), profile)
        assert loop.trip_count.source is TripCountSource.PGO
        assert loop.trip_count.estimate == pytest.approx(77)

    def test_static_profile_without_pgo(self, machine):
        loop, _ = stream_int("s")
        run_hlo(loop, machine, CompilerConfig(pgo=False))
        assert loop.trip_count.source is TripCountSource.HEURISTIC

    def test_prefetches_inserted(self, machine):
        loop, _ = stream_int("s", streams=2)
        n_before = len(loop.body)
        run_hlo(loop, machine, CompilerConfig())
        assert len(loop.prefetches) >= 2
        assert len(loop.body) > n_before

    def test_chase_gets_no_prefetch_but_hints(self, machine):
        loop, _ = pointer_chase("m")
        run_hlo(loop, machine, CompilerConfig(hint_policy=HintPolicy.HLO))
        assert not loop.prefetches
        hinted = [l for l in loop.loads if l.memref.hint is not LatencyHint.NONE]
        assert len(hinted) == len(loop.loads)
