"""Tests for the trace event vocabulary and the sink zoo."""

from repro.config import baseline_config
from repro.ir import parse_loop
from repro.machine import ItaniumMachine
from repro.pipeliner import pipeline_loop
from repro.sim import prepare_execution, run_iterations
from repro.sim.address import StreamSpec, build_streams
from repro.sim.counters import PerfCounters
from repro.sim.memory import MemorySystem
from repro.trace import (
    CaptureSink,
    CountingSink,
    LoadIssue,
    NullSink,
    OpIssue,
    RingBufferSink,
    TeeSink,
    TraceSink,
    UseStall,
)
from tests.conftest import RUNNING_EXAMPLE

LAYOUT = {
    "a": StreamSpec(size=1 << 22, reuse=False),
    "b": StreamSpec(size=1 << 22, reuse=False),
}


def simulate(sink, n=200):
    machine = ItaniumMachine()
    loop = parse_loop(RUNNING_EXAMPLE)
    result = pipeline_loop(loop, machine, baseline_config())
    setup = prepare_execution(result, machine)
    streams = build_streams(loop, LAYOUT, n)
    counters = PerfCounters()
    memory = MemorySystem(machine.timings)
    memory.sink = sink
    cycles = run_iterations(
        setup, streams, 0, n, memory, machine.ozq_capacity, counters,
        sink=sink,
    )
    return cycles, counters


class TestEventShape:
    def test_to_dict_carries_kind_and_fields(self):
        ev = LoadIssue(
            cycle=3.0, tag="l#0:ld4", slot=0, source_iter=7, ref="A",
            addr=128, level=4, latency=180.0, occupies_ozq=True,
        )
        d = ev.to_dict()
        assert d["kind"] == "load" and d["slot"] == 0 and d["addr"] == 128

    def test_all_sinks_satisfy_the_protocol(self):
        for sink in (NullSink(), CountingSink(), RingBufferSink(4),
                     CaptureSink(), TeeSink(NullSink())):
            assert isinstance(sink, TraceSink)


class TestSinks:
    def test_null_sink_wants_nothing(self):
        sink = NullSink()
        assert not (sink.wants_issues or sink.wants_uses
                    or sink.wants_stalls or sink.wants_memory)

    def test_counting_sink_counts_by_kind(self):
        sink = CountingSink()
        _, counters = simulate(sink, n=200)
        assert sink.total == sum(sink.counts.values()) > 0
        # each of the 3 ops issues exactly once per source iteration
        assert sink.counts["issue"] == 3 * 200
        assert sink.stall_cycles == counters.be_exe_bubble

    def test_ring_buffer_keeps_only_the_tail(self):
        full = CaptureSink()
        ring = RingBufferSink(16)
        simulate(full)
        simulate(ring)
        assert ring.total == len(full.events) > 16
        assert len(ring.events) == 16
        assert [e.to_dict() for e in ring.events] == [
            e.to_dict() for e in full.events[-16:]
        ]

    def test_capture_preserves_emission_order(self):
        sink = CaptureSink()
        simulate(sink)
        cycles = [e.cycle for e in sink.events]
        assert cycles == sorted(cycles)
        kinds = {e.kind for e in sink.events}
        assert {"issue", "load", "store"} <= kinds

    def test_tee_unions_interest_and_fans_out(self):
        counting = CountingSink()
        capture = CaptureSink()
        tee = TeeSink(counting, capture)
        assert tee.wants_issues and tee.wants_memory
        simulate(tee)
        assert counting.total == len(capture.events) > 0

    def test_tee_respects_member_interest(self):
        # a stall-only member must not see issue events
        class StallsOnly:
            wants_issues = False
            wants_uses = False
            wants_stalls = True
            wants_memory = False

            def __init__(self):
                self.kinds = set()

            def emit(self, event):
                self.kinds.add(event.kind)

        member = StallsOnly()
        simulate(TeeSink(member))
        assert member.kinds <= {"stall", "ozq-stall", "ozq-full"}


class TestZeroCostWhenOff:
    def test_null_sink_matches_no_sink_bit_exactly(self):
        cycles_off, counters_off = simulate(None)
        cycles_null, counters_null = simulate(NullSink())
        assert cycles_off == cycles_null
        assert counters_off == counters_null

    def test_tracing_does_not_change_results(self):
        cycles_off, counters_off = simulate(None)
        cycles_on, counters_on = simulate(CaptureSink())
        assert cycles_off == cycles_on
        assert counters_off == counters_on


class TestEventSemantics:
    def test_stall_events_sum_to_be_exe_bubble(self):
        sink = CaptureSink()
        _, counters = simulate(sink)
        stalls = [e for e in sink.events if isinstance(e, UseStall)]
        assert sum(e.wait for e in stalls) == counters.be_exe_bubble

    def test_issue_events_cover_every_source_iteration(self):
        sink = CaptureSink()
        simulate(sink, n=50)
        issues = [e for e in sink.events if isinstance(e, OpIssue)]
        loads = [e for e in issues if e.op_kind == "load"]
        assert sorted(e.source_iter for e in loads) == list(range(50))
