"""Architectural (value-level) execution of loop IR.

The differential oracle needs ground truth that is *independent* of the
scheduler under test.  This module provides two executions of the same
loop over identical deterministic address streams and initial values:

* :func:`run_reference` — plain sequential interpretation, one source
  iteration after another in body order;
* :func:`run_scheduled` — replay of a modulo schedule: instruction
  instances execute in global schedule order (``i*II + t(op)``, the
  paper's kernel timing), registers follow rotation semantics (each
  instance's definition is a fresh value; a use reads the producing
  *instance* identified from the dataflow, exactly what rotating-register
  renaming implements), and memory is a flat cell store shared by all
  in-flight iterations.

If the schedule respects every true dependence, the replay provably
reaches the same final state as the reference (zero-latency edges are
only memory anti dependences, whose tie-break matches body order).  A
schedule produced from a *broken* DDG — a dropped edge, a wrong omega —
misorders some pair of accesses and the final fingerprints diverge, or a
use executes before its producer and an ordering violation is recorded.

Addresses are modelled the way the dependence analyser models them
(affine references walk ``offset + stride*i``), so whenever the compiler
proves two references independent they really are disjoint here — the
oracle never reports false aliasing races.  Values are 64-bit integers
with deterministic per-opcode semantics; unknown opcodes hash their
inputs, which preserves the only property the oracle needs: equal inputs
give equal outputs, different inputs (almost surely) differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction
from repro.ir.loop import Loop
from repro.ir.memref import AccessPattern
from repro.ir.registers import Reg

_MASK = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def mix(*parts) -> int:
    """Deterministic 64-bit FNV-1a hash of the stringified parts."""
    h = _FNV_OFFSET
    for part in parts:
        for ch in str(part):
            h = ((h ^ ord(ch)) * _FNV_PRIME) & _MASK
        h = ((h ^ 0x7C) * _FNV_PRIME) & _MASK
    return h


def _init_value(reg: Reg) -> int:
    """The pre-loop (live-in / undefined) value of a register."""
    return mix("init", reg.rclass.value, reg.index)


def _fill_value(space: str, addr: int) -> int:
    """The initial content of a memory cell."""
    return mix("mem", space, addr)


def address_streams(loop: Loop, n: int) -> dict[int, list[int]]:
    """Per-reference address streams for ``n`` source iterations.

    Keyed by ``MemRef.uid``.  Affine and invariant references follow the
    dependence analyser's model exactly; symbolic / indirect / chase
    references (which the analyser treats as unanalysable, forcing
    conservative ordering edges) get arbitrary deterministic streams.
    """
    streams: dict[int, list[int]] = {}
    for ref in loop.memrefs:
        if ref.pattern is AccessPattern.AFFINE:
            stride = ref.stride or ref.size
            stream = [ref.offset + stride * i for i in range(n)]
        elif ref.pattern is AccessPattern.INVARIANT:
            stream = [ref.offset] * n
        elif ref.pattern is AccessPattern.SYMBOLIC_STRIDE:
            stride = ref.size * (2 + mix("symstride", ref.name) % 7)
            stream = [ref.offset + stride * i for i in range(n)]
        elif ref.pattern is AccessPattern.POINTER_CHASE:
            stream = []
            addr = ref.offset
            for _ in range(n):
                stream.append(addr)
                addr = (mix("chase", ref.name, addr) % (1 << 24)) // ref.size
                addr *= ref.size
        else:  # INDIRECT
            stream = [
                ref.offset + ref.size * (mix("ix", ref.name, i) % 509)
                for i in range(n)
            ]
        streams[ref.uid] = stream
    return streams


def _cell_space(loop: Loop, inst: Instruction) -> str:
    """The memory-cell namespace of a memory op's reference.

    References in a declared *independent* space carry a restrict-style
    no-alias assertion; the compiler drops their ordering edges, so the
    semantic model must honour the assertion too — each such reference
    gets private cells.
    """
    ref = inst.memref
    assert ref is not None
    if ref.space in loop.independent_spaces:
        return f"{ref.space}#{ref.uid}"
    return ref.space


@dataclass
class ArchOutcome:
    """Final architectural state of one execution."""

    #: ``"space@addr"`` -> value for every cell written
    memory: dict[str, int]
    #: final value of every register defined in the body (plus live-outs)
    registers: dict[str, int]
    #: schedule-order anomalies (use before producer); empty for the
    #: sequential reference
    violations: list[str] = field(default_factory=list)

    def fingerprint(self) -> dict:
        return {"memory": self.memory, "registers": self.registers}


def _eval(inst: Instruction, vals: list[int], imm: int | None) -> int:
    def v(k: int) -> int:
        return vals[k] if k < len(vals) else 0

    m = inst.mnemonic
    i = imm if imm is not None else 0
    if m in ("add", "addl"):
        r = v(0) + v(1) + i
    elif m == "adds":
        r = v(0) + i
    elif m == "sub":
        r = v(0) - v(1) - i
    elif m == "shladd":
        r = (v(0) << (max(1, i) & 63)) + v(1)
    elif m == "and":
        r = v(0) & v(1)
    elif m == "or":
        r = v(0) | v(1)
    elif m == "xor":
        r = v(0) ^ v(1)
    elif m == "mov":
        r = v(0) if vals else i
    elif m == "sxt4":
        low = v(0) & 0xFFFFFFFF
        r = low - (1 << 32) if low & 0x80000000 else low
    elif m == "zxt4":
        r = v(0) & 0xFFFFFFFF
    elif m == "shl":
        r = v(0) << ((imm if imm is not None else v(1)) & 63)
    elif m == "shr":
        r = (v(0) & _MASK) >> ((imm if imm is not None else v(1)) & 63)
    elif m in ("cmp", "fcmp"):
        r = 1 if (v(0) & _MASK) < (v(1) & _MASK) else 0
    elif m == "tbit":
        r = (v(0) >> (i & 63)) & 1
    elif m in ("fma",):
        r = v(0) * v(1) + v(2)
    elif m == "fnma":
        r = v(2) - v(0) * v(1)
    elif m == "fadd":
        r = v(0) + v(1)
    elif m == "fsub":
        r = v(0) - v(1)
    elif m == "fmpy":
        r = v(0) * v(1)
    elif m in ("fcvt", "setf", "getf"):
        r = v(0)
    else:
        r = mix(m, i, *vals)
    return r & _MASK


def _defined_regs(loop: Loop) -> list[Reg]:
    seen: dict[Reg, None] = {}
    for inst in loop.body:
        for reg in inst.all_defs():
            seen[reg] = None
    for reg in loop.live_out:
        seen[reg] = None
    return list(seen)


def run_reference(
    loop: Loop, n: int, streams: dict[int, list[int]] | None = None
) -> ArchOutcome:
    """Sequential interpretation: ``n`` iterations in body order."""
    streams = streams if streams is not None else address_streams(loop, n)
    regs: dict[Reg, int] = {}
    mem: dict[tuple[str, int], int] = {}

    def rd(reg: Reg) -> int:
        return regs.get(reg, _init_value(reg))

    for i in range(n):
        for inst in loop.body:
            if inst.is_branch:
                continue
            if inst.qual_pred is not None and not (rd(inst.qual_pred) & 1):
                continue
            if inst.is_prefetch:
                if inst.post_increment is not None:
                    addr_reg = inst.uses[0]
                    regs[addr_reg] = (rd(addr_reg) + inst.post_increment) & _MASK
                continue
            if inst.is_load or inst.is_store:
                space = _cell_space(loop, inst)
                addr = streams[inst.memref.uid][i]
                addr_reg = inst.uses[0]
                old_addr = rd(addr_reg)
                if inst.is_load:
                    cell = (space, addr)
                    value = mem.get(cell, _fill_value(space, addr))
                    for d in inst.defs:
                        regs[d] = value
                else:
                    mem[(space, addr)] = rd(inst.uses[1])
                if inst.post_increment is not None:
                    regs[addr_reg] = (old_addr + inst.post_increment) & _MASK
                continue
            vals = [rd(u) for u in inst.uses]
            result = _eval(inst, vals, inst.imm)
            for d in inst.defs:
                regs[d] = result

    return ArchOutcome(
        memory={f"{s}@{a}": v for (s, a), v in sorted(mem.items())},
        registers={
            f"{r.rclass.value}{r.index}": regs.get(r, _init_value(r))
            for r in _defined_regs(loop)
        },
    )


def _producer_map(
    loop: Loop,
) -> dict[int, dict[Reg, tuple[Instruction | None, int]]]:
    """For each instruction: register -> (producing instruction, carried).

    ``carried`` is 1 when the value comes from the previous source
    iteration (producer at the same body position or later), matching the
    DDG's omega rule.  Computed for every *use* and — for predicated
    fall-through — every *def* as well.
    """
    last_def: dict[Reg, Instruction] = {}
    for inst in loop.body:
        for reg in inst.all_defs():
            last_def[reg] = inst

    before: dict[Reg, Instruction] = {}
    result: dict[int, dict[Reg, tuple[Instruction | None, int]]] = {}
    for inst in loop.body:
        entry: dict[Reg, tuple[Instruction | None, int]] = {}
        for reg in set(inst.all_uses()) | set(inst.all_defs()):
            if reg in before:
                entry[reg] = (before[reg], 0)
            elif reg in last_def:
                entry[reg] = (last_def[reg], 1)
            else:
                entry[reg] = (None, 0)
        result[inst.index] = entry
        for reg in inst.all_defs():
            before[reg] = inst
    return result


def run_scheduled(
    loop: Loop,
    times: dict[Instruction, int],
    ii: int,
    n: int,
    streams: dict[int, list[int]] | None = None,
) -> ArchOutcome:
    """Replay a modulo schedule: instances in global schedule order.

    Instruction ``op`` of source iteration ``i`` executes at global cycle
    ``i*ii + times[op]``; ties resolve by (iteration, body position),
    which respects every *satisfied* dependence edge.  Each instance's
    register reads resolve to the producing instance's value (rotation
    semantics); memory is shared.
    """
    streams = streams if streams is not None else address_streams(loop, n)
    producers = _producer_map(loop)
    body = [inst for inst in loop.body if not inst.is_branch]
    instances = sorted(
        (times[inst] + i * ii, i, inst.index, inst)
        for i in range(n)
        for inst in body
    )

    defvals: dict[tuple[int, int], dict[Reg, int]] = {}
    mem: dict[tuple[str, int], int] = {}
    violations: list[str] = []

    def read(inst: Instruction, i: int, reg: Reg) -> int:
        producer, carried = producers[inst.index][reg]
        if producer is None:
            return _init_value(reg)
        j = i - carried
        if j < 0:
            return _init_value(reg)
        vals = defvals.get((producer.index, j))
        if vals is None:
            violations.append(
                f"op {inst.index} iter {i} reads {reg} before producer "
                f"op {producer.index} iter {j} has executed"
            )
            return _init_value(reg)
        return vals.get(reg, _init_value(reg))

    for _time, i, _idx, inst in instances:
        out: dict[Reg, int] = {}
        active = True
        if inst.qual_pred is not None:
            active = bool(read(inst, i, inst.qual_pred) & 1)

        if inst.is_prefetch:
            if inst.post_increment is not None:
                addr_reg = inst.uses[0]
                prev = read(inst, i, addr_reg)
                out[addr_reg] = (
                    (prev + inst.post_increment) & _MASK if active else prev
                )
        elif inst.is_load or inst.is_store:
            space = _cell_space(loop, inst)
            addr = streams[inst.memref.uid][i]
            addr_reg = inst.uses[0]
            prev_addr = read(inst, i, addr_reg)
            if inst.is_load:
                if active:
                    value = mem.get((space, addr), _fill_value(space, addr))
                    for d in inst.defs:
                        out[d] = value
                else:
                    for d in inst.defs:
                        out[d] = read(inst, i, d)
            elif active:
                mem[(space, addr)] = read(inst, i, inst.uses[1])
            if inst.post_increment is not None:
                out[addr_reg] = (
                    (prev_addr + inst.post_increment) & _MASK
                    if active else prev_addr
                )
        else:
            if active:
                vals = [read(inst, i, u) for u in inst.uses]
                result = _eval(inst, vals, inst.imm)
                for d in inst.defs:
                    out[d] = result
            else:
                for d in inst.defs:
                    out[d] = read(inst, i, d)
        defvals[(inst.index, i)] = out

    last_def: dict[Reg, Instruction] = {}
    for inst in body:
        for reg in inst.all_defs():
            last_def[reg] = inst
    registers: dict[str, int] = {}
    for reg in _defined_regs(loop):
        producer = last_def.get(reg)
        if producer is None or n == 0:
            value = _init_value(reg)
        else:
            value = defvals[(producer.index, n - 1)].get(reg, _init_value(reg))
        registers[f"{reg.rclass.value}{reg.index}"] = value

    return ArchOutcome(
        memory={f"{s}@{a}": v for (s, a), v in sorted(mem.items())},
        registers=registers,
        violations=violations,
    )
