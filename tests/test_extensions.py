"""Tests for the Sec. 6 outlook extensions: dynamic cache-miss sampling
and trip-count versioning."""

from functools import partial

import numpy as np
import pytest

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core.compiler import LoopCompiler
from repro.core.versioning import (
    VERSION_CHECK_CYCLES,
    compile_versions,
    simulate_versioned,
)
from repro.hlo.profiles import TripDistribution, collect_block_profile
from repro.hlo.sampling import (
    MissProfile,
    RefMissStats,
    collect_miss_profile,
    hints_from_miss_profile,
)
from repro.ir.memref import LatencyHint
from repro.sim import MemorySystem, simulate_loop
from repro.workloads.loops import gather, low_trip_linear, pointer_chase

MB = 1 << 20


class TestMissStats:
    def test_latency_classes(self):
        stats = RefMissStats()
        stats.add(1, 1.0)
        stats.add(2, 6.0)
        stats.add(2, 170.0)  # "L2 hit" on a pending line: memory-class
        assert stats.samples == 3
        assert stats.latency_classes == {1: 1, 2: 1, 4: 1}
        assert stats.mean_latency == pytest.approx(59.0)

    def test_typical_level_uses_tail(self):
        stats = RefMissStats()
        for _ in range(8):
            stats.add(1, 1.0)
        for _ in range(2):
            stats.add(4, 200.0)  # 20% tail at memory latency
        assert stats.typical_level == 4

    def test_mostly_l1_is_level_one(self):
        stats = RefMissStats()
        for _ in range(99):
            stats.add(1, 1.0)
        stats.add(4, 200.0)
        assert stats.typical_level == 1


class TestMissSampling:
    def test_profile_attributes_by_reference(self, machine):
        factory = partial(gather, "g", index_set=2 * MB, data_set=10 * MB,
                          fp=True)
        profile = collect_miss_profile(factory, machine, [100] * 4)
        loop, _ = factory()
        idx_ref = loop.body[0].memref
        data_ref = next(i.memref for i in loop.loads if i.memref.name == "data")
        idx_stats = profile.for_ref(idx_ref)
        data_stats = profile.for_ref(data_ref)
        assert idx_stats is not None and data_stats is not None
        # the affine index stream prefetches into L1; the gathered data
        # pays real latency
        assert idx_stats.typical_level == 1
        assert data_stats.typical_level >= 3

    def test_hints_from_profile(self, machine):
        factory = partial(pointer_chase, "m", heap=64 * MB)
        profile = collect_miss_profile(factory, machine, [4] * 80)
        loop, _ = factory()
        marked = hints_from_miss_profile(loop, profile)
        assert marked >= 2
        for load in loop.loads[:-1]:  # the field loads
            assert load.memref.hint in (LatencyHint.L3, LatencyHint.MEM)
            assert load.memref.hint_source == "sampled"

    def test_sampled_policy_preserves_annotations(self, machine):
        factory = partial(pointer_chase, "m", heap=64 * MB)
        profile = collect_miss_profile(factory, machine, [4] * 40)
        loop, _ = factory()
        hints_from_miss_profile(loop, profile)
        cfg = CompilerConfig(hint_policy=HintPolicy.SAMPLED,
                             trip_count_threshold=32)
        compiled = LoopCompiler(machine, cfg).compile(loop)
        # sampled hints survive HLO and bypass the trip gate; criticality
        # still protects the chase recurrence
        assert compiled.stats.boosted_loads == 2
        assert compiled.stats.critical_loads == 1

    def test_sampled_hints_beat_baseline(self, machine):
        factory = partial(pointer_chase, "m", heap=64 * MB)
        profile = collect_miss_profile(factory, machine, [4] * 40)
        cycles = {}
        for label, cfg in (
            ("base", baseline_config()),
            ("sampled", CompilerConfig(hint_policy=HintPolicy.SAMPLED,
                                       trip_count_threshold=32)),
        ):
            loop, layout = factory()
            if label == "sampled":
                hints_from_miss_profile(loop, profile)
            compiled = LoopCompiler(machine, cfg).compile(loop)
            rng = np.random.default_rng(5)
            trips = TripDistribution(kind="uniform", low=1, high=4).sample(
                rng, 600
            )
            sim = simulate_loop(
                compiled.result, machine, layout, list(trips),
                memory=MemorySystem(machine.timings),
            )
            cycles[label] = sim.cycles
        assert cycles["sampled"] < cycles["base"] * 0.8

    def test_unsampled_loop_gets_no_hints(self, machine):
        loop, _ = gather("fresh", index_set=1 * MB, data_set=1 * MB)
        assert hints_from_miss_profile(loop, MissProfile()) == 0


class TestTripCountVersioning:
    @pytest.fixture
    def mesa_like(self, machine):
        """A loop that trains long but runs short (the mesa pathology),
        under the blanket L3 policy that ruins it (Fig. 7)."""
        factory = partial(low_trip_linear, "mesa")
        profile = collect_block_profile(
            {"mesa": TripDistribution(kind="constant", mean=154)}
        )
        cfg = CompilerConfig(hint_policy=HintPolicy.ALL_LOADS_L3,
                             trip_count_threshold=32)
        return factory, profile, cfg

    def test_versions_differ(self, machine, mesa_like):
        factory, profile, cfg = mesa_like
        versioned, _ = compile_versions(factory, machine, cfg,
                                        profile=profile)
        assert versioned.boosted.stats.boosted_loads > 0
        assert versioned.fallback.stats.boosted_loads == 0
        assert (
            versioned.boosted.stats.stage_count
            > versioned.fallback.stats.stage_count
        )
        assert versioned.threshold > 1

    def test_pick(self, machine, mesa_like):
        factory, profile, cfg = mesa_like
        versioned, _ = compile_versions(factory, machine, cfg,
                                        profile=profile, threshold=32)
        assert versioned.pick(8) is versioned.fallback
        assert versioned.pick(200) is versioned.boosted

    def test_versioning_removes_the_mesa_loss(self, machine, mesa_like):
        """Run at 8 iterations per invocation: the plain boosted build
        loses badly; the versioned build tracks the fallback."""
        factory, profile, cfg = mesa_like
        trips = [8] * 400

        loop, layout = factory()
        boosted_only = LoopCompiler(machine, cfg).compile(loop, profile)
        plain = simulate_loop(
            boosted_only.result, machine, layout, trips,
            memory=MemorySystem(machine.timings),
        )

        versioned, layout_v = compile_versions(
            factory, machine, cfg, profile=profile, threshold=32
        )
        multi = simulate_versioned(
            versioned, machine, layout_v, trips,
            memory=MemorySystem(machine.timings),
        )
        assert multi.cycles < plain.cycles * 0.9

        loop_f, layout_f = factory()
        fallback_only = LoopCompiler(
            machine, cfg.with_(latency_tolerant=False)
        ).compile(loop_f, profile)
        base = simulate_loop(
            fallback_only.result, machine, layout_f, trips,
            memory=MemorySystem(machine.timings),
        )
        # within the version-check overhead of the conventional build
        overhead = len(trips) * VERSION_CHECK_CYCLES
        assert multi.cycles <= base.cycles + overhead * 1.5

    def test_versioning_keeps_gains_on_long_invocations(self, machine):
        """A bimodal workload: short invocations take the fallback,
        long ones the boosted pipeline — versioning beats either alone."""
        factory = partial(pointer_chase, "bimodal", heap=64 * MB)
        profile = collect_block_profile(
            {"bimodal": TripDistribution(kind="bimodal", low=2, high=64,
                                         p_low=0.5)}
        )
        cfg = CompilerConfig(hint_policy=HintPolicy.HLO,
                             trip_count_threshold=0)
        versioned, layout = compile_versions(
            factory, machine, cfg, profile=profile, threshold=16
        )
        rng = np.random.default_rng(11)
        trips = TripDistribution(kind="bimodal", low=2, high=64,
                                 p_low=0.5).sample(rng, 200)
        multi = simulate_versioned(
            versioned, machine, layout, list(trips),
            memory=MemorySystem(machine.timings),
        )
        loop_f, layout_f = factory()
        fallback_only = LoopCompiler(
            machine, cfg.with_(latency_tolerant=False)
        ).compile(loop_f, profile)
        base = simulate_loop(
            fallback_only.result, machine, layout_f, list(trips),
            memory=MemorySystem(machine.timings),
        )
        assert multi.cycles < base.cycles
