"""The fast simulator backend: a compiled schedule replayer.

:func:`repro.sim.core.run_iterations` is a faithful per-cycle
interpreter: every kernel iteration walks every ``OpExec`` record,
re-reads its fields, re-checks sink flags, constructs an
``AccessResult`` per memory request and funnels every cache probe
through four layers of method calls.  That is the right shape for the
*reference* semantics — and the wall-clock bottleneck of every sweep,
fuzz campaign and nightly run.

This module *compiles* the schedule instead.  :func:`compile_kernel`
lowers an :class:`ExecutionSetup` once per (loop, machine) into a
:class:`CompiledKernel`: per-op schedule tables (issue rows, stages,
wait edges, load slots as numpy arrays, kept for analysis and tests)
plus a generated, specialised ``replay`` function in which

* the op sequence is unrolled into straight-line code with every
  schedule constant (row, stage, wait omegas, prefetch distances,
  stream bindings) baked in as literals, so nothing is dispatched or
  unpacked per instance;
* pure register ops with no load-produced operands are elided entirely
  (the interpreter provably does nothing for them);
* kernel iterations are split into prologue / steady-state / epilogue
  ranges, so the steady loop — where every stage is live — runs with
  no instance-bounds checks at all;
* stall-on-use resolves against per-slot completion tables held as
  plain float lists, and the OzQ is an inline binary heap whose
  full-window accounting only engages on contention;
* the whole memory walk is compiled in: TLB install/evict, the
  L1D/L2/L3 lookup–fill–evict chain, bank occupancy — straight dict
  operations on the live :class:`MemorySystem` state, with no method
  calls and no ``AccessResult`` objects on any path.  A
  most-recently-used shortcut on top turns repeat touches of the same
  page/line (the steady state of strided streams) into a couple of
  integer compares.

Correctness is structural, not statistical: the generated code performs
the same arithmetic in the same order with the same IEEE-754 values as
the interpreter, and every cache/TLB/bank mutation is replicated
exactly (the MRU shortcut only skips ``move_to_end`` calls that are
provably no-ops).  The differential suite
(``tests/test_sim_fastpath.py``) holds every :class:`PerfCounters`
field bit-identical across backends for all workload suites and the
fuzz regression corpus.

Runs the fast path cannot replay at all — traced runs (an attached
:class:`TraceSink`), instrumented ``MemorySystem`` or cache/TLB
subclasses — fall back to the interpreter wholesale;
:func:`fast_replay_supported` is the gate the executor consults.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

import numpy as np

from repro.sim.cache import Cache
from repro.sim.core import ExecutionSetup
from repro.sim.counters import PerfCounters
from repro.sim.memory import MemorySystem
from repro.sim.tlb import TLB

#: replay-program op kinds
_KIND_WAIT_ONLY = 0
_KIND_LOAD = 1
_KIND_STORE = 2
_KIND_PREFETCH = 3

_NEG_INF = float("-inf")


class CompiledKernel:
    """Precompiled replay tables + generated code for one setup.

    The numpy arrays describe the *whole* schedule (one entry per
    loop-body op, in issue order) and exist for analysis and tests;
    ``program`` is the executed subset as flat tuples ``(row, stage,
    waits, load_slot, kind, is_fp, pf_dist, pf_l2_only, ref_uid,
    tag)``; :meth:`replay_for` returns the generated function for
    a given memory system's geometry (``source`` holds the latest
    variant's text).
    """

    __slots__ = (
        "ii",
        "stage_count",
        "num_loads",
        "loop_name",
        "rows",
        "stages",
        "load_slots",
        "wait_dst",
        "wait_slot",
        "wait_omega",
        "program",
        "elided_ops",
        "ref_uids",
        "source",
        "_variants",
    )

    def __init__(self, setup: ExecutionSetup) -> None:
        self.ii = setup.ii
        self.stage_count = setup.stage_count
        self.num_loads = setup.num_loads
        self.loop_name = setup.loop_name

        ops = setup.ops
        self.rows = np.array([op.row for op in ops], dtype=np.int32)
        self.stages = np.array([op.stage for op in ops], dtype=np.int32)
        self.load_slots = np.array(
            [op.load_slot for op in ops], dtype=np.int32
        )
        wait_dst: list[int] = []
        wait_slot: list[int] = []
        wait_omega: list[int] = []
        for pos, op in enumerate(ops):
            for slot, omega in op.waits:
                wait_dst.append(pos)
                wait_slot.append(slot)
                wait_omega.append(omega)
        self.wait_dst = np.array(wait_dst, dtype=np.int32)
        self.wait_slot = np.array(wait_slot, dtype=np.int32)
        self.wait_omega = np.array(wait_omega, dtype=np.int32)

        program = []
        elided = 0
        for op in ops:
            if op.ref_uid < 0 and not op.waits:
                # a pure register op with no load-produced operands:
                # the interpreter's body is provably a no-op for it
                elided += 1
                continue
            if op.ref_uid < 0:
                kind = _KIND_WAIT_ONLY
            elif op.is_prefetch:
                kind = _KIND_PREFETCH
            elif op.is_load:
                kind = _KIND_LOAD
            else:
                kind = _KIND_STORE
            program.append((
                op.row,
                op.stage,
                op.waits,
                op.load_slot,
                kind,
                op.is_fp,
                op.prefetch_distance,
                op.prefetch_l2_only,
                op.ref_uid,
                op.tag,
            ))
        self.program = tuple(program)
        self.elided_ops = elided

        ref_uids: list[int] = []
        for entry in program:
            uid = entry[8]
            if uid >= 0 and uid not in ref_uids:
                ref_uids.append(uid)
        self.ref_uids = tuple(ref_uids)

        self.source = ""
        self._variants: dict = {}

    def replay_for(self, memory):
        """The generated replay function, specialised to ``memory``'s
        geometry (compiled on first use per geometry, then cached).

        ``source`` holds the most recently generated variant's text."""
        geom = _geometry(memory)
        fn = self._variants.get(geom)
        if fn is None:
            self.source = _generate_source(self, geom)
            namespace = {
                "heappush": heapq.heappush,
                "heappop": heapq.heappop,
                "NEG_INF": _NEG_INF,
                "INF": float("inf"),
                "OrderedDict": OrderedDict,
            }
            exec(
                compile(self.source, f"<kernel {self.loop_name}>", "exec"),
                namespace,
            )
            fn = namespace["replay"]
            self._variants[geom] = fn
        return fn

    def __getstate__(self):
        # exec()-generated functions cannot cross a process boundary;
        # shipping a kernel (e.g. inside a worker's result payload) drops
        # the variant cache and the receiver recompiles lazily on use
        state = {name: getattr(self, name) for name in self.__slots__}
        state["_variants"] = {}
        return state

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)


def compile_kernel(setup: ExecutionSetup) -> CompiledKernel:
    """The (memoised) compiled replayer for ``setup``."""
    kernel = setup.kernel
    if kernel is None:
        kernel = CompiledKernel(setup)
        setup.kernel = kernel
    return kernel


def fast_replay_supported(memory, sink=None) -> bool:
    """Whether the compiled replayer can run this configuration.

    The fast path inlines the memory-system walk, so any instrumented
    subclass (sampling memories, fixed-latency test doubles) and any
    attached trace sink routes to the interpreter instead — silently,
    because both backends are bit-identical anyway.
    """
    return (
        sink is None
        and type(memory) is MemorySystem
        and memory.sink is None
        and type(memory.l1d) is Cache
        and type(memory.l2) is Cache
        and type(memory.l3) is Cache
        and type(memory.tlb) is TLB
    )


def fast_machine_supported(machine) -> bool:
    """Whether the code generator models this machine's dynamic policies.

    The generated replayers encode the classic in-order semantics —
    ordered OzQ occupancy and full stall-on-use — so machines declaring
    a speculative LSQ or a load-delay-tracking scoreboard route to the
    interpreter instead of raising from codegen; the executor records
    the downgrade as ``backend="interp"``.  Hierarchy *geometry* needs
    no gate: replayers are compiled per geometry.
    """
    queue = machine.queue
    scoreboard = machine.scoreboard
    return (
        queue.kind == "ozq"
        and scoreboard.kind == "stall-on-use"
        and scoreboard.tracking_window == 0
    )


def _build_pack(kernel: CompiledKernel, streams, restart_uids) -> list:
    """Flat (stream list, base multiplier) pairs in ``ref_uids`` order.

    The multiplier is 0 for references that restart at stream position
    0 each invocation (reused spaces) and 1 for streaming references,
    so the generated code derives each invocation's stream base with
    one integer multiply.
    """
    pack = []
    for uid in kernel.ref_uids:
        pack.append(streams.as_list(uid))
        pack.append(0 if uid in restart_uids else 1)
    return pack


def run_iterations_fast(
    kernel: CompiledKernel,
    streams,
    stream_base: int,
    n: int,
    memory: MemorySystem,
    ozq_capacity: int,
    counters: PerfCounters,
    start_cycle: float = 0.0,
    restart_uids: frozenset | set = frozenset(),
) -> float:
    """Replay ``n`` source iterations; returns the finish cycle.

    Drop-in equivalent of :func:`repro.sim.core.run_iterations` for
    untraced runs on a plain :class:`MemorySystem`: every counter,
    completion time and piece of cache/TLB/bank state comes out
    bit-identical.  ``restart_uids`` lists reference uids whose streams
    restart at position 0 each invocation (reused spaces); all other
    references index their streams at ``stream_base + i``.
    """
    if n <= 0:
        return start_cycle
    pack = _build_pack(kernel, streams, restart_uids)
    return kernel.replay_for(memory)(
        [n], start_cycle, memory, counters, ozq_capacity, pack,
        stream_base, 0.0, 0.0, 0.0, 0.0, 0,
    )


def run_invocations_fast(
    kernel: CompiledKernel,
    streams,
    trips: list,
    memory: MemorySystem,
    ozq_capacity: int,
    counters: PerfCounters,
    start_cycle: float = 0.0,
    restart_uids: frozenset | set = frozenset(),
    *,
    overhead: float = 0.0,
    rse: float = 0.0,
    flush: float = 0.0,
    fe: float = 0.0,
    spill_instr: int = 0,
) -> float:
    """Replay a whole invocation sequence in one generated call.

    Equivalent to the executor's per-invocation loop — fixed costs
    (``overhead``/``rse``/``flush``/``fe``/``spill_instr``, applied
    before every invocation in the executor's exact order) followed by
    the kernel ranges — but with the setup preamble paid once instead
    of per invocation.  Streaming references advance by each trip
    count; ``restart_uids`` restart at 0.  Does not touch
    ``counters.invocations`` (the caller owns that bookkeeping).
    """
    pack = _build_pack(kernel, streams, restart_uids)
    return kernel.replay_for(memory)(
        trips, start_cycle, memory, counters, ozq_capacity, pack,
        0, overhead, rse, flush, fe, spill_instr,
    )


# --- code generation ----------------------------------------------------------

def _geometry(memory) -> tuple:
    """The machine-geometry tuple a generated variant is specialised to.

    Every timing, size, associativity and bank constant the replay body
    needs becomes a literal in the generated source — power-of-two sizes
    compile to shifts and masks, and equal line sizes collapse the three
    per-level line ids into one.  A variant is therefore only valid for
    memory systems with exactly this geometry; :meth:`CompiledKernel.
    replay_for` keys its variant cache on this tuple, so a mismatched
    memory system simply compiles (and caches) its own variant.
    """
    t = memory.timings
    tlb = memory.tlb
    l1, l2, l3 = memory.l1d.config, memory.l2.config, memory.l3.config
    return (
        t.l1, t.l2, t.l3, t.memory, t.fp_extra,
        tlb.page_size, tlb.entries, tlb.miss_penalty,
        l1.line_size, l1.num_sets, l1.associativity,
        l2.line_size, l2.num_sets, l2.associativity,
        l3.line_size, l3.num_sets, l3.associativity,
        bool(memory.bank_conflicts),
        memory.L2_BANK_WIDTH, memory.L2_BANKS, memory.L2_BANK_OCCUPANCY,
    )


class _Gen:
    """Per-variant generation context: geometry literals + site caches."""

    def __init__(self, geom: tuple) -> None:
        (self.t_l1, self.t_l2, self.t_l3, self.t_mem, self.fp_x,
         self.page_size, self.tlb_entries, self.tlb_penalty,
         self.l1_line, self.l1_nsets, self.l1_assoc,
         self.l2_line, self.l2_nsets, self.l2_assoc,
         self.l3_line, self.l3_nsets, self.l3_assoc,
         self.bank_conflicts, self.bank_w, self.bank_n,
         self.bank_occ) = geom
        #: one ``line`` id serves every level when the line sizes agree
        self.unified = self.l1_line == self.l2_line == self.l3_line
        #: integer timings make the settled-hit latency chain foldable:
        #: every term is an exact small integer in a float, so any
        #: association of the sum is bit-identical to the interpreter's
        self.fold = all(
            isinstance(v, int)
            for v in (self.t_l1, self.t_l2, self.fp_x, self.tlb_penalty)
        )
        #: per-op-site cache locals to seed in the preamble
        self.site_locals: dict[str, str] = {}

    @staticmethod
    def div(expr: str, const: int) -> str:
        """``expr // const`` as a shift when the divisor allows it."""
        if const > 0 and const & (const - 1) == 0:
            return f"{expr} >> {const.bit_length() - 1}"
        return f"{expr} // {const}"

    @staticmethod
    def mod(expr: str, const: int) -> str:
        """``expr % const`` as a mask when the modulus allows it."""
        if const > 0 and const & (const - 1) == 0:
            return f"{expr} & {const - 1}"
        return f"{expr} % {const}"

    def site(self, lvl: str, s: int) -> tuple[str, str]:
        """(line, set-dict) cache local names for cache level ``lvl``
        at op site ``s``, registered for preamble initialisation.

        A site cache remembers the last line this *op* touched and the
        authoritative set dict it lives in (set dicts are created once
        and never replaced, so the reference cannot go stale).  Unlike
        the global tail MRU it survives other ops touching other lines:
        a repeat touch revalidates with one ``in`` check, still calls
        ``move_to_end`` (LRU order stays exact), and skips the set-index
        arithmetic and the set-dict lookup.
        """
        c, d = f"c{lvl[1]}_{s}", f"d{lvl[1]}_{s}"
        self.site_locals[c] = "-1"
        self.site_locals[d] = "()"
        return c, d


class _Emitter:
    """Indentation-tracking line collector for the generated source."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def block(self, header: str) -> None:
        self.emit(header)
        self.indent += 1

    def els(self, header: str = "else:") -> None:
        """Close the open block and start its else/elif at the same level."""
        self.indent -= 1
        self.emit(header)
        self.indent += 1

    def end(self) -> None:
        self.indent -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_push(e: _Emitter, completion: str) -> None:
    """OzQ push with exact became-full tracking (interp's ``push``).

    Entries are bare completion times: the interpreter's tie-break
    element only disambiguates pop *order* among equal times, and every
    observable quantity (pop counts, popped values, full-window spans)
    is invariant under that order, so the heap holds floats.
    ``ozq_min``/``ozq_len`` shadow ``ozq[0]``/``len(ozq)`` so the
    per-op drain test and capacity checks are single local compares.
    """
    if not completion.isidentifier():
        e.emit(f"_c = {completion}")
        completion = "_c"
    e.emit(f"heappush(ozq, {completion})")
    e.emit("ozq_len += 1")
    e.block(f"if {completion} < ozq_min:")
    e.emit(f"ozq_min = {completion}")
    e.end()
    e.block("if ozq_len >= cap and became_full_at is None:")
    e.emit("became_full_at = now")
    e.end()


def _emit_drain(e: _Emitter) -> None:
    """Inline interp ``drain``: pop settled entries, close full windows."""
    e.block("while ozq_min <= now:")
    e.emit("_done = heappop(ozq)")
    e.emit("ozq_len -= 1")
    e.block("if became_full_at is not None and ozq_len == capm1:")
    e.emit("_full = _done - became_full_at")
    e.block("if _full < 0.0:")
    e.emit("_full = 0.0")
    e.end()
    e.emit("ozq_full += _full")
    e.emit("became_full_at = None")
    e.end()
    e.emit("ozq_min = ozq[0] if ozq else INF")
    e.end()


def _emit_waits(
    e: _Emitter, waits, stby: str, min_i: int = 0,
    static_i: int | None = None,
) -> None:
    """Stall-on-use checks against the completion tables.

    ``stby`` names this op's seeded stall-attribution local (one per
    distinct tag), written back to ``stall_by_consumer`` at the end.
    ``min_i`` is a proven lower bound on ``i`` at this emission site
    (the steady-state loop guarantees ``i >= stage_count-1 - stage``),
    letting the producer-exists guard drop when it cannot fail; with a
    fully static ``i`` the guard resolves at generation time — an
    unreachable wait vanishes and a live one indexes by literal.
    """
    for slot, omega in waits:
        if static_i is not None:
            if omega > static_i:
                continue  # producer instance does not exist at this i
            guard = False
            e.emit(f"_r = comp{slot}[{static_i - omega}]")
        elif omega > 0:
            guard = omega > min_i
            if guard:
                e.block(f"if i >= {omega}:")
            e.emit(f"_r = comp{slot}[i - {omega}]")
        else:
            guard = False
            e.emit(f"_r = comp{slot}[i]")
        e.block("if _r > now:")
        e.emit("_w = _r - now")
        e.emit("stall += _w")
        e.emit("now += _w")
        e.emit("be_exe += _w")
        e.emit(f"{stby} += _w")
        e.end()
        if guard:
            e.end()


def _emit_clamp0(e: _Emitter, var: str) -> None:
    """``var = max(0.0, var)`` with the interpreter's exact value."""
    e.block(f"if {var} < 0.0:")
    e.emit(f"{var} = 0.0")
    e.end()


def _emit_tlb(e: _Emitter, g: _Gen) -> None:
    """Inline ``TLB.access``: sets ``penalty``, leaves ``page`` at tail.

    ``tlb_mru`` caches the page at the LRU tail: a repeat touch of it
    skips the dict probe and the (no-op) ``move_to_end``.  Both exits
    leave ``page`` at the tail, so the cache stays valid.
    """
    e.block("if page == tlb_mru:")
    e.emit("tlb_hits += 1")
    e.emit("penalty = 0")
    e.els()
    e.block("if page in pages:")
    e.emit("pages.move_to_end(page)")
    e.emit("tlb_hits += 1")
    e.emit("penalty = 0")
    e.els()
    e.emit("tlb_misses += 1")
    e.block(f"if tlbn >= {g.tlb_entries}:")
    e.emit("pages.popitem(last=False)")
    e.els()
    e.emit("tlbn += 1")
    e.end()
    e.emit("pages[page] = None")
    e.emit(f"penalty = {g.tlb_penalty!r}")
    e.end()
    e.emit("tlb_mru = page")
    e.end()


def _emit_fill(
    e: _Emitter, g: _Gen, lvl: str, rdy: str, site: tuple | None = None,
    probe: str | None = None,
) -> None:
    """Inline ``Cache.fill`` for level ``lvl`` at ready-time var ``rdy``.

    L1/L2 fills re-arm that level's global MRU shortcut (the filled line
    ends at the tail of its set with exactly the stored ready time), and
    ``site`` additionally re-arms the filling op's site cache.

    Every fill follows a failed probe of the same set, so ``probe``
    names the set dict (or ``None``) that probe already fetched — the
    lookup is not repeated, and the set index is only recomputed on the
    rare create branch.
    """
    arm = lvl in ("l1", "l2")
    if g.unified:
        lv = "line"
    else:
        lv = "_fl"
        e.emit(f"_fl = {g.div('addr', getattr(g, lvl + '_line'))}")
    if probe is None:
        e.emit(f"_fs = {g.mod(lv, getattr(g, lvl + '_nsets'))}")
        e.emit(f"_fw = {lvl}_get(_fs)")
        set_expr = "_fs"
    else:
        e.emit(f"_fw = {probe}")
        set_expr = g.mod(lv, getattr(g, lvl + "_nsets"))
    e.block("if _fw is None:")
    e.emit("_fw = OrderedDict()")
    e.emit(f"{lvl}_sets[{set_expr}] = _fw")
    e.emit(f"_fw[{lv}] = {rdy}")
    if arm:
        e.emit(f"{lvl}_mru = {lv}")
        e.emit(f"{lvl}_mru_ready = {rdy}")
    e.els(f"elif {lv} in _fw:")
    e.emit(f"_fw.move_to_end({lv})")
    e.emit(f"_old = _fw[{lv}]")
    e.emit(f"_fw[{lv}] = {rdy} if {rdy} < _old else _old")
    if arm:
        e.emit(f"{lvl}_mru = {lv}")
        e.emit(f"{lvl}_mru_ready = _fw[{lv}]")
    e.els()
    e.block(f"if len(_fw) >= {getattr(g, lvl + '_assoc')}:")
    e.emit("_fw.popitem(last=False)")
    e.end()
    e.emit(f"_fw[{lv}] = {rdy}")
    if arm:
        e.emit(f"{lvl}_mru = {lv}")
        e.emit(f"{lvl}_mru_ready = {rdy}")
    e.end()
    if site is not None:
        e.emit(f"{site[0]} = {lv}")
        e.emit(f"{site[1]} = _fw")


def _emit_bank(e: _Emitter, g: _Gen) -> None:
    """Inline ``_l2_bank_delay`` folded into ``_lat``.

    ``bank_conflicts`` is part of the geometry, so only the taken branch
    is generated (the disabled side keeps the interpreter's ``+ 0.0``).
    """
    if not g.bank_conflicts:
        e.emit("_lat = _lat + 0.0")
        return
    e.emit(f"bank = {g.mod('(' + g.div('addr', g.bank_w) + ')', g.bank_n)}")
    e.emit("_d = banks[bank] - now")
    _emit_clamp0(e, "_d")
    e.block("if _d > 0:")
    e.emit("bank_cc += 1")
    e.end()
    e.emit(f"banks[bank] = now + _d + {g.bank_occ!r}")
    e.emit("_lat = _lat + _d")


def _emit_bank_state(e: _Emitter, g: _Gen) -> None:
    """Bank occupancy update alone, when the latency result is unused
    (a settled store hit stalls nothing and occupies nothing)."""
    if not g.bank_conflicts:
        return
    e.emit(f"bank = {g.mod('(' + g.div('addr', g.bank_w) + ')', g.bank_n)}")
    e.emit("_d = banks[bank] - now")
    _emit_clamp0(e, "_d")
    e.block("if _d > 0:")
    e.emit("bank_cc += 1")
    e.end()
    e.emit(f"banks[bank] = now + _d + {g.bank_occ!r}")


def _emit_l2hit_load(
    e: _Emitter, g: _Gen, slot: int, is_fp: bool, ready: str,
    l1site: tuple | None = None,
) -> None:
    """Load L2-hit consequences; ``ready`` names the line's ready time.

    With integer timings the settled case (``ready <= now``, the steady
    state) folds the whole pending chain away: ``_p`` is exactly 0.0,
    so the latency collapses to one literal-plus-penalty add and the
    OzQ push becomes unconditional, while the in-flight case skips the
    clamp (``_p > 0`` by construction) and never pushes.
    """
    extra = repr(g.fp_x) if is_fp else "0"

    def tail() -> None:
        _emit_bank(e, g)
        e.emit("_rdy = now + _lat")
        if not is_fp:
            _emit_fill(e, g, "l1", "_rdy", site=l1site, probe="_w1")
        e.emit(f"comp{slot}[i] = _rdy")
        e.emit("ll2 += 1")

    if g.fold:
        folded = float(g.t_l2 + (g.fp_x if is_fp else 0))
        e.block(f"if {ready} <= now:")
        e.emit(f"_lat = {folded!r} + penalty")
        tail()
        _emit_push(e, "_rdy")
        e.els()
        e.emit(f"_p = {ready} - now")
        e.emit(f"_lat = {g.t_l2!r} + _p + penalty + {extra}")
        tail()
        e.end()
    else:
        e.emit(f"_p = {ready} - now")
        _emit_clamp0(e, "_p")
        e.emit(f"_lat = {g.t_l2!r} + _p + penalty + {extra}")
        tail()
        e.block("if _p == 0:")
        _emit_push(e, "_rdy")
        e.end()


def _emit_l1hit(e: _Emitter, g: _Gen, slot: int, ready: str) -> None:
    """Load L1-hit completion, settled case folded when timings allow."""
    if g.fold:
        e.block(f"if {ready} <= now:")
        e.emit(f"comp{slot}[i] = now + ({float(g.t_l1)!r} + penalty)")
        e.els()
        e.emit(f"_p = {ready} - now")
        e.emit(f"comp{slot}[i] = now + ({g.t_l1!r} + _p + penalty)")
        e.end()
    else:
        e.emit(f"_p = {ready} - now")
        _emit_clamp0(e, "_p")
        e.emit(f"comp{slot}[i] = now + ({g.t_l1!r} + _p + penalty)")
    e.emit("ll1 += 1")


def _emit_l3_probe(e: _Emitter, g: _Gen) -> str:
    """Emit the L3 set lookup; returns the probe line var name."""
    if g.unified:
        e.emit(f"_w3 = l3_get({g.mod('line', g.l3_nsets)})")
        return "line"
    e.emit(f"_l3l = {g.div('addr', g.l3_line)}")
    e.emit(f"_w3 = l3_get({g.mod('_l3l', g.l3_nsets)})")
    return "_l3l"


def _emit_load_tail(
    e: _Emitter, g: _Gen, slot: int, is_fp: bool,
    l1site: tuple | None = None, l2site: tuple | None = None,
) -> None:
    """The L3 -> memory stretch of ``MemorySystem._load`` after an L2
    miss (``l2_misses`` already counted by the caller)."""
    extra = repr(g.fp_x) if is_fp else "0"
    lv = _emit_l3_probe(e, g)
    e.block(f"if _w3 is not None and {lv} in _w3:")
    e.emit(f"_w3.move_to_end({lv})")
    e.emit("l3_hits += 1")
    e.emit(f"_p = _w3[{lv}] - now")
    _emit_clamp0(e, "_p")
    e.emit(f"_lat = {g.t_l3!r} + _p + penalty + {extra}")
    e.emit("_rdy = now + _lat")
    _emit_fill(e, g, "l2", "_rdy", site=l2site, probe="_w2")
    if not is_fp:
        _emit_fill(e, g, "l1", "_rdy", site=l1site, probe="_w1")
    e.emit(f"comp{slot}[i] = _rdy")
    e.emit("ll3 += 1")
    e.block("if _p == 0:")
    _emit_push(e, "_rdy")
    e.end()
    e.els()
    e.emit("l3_misses += 1")
    e.emit(f"_lat = {g.t_mem!r} + penalty + {extra}")
    e.emit("_rdy = now + _lat")
    _emit_fill(e, g, "l3", "_rdy", probe="_w3")
    _emit_fill(e, g, "l2", "_rdy", site=l2site, probe="_w2")
    if not is_fp:
        _emit_fill(e, g, "l1", "_rdy", site=l1site, probe="_w1")
    e.emit(f"comp{slot}[i] = _rdy")
    e.emit("ll4 += 1")
    _emit_push(e, "_rdy")
    e.end()


def _emit_load(
    e: _Emitter, g: _Gen, slot: int, ref: int, is_fp: bool, s: int
) -> None:
    """A demand load: MRU shortcuts, then probe, then the lower levels.

    Int loads resolve against the L1D; fp loads bypass it and resolve
    against the L2.  Three tiers of shortcut: the global tail MRU (one
    compare, no dict ops), the per-site cache (one ``in`` check plus the
    exact ``move_to_end``), then the full set probe.  All tiers handle
    settled and in-flight lines alike (an in-flight fill just charges
    its remaining time), so interleaved strided streams each walk once
    per line and shortcut the rest.
    """
    e.emit(f"addr = lst{ref}[sb{ref} + i]")
    e.emit(f"page = {g.div('addr', g.page_size)}")
    _emit_tlb(e, g)
    if is_fp:
        c2, d2 = g.site("l2", s)
        e.emit(f"line = {g.div('addr', g.l2_line)}")
        e.block("if line == l2_mru:")
        e.emit("l2_hits += 1")
        _emit_l2hit_load(e, g, slot, True, "l2_mru_ready")
        e.els(f"elif line == {c2} and line in {d2}:")
        e.emit(f"{d2}.move_to_end(line)")
        e.emit("l2_hits += 1")
        e.emit("l2_mru = line")
        e.emit(f"l2_mru_ready = {d2}[line]")
        _emit_l2hit_load(e, g, slot, True, "l2_mru_ready")
        e.els()
        e.emit(f"_w2 = l2_get({g.mod('line', g.l2_nsets)})")
        e.block("if _w2 is not None and line in _w2:")
        e.emit("_w2.move_to_end(line)")
        e.emit("l2_hits += 1")
        e.emit(f"{c2} = line")
        e.emit(f"{d2} = _w2")
        e.emit("l2_mru = line")
        e.emit("l2_mru_ready = _w2[line]")
        _emit_l2hit_load(e, g, slot, True, "l2_mru_ready")
        e.els()
        e.emit("l2_misses += 1")
        _emit_load_tail(e, g, slot, True, l2site=(c2, d2))
        e.end()
        e.end()
    else:
        c1, d1 = g.site("l1", s)
        e.emit(f"line = {g.div('addr', g.l1_line)}")
        e.block("if line == l1_mru:")
        e.emit("l1_hits += 1")
        _emit_l1hit(e, g, slot, "l1_mru_ready")
        e.els(f"elif line == {c1} and line in {d1}:")
        e.emit(f"{d1}.move_to_end(line)")
        e.emit("l1_hits += 1")
        e.emit("l1_mru = line")
        e.emit(f"l1_mru_ready = {d1}[line]")
        _emit_l1hit(e, g, slot, "l1_mru_ready")
        e.els()
        e.emit(f"_w1 = l1_get({g.mod('line', g.l1_nsets)})")
        e.block("if _w1 is not None and line in _w1:")
        e.emit("_w1.move_to_end(line)")
        e.emit("l1_hits += 1")
        e.emit(f"{c1} = line")
        e.emit(f"{d1} = _w1")
        e.emit("l1_mru = line")
        e.emit("l1_mru_ready = _w1[line]")
        _emit_l1hit(e, g, slot, "l1_mru_ready")
        e.els()
        e.emit("l1_misses += 1")
        if g.unified:
            lv2 = "line"
        else:
            lv2 = "_l2l"
            e.emit(f"_l2l = {g.div('addr', g.l2_line)}")
        e.emit(f"_w2 = l2_get({g.mod(lv2, g.l2_nsets)})")
        e.block(f"if _w2 is not None and {lv2} in _w2:")
        e.emit(f"_w2.move_to_end({lv2})")
        e.emit("l2_hits += 1")
        e.emit(f"l2_mru = {lv2}")
        e.emit(f"l2_mru_ready = _w2[{lv2}]")
        _emit_l2hit_load(e, g, slot, False, "l2_mru_ready", l1site=(c1, d1))
        e.els()
        e.emit("l2_misses += 1")
        _emit_load_tail(e, g, slot, False, l1site=(c1, d1))
        e.end()
        e.end()
        e.end()


def _emit_store(e: _Emitter, g: _Gen, ref: int, s: int) -> None:
    """A store: write-through L2, no fp surcharge, hits occupy nothing.

    The MRU and site-cache paths need no ready-time check at all:
    settled or pending, an L2 store hit only bumps the hit counters and
    the bank state.
    """
    c2, d2 = g.site("l2", s)
    e.emit(f"addr = lst{ref}[sb{ref} + i]")
    e.emit(f"page = {g.div('addr', g.page_size)}")
    _emit_tlb(e, g)
    e.emit(f"line = {g.div('addr', g.l2_line)}")
    e.block("if line == l2_mru:")
    e.emit("l2_hits += 1")
    _emit_bank_state(e, g)
    e.els(f"elif line == {c2} and line in {d2}:")
    e.emit(f"{d2}.move_to_end(line)")
    e.emit("l2_hits += 1")
    e.emit("l2_mru = line")
    e.emit(f"l2_mru_ready = {d2}[line]")
    _emit_bank_state(e, g)
    e.els()
    e.emit(f"_w2 = l2_get({g.mod('line', g.l2_nsets)})")
    e.block("if _w2 is not None and line in _w2:")
    e.emit("_w2.move_to_end(line)")
    e.emit("l2_hits += 1")
    e.emit(f"{c2} = line")
    e.emit(f"{d2} = _w2")
    e.emit("l2_mru = line")
    e.emit("l2_mru_ready = _w2[line]")
    # the interpreter computes the hit latency here too, but a store hit
    # feeds nothing and occupies nothing — only the bank state matters
    _emit_bank_state(e, g)
    e.els()
    e.emit("l2_misses += 1")
    lv = _emit_l3_probe(e, g)
    e.block(f"if _w3 is not None and {lv} in _w3:")
    e.emit(f"_w3.move_to_end({lv})")
    e.emit("l3_hits += 1")
    e.emit(f"_p = _w3[{lv}] - now")
    _emit_clamp0(e, "_p")
    e.emit(f"_lat = {g.t_l3!r} + _p + penalty")
    e.emit("_rdy = now + _lat")
    _emit_fill(e, g, "l2", "_rdy", site=(c2, d2), probe="_w2")
    e.block("if _p == 0:")
    _emit_push(e, "_rdy")
    e.end()
    e.els()
    e.emit("l3_misses += 1")
    e.emit(f"_lat = {g.t_mem!r} + penalty")
    e.emit("_rdy = now + _lat")
    _emit_fill(e, g, "l3", "_rdy", probe="_w3")
    _emit_fill(e, g, "l2", "_rdy", site=(c2, d2), probe="_w2")
    _emit_push(e, "_rdy")
    e.end()
    e.end()
    e.end()


def _emit_prefetch_tail(
    e: _Emitter, g: _Gen, fill_l1: bool,
    l1site: tuple | None = None, l2site: tuple | None = None,
) -> None:
    """The L3 -> memory stretch of ``MemorySystem._prefetch`` after an
    L2 miss (``l2_misses`` already counted by the caller)."""
    lv = _emit_l3_probe(e, g)
    e.block(f"if _w3 is not None and {lv} in _w3:")
    e.emit(f"_w3.move_to_end({lv})")
    e.emit("l3_hits += 1")
    e.emit(f"_p = _w3[{lv}] - now")
    _emit_clamp0(e, "_p")
    e.emit(f"_lat = {g.t_l3!r} + _p + penalty")
    e.emit("_rdy = now + _lat")
    _emit_fill(e, g, "l2", "_rdy", site=l2site, probe="_w2")
    if fill_l1:
        _emit_fill(e, g, "l1", "_rdy", site=l1site, probe="_w1")
    e.emit("pf_issued += 1")
    e.block("if _p == 0:")
    _emit_push(e, "_rdy")
    e.end()
    e.els()
    e.emit("l3_misses += 1")
    e.emit(f"_lat = {g.t_mem!r} + penalty")
    e.emit("_rdy = now + _lat")
    _emit_fill(e, g, "l3", "_rdy", probe="_w3")
    _emit_fill(e, g, "l2", "_rdy", site=l2site, probe="_w2")
    if fill_l1:
        _emit_fill(e, g, "l1", "_rdy", site=l1site, probe="_w1")
    e.emit("pf_issued += 1")
    _emit_push(e, "_rdy")
    e.end()


def _emit_prefetch(
    e: _Emitter, g: _Gen, ref: int, dist: int, l2_only: bool,
    is_fp: bool, s: int,
) -> None:
    """An ``lfetch``: dropped past stream end or on a full OzQ, then
    resolved like a load but producing no value (and no L1 fill for
    ``l2_only``/fp variants), per ``MemorySystem._prefetch``."""
    e.emit(f"pos = sb{ref} + i + {dist}")
    e.block(f"if pos < ln{ref}:")
    e.block("if ozq_len >= cap:")
    e.emit("pf_dropped += 1")  # hardware drops hints on a full queue
    e.els()
    e.emit(f"addr = lst{ref}[pos]")
    e.emit(f"page = {g.div('addr', g.page_size)}")
    _emit_tlb(e, g)
    if is_fp:
        c2, d2 = g.site("l2", s)
        e.emit(f"line = {g.div('addr', g.l2_line)}")
        e.block("if line == l2_mru:")
        e.emit("l2_hits += 1")
        e.emit("pf_issued += 1")
        e.emit("_p = l2_mru_ready - now")
        e.block("if _p > 0.0:")
        _emit_push(e, "now + 0.0")
        e.end()
        e.els(f"elif line == {c2} and line in {d2}:")
        e.emit(f"{d2}.move_to_end(line)")
        e.emit("l2_hits += 1")
        e.emit("l2_mru = line")
        e.emit(f"l2_mru_ready = {d2}[line]")
        e.emit("_p = l2_mru_ready - now")
        _emit_clamp0(e, "_p")
        e.emit("pf_issued += 1")
        e.block("if _p > 0:")
        _emit_push(e, "now + 0.0")
        e.end()
        e.els()
        e.emit(f"_w2 = l2_get({g.mod('line', g.l2_nsets)})")
        e.block("if _w2 is not None and line in _w2:")
        e.emit("_w2.move_to_end(line)")
        e.emit("l2_hits += 1")
        e.emit(f"{c2} = line")
        e.emit(f"{d2} = _w2")
        e.emit("l2_mru = line")
        e.emit("l2_mru_ready = _w2[line]")
        e.emit("_p = l2_mru_ready - now")
        _emit_clamp0(e, "_p")
        e.emit("pf_issued += 1")
        e.block("if _p > 0:")
        _emit_push(e, "now + 0.0")
        e.end()
        e.els()
        e.emit("l2_misses += 1")
        _emit_prefetch_tail(e, g, fill_l1=False, l2site=(c2, d2))
        e.end()
        e.end()
    else:
        # the L1 probe happens even for l2_only; only the fill is
        # suppressed — and an L1 hit issues with no other effect
        c1, d1 = g.site("l1", s)
        l2site = g.site("l2", s) if l2_only else None
        e.emit(f"line = {g.div('addr', g.l1_line)}")
        e.block("if line == l1_mru:")
        e.emit("l1_hits += 1")
        e.emit("pf_issued += 1")
        e.els(f"elif line == {c1} and line in {d1}:")
        e.emit(f"{d1}.move_to_end(line)")
        e.emit("l1_hits += 1")
        e.emit("l1_mru = line")
        e.emit(f"l1_mru_ready = {d1}[line]")
        e.emit("pf_issued += 1")
        e.els()
        e.emit(f"_w1 = l1_get({g.mod('line', g.l1_nsets)})")
        e.block("if _w1 is not None and line in _w1:")
        e.emit("_w1.move_to_end(line)")
        e.emit("l1_hits += 1")
        e.emit(f"{c1} = line")
        e.emit(f"{d1} = _w1")
        e.emit("l1_mru = line")
        e.emit("l1_mru_ready = _w1[line]")
        e.emit("pf_issued += 1")
        e.els()
        e.emit("l1_misses += 1")
        if g.unified:
            lv2 = "line"
        else:
            lv2 = "_l2l"
            e.emit(f"_l2l = {g.div('addr', g.l2_line)}")
        if l2site is not None:
            e.block(f"if {lv2} == {l2site[0]} and {lv2} in {l2site[1]}:")
            e.emit(f"{l2site[1]}.move_to_end({lv2})")
            e.emit("l2_hits += 1")
            e.emit(f"l2_mru = {lv2}")
            e.emit(f"l2_mru_ready = {l2site[1]}[{lv2}]")
            e.emit("_p = l2_mru_ready - now")
            _emit_clamp0(e, "_p")
            e.emit("pf_issued += 1")
            e.block("if _p > 0:")
            _emit_push(e, "now + 0.0")
            e.end()
            e.els()
        e.emit(f"_w2 = l2_get({g.mod(lv2, g.l2_nsets)})")
        e.block(f"if _w2 is not None and {lv2} in _w2:")
        e.emit(f"_w2.move_to_end({lv2})")
        e.emit("l2_hits += 1")
        if l2site is not None:
            e.emit(f"{l2site[0]} = {lv2}")
            e.emit(f"{l2site[1]} = _w2")
        e.emit(f"l2_mru = {lv2}")
        e.emit(f"l2_mru_ready = _w2[{lv2}]")
        e.emit("_p = l2_mru_ready - now")
        _emit_clamp0(e, "_p")
        if not l2_only:
            e.emit(f"_l1rdy = now + {g.t_l2!r} + (_p or 0)")
            _emit_fill(e, g, "l1", "_l1rdy", site=(c1, d1), probe="_w1")
        e.emit("pf_issued += 1")
        e.block("if _p > 0:")
        _emit_push(e, "now + 0.0")
        e.end()
        e.els()
        e.emit("l2_misses += 1")
        _emit_prefetch_tail(
            e, g, fill_l1=not l2_only,
            l1site=None if l2_only else (c1, d1), l2site=l2site,
        )
        e.end()
        if l2site is not None:
            e.end()
        e.end()
        e.end()
    e.end()  # closes the ozq-cap else
    e.end()  # closes the stream-bound if


def _emit_op(
    e: _Emitter, g: _Gen, entry: tuple, s: int, ref_index: dict,
    tag_index: dict, guarded: bool, min_k: int = 0,
    k_lit: int | None = None, epi_j: int | None = None,
    base: str = "base", base_add: int = 0,
) -> None:
    """One schedule slot.  Three emission contexts:

    * generic (``k_lit``/``epi_j`` None): ``i`` from the loop var ``k``,
      the stage guard per ``guarded``, wait guards relaxed by ``min_k``;
    * static iteration (``k_lit``): the caller proved this op instance
      live, so ``i`` is a literal, guards vanish, and dead waits drop;
    * unrolled epilogue slot ``epi_j`` (``k = n + epi_j``): ``i`` is
      ``n - (stage - epi_j)``, in range by the caller's stage filter.

    ``base``/``base_add`` name the issue-cycle base so unrolled contexts
    fold ``k * ii`` into the row constant.
    """
    (row, stage, waits, load_slot, kind, is_fp,
     pf_dist, pf_l2o, ref_uid, tag) = entry
    static_i = None
    if k_lit is not None:
        static_i = k_lit - stage
        e.emit(f"i = {static_i}")
    elif epi_j is not None:
        d = stage - epi_j
        e.emit(f"i = n - {d}" if d else "i = n")
    else:
        e.emit(f"i = k - {stage}" if stage else "i = k")
    if guarded:
        e.block("if 0 <= i < n:")
    off = base_add + row
    e.emit(f"now = {base} + {off} + stall" if off else f"now = {base} + stall")
    # in the steady loop k >= stage_count-1, so i >= min_k - stage and
    # wait guards with omega at or below that bound cannot fail
    _emit_waits(
        e, waits, f"stby{tag_index[tag]}", max(0, min_k - stage), static_i
    )
    if kind != _KIND_WAIT_ONLY:
        _emit_drain(e)
        ref = ref_index[ref_uid]
        if kind == _KIND_PREFETCH:
            _emit_prefetch(e, g, ref, pf_dist, pf_l2o, is_fp, s)
        else:
            # demand access: stall while the OzQ is full
            e.block("if ozq_len >= cap:")
            e.emit("_w = ozq_min - now")
            e.block("if _w > 0:")
            e.emit("stall += _w")
            e.emit("now += _w")
            e.emit("be_l1d += _w")
            e.end()
            _emit_drain(e)
            e.end()
            if kind == _KIND_LOAD:
                _emit_load(e, g, load_slot, ref, is_fp, s)
            else:
                _emit_store(e, g, ref, s)
    if guarded:
        e.end()


def _generate_source(kernel: CompiledKernel, geom: tuple) -> str:
    """The ``replay`` source for this kernel at this machine geometry.

    One call replays a whole *sequence* of invocations: the hoist
    preamble (live memory/counter objects, stream bindings, site-cache
    seeds) runs once, the per-invocation fixed costs are accounted
    inline in the executor's exact order, and the kernel ranges re-run
    per trip count.  Geometry is baked in as literals (shifts and masks
    where sizes allow).  Counter locals are seeded from the live objects
    and written back at the end, so every float accumulates in the
    interpreter's order; the integer tallies (hits/misses/levels)
    commute and ride as deltas.
    """
    ii = kernel.ii
    scm1 = kernel.stage_count - 1
    g = _Gen(geom)
    ref_index = {uid: r for r, uid in enumerate(kernel.ref_uids)}
    prefetch_refs = sorted({
        ref_index[entry[8]]
        for entry in kernel.program
        if entry[4] == _KIND_PREFETCH
    })
    tags: list[str] = []
    for entry in kernel.program:
        if entry[9] not in tags:
            tags.append(entry[9])
    tag_index = {tag: j for j, tag in enumerate(tags)}

    # pre-pass so the preamble can seed every site-cache local the op
    # bodies will reference
    scratch = _Emitter()
    for s, entry in enumerate(kernel.program):
        _emit_op(scratch, g, entry, s, ref_index, tag_index, guarded=True)

    e = _Emitter()
    e.block(
        "def replay(trips, start_cycle, memory, counters, cap, pack, rb, "
        "overhead, rse, flush, fe, spill_instr):"
    )
    if kernel.ref_uids:
        names = ", ".join(
            f"lst{r}, st{r}" for r in range(len(kernel.ref_uids))
        )
        e.emit(f"({names},) = pack")
    for r in prefetch_refs:
        e.emit(f"ln{r} = len(lst{r})")
    e.emit("tlb = memory.tlb")
    e.emit("pages = tlb._pages")
    # TLB occupancy as a local: it only grows through this code, so the
    # capacity test needs no len() call per miss
    e.emit("tlbn = len(pages)")
    e.emit("l1 = memory.l1d")
    e.emit("l1_sets = l1._sets")
    e.emit("l1_get = l1_sets.get")
    e.emit("l2 = memory.l2")
    e.emit("l2_sets = l2._sets")
    e.emit("l2_get = l2_sets.get")
    e.emit("l3 = memory.l3")
    e.emit("l3_sets = l3._sets")
    e.emit("l3_get = l3_sets.get")
    if g.bank_conflicts:
        e.emit("banks = memory._bank_busy_until")
    # float counters as locals seeded from their current values, so the
    # accumulation order (and with it every rounding step) is exactly
    # the interpreter's plus the executor's fixed-cost interleave
    e.emit("loads_level = counters.loads_by_level")
    e.emit("loads_level_get = loads_level.get")
    e.emit("stall_by = counters.stall_by_consumer")
    e.emit("stall_by_get = stall_by.get")
    for tag, j in tag_index.items():
        e.emit(f"stby{j} = stall_by_get({tag!r}, 0.0)")
    e.emit("be_exe = counters.be_exe_bubble")
    e.emit("be_l1d = counters.be_l1d_fpu_bubble")
    e.emit("ozq_full = counters.ozq_full_cycles")
    e.emit("pf_issued = counters.prefetches_issued")
    e.emit("pf_dropped = counters.prefetches_dropped_ozq")
    e.emit("u = counters.unstalled")
    e.emit("brse = counters.be_rse_bubble")
    e.emit("bflush = counters.be_flush_bubble")
    e.emit("bfe = counters.back_end_bubble_fe")
    e.emit("spill_cnt = counters.spill_instructions")
    e.emit("ki_total = counters.kernel_iterations")
    e.emit("src_total = counters.source_iterations")
    e.emit("tlb_hits = 0")
    e.emit("tlb_misses = 0")
    e.emit("l1_hits = 0")
    e.emit("l1_misses = 0")
    e.emit("l2_hits = 0")
    e.emit("l2_misses = 0")
    e.emit("l3_hits = 0")
    e.emit("l3_misses = 0")
    e.emit("bank_cc = 0")
    e.emit("ll1 = 0")
    e.emit("ll2 = 0")
    e.emit("ll3 = 0")
    e.emit("ll4 = 0")
    # MRU shortcut state: the last page/line touched at each level sits
    # at the tail of its LRU order, so a repeat touch may skip the
    # (no-op) move_to_end; probes and fills re-arm these, and memory
    # state persists across invocations so the cache stays warm too
    e.emit("tlb_mru = -1")
    e.emit("l1_mru = -1")
    e.emit("l1_mru_ready = 0.0")
    e.emit("l2_mru = -1")
    e.emit("l2_mru_ready = 0.0")
    for name, init in g.site_locals.items():
        e.emit(f"{name} = {init}")
    e.emit("cycle = start_cycle")
    e.emit("capm1 = cap - 1")

    e.block("for n in trips:")
    # per-invocation fixed costs, in simulate_loop's exact order
    e.emit("spill_cnt += spill_instr")
    e.emit("brse += rse")
    e.emit("bflush += flush")
    e.emit("bfe += fe")
    e.emit("u += overhead")
    e.emit("cycle += overhead + rse + flush + fe")
    e.block("if n > 0:")
    for r in range(len(kernel.ref_uids)):
        e.emit(f"sb{r} = rb * st{r}")
    for slot in range(kernel.num_loads):
        e.emit(f"comp{slot} = [NEG_INF] * n")
    e.emit("ozq = []")
    e.emit("ozq_min = INF")
    e.emit("ozq_len = 0")
    e.emit("stall = 0.0")
    e.emit("became_full_at = None")
    e.emit(f"kernel_iters = n + {scm1}")
    e.emit("sc = cycle")
    prog = list(enumerate(kernel.program))
    # fill/drain phases unroll when the schedule is shallow enough: the
    # stage filter is then decidable per slot, so guards and dead op
    # instances vanish entirely (short-trip loops spend most of their
    # time there).  Deep schedules keep the generic guarded loops.
    unroll = 0 < scm1 <= 8 and len(prog) * scm1 * scm1 <= 1000
    if unroll:
        e.block(f"if n >= {scm1}:")
        # prologue, unrolled: at iteration k only stages <= k have a
        # live instance, and i = k - stage < scm1 <= n needs no bound
        for k in range(scm1):
            for s, entry in prog:
                if entry[1] <= k:
                    _emit_op(
                        e, g, entry, s, ref_index, tag_index,
                        guarded=False, k_lit=k, base="sc", base_add=k * ii,
                    )
        e.block(f"for k in range({scm1}, n):")
        e.emit(f"base = sc + k * {ii}")
        for s, entry in prog:
            _emit_op(
                e, g, entry, s, ref_index, tag_index, guarded=False,
                min_k=scm1,
            )
        e.end()
        # epilogue, unrolled: at k = n + j only stages > j still have
        # an instance, and i = n + j - stage >= n - scm1 >= 0
        e.emit(f"_scn = sc + n * {ii}")
        for j in range(scm1):
            for s, entry in prog:
                if entry[1] > j:
                    _emit_op(
                        e, g, entry, s, ref_index, tag_index,
                        guarded=False, epi_j=j, min_k=scm1 + j,
                        base="_scn", base_add=j * ii,
                    )
        # short trips: every (k, op) liveness test is decidable once n
        # is fixed, so each trip count below scm1 gets straight-line
        # code with literal indices (these branches are exhaustive —
        # the n > 0 wrapper leaves n >= 1)
        for nv in range(1, scm1):
            e.els(f"elif n == {nv}:")
            for k in range(nv + scm1):
                for s, entry in prog:
                    if 0 <= k - entry[1] < nv:
                        _emit_op(
                            e, g, entry, s, ref_index, tag_index,
                            guarded=False, k_lit=k, base="sc",
                            base_add=k * ii,
                        )
        e.end()
    else:
        # prologue: stages still filling, instance bounds checked
        if scm1:
            e.block(f"for k in range({scm1}):")
            e.emit(f"base = sc + k * {ii}")
            for s, entry in prog:
                _emit_op(e, g, entry, s, ref_index, tag_index, guarded=True)
            e.end()
        # steady state: every stage live, no bounds checks
        e.block(f"for k in range({scm1}, n):")
        e.emit(f"base = sc + k * {ii}")
        for s, entry in prog:
            _emit_op(
                e, g, entry, s, ref_index, tag_index, guarded=False,
                min_k=scm1,
            )
        e.end()
        # epilogue: stages draining
        if scm1:
            e.block(
                f"for k in range(n if n > {scm1} else {scm1}, kernel_iters):"
            )
            e.emit(f"base = sc + k * {ii}")
            for s, entry in prog:
                _emit_op(e, g, entry, s, ref_index, tag_index, guarded=True)
            e.end()
    e.emit(f"u += kernel_iters * {ii}")
    e.emit("ki_total += kernel_iters")
    e.emit("src_total += n")
    e.emit(f"cycle = sc + kernel_iters * {ii} + stall")
    e.end()  # if n > 0
    e.emit("rb += n")
    e.end()  # for n in trips

    e.emit("counters.be_exe_bubble = be_exe")
    e.emit("counters.be_l1d_fpu_bubble = be_l1d")
    e.emit("counters.ozq_full_cycles = ozq_full")
    e.emit("counters.prefetches_issued = pf_issued")
    e.emit("counters.prefetches_dropped_ozq = pf_dropped")
    e.emit("counters.unstalled = u")
    e.emit("counters.be_rse_bubble = brse")
    e.emit("counters.be_flush_bubble = bflush")
    e.emit("counters.back_end_bubble_fe = bfe")
    e.emit("counters.spill_instructions = spill_cnt")
    e.emit("counters.kernel_iterations = ki_total")
    e.emit("counters.source_iterations = src_total")
    for tag, j in tag_index.items():
        # only materialise tags the interpreter would have created
        e.block(f"if stby{j} != 0.0 or {tag!r} in stall_by:")
        e.emit(f"stall_by[{tag!r}] = stby{j}")
        e.end()
    for lvl in (1, 2, 3, 4):
        e.block(f"if ll{lvl}:")
        e.emit(
            f"loads_level[{lvl}] = loads_level_get({lvl}, 0) + ll{lvl}"
        )
        e.end()
    e.emit("tlb.hits += tlb_hits")
    e.emit("tlb.misses += tlb_misses")
    e.emit("l1.hits += l1_hits")
    e.emit("l1.misses += l1_misses")
    e.emit("l2.hits += l2_hits")
    e.emit("l2.misses += l2_misses")
    e.emit("l3.hits += l3_hits")
    e.emit("l3.misses += l3_misses")
    e.emit("memory.bank_conflict_count += bank_cc")
    e.emit("return cycle")
    e.end()
    return e.source()
