"""Tests for the Sec. 2.1 theory module (Equations (1)-(3), Fig. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.theory import (
    additional_latency_for_clustering,
    clustering_factor,
    coverage_ratio,
    expected_stall_cycles,
    fig5_series,
    stall_reduction_percent,
)


class TestEquations:
    def test_equation1_coverage(self):
        assert coverage_ratio(0, 13) == 0.0
        assert coverage_ratio(13, 13) == 1.0
        assert coverage_ratio(26, 13) == 1.0  # clipped
        assert coverage_ratio(2, 13) == pytest.approx(2 / 13)
        assert coverage_ratio(5, 0) == 1.0

    def test_equation2_known_points(self):
        # full coverage removes all stalls
        assert stall_reduction_percent(1.0, 1) == 100.0
        # no coverage, no clustering: nothing gained
        assert stall_reduction_percent(0.0, 1) == 0.0
        # the paper's example: clustering factor 3 alone gives two-thirds
        assert stall_reduction_percent(0.0, 3) == pytest.approx(100 * 2 / 3)
        assert stall_reduction_percent(0.5, 2) == pytest.approx(75.0)

    def test_equation3(self):
        assert additional_latency_for_clustering(3, 1) == 2  # paper's Fig. 4
        assert additional_latency_for_clustering(1, 5) == 0
        assert additional_latency_for_clustering(6, 2) == 10

    def test_equation3_inverse(self):
        assert clustering_factor(2, 1) == 3
        assert clustering_factor(0, 4) == 1
        assert clustering_factor(10, 2) == 6

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            stall_reduction_percent(0.5, 0)
        with pytest.raises(ValueError):
            clustering_factor(1, 0)
        with pytest.raises(ValueError):
            additional_latency_for_clustering(0, 1)

    def test_expected_stall_cycles(self):
        # n=100, L=13, d=2, II=1 -> k=3 -> 100*11/3
        assert expected_stall_cycles(100, 13, 2, 1) == pytest.approx(
            100 * 11 / 3
        )


class TestFig5:
    def test_series_structure(self):
        series = fig5_series()
        assert set(series) == {1.0, 0.5, 0.1, 0.01}
        for curve in series.values():
            assert [k for k, _ in curve] == list(range(1, 9))

    def test_paper_anchor_points(self):
        series = fig5_series()
        # c=1: always 100%
        assert all(v == 100.0 for _, v in series[1.0])
        # c=0.01, k=3: about two-thirds
        by_k = dict(series[0.01])
        assert by_k[3] == pytest.approx(67.0, abs=0.5)
        # c=0.5, k=1: exactly 50%
        assert dict(series[0.5])[1] == 50.0


class TestProperties:
    @given(st.floats(0, 1), st.integers(1, 64))
    def test_reduction_bounds(self, c, k):
        r = stall_reduction_percent(c, k)
        assert 0.0 <= r <= 100.0

    @given(st.floats(0, 1), st.integers(1, 32))
    def test_monotone_in_k(self, c, k):
        assert stall_reduction_percent(c, k + 1) >= stall_reduction_percent(c, k)

    @given(st.floats(0, 0.99), st.integers(1, 32))
    def test_monotone_in_coverage(self, c, k):
        assert (
            stall_reduction_percent(min(1.0, c + 0.01), k)
            >= stall_reduction_percent(c, k)
        )

    @given(st.integers(1, 40), st.integers(1, 16))
    def test_equation3_roundtrip(self, k, ii):
        d = additional_latency_for_clustering(k, ii)
        assert clustering_factor(d, ii) == k

    @given(
        st.integers(0, 10_000),   # n source iterations
        st.integers(0, 400),      # L expected latency
        st.integers(0, 400),      # d scheduled additional latency
        st.integers(1, 16),       # II
    )
    def test_expected_stalls_consistent_with_clustering(self, n, lat, d, ii):
        """Equ. (2) in cycles: n * residual / k with k from Equ. (3)."""
        k = clustering_factor(d, ii)
        expected = n * max(0, lat - d) / k
        assert expected_stall_cycles(n, lat, d, ii) == pytest.approx(expected)

    @given(
        st.integers(0, 10_000),
        st.integers(0, 400),
        st.integers(0, 399),
        st.integers(1, 16),
    )
    def test_expected_stalls_monotone_in_d(self, n, lat, d, ii):
        """More scheduled latency never predicts more stall cycles."""
        assert (
            expected_stall_cycles(n, lat, d + 1, ii)
            <= expected_stall_cycles(n, lat, d, ii) + 1e-9
        )
