"""The pipeliner driver: Sec. 3.3's retry ladder.

For each candidate II starting at Min II:

1. try to schedule with the boosted (expected) latencies for hinted,
   non-critical loads and allocate rotating registers;
2. if register allocation fails, "the pipeliner will first reduce the
   non-critical load latencies in the loop to the base level and then try
   scheduling/allocating at the same II";
3. "if this still fails, it will continue to iterate at successively
   higher IIs (reducing the register pressure) until either the register
   requirements for the loop can be met or we estimate that pipelining at
   this II is not profitable" — our profitability cap is the acyclic
   list-schedule length, past which pipelining cannot win.

Latency boosting is gated on the loop's average trip count against the
configured threshold (the n of the Fig. 7 headroom experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CompilerConfig
from repro.ddg.graph import DDG, build_ddg
from repro.errors import RegisterAllocationError
from repro.ir.loop import Loop
from repro.ir.registers import RegClass
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.bounds import IIBounds, compute_bounds
from repro.pipeliner.criticality import Criticality, classify_loads
from repro.pipeliner.kernel import Kernel, generate_kernel
from repro.pipeliner.schedule import Schedule
from repro.pipeliner.scheduler import list_schedule_length, modulo_schedule
from repro.pipeliner.stats import PipelineStats
from repro.regalloc.nonrotating import StaticAllocation, allocate_static
from repro.regalloc.rotating import RotatingAllocation, allocate_rotating


@dataclass
class PipelineResult:
    """Outcome of compiling one loop through the pipeliner."""

    loop: Loop
    ddg: DDG
    bounds: IIBounds
    pipelined: bool
    stats: PipelineStats
    #: cycles per iteration of the non-pipelined fallback
    seq_length: int
    schedule: Schedule | None = None
    kernel: Kernel | None = None
    rotating: RotatingAllocation | None = None
    static: StaticAllocation | None = None
    criticality: Criticality | None = None

    @property
    def ii(self) -> int:
        return self.stats.ii


def resolve_criticality(
    loop: Loop,
    ddg: DDG,
    machine: ItaniumMachine,
    bounds: IIBounds,
    config: CompilerConfig,
) -> Criticality:
    """The latency policy after every driver gate has been applied.

    Shared by the heuristic driver and the exact one
    (:func:`repro.pipeliner.optimal.optimal_pipeline_loop`) so that
    heuristic-vs-optimal gaps measure the scheduler and nothing else.
    """
    criticality = classify_loads(
        ddg, machine, bounds, threshold=config.criticality_threshold
    )
    if not config.respect_criticality:
        # ablation: boost every hinted load, recurrence cycles included
        from repro.ir.memref import LatencyHint

        criticality = Criticality(
            critical=frozenset(),
            boosted={
                load
                for load in loop.loads
                if load.memref is not None
                and load.memref.hint is not LatencyHint.NONE
            },
        )
    # gates: master switch and the trip-count threshold (Fig. 7)
    if not config.latency_tolerant:
        criticality = criticality.demote_all()
    elif config.trip_count_threshold > 0:
        trips = loop.average_trips(config.default_trip_estimate)
        if trips < config.trip_count_threshold:
            criticality = criticality.demote_policy_hints()
    return criticality


def pipeline_loop(
    loop: Loop,
    machine: ItaniumMachine,
    config: CompilerConfig | None = None,
) -> PipelineResult:
    """Software-pipeline ``loop`` under ``config`` (Sec. 3.3 flow)."""
    config = config or CompilerConfig()
    ddg = build_ddg(loop)
    bounds = compute_bounds(ddg, machine)
    seq_length = list_schedule_length(ddg, machine)

    criticality = resolve_criticality(loop, ddg, machine, bounds, config)

    # pipelining is pointless once the II reaches the sequential length
    max_ii = max(bounds.min_ii, seq_length)
    attempts = 0
    latency_fallback = False

    for ii in range(bounds.min_ii, max_ii + 1):
        tries = [criticality]
        if criticality.boosted:
            tries.append(criticality.demote_all())
        for try_no, crit in enumerate(tries):
            attempts += 1
            schedule = modulo_schedule(
                ddg, machine, ii, crit, budget_ratio=config.budget_ratio
            )
            if schedule is None:
                continue
            try:
                rotating = allocate_rotating(schedule, machine)
            except RegisterAllocationError:
                continue
            static = allocate_static(schedule, rotating.used)
            kernel = generate_kernel(schedule, rotating)
            if try_no > 0:
                latency_fallback = True
            stats = _collect_stats(
                loop, bounds, schedule, rotating, static, crit,
                attempts, latency_fallback,
            )
            return PipelineResult(
                loop=loop,
                ddg=ddg,
                bounds=bounds,
                pipelined=True,
                stats=stats,
                seq_length=seq_length,
                schedule=schedule,
                kernel=kernel,
                rotating=rotating,
                static=static,
                criticality=crit,
            )

    stats = PipelineStats(
        loop_name=loop.name,
        pipelined=False,
        ii=seq_length,
        res_ii=bounds.res_ii,
        rec_ii=bounds.rec_ii,
        attempts=attempts,
        total_loads=len(loop.loads),
    )
    return PipelineResult(
        loop=loop,
        ddg=ddg,
        bounds=bounds,
        pipelined=False,
        stats=stats,
        seq_length=seq_length,
    )


def _collect_stats(
    loop: Loop,
    bounds: IIBounds,
    schedule: Schedule,
    rotating: RotatingAllocation,
    static: StaticAllocation,
    criticality: Criticality,
    attempts: int,
    latency_fallback: bool,
) -> PipelineStats:
    registers = {}
    for rclass in (RegClass.GR, RegClass.FR, RegClass.PR):
        registers[rclass] = rotating.used.get(rclass, 0) + static.demand.get(
            rclass, 0
        )
    return PipelineStats(
        loop_name=loop.name,
        pipelined=True,
        ii=schedule.ii,
        res_ii=bounds.res_ii,
        rec_ii=bounds.rec_ii,
        stage_count=schedule.stage_count,
        attempts=attempts,
        latency_fallback=latency_fallback,
        boosted_loads=len(criticality.boosted),
        critical_loads=len(criticality.critical),
        total_loads=len(loop.loads),
        registers=registers,
        rotating=dict(rotating.used),
        spills=static.spills,
        stacked_frame=static.stacked_frame,
        placements=schedule.load_placements(),
    )
