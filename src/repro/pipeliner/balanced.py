"""Balanced scheduling (Kerns & Eggers, PLDI'93) as a comparison policy.

The paper's related-work section positions balanced scheduling as the
earliest latency-uncertainty-aware scheduler: it "increases load-use
distances in the schedule ... It tries to balance these increases equally
among all loads ... to allow for uncertain latencies and to reduce
register pressure."  The paper then argues that on Itanium "the available
number of rotating registers and the available parallelism in the
software pipeline are so large that we can increase load-use distances in
the schedule more aggressively" — i.e. selectively and deeply, guided by
hints, rather than uniformly and shallowly.

This module implements the uniform policy inside the modulo-scheduling
framework so the two philosophies can be compared head-to-head: a fixed
additional-latency budget is split evenly across all non-critical loads,
with no regard to which of them actually miss.
"""

from __future__ import annotations

from repro.config import CompilerConfig
from repro.ir.loop import Loop
from repro.ir.memref import LatencyHint
from repro.ir.registers import Reg
from repro.machine.itanium2 import ItaniumMachine
from repro.pipeliner.driver import PipelineResult, pipeline_loop


class PerLoadLatencyMachine:
    """A machine-model view with per-load expected-latency overrides.

    Everything except the expected latency of the overridden loads is
    delegated to the wrapped machine, so the scheduler, criticality
    analysis and register allocator behave identically.
    """

    def __init__(self, inner: ItaniumMachine, overrides: dict[int, int]):
        self._inner = inner
        self._overrides = overrides

    def expected_load_latency(self, inst) -> int:
        if inst.index in self._overrides:
            return self._overrides[inst.index]
        return self._inner.expected_load_latency(inst)

    def base_latency(self, inst) -> int:
        return self._inner.base_latency(inst)

    def flow_latency(self, inst, reg: Reg | None, expected: bool) -> int:
        if (
            expected
            and inst.is_load
            and reg is not None
            and reg in inst.defs
            and inst.index in self._overrides
        ):
            return self._overrides[inst.index]
        return self._inner.flow_latency(inst, reg, expected)

    @property
    def latency_query(self):
        return self.flow_latency

    def __getattr__(self, name):
        return getattr(self._inner, name)


def balanced_pipeline(
    loop: Loop,
    machine: ItaniumMachine,
    config: CompilerConfig | None = None,
    total_budget: int | None = None,
) -> PipelineResult:
    """Pipeline ``loop`` with a uniformly distributed latency budget.

    ``total_budget`` cycles of additional scheduled latency (default: the
    machine's clipping bound) are split evenly across the loop's loads.
    Criticality analysis and the register-pressure fallback still apply —
    balancing does not get to blow up recurrence cycles either.
    """
    config = config or CompilerConfig(trip_count_threshold=0)
    loads = loop.loads
    if not loads:
        return pipeline_loop(loop, machine, config)

    budget = total_budget
    if budget is None:
        budget = machine.translation.max_scheduled
    share = max(1, budget // len(loads))

    overrides: dict[int, int] = {}
    for load in loads:
        base = machine.base_latency(load)
        overrides[load.index] = base + share
        if load.memref is not None:
            # any hint token makes the load a boosting candidate; the
            # actual value comes from the override
            load.memref.hint = LatencyHint.L2
            load.memref.hint_source = "balanced"

    balanced_machine = PerLoadLatencyMachine(machine, overrides)
    return pipeline_loop(loop, balanced_machine, config)
