"""Recurrence-cycle enumeration and Recurrence II.

Two independent computations of the Recurrence II are provided:

* :func:`recurrence_ii` enumerates all elementary dependence cycles and
  takes the maximum of ``ceil(latency / distance)`` — this is the form the
  paper's criticality analysis needs, because it must inspect *each* cycle
  and ask "would boosting the loads in this cycle push the Recurrence II
  beyond the Resource II?" (Sec. 3.3);
* :func:`recurrence_ii_search` binary-searches the smallest II for which
  the constraint graph with weights ``latency - II * omega`` has no
  positive cycle (Floyd-Warshall).  The two are cross-checked in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.ddg.edges import DepEdge, LatencyQuery
from repro.ddg.graph import DDG
from repro.errors import DependenceError
from repro.ir.instructions import Instruction

#: Per-edge predicate deciding whether the *expected* (hint-derived) load
#: latency should be used when measuring a cycle or path.
ExpectedFn = Callable[[DepEdge], bool]


def never_expected(_edge: DepEdge) -> bool:
    """Use base latencies everywhere."""
    return False


def always_expected(_edge: DepEdge) -> bool:
    """Use expected latencies for every load-produced value."""
    return True


@dataclass(frozen=True)
class RecurrenceCycle:
    """One elementary dependence cycle with total distance >= 1."""

    edges: tuple[DepEdge, ...]

    @property
    def nodes(self) -> tuple[Instruction, ...]:
        return tuple(e.src for e in self.edges)

    @property
    def total_omega(self) -> int:
        return sum(e.omega for e in self.edges)

    @property
    def loads(self) -> tuple[Instruction, ...]:
        """The load instructions participating in this cycle."""
        return tuple(n for n in self.nodes if n.is_load)

    def length(self, query: LatencyQuery, expected: ExpectedFn = never_expected) -> int:
        """Total latency of the cycle under the given latency policy."""
        return sum(e.latency(query, expected(e)) for e in self.edges)

    def ii_bound(
        self, query: LatencyQuery, expected: ExpectedFn = never_expected
    ) -> int:
        """This cycle's lower bound on the II: ``ceil(latency/distance)``."""
        return math.ceil(self.length(query, expected) / self.total_omega)

    def __repr__(self) -> str:
        path = "->".join(str(e.src.index) for e in self.edges)
        return f"RecurrenceCycle({path}-> w={self.total_omega})"


def enumerate_recurrence_cycles(
    ddg: DDG, max_cycles: int = 50_000
) -> list[RecurrenceCycle]:
    """All elementary cycles of the DDG.

    Uses a rooted DFS (Johnson-style dedup: a cycle is only discovered from
    its smallest-index node, and the search never descends below the root).
    Loop bodies are small, so the simple algorithm is plenty; ``max_cycles``
    guards against degenerate inputs.
    """
    by_src: dict[int, list[DepEdge]] = {}
    for edge in ddg.edges:
        by_src.setdefault(edge.src.index, []).append(edge)

    cycles: list[RecurrenceCycle] = []
    for root in sorted(by_src):
        path: list[DepEdge] = []
        on_path: set[int] = set()

        def dfs(node: int) -> None:
            if len(cycles) >= max_cycles:
                return
            for edge in by_src.get(node, []):
                nxt = edge.dst.index
                if nxt == root:
                    cycle = RecurrenceCycle(tuple(path) + (edge,))
                    if cycle.total_omega == 0:
                        raise DependenceError(
                            f"zero-distance dependence cycle: {cycle}"
                        )
                    cycles.append(cycle)
                elif nxt > root and nxt not in on_path:
                    on_path.add(nxt)
                    path.append(edge)
                    dfs(nxt)
                    path.pop()
                    on_path.remove(nxt)

        dfs(root)
        if len(cycles) >= max_cycles:
            break
    return cycles


def recurrence_ii(
    ddg: DDG,
    query: LatencyQuery,
    expected: ExpectedFn = never_expected,
    cycles: list[RecurrenceCycle] | None = None,
) -> int:
    """Recurrence II by cycle enumeration (0 when the DDG is acyclic)."""
    if cycles is None:
        cycles = enumerate_recurrence_cycles(ddg)
    if not cycles:
        return 0
    return max(c.ii_bound(query, expected) for c in cycles)


def _has_positive_cycle(
    ddg: DDG, ii: int, query: LatencyQuery, expected: ExpectedFn
) -> bool:
    """Floyd-Warshall positivity check on weights ``lat - ii*omega``."""
    n = len(ddg.nodes)
    neg = -(10**9)
    dist = [[neg] * n for _ in range(n)]
    for edge in ddg.edges:
        w = edge.latency(query, expected(edge)) - ii * edge.omega
        i, j = edge.src.index, edge.dst.index
        if w > dist[i][j]:
            dist[i][j] = w
    for k in range(n):
        dk = dist[k]
        for i in range(n):
            dik = dist[i][k]
            if dik == neg:
                continue
            di = dist[i]
            for j in range(n):
                if dk[j] != neg and dik + dk[j] > di[j]:
                    di[j] = dik + dk[j]
    return any(dist[i][i] > 0 for i in range(n))


def recurrence_ii_search(
    ddg: DDG,
    query: LatencyQuery,
    expected: ExpectedFn = never_expected,
) -> int:
    """Recurrence II by binary search over the constraint graph."""
    if not ddg.edges:
        return 0
    hi = sum(e.latency(query, expected(e)) for e in ddg.edges)
    if not _has_positive_cycle(ddg, 0, query, expected):
        return 0
    lo = 0  # infeasible
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _has_positive_cycle(ddg, mid, query, expected):
            lo = mid
        else:
            hi = mid
    return hi
