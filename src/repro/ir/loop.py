"""Loop container and trip-count information.

A :class:`Loop` is a single-block, if-converted innermost loop ready for the
software pipeliner, plus the metadata the High-Level Optimizer needs: the
set of memory references and whatever is known about the trip count.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.instructions import Instruction
from repro.ir.memref import MemRef
from repro.ir.registers import Reg


class TripCountSource(enum.Enum):
    """Where a trip-count estimate came from (Sec. 3.1/3.2).

    The quality ordering matters: PGO-derived average trip counts are
    trusted; static bounds (array sizes) give a maximum; pure heuristics
    from a static profile are low-accuracy (Sec. 4.3, "Results without
    PGO").
    """

    PGO = "pgo"
    STATIC_BOUND = "static-bound"
    SYMBOLIC = "symbolic"
    HEURISTIC = "heuristic"
    UNKNOWN = "unknown"


@dataclass(slots=True)
class TripCountInfo:
    """Compiler knowledge about a loop's trip count."""

    estimate: float | None = None
    source: TripCountSource = TripCountSource.UNKNOWN
    #: upper bound (e.g. from a static array size), if any
    max_trips: int | None = None
    #: True when outer-loop contiguity lets the prefetcher look beyond the
    #: inner loop (Sec. 3.2)
    contiguous_across_outer: bool = False

    @property
    def known(self) -> bool:
        return self.estimate is not None

    def effective_estimate(self, default: float) -> float:
        """The estimate, bounded by ``max_trips`` and defaulted."""
        value = self.estimate if self.estimate is not None else default
        if self.max_trips is not None:
            value = min(value, float(self.max_trips))
        return value


@dataclass(eq=False)
class Loop:
    """An innermost loop: body instructions plus metadata.

    ``body`` excludes the back-edge branch, which every counted loop
    implicitly ends with; the pipeliner materialises ``br.ctop`` in the
    generated kernel.  ``live_in`` registers are defined before the loop
    (loop invariants and initial induction values); ``live_out`` registers
    are read after it.
    """

    name: str
    body: list[Instruction] = field(default_factory=list)
    live_in: set[Reg] = field(default_factory=set)
    live_out: set[Reg] = field(default_factory=set)
    trip_count: TripCountInfo = field(default_factory=TripCountInfo)
    #: True for counted (``br.cloop``) loops; False for while-style loops.
    counted: bool = True
    #: memory spaces known not to alias each other (restrict-style info)
    independent_spaces: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        self._renumber()

    def _renumber(self) -> None:
        for i, inst in enumerate(self.body):
            inst.index = i

    def append(self, inst: Instruction) -> Instruction:
        inst.index = len(self.body)
        self.body.append(inst)
        return inst

    # --- queries ---------------------------------------------------------
    @property
    def memrefs(self) -> list[MemRef]:
        """All memory references in body order (duplicates removed)."""
        seen: dict[int, MemRef] = {}
        for inst in self.body:
            if inst.memref is not None and inst.memref.uid not in seen:
                seen[inst.memref.uid] = inst.memref
        return list(seen.values())

    @property
    def loads(self) -> list[Instruction]:
        return [i for i in self.body if i.is_load]

    @property
    def stores(self) -> list[Instruction]:
        return [i for i in self.body if i.is_store]

    @property
    def prefetches(self) -> list[Instruction]:
        return [i for i in self.body if i.is_prefetch]

    def defs_of(self, reg: Reg) -> list[Instruction]:
        """All instructions in the body that define ``reg``."""
        return [i for i in self.body if reg in i.all_defs()]

    def unique_def_of(self, reg: Reg) -> Instruction | None:
        """The single defining instruction of ``reg``, if exactly one."""
        defs = self.defs_of(reg)
        if len(defs) == 1:
            return defs[0]
        if len(defs) > 1:
            raise IRError(f"register {reg} has {len(defs)} defs in {self.name}")
        return None

    def uses_of(self, reg: Reg) -> list[Instruction]:
        """All instructions in the body that read ``reg``."""
        return [i for i in self.body if reg in i.all_uses()]

    def virtual_regs(self) -> set[Reg]:
        """All virtual registers referenced by the body."""
        regs: set[Reg] = set()
        for inst in self.body:
            for reg in inst.all_defs() + inst.all_uses():
                if reg.virtual:
                    regs.add(reg)
        return regs

    def without_prefetches(self) -> "Loop":
        """A shallow variant of this loop with lfetch instructions removed.

        Handy for ablations; shares instruction objects for the remainder.
        """
        clone = Loop(
            name=self.name,
            body=[i for i in self.body if not i.is_prefetch],
            live_in=set(self.live_in),
            live_out=set(self.live_out),
            trip_count=self.trip_count,
            counted=self.counted,
            independent_spaces=self.independent_spaces,
        )
        return clone

    def average_trips(self, default: float = 100.0) -> float:
        """Best-effort average trip count for cost heuristics."""
        return self.trip_count.effective_estimate(default)

    def __len__(self) -> int:
        return len(self.body)

    def __iter__(self):
        return iter(self.body)

    def __repr__(self) -> str:
        trips = self.trip_count.estimate
        trips_s = "?" if trips is None else f"{trips:g}"
        return f"Loop({self.name}, {len(self.body)} insts, trips~{trips_s})"


def stage_count_cost(num_stages: int, trips: float) -> float:
    """Relative fill/drain overhead of a pipeline (Sec. 1.1/2.2).

    A pipeline with S stages needs S-1 extra kernel iterations per loop
    execution; relative to ``trips`` useful iterations the overhead factor
    is ``(S - 1) / trips``.
    """
    if trips <= 0:
        return math.inf
    return max(0, num_stages - 1) / trips
