"""Heights and slack over the dependence graph.

*Height* is the classic modulo-scheduling priority (Rau): the longest
dependence path from an operation to the end of the (virtual) schedule,
computed as a fixpoint over **all** edges with weights ``lat - II*omega``.
Operations with larger height are more critical and scheduled first.

*Slack* is computed over the acyclic (``omega = 0``) subgraph: the gap
between an operation's earliest and latest placement within one iteration's
critical path.  Loads with large slack are exactly the "non-critical" loads
the paper targets — stretching their latency grows the pipeline's depth
but not its II (Sec. 1).
"""

from __future__ import annotations

from repro.ddg.cycles import ExpectedFn, never_expected
from repro.ddg.edges import LatencyQuery
from repro.ddg.graph import DDG
from repro.errors import DependenceError
from repro.ir.instructions import Instruction


def acyclic_heights(
    ddg: DDG,
    query: LatencyQuery,
    expected: ExpectedFn = never_expected,
) -> dict[Instruction, int]:
    """Longest path (in latency) from each node to any sink, omega-0 edges."""
    order = sorted(ddg.nodes, key=lambda i: i.index, reverse=True)
    height: dict[Instruction, int] = {}
    for inst in order:
        h = 0
        for edge in ddg.succs(inst):
            if edge.omega:
                continue
            lat = edge.latency(query, expected(edge))
            h = max(h, height[edge.dst] + lat)
        height[inst] = h
    return height


def modulo_heights(
    ddg: DDG,
    ii: int,
    query: LatencyQuery,
    expected: ExpectedFn = never_expected,
) -> dict[Instruction, int]:
    """Fixpoint height over all edges with weights ``lat - ii*omega``.

    Converges iff ``ii`` is at least the Recurrence II.
    """
    height = {inst: 0 for inst in ddg.nodes}
    for _ in range(len(ddg.nodes) + 1):
        changed = False
        for edge in ddg.edges:
            w = edge.latency(query, expected(edge)) - ii * edge.omega
            cand = height[edge.dst] + w
            if cand > height[edge.src]:
                height[edge.src] = cand
                changed = True
        if not changed:
            return height
    raise DependenceError(
        f"height fixpoint diverged: II={ii} below recurrence bound "
        f"in loop {ddg.loop.name!r}"
    )


def acyclic_slacks(
    ddg: DDG,
    query: LatencyQuery,
    expected: ExpectedFn = never_expected,
) -> dict[Instruction, int]:
    """Per-operation slack within the acyclic critical path.

    ``slack(v) = Lstart(v) - Estart(v)`` where Estart/Lstart are the
    earliest/latest start times over omega-0 edges given the acyclic
    critical-path length.
    """
    # earliest start: longest path from sources
    estart: dict[Instruction, int] = {}
    for inst in ddg.nodes:  # body order is a topological order for omega-0
        e = 0
        for edge in ddg.preds(inst):
            if edge.omega:
                continue
            lat = edge.latency(query, expected(edge))
            e = max(e, estart[edge.src] + lat)
        estart[inst] = e

    height = acyclic_heights(ddg, query, expected)
    if not ddg.nodes:
        return {}
    span = max(estart[i] + height[i] for i in ddg.nodes)
    return {i: span - height[i] - estart[i] for i in ddg.nodes}
