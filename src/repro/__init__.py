"""Latency-tolerant software pipelining — a full reproduction.

Reproduces Winkel, Krishnaiyer & Sampson, *"Latency-Tolerant Software
Pipelining in a Production Compiler"* (CGO 2008): an Itanium-style loop
compiler (IR, dependence analysis, iterative modulo scheduling with
non-critical-load latency boosting, rotating register allocation), the
High-Level Optimizer's prefetcher and latency-hint heuristics, a
cycle-level in-order core + memory hierarchy simulator, and a synthetic
SPEC-archetype benchmark suite that regenerates the paper's evaluation.

Quickstart::

    from repro import LoopCompiler, CompilerConfig, ItaniumMachine, parse_loop

    loop = parse_loop('''
        memref A affine stride=4
        memref B affine stride=4
        loop copy_add trips=200 source=pgo
          ld4 r4 = [r5], 4 !A
          add r7 = r4, r9
          st4 [r6] = r7, 4 !B
    ''')
    compiled = LoopCompiler(ItaniumMachine(), CompilerConfig()).compile(loop)
    print(compiled.result.kernel.format())
"""

from repro.config import CompilerConfig, HintPolicy, baseline_config
from repro.core.compiler import CompiledLoop, LoopCompiler
from repro.core.experiment import Experiment, ExperimentResult, percent_gain
from repro.core.theory import (
    additional_latency_for_clustering,
    clustering_factor,
    coverage_ratio,
    fig5_series,
    stall_reduction_percent,
)
from repro.errors import ReproError
from repro.ir import Loop, LoopBuilder, parse_loop
from repro.ir.memref import AccessPattern, LatencyHint, MemRef
from repro.machine import ItaniumMachine
from repro.pipeliner import pipeline_loop
from repro.sim import MemorySystem, StreamSpec, simulate_loop
from repro.workloads import cpu2000_suite, cpu2006_suite

__version__ = "1.0.0"

__all__ = [
    "CompilerConfig",
    "HintPolicy",
    "baseline_config",
    "CompiledLoop",
    "LoopCompiler",
    "Experiment",
    "ExperimentResult",
    "percent_gain",
    "additional_latency_for_clustering",
    "clustering_factor",
    "coverage_ratio",
    "fig5_series",
    "stall_reduction_percent",
    "ReproError",
    "Loop",
    "LoopBuilder",
    "parse_loop",
    "AccessPattern",
    "LatencyHint",
    "MemRef",
    "ItaniumMachine",
    "pipeline_loop",
    "MemorySystem",
    "StreamSpec",
    "simulate_loop",
    "cpu2000_suite",
    "cpu2006_suite",
    "__version__",
]
