"""Tests for the supervised worker pool (``repro.harness.workers``).

The pool is the execution substrate shared by ``run_jobs``/``run_suite``
and the service: tasks resolve to :class:`TaskResult` values that never
raise, deadline overruns reap (kill + respawn) the offending worker
without disturbing the rest of the batch, and worker crashes surface as
errors rather than hangs.
"""

import os
import time

import pytest

from repro.harness import (
    TASK_ERROR,
    TASK_OK,
    TASK_TIMEOUT,
    WorkerPool,
    run_supervised,
)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _die(_x):
    os._exit(17)  # simulate a hard worker crash (segfault-style)


@pytest.fixture
def pool():
    p = WorkerPool(2, name="test-pool")
    yield p
    p.close()


def test_results_come_back_in_submission_order(pool):
    futures = [pool.submit(_square, n) for n in range(8)]
    results = [f.result(30.0) for f in futures]
    assert all(r.status == TASK_OK for r in results)
    assert [r.value for r in results] == [n * n for n in range(8)]


def test_task_exception_is_a_result_not_a_raise(pool):
    ok = pool.submit(_square, 3)
    bad = pool.submit(_boom, 5)
    assert ok.result(30.0).value == 9
    result = bad.result(30.0)
    assert result.status == TASK_ERROR
    assert isinstance(result.exception, ValueError)
    assert "boom on 5" in result.error


def test_deadline_overrun_is_reaped_and_pool_survives(pool):
    slow = pool.submit(_sleepy, 10.0, timeout=0.2)
    result = slow.result(30.0)
    assert result.status == TASK_TIMEOUT
    assert pool.reaped == 1
    # the respawned worker picks up new work
    after = pool.submit(_square, 7).result(30.0)
    assert after.status == TASK_OK and after.value == 49


def test_completed_but_overdue_task_still_counts_as_timeout(pool):
    # strict semantics: duration > timeout resolves as timeout even when
    # the worker finished before the supervisor tick noticed
    result = pool.submit(_sleepy, 0.05, timeout=1e-4).result(30.0)
    assert result.status == TASK_TIMEOUT


def test_worker_crash_surfaces_as_error_and_respawns(pool):
    crashed = pool.submit(_die, None)
    result = crashed.result(30.0)
    assert result.status == TASK_ERROR
    assert pool.crashed == 1
    after = pool.submit(_square, 6).result(30.0)
    assert after.status == TASK_OK and after.value == 36


def test_on_start_fires_for_executed_tasks(pool):
    started = []
    future = pool.submit(_square, 4, on_start=lambda: started.append(True))
    assert future.result(30.0).value == 16
    deadline = time.monotonic() + 5.0
    while not started and time.monotonic() < deadline:
        time.sleep(0.01)
    assert started


def test_run_supervised_parallel_matches_serial():
    payloads = list(range(6))
    serial = run_supervised(_square, payloads, workers=1)
    parallel = run_supervised(_square, payloads, workers=3)
    assert [r.value for r in serial] == [r.value for r in parallel]
    assert all(r.status == TASK_OK for r in serial + parallel)


def test_run_supervised_serial_captures_exceptions():
    results = run_supervised(_boom, [1], workers=1)
    assert results[0].status == TASK_ERROR
    assert isinstance(results[0].exception, ValueError)


def test_run_supervised_mixed_timeouts_do_not_sink_the_batch():
    results = run_supervised(
        _sleepy, [0.0, 5.0, 0.0], workers=2, timeout=0.5
    )
    assert [r.status for r in results] == [TASK_OK, TASK_TIMEOUT, TASK_OK]


def test_close_is_idempotent():
    pool = WorkerPool(1, name="close-pool")
    assert pool.submit(_square, 2).result(30.0).value == 4
    pool.close()
    pool.close()
