"""Dependence edges.

A scheduled loop must satisfy, for every edge ``e = (src, dst)``::

    t(dst) >= t(src) + latency(e) - II * omega(e)

where ``t`` are kernel schedule times and ``omega`` is the dependence
distance in source iterations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.instructions import Instruction
from repro.ir.memref import MemRef
from repro.ir.registers import Reg

#: Resolves the result latency of ``inst`` producing ``reg``.  The boolean
#: asks for the *expected* (hint-derived) latency instead of the base one.
LatencyQuery = Callable[[Instruction, Optional[Reg], bool], int]


class DepKind(enum.Enum):
    """Kinds of dependences between loop-body instructions."""

    FLOW = "flow"  #: register true dependence (def -> use)
    ANTI = "anti"  #: register anti dependence (use -> def)
    OUTPUT = "output"  #: register output dependence (def -> def)
    MEM_FLOW = "mem-flow"  #: store -> load, may-alias
    MEM_ANTI = "mem-anti"  #: load -> store, may-alias
    MEM_OUTPUT = "mem-out"  #: store -> store, may-alias

    @property
    def is_register(self) -> bool:
        return self in (DepKind.FLOW, DepKind.ANTI, DepKind.OUTPUT)

    @property
    def is_memory(self) -> bool:
        return not self.is_register


#: Fixed latencies of non-flow edges: an anti dependence allows same-cycle
#: placement; output and memory ordering edges require one cycle.
_FIXED_LATENCY = {
    DepKind.ANTI: 0,
    DepKind.MEM_ANTI: 0,
    DepKind.OUTPUT: 1,
    DepKind.MEM_OUTPUT: 1,
    DepKind.MEM_FLOW: 1,
}


@dataclass(frozen=True, slots=True)
class DepEdge:
    """One dependence edge of the DDG."""

    src: Instruction
    dst: Instruction
    kind: DepKind
    omega: int
    reg: Reg | None = None
    memref: MemRef | None = None

    def __post_init__(self) -> None:
        from repro.errors import DependenceError

        if self.omega < 0:
            raise DependenceError(f"negative dependence distance: {self}")

    @property
    def loop_carried(self) -> bool:
        return self.omega >= 1

    def latency(self, query: LatencyQuery, expected: bool = False) -> int:
        """Resolve this edge's latency.

        Register flow edges take the producing instruction's result latency
        (where load latencies depend on hints and criticality); all other
        kinds have fixed small latencies.
        """
        if self.kind is DepKind.FLOW:
            return query(self.src, self.reg, expected)
        return _FIXED_LATENCY[self.kind]

    def __repr__(self) -> str:
        what = self.reg or (self.memref.name if self.memref else "")
        return (
            f"DepEdge({self.src.index}->{self.dst.index} "
            f"{self.kind.value}[{what}] w={self.omega})"
        )
