"""Cycle accounting aggregation (Fig. 10).

Aggregates the simulator's per-benchmark counters across a whole suite
into the six microarchitectural buckets Caliper reports, so the benches
can print the baseline-vs-variant stacked columns of Fig. 10 and the
OzQ-full percentage discussed in Sec. 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import BenchmarkResult
from repro.sim.counters import PerfCounters

BUCKETS = (
    "unstalled",
    "be_exe_bubble",
    "be_l1d_fpu_bubble",
    "be_rse_bubble",
    "be_flush_bubble",
    "back_end_bubble_fe",
)


@dataclass
class CycleAccount:
    """Suite-wide cycle accounting for one configuration."""

    label: str
    counters: PerfCounters

    @property
    def total(self) -> float:
        return self.counters.total_cycles

    def share(self, bucket: str) -> float:
        """Fraction of all cycles spent in ``bucket``."""
        if bucket not in BUCKETS:
            raise KeyError(f"unknown bucket {bucket!r}")
        return getattr(self.counters, bucket) / max(self.total, 1e-9)

    def ozq_full_percent(self) -> float:
        """Percent of cycles with a full OzQ (the L2D_OZQ_FULL counter)."""
        return 100.0 * self.counters.ozq_full_cycles / max(self.total, 1e-9)

    def delta_percent(self, other: "CycleAccount", bucket: str) -> float:
        """Percent change of a bucket's cycles vs another account."""
        mine = getattr(self.counters, bucket)
        theirs = getattr(other.counters, bucket)
        if theirs == 0:
            return 0.0
        return 100.0 * (mine / theirs - 1.0)


def accumulate_account(
    results: dict[str, BenchmarkResult], label: str
) -> CycleAccount:
    """Sum counters across a suite run into one account."""
    total = PerfCounters()
    for result in results.values():
        total.merge(result.counters)
    return CycleAccount(label=label, counters=total)
