"""Static register-pressure bounds (Sec. 2.2).

Longer scheduled load latencies stretch value lifetimes across more
kernel iterations, and every crossed back-edge costs one more rotating
register — the price of latency tolerance the paper analyses in
Sec. 2.2.  This check re-derives that price independently of
:mod:`repro.regalloc` and reconciles the two:

* **MaxLive per class** — for each kernel row, count how many copies of
  each value are simultaneously live (a value live for ``e - f`` cycles
  at row ``r`` has ``(e - f) // II + 1`` overlapping rotated copies).
  The row maximum is the true pressure floor; the blade allocation can
  never use fewer registers.
* **Spans reconciliation** — the blades allocator assigns each value a
  contiguous blade of ``span`` registers and packs them end to end, so
  its per-class usage must equal the re-derived sum of spans exactly
  (plus the SC stage predicates in the PR file).
* **Capacity** — usage must fit the machine's rotating file.

Any disagreement is a single error code, **SA501**: either the
allocation books fewer registers than the schedule provably needs, or
the demand exceeds what the machine has.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.diagnostics import DiagnosticReport
from repro.ddg.edges import DepKind
from repro.ir.registers import RegClass
from repro.pipeliner.driver import PipelineResult


@dataclass(frozen=True)
class _Live:
    """One re-derived lifetime: definition and folded last-use times."""

    rclass: RegClass
    t_def: int
    end: int

    def span(self, ii: int) -> int:
        return self.end // ii - self.t_def // ii + 1

    def copies_at(self, row: int, ii: int) -> int:
        """Simultaneously-live rotated copies of this value at a row."""
        first = self.t_def + ((row - self.t_def) % ii)
        if first > self.end:
            return 0
        return (self.end - first) // ii + 1


def _derive_lifetimes(result: PipelineResult) -> list[_Live]:
    schedule = result.schedule
    ddg = result.ddg
    loop = result.loop
    ii = schedule.ii
    lives: list[_Live] = []
    for inst in loop.body:
        t_def = schedule.time_of(inst)
        for reg in inst.all_defs():
            # static (physical) and self-recurrent registers never rotate
            if not reg.virtual or reg in inst.all_uses():
                continue
            end = t_def
            for edge in ddg.succs(inst):
                if edge.kind is not DepKind.FLOW or edge.reg != reg:
                    continue
                end = max(end, schedule.time_of(edge.dst) + ii * edge.omega)
            if reg in loop.live_out:
                end = max(end, t_def + ii)
            lives.append(_Live(rclass=reg.rclass, t_def=t_def, end=end))
    return lives


def max_live(result: PipelineResult) -> dict[RegClass, int]:
    """Peak simultaneously-live rotated values per class, per kernel row."""
    ii = result.schedule.ii
    lives = _derive_lifetimes(result)
    peaks: dict[RegClass, int] = defaultdict(int)
    for row in range(ii):
        at_row: dict[RegClass, int] = defaultdict(int)
        for lv in lives:
            at_row[lv.rclass] += lv.copies_at(row, ii)
        for rclass, count in at_row.items():
            peaks[rclass] = max(peaks[rclass], count)
    return dict(peaks)


def verify_pressure(result: PipelineResult) -> DiagnosticReport:
    """Check the rotating allocation against re-derived pressure bounds."""
    report = DiagnosticReport()
    if not result.pipelined or result.schedule is None:
        return report
    rotating = result.rotating
    if rotating is None:
        return report

    loop = result.loop.name
    machine = result.schedule.machine
    ii = result.schedule.ii
    sc = result.schedule.stage_count
    lives = _derive_lifetimes(result)
    peaks = max_live(result)

    spans: dict[RegClass, int] = defaultdict(int)
    for lv in lives:
        spans[lv.rclass] += lv.span(ii)

    for rclass in (RegClass.GR, RegClass.FR, RegClass.PR):
        predicates = sc if rclass is RegClass.PR else 0
        demand = spans.get(rclass, 0) + predicates
        floor = peaks.get(rclass, 0) + predicates
        used = rotating.used.get(rclass, 0)
        capacity = machine.rotating_capacity(rclass)
        if used != demand:
            report.add(
                "SA501",
                f"{rclass.name} rotating usage {used} does not match the "
                f"re-derived blade demand {demand} "
                f"(sum of spans{' + stage predicates' if predicates else ''})",
                loop=loop,
                detail={
                    "class": rclass.name,
                    "used": used,
                    "demand": demand,
                    "stage_predicates": predicates,
                },
            )
        if used < floor:
            report.add(
                "SA501",
                f"{rclass.name} rotating usage {used} is below MaxLive "
                f"{floor}: some row holds more live values than registers",
                loop=loop,
                detail={"class": rclass.name, "used": used, "max_live": floor},
            )
        if used > capacity:
            report.add(
                "SA501",
                f"{rclass.name} rotating demand {used} exceeds the machine "
                f"capacity {capacity}",
                loop=loop,
                detail={
                    "class": rclass.name,
                    "used": used,
                    "capacity": capacity,
                },
            )
    return report
