"""Synthetic SPEC-archetype workloads.

The paper evaluates on SPEC CPU2000/CPU2006 binaries we cannot run, so the
suite is replaced by synthetic benchmarks whose hot loops reproduce the
archetypes the paper attributes its per-benchmark results to: pointer
chasing (429.mcf), integer streaming (462.libquantum), FP kernels
(444.namd, 481.wrf, 200.sixtrack), low-trip-count L1-resident loops
(464.h264ref), training/reference trip-count mismatches (177.mesa),
and cache-resident indirect accesses with bad static estimates
(445.gobmk).  See DESIGN.md for the substitution argument.
"""

from repro.workloads.loops import LoopTemplate, TEMPLATES
from repro.workloads.spec import (
    Benchmark,
    LoopWorkload,
    cpu2006_suite,
    cpu2000_suite,
    micro_suite,
    suite_by_name,
    benchmark_by_name,
)

__all__ = [
    "LoopTemplate",
    "TEMPLATES",
    "Benchmark",
    "LoopWorkload",
    "cpu2006_suite",
    "cpu2000_suite",
    "micro_suite",
    "suite_by_name",
    "benchmark_by_name",
]
