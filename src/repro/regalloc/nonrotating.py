"""Static (non-rotating) register allocation and spill estimation.

Loop invariants (live-in registers) and live-out values occupy static
registers.  When demand exceeds the static supply, the surplus is spilled
around the loop: each spill costs one store in the prolog and one load in
the epilog — a one-time cost per loop execution (Sec. 2.2), plus register
stack engine (RSE) traffic proportional to the number of stacked registers
the loop's frame allocates (Sec. 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.registers import RegClass
from repro.pipeliner.schedule import Schedule

#: Static registers a loop can realistically use per class after the ABI
#: reserves its share (sp, gp, return links, scratch conventions).
STATIC_SUPPLY: dict[RegClass, int] = {
    RegClass.GR: 20,
    RegClass.FR: 24,
    RegClass.PR: 14,
}


@dataclass
class StaticAllocation:
    """Static register demand, supply and resulting spill count."""

    demand: dict[RegClass, int] = field(default_factory=dict)
    supply: dict[RegClass, int] = field(default_factory=dict)
    spills: int = 0
    #: stacked registers the surrounding frame allocates (drives RSE cost)
    stacked_frame: int = 0


def allocate_static(
    schedule: Schedule, rotating_used: dict[RegClass, int]
) -> StaticAllocation:
    """Count static demand from live-ins/outs and estimate spills."""
    from repro.regalloc.lifetimes import is_self_recurrent

    loop = schedule.loop
    demand: dict[RegClass, int] = {rc: 0 for rc in STATIC_SUPPLY}
    static_regs = set(loop.live_in) | set(loop.live_out)
    # self-recurrent registers update a static register in place
    for inst in loop.body:
        for reg in inst.all_defs():
            if reg.virtual and is_self_recurrent(inst, reg):
                static_regs.add(reg)
    for reg in static_regs:
        if reg.rclass in demand:
            demand[reg.rclass] += 1

    spills = 0
    for rclass, need in demand.items():
        spills += max(0, need - STATIC_SUPPLY[rclass])

    # The register stack frame covers static GRs plus the rotating GR area
    # actually used; the RSE spills/fills these around calls (Sec. 4.5).
    stacked = demand[RegClass.GR] + rotating_used.get(RegClass.GR, 0)
    return StaticAllocation(
        demand=demand,
        supply=dict(STATIC_SUPPLY),
        spills=spills,
        stacked_frame=stacked,
    )
