"""Self-determinism AST lint: rules, and the shipped targets stay clean."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.selflint import (
    DEFAULT_TARGETS,
    check_file,
    check_paths,
    check_source,
    main,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source: str) -> list[str]:
    return [f.code for f in check_source(source)]


class TestRules:
    def test_wall_clock_rejected(self):
        assert codes("import time\nstamp = time.time()\n") == ["ND001"]
        assert codes("import time\nstamp = time.time_ns()\n") == ["ND001"]

    def test_monotonic_clocks_allowed(self):
        assert codes(
            "import time\n"
            "t0 = time.perf_counter()\n"
            "t1 = time.monotonic()\n"
        ) == []

    def test_datetime_now_rejected(self):
        assert codes(
            "import datetime\nwhen = datetime.now()\n"
        ) == ["ND002"]
        assert codes("stamp = datetime.utcnow()\n") == ["ND002"]

    def test_unseeded_random_rejected(self):
        assert codes("import random\nx = random.random()\n") == ["ND003"]
        assert codes("import random\nrandom.shuffle(items)\n") == ["ND003"]

    def test_seeded_generators_allowed(self):
        assert codes(
            "import random\n"
            "rng = random.Random(7)\n"
            "x = rng.random()\n"
        ) == []
        assert codes(
            "import numpy as np\n"
            "rng = np.random.default_rng(11)\n"
        ) == []

    def test_numpy_global_rng_rejected(self):
        assert codes(
            "import numpy as np\nx = np.random.rand(3)\n"
        ) == ["ND003"]

    def test_uuid_and_urandom_rejected(self):
        assert codes("import uuid\nu = uuid.uuid4()\n") == ["ND004"]
        assert codes("import os\nb = os.urandom(8)\n") == ["ND004"]

    def test_set_iteration_rejected(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["ND005"]
        assert codes("out = [x for x in set(items)]\n") == ["ND005"]

    def test_sorted_set_iteration_allowed(self):
        assert codes("for x in sorted({1, 2, 3}):\n    pass\n") == []
        assert codes("for x in sorted(set(items)):\n    pass\n") == []

    def test_finding_carries_location(self):
        finding = check_source("import time\nt = time.time()\n", "mod.py")[0]
        assert finding.path == "mod.py"
        assert finding.line == 2
        assert "mod.py:2: ND001" in finding.format()


class TestTargets:
    def test_shipped_content_addressed_paths_are_clean(self):
        findings = check_paths(DEFAULT_TARGETS, root=REPO_ROOT)
        assert findings == [], [f.format() for f in findings]

    def test_check_file_reads_real_sources(self):
        path = REPO_ROOT / "src" / "repro" / "harness" / "cache.py"
        assert check_file(path) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "ND001" in out
