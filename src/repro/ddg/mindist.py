"""MinDist matrix: tightest scheduling separation between operation pairs.

``mindist[i][j]`` is the largest total weight ``sum(latency - II*omega)``
over all dependence paths from instruction ``i`` to instruction ``j``; a
legal modulo schedule must satisfy ``t(j) - t(i) >= mindist[i][j]`` for
every reachable pair.  The matrix exists (is free of positive diagonal
entries) exactly when ``II >= RecurrenceII``.
"""

from __future__ import annotations

import numpy as np

from repro.ddg.cycles import ExpectedFn, never_expected
from repro.ddg.edges import LatencyQuery
from repro.ddg.graph import DDG
from repro.errors import DependenceError

#: Sentinel for "no dependence path".
NO_PATH = float("-inf")


def mindist_matrix(
    ddg: DDG,
    ii: int,
    query: LatencyQuery,
    expected: ExpectedFn = never_expected,
    check: bool = True,
) -> np.ndarray:
    """Floyd-Warshall longest paths on weights ``latency - ii*omega``.

    Raises :class:`DependenceError` when ``check`` is set and the II is
    below the recurrence bound (positive-weight cycle).
    """
    n = len(ddg.nodes)
    dist = np.full((n, n), NO_PATH)
    for edge in ddg.edges:
        w = edge.latency(query, expected(edge)) - ii * edge.omega
        i, j = edge.src.index, edge.dst.index
        if w > dist[i, j]:
            dist[i, j] = w
    for k in range(n):
        via = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.maximum(dist, via, out=dist)
    if check and n and np.any(np.diagonal(dist) > 0):
        raise DependenceError(
            f"II={ii} is below the recurrence bound of loop {ddg.loop.name!r}"
        )
    return dist
