"""Tests for memory-reference descriptors."""

import pytest

from repro.ir.memref import AccessPattern, LatencyHint, MemRef


class TestMemRef:
    def test_affine_defaults_to_element_stride(self):
        ref = MemRef("a", size=8)
        assert ref.pattern is AccessPattern.AFFINE
        assert ref.stride == 8

    def test_space_defaults_to_name(self):
        assert MemRef("a").space == "a"
        assert MemRef("a", space="heap").space == "heap"

    def test_identity_semantics(self):
        a = MemRef("a", stride=4)
        b = MemRef("a", stride=4)
        assert a != b
        assert a.uid != b.uid

    def test_indirect_requires_index_ref(self):
        with pytest.raises(ValueError, match="index_ref"):
            MemRef("data", pattern=AccessPattern.INDIRECT)
        idx = MemRef("idx")
        ref = MemRef("data", pattern=AccessPattern.INDIRECT, index_ref=idx)
        assert ref.index_ref is idx

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            MemRef("a", size=3)

    def test_prefetchable(self):
        assert MemRef("a").prefetchable
        assert MemRef(
            "b", pattern=AccessPattern.SYMBOLIC_STRIDE
        ).prefetchable
        assert not MemRef(
            "c", pattern=AccessPattern.POINTER_CHASE
        ).prefetchable
        assert not MemRef("d", pattern=AccessPattern.INVARIANT).prefetchable

    def test_clone_clears_annotations(self):
        ref = MemRef("a", stride=4, offset=8)
        ref.hint = LatencyHint.L3
        ref.hint_source = "hlo"
        ref.prefetched = True
        ref.prefetch_distance = 12
        clone = ref.clone_annotations_cleared()
        assert clone.hint is LatencyHint.NONE
        assert clone.hint_source == ""
        assert not clone.prefetched
        assert clone.prefetch_distance == 0
        assert clone.stride == ref.stride
        assert clone.offset == ref.offset
        assert clone.uid != ref.uid


class TestLatencyHint:
    def test_ordering(self):
        assert LatencyHint.NONE < LatencyHint.L1 < LatencyHint.L2
        assert LatencyHint.L2 < LatencyHint.L3 < LatencyHint.MEM

    def test_comparison_with_non_hint(self):
        with pytest.raises(TypeError):
            _ = LatencyHint.L2 < 3
